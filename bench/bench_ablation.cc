// Ablation — the sweep-line temporal aggregation algorithm.
//
// DESIGN.md calls out the interval sweep-line as the central algorithmic
// choice behind non-blocking, snapshot-equivalent aggregation. This
// ablation replaces it with the naive alternative: archive the input and
// recompute the aggregate from scratch at every interval boundary
// (materializing executor — the reference semantics used by the tests).
//
// Expected shape: the sweep-line processes each element once per covered
// segment (near-linear); the recompute baseline is quadratic-ish in the
// number of live elements per segment and falls behind sharply as the
// window (overlap) grows.

#include <map>

#include <benchmark/benchmark.h>

#include "src/algebra/aggregate.h"
#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 5'000;

std::vector<StreamElement<int>> MakeInput(Timestamp window) {
  Random rng(21);
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>(
        static_cast<int>(rng.NextBounded(100)), i, i + window));
  }
  return input;
}

void BM_SweepLineAggregate(benchmark::State& state) {
  const auto input = MakeInput(state.range(0));
  std::uint64_t outputs = 0;
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    auto value = [](int v) { return v; };
    auto& agg =
        graph.Add<algebra::TemporalAggregate<int, algebra::SumAgg<int>,
                                             decltype(value)>>(value);
    auto& sink = graph.Add<CountingSink<int>>();
    source.AddSubscriber(agg.input());
    agg.AddSubscriber(sink.input());
    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    driver.RunToCompletion();
    outputs = sink.count();
    benchmark::DoNotOptimize(outputs);
  }
  state.counters["outputs"] =
      benchmark::Counter(static_cast<double>(outputs));
  state.SetItemsProcessed(state.iterations() * kElements);
}

/// Naive baseline: keep all elements; at every boundary, rescan everything
/// live to recompute the aggregate of the segment starting there.
void BM_RecomputeAggregate(benchmark::State& state) {
  const auto input = MakeInput(state.range(0));
  std::uint64_t outputs = 0;
  for (auto _ : state) {
    // Boundaries in order; segment [b_i, b_{i+1}).
    std::map<Timestamp, int> boundaries;  // boundary -> unused
    for (const auto& e : input) {
      boundaries[e.start()] = 0;
      boundaries[e.end()] = 0;
    }
    std::uint64_t produced = 0;
    std::int64_t checksum = 0;
    for (auto it = boundaries.begin(); std::next(it) != boundaries.end();
         ++it) {
      const Timestamp seg_start = it->first;
      int sum = 0;
      bool any = false;
      for (const auto& e : input) {  // full rescan per segment
        if (e.start() <= seg_start && seg_start < e.end()) {
          sum += e.payload;
          any = true;
        }
      }
      if (any) {
        ++produced;
        checksum += sum;
      }
    }
    outputs = produced;
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["outputs"] =
      benchmark::Counter(static_cast<double>(outputs));
  state.SetItemsProcessed(state.iterations() * kElements);
}

}  // namespace

// Window (overlap degree) sweep.
BENCHMARK(BM_SweepLineAggregate)->Arg(10)->Arg(100)->Arg(1000);
BENCHMARK(BM_RecomputeAggregate)->Arg(10)->Arg(100)->Arg(1000);
