// E7 — Temporal aggregation and stream-rate reduction.
//
// Paper claim: the temporal algebra is CQL-conformant and "includes special
// mechanisms that substantially reduce stream rates" — in particular, the
// slide-aligned window keeps a downstream aggregate's output rate at the
// slide granularity, and coalescing merges equal adjacent results.
//
// Harness: NEXMark bids aggregated as "highest bid per auction over RANGE
// w" with varying SLIDE; counters report output cardinality. The paper's
// showcase query — "return every 10 minutes the highest bid of the recent
// 10 minutes" — is the RANGE 10m / SLIDE 10m point.
//
// Expected shape: throughput roughly constant; output count shrinks by the
// slide ratio (rate reduction); coalescing removes repeated values.

#include <benchmark/benchmark.h>

#include "src/algebra/aggregate.h"
#include "src/algebra/coalesce.h"
#include "src/algebra/window.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/nexmark.h"

namespace {

using namespace pipes;  // NOLINT
using workloads::NexmarkEvent;
using workloads::NexmarkGenerator;
using workloads::NexmarkKind;
using workloads::NexmarkOptions;

struct BidRecord {
  std::int64_t auction;
  double price;
};

std::vector<StreamElement<BidRecord>> MakeBids() {
  NexmarkOptions options;
  options.num_events = 50'000;
  options.mean_interarrival_ms = 20.0;
  NexmarkGenerator generator(options);
  std::vector<StreamElement<BidRecord>> bids;
  while (auto event = generator.Next()) {
    if (event->kind != NexmarkKind::kBid) continue;
    bids.push_back(StreamElement<BidRecord>::Point(
        BidRecord{event->bid.auction, event->bid.price}, event->time));
  }
  return bids;
}

const std::vector<StreamElement<BidRecord>>& Bids() {
  static const auto kBids = MakeBids();
  return kBids;
}

void RunGraph(QueryGraph& graph) {
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 256);
  driver.RunToCompletion();
}

void BM_HighestBid(benchmark::State& state) {
  const Timestamp range = 10ll * 60 * 1000;  // 10 minutes
  const Timestamp slide = state.range(0) * 1000;
  const bool coalesce = state.range(1) != 0;

  std::uint64_t outputs = 0;
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<BidRecord>>(Bids());
    auto& window =
        graph.Add<algebra::SlideWindow<BidRecord>>(range, slide);
    auto key = [](const BidRecord& b) { return b.auction; };
    auto value = [](const BidRecord& b) { return b.price; };
    auto& agg = graph.Add<algebra::GroupedAggregate<
        BidRecord, algebra::MaxAgg<double>, decltype(key), decltype(value)>>(
        key, value);
    source.AddSubscriber(window.input());
    window.AddSubscriber(agg.input());

    std::uint64_t count = 0;
    if (coalesce) {
      auto& merge = graph.Add<
          algebra::Coalesce<std::pair<std::int64_t, double>>>();
      auto& sink =
          graph.Add<CountingSink<std::pair<std::int64_t, double>>>();
      agg.AddSubscriber(merge.input());
      merge.AddSubscriber(sink.input());
      RunGraph(graph);
      count = sink.count();
    } else {
      auto& sink =
          graph.Add<CountingSink<std::pair<std::int64_t, double>>>();
      agg.AddSubscriber(sink.input());
      RunGraph(graph);
      count = sink.count();
    }
    outputs = count;
    benchmark::DoNotOptimize(outputs);
  }
  state.counters["outputs"] =
      benchmark::Counter(static_cast<double>(outputs));
  state.SetItemsProcessed(state.iterations() * Bids().size());
}

}  // namespace

// Args: {slide seconds, coalesce?}. RANGE fixed at 10 minutes.
BENCHMARK(BM_HighestBid)
    ->Args({10, 0})
    ->Args({60, 0})
    ->Args({600, 0})
    ->Args({600, 1});
