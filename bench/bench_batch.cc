// B1 — Batched transfer path.
//
// The queue-less pub-sub core pays one virtual call, one subscription loop,
// and one watermark merge per element on the per-element path. The batched
// path (`TransferBatch`/`ReceiveBatch`/`PortBatch`) amortizes all three
// over a run of elements. This bench sweeps the source batch size over
// {1, 8, 64, 512}; batch = 1 is the legacy per-element path and must match
// its throughput within noise, larger batches quantify the amortization.
//
// Run with `--benchmark_format=json` for machine-readable output; the
// `items_per_second` counter is elements/sec through the chain.
//
// Harnesses:
//  * filter -> map -> union -> buffer over 100k-element int streams (the
//    operators with dedicated batch kernels plus the batched buffer drain);
//  * the traffic workload: generator source -> HOV filter -> time window,
//    one simulated hour of loop-detector readings;
//  * the same int chain across a ConcurrentBuffer under the
//    ThreadScheduler (per-train instead of per-element locking).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/executor.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/traffic_queries.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 100'000;

std::vector<StreamElement<int>> MakeInput() {
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>::Point(i, i));
  }
  return input;
}

struct KeepMost {
  bool operator()(int v) const { return v % 8 != 0; }
};
struct AddOne {
  int operator()(int v) const { return v + 1; }
};

// filter -> map -> union -> buffer, both union inputs fed with the same
// batch size. 2 * kElements elements flow into the union.
void BM_FilterMapUnionBufferChain(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto left = MakeInput();
  const auto right = MakeInput();
  for (auto _ : state) {
    QueryGraph graph;
    auto& sa = graph.Add<VectorSource<int>>(left, "left", batch);
    auto& sb = graph.Add<VectorSource<int>>(right, "right", batch);
    auto& filter = graph.Add<algebra::Filter<int, KeepMost>>(KeepMost{});
    auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
    auto& u = graph.Add<algebra::Union<int>>();
    auto& buffer = graph.Add<Buffer<int>>();
    auto& sink = graph.Add<CountingSink<int>>();
    sa.AddSubscriber(filter.input());
    filter.AddSubscriber(map.input());
    map.AddSubscriber(u.left());
    sb.AddSubscriber(u.right());
    u.AddSubscriber(buffer.input());
    buffer.AddSubscriber(sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy,
                                            /*batch_size=*/1024);
    driver.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kElements);
}

// One simulated hour of loop-detector readings through the HOV filter and
// a one-minute window, emitted by the generator in `batch`-sized runs.
void BM_TrafficWorkload(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::uint64_t elements = 0;
  for (auto _ : state) {
    workloads::TrafficOptions options;
    options.duration_ms = 3600'000;
    QueryGraph graph;
    auto& source = workloads::AddTrafficSource(graph, options, batch);
    auto& hov = graph.Add<
        algebra::Filter<workloads::TrafficReading, workloads::HovLaneOnly>>(
        workloads::HovLaneOnly{});
    auto& window =
        graph.Add<algebra::TimeWindow<workloads::TrafficReading>>(60'000);
    auto& sink = graph.Add<CountingSink<workloads::TrafficReading>>();
    source.AddSubscriber(hov.input());
    hov.AddSubscriber(window.input());
    window.AddSubscriber(sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy,
                                            /*batch_size=*/1024);
    driver.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
    elements += source.elements_out();
  }
  state.SetItemsProcessed(elements);
}

// The same filter -> map -> union -> buffer chain driven by the pipe
// executor: transfers stage columnar runs on pipe edges and the work queue
// delivers them iteratively, so the chain pays per-run (not per-element)
// virtual dispatch and watermark merging end to end. The before/after
// number for the executor refactor — compare against
// BM_FilterMapUnionBufferChain at the same batch size.
void BM_ExecutorFilterMapUnionBufferChain(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto left = MakeInput();
  const auto right = MakeInput();
  for (auto _ : state) {
    QueryGraph graph;
    auto& sa = graph.Add<VectorSource<int>>(left, "left", batch);
    auto& sb = graph.Add<VectorSource<int>>(right, "right", batch);
    auto& filter = graph.Add<algebra::Filter<int, KeepMost>>(KeepMost{});
    auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
    auto& u = graph.Add<algebra::Union<int>>();
    auto& buffer = graph.Add<Buffer<int>>();
    auto& sink = graph.Add<CountingSink<int>>();
    sa.AddSubscriber(filter.input());
    filter.AddSubscriber(map.input());
    map.AddSubscriber(u.left());
    sb.AddSubscriber(u.right());
    u.AddSubscriber(buffer.input());
    buffer.AddSubscriber(sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::PipeExecutor executor(graph, strategy, /*batch_size=*/1024);
    executor.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * 2 * kElements);
}

// Cross-thread edge: source and sink halves on different workers, the
// ConcurrentBuffer between them drained train-at-a-time. Batching cuts
// lock acquisitions from per-element to per-train on both sides.
void BM_ConcurrentBufferEdge(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto input = MakeInput();
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input, "source", batch);
    auto& buffer = graph.Add<ConcurrentBuffer<int>>();
    auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
    auto& sink = graph.Add<CountingSink<int>>();
    source.AddSubscriber(buffer.input());
    buffer.AddSubscriber(map.input());
    map.AddSubscriber(sink.input());

    scheduler::ThreadScheduler driver(
        graph, /*num_threads=*/2,
        [] { return std::make_unique<scheduler::RoundRobinStrategy>(); },
        /*assignment=*/{}, /*batch_size=*/1024);
    driver.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}

}  // namespace

BENCHMARK(BM_FilterMapUnionBufferChain)->Arg(1)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_ExecutorFilterMapUnionBufferChain)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512);
BENCHMARK(BM_TrafficWorkload)->Arg(1)->Arg(8)->Arg(64)->Arg(512);
// Wall-clock timing: the work happens on the scheduler's worker threads,
// so the bench thread's CPU time would misstate throughput.
BENCHMARK(BM_ConcurrentBufferEdge)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Arg(512)
    ->UseRealTime();
