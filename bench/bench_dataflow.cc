// Dataflow abstract-interpretation throughput: certification cost per node.
//
// The certificate pass runs on every `Register` when the engine's
// `certify_admission` gate is on, and `pipes_lint --certify` runs it over
// whole plan corpora in CI, so the forward pass must stay linear and
// cheap as graphs grow. The benchmark reuses bench_lint's wide-graph
// shape (independent chains plus one replicated stage) and measures a
// full `AnalyzeDataflow` pass; a second benchmark covers the plan path
// with its optimizer cost-model cross-check.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/parallel.h"
#include "src/algebra/window.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/fixtures.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/optimizer/logical_plan.h"
#include "src/relational/expression.h"
#include "src/relational/schema.h"

namespace {

using namespace pipes;  // NOLINT

struct IntKey {
  int operator()(const int& v) const { return v; }
};
struct AsDouble {
  double operator()(const int& v) const { return static_cast<double>(v); }
};

/// `chains` parallel source->window->aggregate->sink chains plus one
/// 4-replica Distinct stage, with the sources declaring finite feeds so
/// every chain certifies bounded.
void BuildWideGraph(QueryGraph& graph, int chains) {
  for (int c = 0; c < chains; ++c) {
    const std::string suffix = "-" + std::to_string(c);
    auto& src = graph.Add<VectorSource<int>>(
        std::vector<StreamElement<int>>{}, "src" + suffix);
    src.metadata().SetGauge("dataflow.total_elements", 1000);
    auto& window =
        graph.Add<algebra::TimeWindow<int>>(100, "window" + suffix);
    auto& agg = graph.Add<algebra::TemporalAggregate<
        int, algebra::SumAgg<double>, AsDouble>>(AsDouble{},
                                                 "agg" + suffix);
    auto& sink = graph.Add<CountingSink<double>>("sink" + suffix);
    src.AddSubscriber(window.input());
    window.AddSubscriber(agg.input());
    agg.AddSubscriber(sink.input());
  }
  auto& psrc = graph.Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "par-src");
  psrc.metadata().SetGauge("dataflow.total_elements", 1000);
  auto chain =
      algebra::MakeKeyedParallel<algebra::Distinct<int>>(graph, 4, IntKey{});
  auto& psink = graph.Add<CountingSink<int>>("par-sink");
  psrc.AddSubscriber(*chain.input);
  chain.output->AddSubscriber(psink.input());
}

void BM_CertifyWideGraph(benchmark::State& state) {
  QueryGraph graph;
  BuildWideGraph(graph, static_cast<int>(state.range(0)));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    const analysis::DataflowResult result = analysis::AnalyzeDataflow(graph);
    acc += result.certificate.ram_bytes + result.nodes.size();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(graph.size()));
  state.counters["nodes"] = static_cast<double>(graph.size());
}
BENCHMARK(BM_CertifyWideGraph)->Arg(4)->Arg(32)->Arg(128);

void BM_CertifyWorkloadGraphs(benchmark::State& state) {
  const analysis::LintSubject traffic = analysis::BuildTrafficLintGraph();
  const analysis::LintSubject nexmark = analysis::BuildNexmarkLintGraph();
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += analysis::AnalyzeDataflow(*traffic.graph).certificate.ram_bytes;
    acc += analysis::AnalyzeDataflow(*nexmark.graph).certificate.ram_bytes;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(traffic.graph->size() +
                                nexmark.graph->size()));
}
BENCHMARK(BM_CertifyWorkloadGraphs);

/// Plan-level certification: lowering + forward pass + CostModel
/// cross-check, the exact work `Engine::Register` adds per registration
/// under `certify_admission`.
void BM_CertifyPlan(benchmark::State& state) {
  using namespace pipes::optimizer;
  using namespace pipes::relational;
  const Schema bids({{"auction", ValueType::kInt},
                     {"bidder", ValueType::kInt},
                     {"price", ValueType::kDouble}});
  WindowSpec range;
  range.kind = WindowKind::kRange;
  range.range = 1000;
  auto scan = ScanOp("bids", bids, range);
  auto plan = DistinctOp(ProjectOp(
      FilterOp(scan, MakeBinary(BinaryOp::kGt, MakeField(2, "price"),
                                MakeLiteral(Value(10.0)))),
      {MakeField(0, "auction")}, {"auction"}));
  std::uint64_t acc = 0;
  for (auto _ : state) {
    auto analyzed = analysis::AnalyzeDataflowPlan(plan);
    acc += analyzed.ok() ? analyzed->nodes.size() : 0;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CertifyPlan);

}  // namespace
