// E12 — The ESPBench-style enterprise scenario end to end.
//
// Enterprise stream processing: machine telemetry (power/temperature
// sensors) joined against ERP dimension relations (machine master data,
// production orders), with windowed power aggregation and sustained
// overload alerting. Two harnesses:
//
//   * BM_EspbenchCqlPipeline — the declarative face: `Engine` binds the
//     telemetry stream and both dimensions, registers the full CQL catalog
//     (workloads::EspbenchCqlCatalog), and drains to completion. Measures
//     end-to-end event throughput through compile -> optimize -> share ->
//     execute; counters verify the enrichment joins and audit counts
//     actually produce rows.
//
//   * BM_EspbenchTypedDisordered — the typed-fragment face over a
//     *disordered* feed: the reordering adapter restores start order (slack
//     = the generator's declared bound), then the sustained threshold
//     alert, over-capacity enrichment, and order enrichment run as
//     hand-wired plan fragments. Measures the reorder + multi-query cost;
//     a counter verifies the injected overload episode raises alarms.

#include <cstdint>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/macros.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/engine/engine.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/espbench.h"
#include "src/workloads/espbench_cql.h"
#include "src/workloads/espbench_queries.h"

namespace {

using namespace pipes;  // NOLINT
using relational::Tuple;
using workloads::EspbenchOptions;
using workloads::OverloadEpisode;

EspbenchOptions BenchOptions() {
  EspbenchOptions options;
  options.num_machines = 12;
  options.sensors_per_machine = 3;
  options.duration_ms = 60'000;
  options.mean_interarrival_ms = 2.0;
  OverloadEpisode episode;
  episode.begin = 20'000;
  episode.end = 45'000;
  episode.machine = 3;
  options.overloads = {episode};
  return options;
}

void BM_EspbenchCqlPipeline(benchmark::State& state) {
  std::uint64_t events = 0;
  std::uint64_t enriched = 0;
  std::uint64_t audit_rows = 0;
  for (auto _ : state) {
    engine::Engine engine{engine::EngineOptions{}};
    EspbenchOptions options = BenchOptions();
    Status bound = workloads::BindEspbenchStreams(engine, options);
    PIPES_CHECK_MSG(bound.ok(), bound.ToString().c_str());

    std::vector<engine::QueryHandle> handles;
    for (const workloads::EspbenchCqlQuery& q :
         workloads::EspbenchCqlCatalog()) {
      auto handle = engine.Register(q.text);
      PIPES_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());
      handles.push_back(std::move(*handle));
    }
    engine.RunToCompletion();

    events = workloads::EspbenchEventRows(options).size();
    enriched = handles[1].Poll().size();    // order enrichment join
    audit_rows = handles[4].Poll().size();  // late-data audit counts
    benchmark::DoNotOptimize(enriched);
  }
  state.counters["events"] = benchmark::Counter(static_cast<double>(events));
  state.counters["enriched_rows"] =
      benchmark::Counter(static_cast<double>(enriched));
  state.counters["audit_rows"] =
      benchmark::Counter(static_cast<double>(audit_rows));
  state.SetItemsProcessed(state.iterations() * events);
}

void BM_EspbenchTypedDisordered(benchmark::State& state) {
  std::uint64_t events = 0;
  std::uint64_t alarms = 0;
  std::uint64_t dropped = 0;
  for (auto _ : state) {
    EspbenchOptions options = BenchOptions();
    options.disorder_slack_ms = 40;
    options.disorder_fraction = 0.25;
    options.late_fraction = 0.01;

    QueryGraph graph;
    auto& source = workloads::AddReorderedEspbenchSource(graph, options);
    auto& event_count = graph.Add<CountingSink<workloads::MachineEvent>>();
    source.AddSubscriber(event_count.input());

    auto& alerts = workloads::BuildPowerThresholdAlertQuery(
        graph, source, /*threshold_w=*/1'300.0, /*min_duration=*/5'000);
    auto& alert_count =
        graph.Add<CountingSink<workloads::Sustained<std::int64_t>>>();
    alerts.AddSubscriber(alert_count.input());

    auto& machines = workloads::AddMachineDimensionSource(
        graph, workloads::GenerateMachines(options));
    auto& over = workloads::BuildOverCapacityQuery(graph, source, machines);
    auto& over_count = graph.Add<CountingSink<workloads::EventWithMachine>>();
    over.AddSubscriber(over_count.input());

    auto& orders = workloads::AddOrderDimensionSource(
        graph, workloads::GenerateOrders(options));
    auto& joined = workloads::BuildOrderEnrichmentJoin(graph, source, orders);
    auto& join_count = graph.Add<CountingSink<workloads::EventWithOrder>>();
    joined.AddSubscriber(join_count.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 1024);
    driver.RunToCompletion();

    events = event_count.count();
    alarms = alert_count.count();
    dropped = source.dropped_count();
    // The injected overload episode (25 s on machine 3) must raise at
    // least one sustained alarm or the scenario is broken.
    PIPES_CHECK(alarms >= 1);
    benchmark::DoNotOptimize(alarms);
  }
  state.counters["events"] = benchmark::Counter(static_cast<double>(events));
  state.counters["overload_alarms"] =
      benchmark::Counter(static_cast<double>(alarms));
  state.counters["dropped_stragglers"] =
      benchmark::Counter(static_cast<double>(dropped));
  state.SetItemsProcessed(state.iterations() * events);
}

}  // namespace

BENCHMARK(BM_EspbenchCqlPipeline);
BENCHMARK(BM_EspbenchTypedDisordered);
