// Simulation-harness throughput: how many fuzz cases per second the
// generator, the materializing reference executor, the differential
// oracles, and the full schedule explorer sustain.
//
// The fuzzer's value scales with its case rate — the nightly campaign is
// time-boxed (--minutes 15), so a 2x regression here halves the nightly
// coverage. The CI bench-smoke job runs this via the shared `--smoke`
// driver; locally, plain google-benchmark flags apply.

#include <cstdint>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/testing/generate.h"
#include "src/testing/harness.h"
#include "src/testing/oracles.h"
#include "src/testing/reference.h"
#include "src/testing/spec.h"

namespace {

using namespace pipes::testing;  // NOLINT

struct PreparedCase {
  PlanSpec spec;
  std::vector<Stream> raw;
  std::vector<Stream> canonical;
  std::vector<StreamProfile> profiles;
  Stream expected;
};

/// Pre-generates a pool of cases so the measured loops exercise exactly one
/// stage (reference eval, oracle compare, ...) instead of re-paying the
/// generator each iteration.
std::vector<PreparedCase> PrepareCases(std::uint64_t base_seed, int count) {
  std::vector<PreparedCase> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    pipes::Random rng(CaseSeed(base_seed, static_cast<std::uint64_t>(i)));
    PreparedCase c;
    GeneratedCase gc = GenerateCase(rng, GenOptions{});
    c.spec = gc.spec;
    c.profiles = gc.profiles;
    for (const StreamProfile& profile : gc.profiles) {
      c.raw.push_back(GenerateStream(rng, profile));
      c.canonical.push_back(Canonicalize(c.raw.back()));
    }
    c.expected = EvalReference(c.spec, c.canonical);
    out.push_back(std::move(c));
  }
  return out;
}

/// Plan + stream generation alone: the cost floor of every fuzz case.
void BM_GenerateCase(benchmark::State& state) {
  std::uint64_t index = 0;
  for (auto _ : state) {
    pipes::Random rng(CaseSeed(42, index++));
    GeneratedCase gc = GenerateCase(rng, GenOptions{});
    std::size_t total = 0;
    for (const StreamProfile& profile : gc.profiles) {
      total += GenerateStream(rng, profile).size();
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cases/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GenerateCase);

/// The materializing reference executor over a pool of generated plans.
void BM_ReferenceEval(benchmark::State& state) {
  const std::vector<PreparedCase> pool = PrepareCases(7, 16);
  std::size_t i = 0;
  for (auto _ : state) {
    const PreparedCase& c = pool[i++ % pool.size()];
    Stream out = EvalReference(c.spec, c.canonical);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cases/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReferenceEval);

/// Snapshot-equivalence sweep (the dominant oracle) on reference outputs.
void BM_OracleSnapshotCompare(benchmark::State& state) {
  const std::vector<PreparedCase> pool = PrepareCases(11, 16);
  std::size_t i = 0;
  for (auto _ : state) {
    const PreparedCase& c = pool[i++ % pool.size()];
    auto violation =
        CompareSnapshots(c.expected, c.expected, SnapRel::kEqual);
    benchmark::DoNotOptimize(violation);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["compares/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OracleSnapshotCompare);

/// One full fuzz case: every execution arm (schedules, faults, rewrites,
/// parallel replication) plus all oracles. This is the campaign's true
/// cases-per-second number.
void BM_FullCase(benchmark::State& state) {
  const std::vector<PreparedCase> pool = PrepareCases(3, 8);
  HarnessOptions options;
  std::size_t i = 0;
  std::uint64_t arms = 0;
  for (auto _ : state) {
    const std::size_t k = i++ % pool.size();
    const PreparedCase& c = pool[k];
    std::uint64_t case_arms = 0;
    CaseResult r = RunCaseOnSpec(c.spec, c.raw, c.profiles,
                                 CaseSeed(3, static_cast<std::uint64_t>(k)),
                                 options, &case_arms);
    arms += case_arms;
    if (!r.ok()) {
      state.SkipWithError("fuzz case failed inside the benchmark");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cases/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  state.counters["arms"] = static_cast<double>(arms);
}
BENCHMARK(BM_FullCase)->Unit(benchmark::kMillisecond);

}  // namespace
