// E9 — Hybrid data-driven / demand-driven processing.
//
// Paper demo: PIPES joins streams with persistent data by combining the
// data-driven pipe algebra with XXL's demand-driven cursors (dataflow
// translation).
//
// Harness: NEXMark-style bids joined with a persons relation of varying
// size, (a) via the cursor-probing StreamRelationJoin and (b) by feeding
// the relation through as an UNBOUNDED stream into a temporal hash join.
//
// Expected shape: the cursor probe wins — it touches exactly the matching
// relation rows per element and keeps no temporal state; the all-stream
// join pays insertion and interval bookkeeping for the whole relation.

#include <string>

#include <benchmark/benchmark.h>

#include "src/algebra/join.h"
#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/cursors/relation.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kBids = 50'000;

struct BidRecord {
  std::int64_t bidder;
  double price;
};

struct PersonRecord {
  std::int64_t id;
  std::string name;
};

std::vector<StreamElement<BidRecord>> MakeBids(std::int64_t num_persons) {
  Random rng(5);
  std::vector<StreamElement<BidRecord>> bids;
  bids.reserve(kBids);
  for (int i = 0; i < kBids; ++i) {
    bids.push_back(StreamElement<BidRecord>::Point(
        BidRecord{static_cast<std::int64_t>(
                      rng.NextBounded(static_cast<std::uint64_t>(num_persons))),
                  rng.UniformDouble(1, 1000)},
        i));
  }
  return bids;
}

void BM_CursorProbeJoin(benchmark::State& state) {
  const std::int64_t num_persons = state.range(0);
  const auto bids = MakeBids(num_persons);
  cursors::IndexedRelation<std::int64_t, PersonRecord> persons;
  for (std::int64_t i = 0; i < num_persons; ++i) {
    persons.Insert(i, PersonRecord{i, "person-" + std::to_string(i)});
  }

  std::uint64_t results = 0;
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<BidRecord>>(bids);
    auto key = [](const BidRecord& b) { return b.bidder; };
    auto combine = [](const BidRecord& b, const PersonRecord& p) {
      return std::make_pair(p.id, b.price);
    };
    auto& join = graph.Add<cursors::StreamRelationJoin<
        BidRecord, std::int64_t, PersonRecord, decltype(key),
        decltype(combine)>>(&persons, key, combine);
    auto& sink = graph.Add<CountingSink<std::pair<std::int64_t, double>>>();
    source.AddSubscriber(join.input());
    join.AddSubscriber(sink.input());
    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    driver.RunToCompletion();
    results = sink.count();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] =
      benchmark::Counter(static_cast<double>(results));
  state.SetItemsProcessed(state.iterations() * kBids);
}

void BM_AllStreamJoin(benchmark::State& state) {
  const std::int64_t num_persons = state.range(0);
  const auto bids = MakeBids(num_persons);
  std::vector<StreamElement<PersonRecord>> person_stream;
  person_stream.reserve(static_cast<std::size_t>(num_persons));
  for (std::int64_t i = 0; i < num_persons; ++i) {
    // The "relation as stream": valid forever from time 0.
    person_stream.push_back(StreamElement<PersonRecord>(
        PersonRecord{i, "person-" + std::to_string(i)}, 0, kMaxTimestamp));
  }

  std::uint64_t results = 0;
  for (auto _ : state) {
    QueryGraph graph;
    auto& bid_source = graph.Add<VectorSource<BidRecord>>(bids);
    auto& person_source =
        graph.Add<VectorSource<PersonRecord>>(person_stream);
    auto bid_key = [](const BidRecord& b) { return b.bidder; };
    auto person_key = [](const PersonRecord& p) { return p.id; };
    auto combine = [](const BidRecord& b, const PersonRecord& p) {
      return std::make_pair(p.id, b.price);
    };
    auto& join = graph.Add(
        algebra::MakeHashJoin<BidRecord, PersonRecord>(bid_key, person_key,
                                                       combine));
    auto& sink = graph.Add<CountingSink<std::pair<std::int64_t, double>>>();
    bid_source.AddSubscriber(join.left());
    person_source.AddSubscriber(join.right());
    join.AddSubscriber(sink.input());
    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    driver.RunToCompletion();
    results = sink.count();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] =
      benchmark::Counter(static_cast<double>(results));
  state.SetItemsProcessed(state.iterations() * kBids);
}

}  // namespace

BENCHMARK(BM_CursorProbeJoin)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(BM_AllStreamJoin)->Arg(100)->Arg(1000)->Arg(10000);
