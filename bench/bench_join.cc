// E3 — The SweepArea join framework with exchangeable SweepAreas.
//
// Paper claim: the generalized ripple join parameterized by exchangeable
// status-aware SweepAreas supports different join types efficiently; XXL's
// library design makes the implementations directly comparable.
//
// Harness: symmetric window equi-join over zipf-keyed integer streams.
// Variants: hash SweepArea vs list SweepArea (same equi-join predicate) vs
// tree SweepArea (band join), swept over window sizes.
//
// Expected shape: hash >> list for equi-joins and the gap widens with the
// window (state) size; the tree SweepArea beats the list for band joins.

#include <benchmark/benchmark.h>

#include "src/algebra/join.h"
#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 20'000;
constexpr int kKeyDomain = 10'000;

std::vector<StreamElement<int>> ZipfStream(std::uint64_t seed,
                                           Timestamp window) {
  Random rng(seed);
  ZipfDistribution zipf(kKeyDomain, 0.8);
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>(
        static_cast<int>(zipf.Sample(rng)), i, i + window));
  }
  return input;
}

template <typename JoinPtr>
void RunJoin(benchmark::State& state, Timestamp window, JoinPtr (*make)()) {
  const auto left = ZipfStream(1, window);
  const auto right = ZipfStream(2, window);
  std::uint64_t results = 0;
  for (auto _ : state) {
    QueryGraph graph;
    auto& l = graph.Add<VectorSource<int>>(left);
    auto& r = graph.Add<VectorSource<int>>(right);
    auto& join = graph.Add(make());
    auto& sink = graph.Add<CountingSink<int>>();
    l.AddSubscriber(join.left());
    r.AddSubscriber(join.right());
    join.AddSubscriber(sink.input());
    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 64);
    driver.RunToCompletion();
    results = sink.count();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] =
      benchmark::Counter(static_cast<double>(results));
  state.SetItemsProcessed(state.iterations() * kElements * 2);
}

int Identity(int v) { return v; }
int Combine(int a, int b) { return a * 1000 + b; }

auto MakeHash() {
  return algebra::MakeHashJoin<int, int>(Identity, Identity, Combine,
                                         "hash");
}

auto MakeList() {
  auto pred = [](int a, int b) { return a == b; };
  return algebra::MakeNestedLoopsJoin<int, int>(pred, Combine, "list");
}

auto MakeTreeBand() {
  return algebra::MakeBandJoin<int, int>(Identity, Identity, /*band=*/1,
                                         Combine, "tree-band");
}

auto MakeListBand() {
  auto pred = [](int a, int b) { return a - 1 <= b && b <= a + 1; };
  return algebra::MakeNestedLoopsJoin<int, int>(pred, Combine, "list-band");
}

void BM_HashSweepAreaEquiJoin(benchmark::State& state) {
  RunJoin(state, state.range(0), +[]() { return MakeHash(); });
}

void BM_ListSweepAreaEquiJoin(benchmark::State& state) {
  RunJoin(state, state.range(0), +[]() { return MakeList(); });
}

void BM_TreeSweepAreaBandJoin(benchmark::State& state) {
  RunJoin(state, state.range(0), +[]() { return MakeTreeBand(); });
}

void BM_ListSweepAreaBandJoin(benchmark::State& state) {
  RunJoin(state, state.range(0), +[]() { return MakeListBand(); });
}

}  // namespace

// Window sizes: 100, 400, 1600 time units of state.
BENCHMARK(BM_HashSweepAreaEquiJoin)->Arg(100)->Arg(400)->Arg(1600);
BENCHMARK(BM_ListSweepAreaEquiJoin)->Arg(100)->Arg(400)->Arg(1600);
BENCHMARK(BM_TreeSweepAreaBandJoin)->Arg(100)->Arg(400)->Arg(1600);
BENCHMARK(BM_ListSweepAreaBandJoin)->Arg(100)->Arg(400)->Arg(1600);
