// pipes-lint throughput: analysis cost per node as graphs grow.
//
// The lint pass is meant to run on every deploy (and in CI on every
// commit), so it must stay cheap even for wide graphs. The benchmark
// builds a fan-out of independent source -> window -> aggregate -> sink
// chains plus one replicated stage, and measures a full `Lint` pass.

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/parallel.h"
#include "src/algebra/window.h"
#include "src/analysis/analyzer.h"
#include "src/analysis/fixtures.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"

namespace {

using namespace pipes;  // NOLINT

struct IntKey {
  int operator()(const int& v) const { return v; }
};
struct AsDouble {
  double operator()(const int& v) const { return static_cast<double>(v); }
};

/// `chains` parallel source->window->aggregate->sink chains plus one
/// 4-replica Distinct stage: ~6 * chains + 16 nodes.
void BuildWideGraph(QueryGraph& graph, int chains) {
  for (int c = 0; c < chains; ++c) {
    const std::string suffix = "-" + std::to_string(c);
    auto& src = graph.Add<VectorSource<int>>(
        std::vector<StreamElement<int>>{}, "src" + suffix);
    auto& window =
        graph.Add<algebra::TimeWindow<int>>(100, "window" + suffix);
    auto& agg = graph.Add<algebra::TemporalAggregate<
        int, algebra::SumAgg<double>, AsDouble>>(AsDouble{},
                                                 "agg" + suffix);
    auto& sink = graph.Add<CountingSink<double>>("sink" + suffix);
    src.AddSubscriber(window.input());
    window.AddSubscriber(agg.input());
    agg.AddSubscriber(sink.input());
  }
  auto& psrc = graph.Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "par-src");
  auto chain =
      algebra::MakeKeyedParallel<algebra::Distinct<int>>(graph, 4, IntKey{});
  auto& psink = graph.Add<CountingSink<int>>("par-sink");
  psrc.AddSubscriber(*chain.input);
  chain.output->AddSubscriber(psink.input());
}

void BM_LintWideGraph(benchmark::State& state) {
  QueryGraph graph;
  BuildWideGraph(graph, static_cast<int>(state.range(0)));
  std::size_t diags = 0;
  for (auto _ : state) {
    diags += analysis::Lint(graph).size();
    benchmark::DoNotOptimize(diags);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(graph.size()));
  state.counters["nodes"] = static_cast<double>(graph.size());
}
BENCHMARK(BM_LintWideGraph)->Arg(4)->Arg(32)->Arg(128);

void BM_LintWorkloadGraphs(benchmark::State& state) {
  const analysis::LintSubject traffic = analysis::BuildTrafficLintGraph();
  const analysis::LintSubject nexmark = analysis::BuildNexmarkLintGraph();
  std::size_t diags = 0;
  for (auto _ : state) {
    diags += traffic.LintAll().size();
    diags += nexmark.LintAll().size();
    benchmark::DoNotOptimize(diags);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(traffic.graph->size() +
                                nexmark.graph->size()));
}
BENCHMARK(BM_LintWorkloadGraphs);

}  // namespace
