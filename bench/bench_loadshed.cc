// E6 — Adaptive memory management and load shedding.
//
// Paper claim: operators subscribe to a memory manager that assigns and
// redistributes the budget at runtime; when an operator hits its limit it
// sheds state with a load-shedding strategy, trading accuracy for bounded
// memory (approximate query answers).
//
// Harness: a windowed self-join whose exact state needs ~window elements
// per side, run under shrinking memory budgets. Counters: peak state bytes,
// shed elements, and recall = results under the budget / exact results.
//
// Expected shape: throughput holds or improves as the budget shrinks while
// recall degrades gracefully; memory stays below the budget.

#include <benchmark/benchmark.h>

#include "src/algebra/join.h"
#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/memory/memory_manager.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 20'000;
constexpr int kKeyDomain = 100;
constexpr Timestamp kWindow = 2000;

std::vector<StreamElement<int>> MakeStream(std::uint64_t seed) {
  Random rng(seed);
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>(
        static_cast<int>(rng.NextBounded(kKeyDomain)), i, i + kWindow));
  }
  return input;
}

int Identity(int v) { return v; }
int Combine(int a, int b) { return a * 1000 + b; }

std::uint64_t RunOnce(std::size_t budget_bytes, std::size_t* peak_bytes,
                      std::uint64_t* shed) {
  QueryGraph graph;
  auto& l = graph.Add<VectorSource<int>>(MakeStream(1));
  auto& r = graph.Add<VectorSource<int>>(MakeStream(2));
  auto& join = graph.Add(
      algebra::MakeHashJoin<int, int>(Identity, Identity, Combine));
  auto& sink = graph.Add<CountingSink<int>>();
  l.AddSubscriber(join.left());
  r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());

  memory::MemoryManager manager(budget_bytes,
                                std::make_unique<memory::UniformStrategy>());
  // MinMemoryBytes default is 1 KiB; the budget drives the assignment.
  PIPES_CHECK(manager.Register(join).ok());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 64);
  std::size_t peak = 0;
  while (driver.Step()) {
    peak = std::max(peak, join.MemoryUsage());
  }
  if (peak_bytes != nullptr) *peak_bytes = peak;
  if (shed != nullptr) *shed = join.shed_count();
  return sink.count();
}

std::uint64_t ExactResultCount() {
  static const std::uint64_t kExact =
      RunOnce(std::size_t{1} << 40, nullptr, nullptr);
  return kExact;
}

void BM_LoadShedding(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0)) * 1024;
  const std::uint64_t exact = ExactResultCount();
  std::uint64_t results = 0;
  std::size_t peak = 0;
  std::uint64_t shed = 0;
  for (auto _ : state) {
    results = RunOnce(budget, &peak, &shed);
    benchmark::DoNotOptimize(results);
  }
  state.counters["recall_pct"] = benchmark::Counter(
      100.0 * static_cast<double>(results) / static_cast<double>(exact));
  state.counters["peak_state_kb"] =
      benchmark::Counter(static_cast<double>(peak) / 1024.0);
  state.counters["shed_elements"] =
      benchmark::Counter(static_cast<double>(shed));
  state.SetItemsProcessed(state.iterations() * kElements * 2);
}

// Budgets in KiB: effectively-unbounded, then 256K, 64K, 16K.
BENCHMARK(BM_LoadShedding)
    ->Arg(1 << 20)
    ->Arg(256)
    ->Arg(64)
    ->Arg(16);

}  // namespace
