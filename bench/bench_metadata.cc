// E10 — Secondary-metadata overhead.
//
// Paper claim: nodes can be decorated with the desired metadata
// information (rates, selectivity, averages, variances, ...) and the
// composition can change at runtime — implying the estimators are cheap
// enough to run alongside the query.
//
// Harness: a filter chain of depth 8 with k of its nodes decorated with
// the full metric set, sampled once per scheduling step. Series: items/sec
// vs number of decorated nodes (0 = baseline).
//
// Expected shape: near-flat — decoration costs a few percent.

#include <benchmark/benchmark.h>

#include "src/algebra/map.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/metadata/monitor.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 100'000;
constexpr int kDepth = 8;

struct AddOne {
  int operator()(int v) const { return v + 1; }
};

void BM_MetadataDecoration(benchmark::State& state) {
  const int decorated = static_cast<int>(state.range(0));
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>::Point(i, i));
  }

  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    Source<int>* upstream = &source;
    std::vector<Node*> chain;
    for (int d = 0; d < kDepth; ++d) {
      auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
      upstream->AddSubscriber(map.input());
      upstream = &map;
      chain.push_back(&map);
    }
    auto& sink = graph.Add<CountingSink<int>>();
    upstream->AddSubscriber(sink.input());

    metadata::Monitor monitor;
    for (int d = 0; d < decorated; ++d) {
      monitor.Watch(*chain[static_cast<std::size_t>(d)],
                    {metadata::MetricKind::kInputRate,
                     metadata::MetricKind::kOutputRate,
                     metadata::MetricKind::kSelectivity,
                     metadata::MetricKind::kQueueSize,
                     metadata::MetricKind::kSubscriberCount});
    }

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    while (driver.Step()) {
      monitor.Sample();
    }
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}

}  // namespace

BENCHMARK(BM_MetadataDecoration)->Arg(0)->Arg(2)->Arg(4)->Arg(8);
