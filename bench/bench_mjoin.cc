// E4 — Multi-way joins (MJoin) vs. binary join trees.
//
// Paper claim: the join framework covers multi-way joins over streaming
// sources (Viglas et al.), which avoid materializing intermediate results
// between binary joins.
//
// Harness: n-way equi-join (n = 3, 4, 5) of window streams, executed
// (a) by one MultiwayJoin operator and (b) by a cascade of binary hash
// joins (for n = 3). Counters report result cardinality and retained state.
//
// Expected shape: comparable throughput at n = 3 with less retained state
// for the MJoin (no intermediate results); MJoin scales to n = 4, 5 where
// a cascade would materialize growing intermediates.

#include <benchmark/benchmark.h>

#include "src/algebra/join.h"
#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "src/sweeparea/multiway_join.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 10'000;
constexpr int kKeyDomain = 500;
constexpr Timestamp kWindow = 200;

std::vector<StreamElement<int>> KeyStream(std::uint64_t seed) {
  Random rng(seed);
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>(
        static_cast<int>(rng.NextBounded(kKeyDomain)), i, i + kWindow));
  }
  return input;
}

int Key(int v) { return v; }

void BM_MultiwayJoin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::vector<StreamElement<int>>> inputs;
  for (std::size_t i = 0; i < n; ++i) inputs.push_back(KeyStream(i + 1));

  std::uint64_t results = 0;
  std::size_t retained = 0;
  for (auto _ : state) {
    QueryGraph graph;
    auto& join = graph.Add<sweeparea::MultiwayJoin<int, decltype(&Key)>>(
        n, &Key);
    for (std::size_t i = 0; i < n; ++i) {
      auto& source = graph.Add<VectorSource<int>>(inputs[i]);
      source.AddSubscriber(join.input(i));
    }
    auto& sink = graph.Add<CountingSink<std::vector<int>>>();
    join.AddSubscriber(sink.input());
    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 64);
    driver.RunToCompletion();
    results = sink.count();
    retained = join.state_size();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] =
      benchmark::Counter(static_cast<double>(results));
  state.counters["final_state"] =
      benchmark::Counter(static_cast<double>(retained));
  state.SetItemsProcessed(state.iterations() * kElements * n);
}

// Binary cascade for the 3-way case: (A |x| B) |x| C with pair payloads.
void BM_BinaryCascade3Way(benchmark::State& state) {
  const auto a = KeyStream(1);
  const auto b = KeyStream(2);
  const auto c = KeyStream(3);

  std::uint64_t results = 0;
  for (auto _ : state) {
    QueryGraph graph;
    auto& sa = graph.Add<VectorSource<int>>(a);
    auto& sb = graph.Add<VectorSource<int>>(b);
    auto& sc = graph.Add<VectorSource<int>>(c);
    auto pair_combine = [](int l, int r) { return std::make_pair(l, r); };
    auto& join_ab = graph.Add(algebra::MakeHashJoin<int, int>(
        &Key, &Key, pair_combine, "ab"));
    auto pair_key = [](const std::pair<int, int>& p) { return p.first; };
    auto triple_combine = [](const std::pair<int, int>& p, int r) {
      return std::make_pair(p, r);
    };
    auto& join_abc = graph.Add(
        algebra::MakeHashJoin<std::pair<int, int>, int>(
            pair_key, &Key, triple_combine, "abc"));
    auto& sink =
        graph.Add<CountingSink<std::pair<std::pair<int, int>, int>>>();
    sa.AddSubscriber(join_ab.left());
    sb.AddSubscriber(join_ab.right());
    join_ab.AddSubscriber(join_abc.left());
    sc.AddSubscriber(join_abc.right());
    join_abc.AddSubscriber(sink.input());
    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 64);
    driver.RunToCompletion();
    results = sink.count();
    benchmark::DoNotOptimize(results);
  }
  state.counters["results"] =
      benchmark::Counter(static_cast<double>(results));
  state.SetItemsProcessed(state.iterations() * kElements * 3);
}

}  // namespace

BENCHMARK(BM_MultiwayJoin)->Arg(3)->Arg(4)->Arg(5);
BENCHMARK(BM_BinaryCascade3Way);
