// E5 — Multi-query optimization: sharing subplans across running queries.
//
// Paper claim: the rule-based optimizer extends multi-query optimization
// (Roy et al.) to stream processing — new query plans are probed against
// the running graph and grafted onto matching subplans via
// publish-subscribe, instead of being instantiated from scratch.
//
// Harness: N overlapping continuous queries (same windowed scan + filter,
// different aggregates) installed with sharing enabled vs disabled, then
// executed. Counters: operators instantiated and total tuples processed
// across all operators. Wall time covers execution of the whole graph.
//
// Expected shape: with sharing, operators and tuples grow ~O(1) extra per
// query; without sharing both grow linearly in N, and runtime follows.

#include <string>

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/cql/catalog.h"
#include "src/optimizer/plan_manager.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

constexpr int kElements = 20'000;

std::vector<StreamElement<Tuple>> MakeTrades() {
  Random rng(17);
  std::vector<StreamElement<Tuple>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<Tuple>::Point(
        Tuple{Value(static_cast<std::int64_t>(rng.NextBounded(20))),
              Value(rng.UniformDouble(1, 100))},
        i * 10));
  }
  return input;
}

// A family of overlapping queries: identical scan/window/filter, varying
// aggregate / grouping tail.
std::string QueryText(int i) {
  static const char* kTails[] = {
      "MAX(price) AS v", "MIN(price) AS v", "AVG(price) AS v",
      "SUM(price) AS v", "COUNT(*) AS v"};
  return std::string("SELECT symbol, ") + kTails[i % 5] +
         " FROM trades [RANGE 10 SECONDS SLIDE 1 SECONDS] WHERE price > 25 "
         "GROUP BY symbol";
}

void RunMqo(benchmark::State& state, bool sharing) {
  const int num_queries = static_cast<int>(state.range(0));
  const auto input = MakeTrades();
  std::size_t created = 0;
  std::uint64_t tuples = 0;
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<Tuple>>(input, "trades");
    cql::Catalog catalog;
    PIPES_CHECK(catalog
                    .RegisterStream(
                        "trades",
                        Schema({{"symbol", ValueType::kInt},
                                {"price", ValueType::kDouble}}),
                        &source, /*rate_hint=*/100.0)
                    .ok());
    optimizer::PlanManager manager(&graph, &catalog, sharing);
    for (int q = 0; q < num_queries; ++q) {
      auto installed = manager.InstallQuery(QueryText(q));
      PIPES_CHECK_MSG(installed.ok(), installed.status().ToString().c_str());
      auto& sink = graph.Add<CountingSink<Tuple>>();
      installed->output->AddSubscriber(sink.input());
    }
    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    driver.RunToCompletion();

    created = manager.total_operators_created();
    tuples = 0;
    for (const Node* node : graph.nodes()) tuples += node->elements_in();
    benchmark::DoNotOptimize(tuples);
  }
  state.counters["operators"] =
      benchmark::Counter(static_cast<double>(created));
  state.counters["tuples_processed"] =
      benchmark::Counter(static_cast<double>(tuples));
  state.SetItemsProcessed(state.iterations() * kElements);
}

void BM_SharedQueries(benchmark::State& state) { RunMqo(state, true); }
void BM_UnsharedQueries(benchmark::State& state) { RunMqo(state, false); }

}  // namespace

BENCHMARK(BM_SharedQueries)->Arg(1)->Arg(4)->Arg(16)->Arg(32);
BENCHMARK(BM_UnsharedQueries)->Arg(1)->Arg(4)->Arg(16)->Arg(32);
