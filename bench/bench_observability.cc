// B2 — Observability overhead.
//
// The metrics layer promises to be cheap enough to leave on in production:
// relaxed-atomic counters, a sampled (1-in-16) latency histogram behind a
// runtime flag, and a trace ring whose off-cost is one relaxed load. This
// bench replicates the B1 filter -> map -> union -> buffer chain and runs
// it in three modes — observability off, metrics on, metrics + tracing on —
// so the elements/sec deltas ARE the overhead. The acceptance budget is
// <3% for metrics-on vs off. A fourth bench times CaptureSnapshot itself.
//
// This binary has its own main (unlike the other benches): `--smoke` runs
// each mode once, prints the throughput ratio, and exits non-zero if the
// chain miscounts — cheap enough for CI. Anything else falls through to the
// normal google-benchmark driver.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/algebra/union.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/metrics.h"
#include "src/core/sink.h"
#include "src/core/trace.h"
#include "src/metadata/snapshot.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 100'000;

std::vector<StreamElement<int>> MakeInput() {
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>::Point(i, i));
  }
  return input;
}

struct KeepMost {
  bool operator()(int v) const { return v % 8 != 0; }
};
struct AddOne {
  int operator()(int v) const { return v + 1; }
};

/// Builds and drains one B1 chain; returns the sink count.
std::uint64_t RunChain(const std::vector<StreamElement<int>>& left,
                       const std::vector<StreamElement<int>>& right,
                       std::size_t batch) {
  QueryGraph graph;
  auto& sa = graph.Add<VectorSource<int>>(left, "left", batch);
  auto& sb = graph.Add<VectorSource<int>>(right, "right", batch);
  auto& filter = graph.Add<algebra::Filter<int, KeepMost>>(KeepMost{});
  auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
  auto& u = graph.Add<algebra::Union<int>>();
  auto& buffer = graph.Add<Buffer<int>>();
  auto& sink = graph.Add<CountingSink<int>>();
  sa.AddSubscriber(filter.input());
  filter.AddSubscriber(map.input());
  map.AddSubscriber(u.left());
  sb.AddSubscriber(u.right());
  u.AddSubscriber(buffer.input());
  buffer.AddSubscriber(sink.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy,
                                          /*batch_size=*/1024);
  driver.RunToCompletion();
  return sink.count();
}

enum class Mode { kOff, kMetrics, kMetricsAndTrace };

void ApplyMode(Mode mode) {
  obs::SetMetricsEnabled(mode != Mode::kOff);
  trace::SetEnabled(mode == Mode::kMetricsAndTrace);
  trace::GlobalRing().Clear();
}

void BM_Chain(benchmark::State& state, Mode mode) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto left = MakeInput();
  const auto right = MakeInput();
  ApplyMode(mode);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunChain(left, right, batch));
  }
  ApplyMode(Mode::kOff);
  state.SetItemsProcessed(state.iterations() * 2 * kElements);
}

void BM_ChainObservabilityOff(benchmark::State& state) {
  BM_Chain(state, Mode::kOff);
}
void BM_ChainMetricsOn(benchmark::State& state) {
  BM_Chain(state, Mode::kMetrics);
}
void BM_ChainMetricsAndTraceOn(benchmark::State& state) {
  BM_Chain(state, Mode::kMetricsAndTrace);
}

// Cost of reading the counters: capture a snapshot of a drained 7-node
// graph (the walker itself, not the workload).
void BM_CaptureSnapshot(benchmark::State& state) {
  const auto left = MakeInput();
  const auto right = MakeInput();
  QueryGraph graph;
  auto& sa = graph.Add<VectorSource<int>>(left, "left", 64);
  auto& filter = graph.Add<algebra::Filter<int, KeepMost>>(KeepMost{});
  auto& sink = graph.Add<CountingSink<int>>();
  sa.AddSubscriber(filter.input());
  filter.AddSubscriber(sink.input());
  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 1024);
  driver.RunToCompletion();
  for (auto _ : state) {
    benchmark::DoNotOptimize(metadata::CaptureSnapshot(graph));
  }
}

// --- --smoke mode -----------------------------------------------------------

/// Drains the chain `reps` times under `mode`, returns elements/sec.
double MeasureMode(Mode mode, int reps,
                   const std::vector<StreamElement<int>>& left,
                   const std::vector<StreamElement<int>>& right) {
  ApplyMode(mode);
  constexpr std::uint64_t kExpected =
      // Left input loses every 8th element to the filter; right passes raw.
      static_cast<std::uint64_t>(kElements - kElements / 8) + kElements;
  const std::int64_t t0 = obs::SteadyNowNs();
  for (int r = 0; r < reps; ++r) {
    if (RunChain(left, right, /*batch=*/64) != kExpected) {
      std::fprintf(stderr, "smoke: wrong sink count under mode %d\n",
                   static_cast<int>(mode));
      std::exit(1);
    }
  }
  const std::int64_t t1 = obs::SteadyNowNs();
  ApplyMode(Mode::kOff);
  return static_cast<double>(reps) * 2 * kElements /
         (static_cast<double>(t1 - t0) / 1e9);
}

int RunSmoke() {
  const auto left = MakeInput();
  const auto right = MakeInput();
  // Warm up allocators and caches once.
  MeasureMode(Mode::kOff, 1, left, right);
  const int reps = 5;
  const double off = MeasureMode(Mode::kOff, reps, left, right);
  const double metrics = MeasureMode(Mode::kMetrics, reps, left, right);
  const double traced = MeasureMode(Mode::kMetricsAndTrace, reps, left, right);
  std::printf("observability smoke (%d reps of 200k elements):\n", reps);
  std::printf("  off            %12.0f el/s\n", off);
  std::printf("  metrics        %12.0f el/s  (%.1f%% of off)\n", metrics,
              100.0 * metrics / off);
  std::printf("  metrics+trace  %12.0f el/s  (%.1f%% of off)\n", traced,
              100.0 * traced / off);
  // Smoke asserts correctness, not the <3% budget: single-run timings in a
  // noisy CI container are not stable enough to gate on.
  return 0;
}

}  // namespace

BENCHMARK(BM_ChainObservabilityOff)->Arg(1)->Arg(64)->Arg(512);
BENCHMARK(BM_ChainMetricsOn)->Arg(1)->Arg(64)->Arg(512);
BENCHMARK(BM_ChainMetricsAndTraceOn)->Arg(1)->Arg(64)->Arg(512);
BENCHMARK(BM_CaptureSnapshot);

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
