// E-parallel — Keyed data-parallel scaling.
//
// Replicates a grouped-aggregation chain and a keyed equi-join through
// `Partition` / `Merge` (src/algebra/parallel.h) at 1/2/4/8 partitions and
// measures end-to-end throughput under the layer-3 `ThreadScheduler`, one
// worker per replica chain plus one for source/split/merge
// (`ParallelTopology::PinnedAssignment`). The p=1 baseline pays the same
// split/merge overhead, so the ratios isolate scaling, not plumbing.
//
// This binary has its own main (like bench_observability): `--smoke` runs
// every configuration once on a small input and exits non-zero unless each
// partitioned plan produces exactly as many elements as its single-replica
// form — cheap enough for CI. Anything else falls through to the normal
// google-benchmark driver.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/algebra/aggregate.h"
#include "src/algebra/parallel.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kKeys = 4096;

/// Start-ordered stream: one element per tick, round-robin over keys, each
/// valid for `duration` ticks — so ~duration/kKeys elements per key overlap
/// and the sweep-line / SweepArea state stays populated.
std::vector<StreamElement<int>> MakeInput(int count, Timestamp duration) {
  std::vector<StreamElement<int>> input;
  input.reserve(count);
  for (int i = 0; i < count; ++i) {
    input.push_back(StreamElement<int>(i % kKeys, i, i + duration));
  }
  return input;
}

struct KeyOf {
  int operator()(int v) const { return v; }
};

/// Aggregate input with deliberate CPU weight (a few mixing rounds), the
/// stand-in for a non-trivial per-element computation; without it the
/// bench measures the ConcurrentBuffer handoff, not operator scaling.
struct MixValue {
  std::int64_t operator()(int v) const {
    std::uint64_t x = static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ull;
    for (int i = 0; i < 64; ++i) {
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdull;
    }
    return static_cast<std::int64_t>(x & 0xffff);
  }
};

struct CombineSum {
  long operator()(int a, int b) const {
    return MixValue{}(a) + MixValue{}(b);
  }
};

using GroupedSum =
    algebra::GroupedAggregate<int, algebra::SumAgg<std::int64_t>, KeyOf,
                              MixValue>;

std::uint64_t RunGroupedAgg(const std::vector<StreamElement<int>>& input,
                            std::size_t partitions) {
  QueryGraph graph;
  auto& source =
      graph.Add<VectorSource<int>>(input, "source", /*batch_size=*/256);
  auto chain = algebra::MakeKeyedParallel<GroupedSum>(graph, partitions,
                                                      KeyOf{}, KeyOf{},
                                                      MixValue{});
  auto& sink = graph.Add<CountingSink<GroupedSum::Output>>();
  source.AddSubscriber(*chain.input);
  chain.output->AddSubscriber(sink.input());

  const int num_threads = static_cast<int>(partitions) + 1;
  scheduler::ThreadScheduler driver(
      graph, num_threads,
      [] { return std::make_unique<scheduler::RoundRobinStrategy>(); },
      chain.PinnedAssignment(graph, num_threads),
      /*batch_size=*/256);
  driver.RunToCompletion();
  return sink.count();
}

std::uint64_t RunKeyedJoin(const std::vector<StreamElement<int>>& left,
                           const std::vector<StreamElement<int>>& right,
                           std::size_t partitions) {
  QueryGraph graph;
  auto& sl = graph.Add<VectorSource<int>>(left, "left", /*batch_size=*/256);
  auto& sr = graph.Add<VectorSource<int>>(right, "right", /*batch_size=*/256);
  auto chain = algebra::MakeParallelHashJoin<int, int>(
      graph, partitions, KeyOf{}, KeyOf{}, CombineSum{});
  auto& sink = graph.Add<CountingSink<long>>();
  sl.AddSubscriber(*chain.left);
  sr.AddSubscriber(*chain.right);
  chain.output->AddSubscriber(sink.input());

  const int num_threads = static_cast<int>(partitions) + 1;
  scheduler::ThreadScheduler driver(
      graph, num_threads,
      [] { return std::make_unique<scheduler::RoundRobinStrategy>(); },
      chain.PinnedAssignment(graph, num_threads),
      /*batch_size=*/256);
  driver.RunToCompletion();
  return sink.count();
}

void BM_ParallelGroupedAgg(benchmark::State& state) {
  const auto partitions = static_cast<std::size_t>(state.range(0));
  const auto input = MakeInput(/*count=*/200'000, /*duration=*/8192);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunGroupedAgg(input, partitions));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(input.size()));
}

void BM_ParallelKeyedJoin(benchmark::State& state) {
  const auto partitions = static_cast<std::size_t>(state.range(0));
  const auto left = MakeInput(/*count=*/100'000, /*duration=*/4096);
  const auto right = MakeInput(/*count=*/100'000, /*duration=*/4096);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunKeyedJoin(left, right, partitions));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(left.size() +
                                                    right.size()));
}

BENCHMARK(BM_ParallelGroupedAgg)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelKeyedJoin)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// CI sanity: every partition count must produce exactly the element count
/// of the single-replica plan (the equivalence *property* lives in
/// tests/parallel_equivalence_test.cc; this guards the bench configs
/// themselves).
int RunSmoke() {
  const auto agg_input = MakeInput(/*count=*/20'000, /*duration=*/1024);
  const auto join_left = MakeInput(/*count=*/5'000, /*duration=*/512);
  const auto join_right = MakeInput(/*count=*/5'000, /*duration=*/512);
  const std::uint64_t agg_expected = RunGroupedAgg(agg_input, 1);
  const std::uint64_t join_expected =
      RunKeyedJoin(join_left, join_right, 1);
  int failures = 0;
  for (std::size_t p : {2u, 4u, 8u}) {
    const std::uint64_t agg = RunGroupedAgg(agg_input, p);
    const std::uint64_t join = RunKeyedJoin(join_left, join_right, p);
    std::printf("smoke p=%zu: grouped-agg %llu (want %llu), join %llu "
                "(want %llu)\n",
                p, static_cast<unsigned long long>(agg),
                static_cast<unsigned long long>(agg_expected),
                static_cast<unsigned long long>(join),
                static_cast<unsigned long long>(join_expected));
    if (agg != agg_expected) ++failures;
    if (join != join_expected) ++failures;
  }
  if (failures > 0) {
    std::fprintf(stderr, "bench_parallel smoke: %d mismatches\n", failures);
    return 1;
  }
  std::printf("bench_parallel smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
