// E1 — Queue-less publish-subscribe connections.
//
// Paper claim: connecting operators directly through the publish-subscribe
// architecture needs no inter-operator queues and yields a "substantial
// overhead reduction".
//
// Harness: an operator chain of depth d (map -> map -> ...) over 100k
// elements, connected (a) directly and (b) with a Buffer on every edge
// (drained by the scheduler, as queue-based engines do). Series: items/sec
// vs chain depth for both variants.

#include <benchmark/benchmark.h>

#include "src/algebra/map.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/executor.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 100'000;

std::vector<StreamElement<int>> MakeInput() {
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>::Point(i, i));
  }
  return input;
}

struct AddOne {
  int operator()(int v) const { return v + 1; }
};

void BM_DirectChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto input = MakeInput();
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    Source<int>* upstream = &source;
    for (int d = 0; d < depth; ++d) {
      auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
      upstream->AddSubscriber(map.input());
      upstream = &map;
    }
    auto& sink = graph.Add<CountingSink<int>>();
    upstream->AddSubscriber(sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    driver.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}

void BM_QueuedChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto input = MakeInput();
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    Source<int>* upstream = &source;
    for (int d = 0; d < depth; ++d) {
      auto& buffer = graph.Add<Buffer<int>>();
      upstream->AddSubscriber(buffer.input());
      auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
      buffer.AddSubscriber(map.input());
      upstream = &map;
    }
    auto& sink = graph.Add<CountingSink<int>>();
    upstream->AddSubscriber(sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    driver.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}

// Thread-safe queues on every edge (what a thread-per-operator engine pays
// even on one thread).
void BM_ConcurrentQueuedChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto input = MakeInput();
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input);
    Source<int>* upstream = &source;
    for (int d = 0; d < depth; ++d) {
      auto& buffer = graph.Add<ConcurrentBuffer<int>>();
      upstream->AddSubscriber(buffer.input());
      auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
      buffer.AddSubscriber(map.input());
      upstream = &map;
    }
    auto& sink = graph.Add<CountingSink<int>>();
    upstream->AddSubscriber(sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    driver.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}

// Direct chain with the source emitting `TransferBatch` runs: batch = 1 is
// the per-element pub-sub path measured above, batch = 64 amortizes the
// per-element virtual call + watermark merge — the before/after number for
// the paper's overhead-reduction claim in one binary.
void BM_DirectChainBatched(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto input = MakeInput();
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input, "source", batch);
    Source<int>* upstream = &source;
    for (int d = 0; d < depth; ++d) {
      auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
      upstream->AddSubscriber(map.input());
      upstream = &map;
    }
    auto& sink = graph.Add<CountingSink<int>>();
    upstream->AddSubscriber(sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 256);
    driver.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}

// The direct chain under the pipe executor, depth swept to 64: each edge
// stages columnar runs that the work queue delivers iteratively, so the
// cost of one element crossing one edge must stay flat as the chain grows
// (no per-depth recursion penalty, bounded stack at any depth). The
// `hops_per_second` counter is elements × depth / sec — the flat number;
// `items_per_second` stays end-to-end elements/sec like the other series.
void BM_ExecutorChain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  const auto input = MakeInput();
  for (auto _ : state) {
    QueryGraph graph;
    auto& source = graph.Add<VectorSource<int>>(input, "source", batch);
    Source<int>* upstream = &source;
    for (int d = 0; d < depth; ++d) {
      auto& map = graph.Add<algebra::Map<int, int, AddOne>>(AddOne{});
      upstream->AddSubscriber(map.input());
      upstream = &map;
    }
    auto& sink = graph.Add<CountingSink<int>>();
    upstream->AddSubscriber(sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::PipeExecutor executor(graph, strategy, 256);
    executor.RunToCompletion();
    benchmark::DoNotOptimize(sink.count());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.counters["hops_per_second"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kElements * depth,
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_DirectChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_QueuedChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_ConcurrentQueuedChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(BM_DirectChainBatched)
    ->Args({1, 1})
    ->Args({1, 64})
    ->Args({4, 1})
    ->Args({4, 64})
    ->Args({8, 1})
    ->Args({8, 64});
BENCHMARK(BM_ExecutorChain)
    ->Args({4, 64})
    ->Args({8, 64})
    ->Args({16, 64})
    ->Args({32, 64})
    ->Args({64, 64});
