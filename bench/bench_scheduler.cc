// E2 — Scheduling strategies compared within one uniform framework.
//
// Paper claim: the 3-layer scheduling framework is "powerful enough to
// compare most of the recent scheduling techniques in stream processing
// within a uniform framework".
//
// Harness: three query chains with very different selectivities share one
// scheduler; each strategy drains the same bursty workload. Reported
// counters: peak total queue memory (Chain's objective) and mean queue
// occupancy; wall time covers total overhead.
//
// Expected shape: Chain minimizes peak/mean queue occupancy; longest-queue
// and round-robin sit in between; FIFO (drain sources first) is worst on
// memory.

#include <memory>

#include <benchmark/benchmark.h>

#include "src/algebra/filter.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElementsPerChain = 30'000;

struct ChainSpec {
  int modulus;  // filter keeps 1 in `modulus`
};

void RunWithStrategy(benchmark::State& state,
                     scheduler::Strategy& strategy) {
  const ChainSpec chains[] = {{1}, {10}, {1000}};
  std::size_t peak = 0;
  double mean_queue = 0;
  for (auto _ : state) {
    QueryGraph graph;
    for (const ChainSpec& spec : chains) {
      std::vector<StreamElement<int>> input;
      input.reserve(kElementsPerChain);
      for (int i = 0; i < kElementsPerChain; ++i) {
        input.push_back(StreamElement<int>::Point(i, i));
      }
      auto& source = graph.Add<VectorSource<int>>(std::move(input));
      auto& buffer = graph.Add<Buffer<int>>();
      const int modulus = spec.modulus;
      auto pred = [modulus](int v) { return v % modulus == 0; };
      auto& filter =
          graph.Add<algebra::Filter<int, decltype(pred)>>(pred);
      auto& sink = graph.Add<CountingSink<int>>();
      source.AddSubscriber(buffer.input());
      buffer.AddSubscriber(filter.input());
      filter.AddSubscriber(sink.input());
    }
    scheduler::SingleThreadScheduler driver(graph, strategy,
                                            /*batch_size=*/64);
    const scheduler::RunStats stats = driver.RunToCompletion();
    peak = std::max(peak, stats.peak_total_queue);
    mean_queue = static_cast<double>(stats.accumulated_queue) /
                 static_cast<double>(stats.iterations);
  }
  state.counters["peak_queue"] =
      benchmark::Counter(static_cast<double>(peak));
  state.counters["mean_queue"] = benchmark::Counter(mean_queue);
  state.SetItemsProcessed(state.iterations() * kElementsPerChain * 3);
}

void BM_Scheduler(benchmark::State& state) {
  std::unique_ptr<scheduler::Strategy> strategy;
  switch (state.range(0)) {
    case 0:
      strategy = std::make_unique<scheduler::FifoStrategy>();
      break;
    case 1:
      strategy = std::make_unique<scheduler::RoundRobinStrategy>();
      break;
    case 2:
      strategy = std::make_unique<scheduler::LongestQueueStrategy>();
      break;
    case 3:
      strategy = std::make_unique<scheduler::ChainStrategy>();
      break;
    case 4:
      strategy = std::make_unique<scheduler::RateBasedStrategy>();
      break;
    default:
      strategy = std::make_unique<scheduler::RandomStrategy>(42);
      break;
  }
  state.SetLabel(strategy->name());
  RunWithStrategy(state, *strategy);
}

}  // namespace

BENCHMARK(BM_Scheduler)->DenseRange(0, 5, 1);
