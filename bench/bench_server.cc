// E5 at serving scale — multi-tenant register/cancel storms through the
// `pipes::Engine` facade and its TCP front end.
//
// Claim under test: because registration grafts onto the shared live graph
// (multi-query optimization) and cancellation removes only the unshared
// suffix, a storm of overlapping continuous queries keeps the operator
// count ~flat — O(1) extra operators per query (its private result sink) —
// while the unshared baseline grows linearly. Registration stays cheap at
// ≥1000 live queries, and none of it quiesces the stream.
//
// Benchmarks:
//   BM_RegisterCancelStorm/N      N engine-level register+cancel pairs per
//     (shared|unshared)           iteration; counters expose operators
//                                 created/reused and peak graph size.
//   BM_ChurnWhileStreaming/N      same churn with tuples flowing and the
//                                 executor pumping between registrations —
//                                 the cancel-never-quiesces path.
//   BM_ServerRegisterStorm/N      the storm through a real loopback client
//                                 (framing, socket round-trips, tenant
//                                 bookkeeping included). Skips when the
//                                 sandbox refuses listeners.

#include <string>

#include <benchmark/benchmark.h>

#include "src/engine/engine.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace {

using namespace pipes;  // NOLINT
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;

Schema TradesSchema() {
  return Schema({{"symbol", ValueType::kInt},
                 {"price", ValueType::kDouble}});
}

// A family of overlapping queries: identical scan/window/filter, varying
// aggregate tail — the E5 sharing workload.
std::string QueryText(int i) {
  static const char* kTails[] = {
      "MAX(price) AS v", "MIN(price) AS v", "AVG(price) AS v",
      "SUM(price) AS v", "COUNT(*) AS v"};
  return std::string("SELECT symbol, ") + kTails[i % 5] +
         " FROM trades [RANGE 10 SECONDS SLIDE 1 SECONDS] WHERE price > 25 "
         "GROUP BY symbol";
}

void RunStorm(benchmark::State& state, bool sharing) {
  const int num_queries = static_cast<int>(state.range(0));
  std::size_t created = 0;
  std::size_t reused = 0;
  std::size_t peak_nodes = 0;
  for (auto _ : state) {
    engine::EngineOptions options;
    options.sharing = sharing;
    engine::Engine engine(options);
    auto writer = engine.AddStream("trades", TradesSchema(), 100.0);
    PIPES_CHECK(writer.ok());

    std::vector<engine::QueryHandle> handles;
    handles.reserve(static_cast<std::size_t>(num_queries));
    for (int q = 0; q < num_queries; ++q) {
      auto handle = engine.Register(QueryText(q),
                                    {.tenant = "t" + std::to_string(q % 8)});
      PIPES_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());
      handles.push_back(*handle);
    }
    const engine::EngineStats stats = engine.stats();
    created = stats.operators_created;
    reused = stats.operators_reused;
    peak_nodes = stats.graph_nodes;
    for (auto& handle : handles) {
      PIPES_CHECK(handle.Cancel().ok());
    }
    benchmark::DoNotOptimize(engine.stats().graph_nodes);
  }
  state.counters["operators"] =
      benchmark::Counter(static_cast<double>(created));
  state.counters["operators_reused"] =
      benchmark::Counter(static_cast<double>(reused));
  state.counters["peak_graph_nodes"] =
      benchmark::Counter(static_cast<double>(peak_nodes));
  // One "item" = one register or cancel round-trip through the engine.
  state.SetItemsProcessed(state.iterations() * num_queries * 2);
}

void BM_RegisterCancelStormShared(benchmark::State& state) {
  RunStorm(state, true);
}
void BM_RegisterCancelStormUnshared(benchmark::State& state) {
  RunStorm(state, false);
}

// Churn with data in flight: a resident query must keep its stream exact
// while others come and go around it.
void BM_ChurnWhileStreaming(benchmark::State& state) {
  const int churn = static_cast<int>(state.range(0));
  std::uint64_t resident_results = 0;
  for (auto _ : state) {
    engine::Engine engine;
    auto writer = engine.AddStream("trades", TradesSchema(), 100.0);
    PIPES_CHECK(writer.ok());
    auto resident = engine.Register(QueryText(0));
    PIPES_CHECK(resident.ok());

    Timestamp now = 0;
    for (int q = 0; q < churn; ++q) {
      auto handle = engine.Register(QueryText(q % 5));
      PIPES_CHECK(handle.ok());
      for (int i = 0; i < 20; ++i) {
        PIPES_CHECK(writer
                        ->Push(Tuple{Value(static_cast<std::int64_t>(i % 4)),
                                     Value(30.0 + i)},
                               now)
                        .ok());
        now += 100;
      }
      engine.Pump(256);
      PIPES_CHECK(handle->Cancel().ok());
    }
    PIPES_CHECK(writer->Close().ok());
    engine.RunToCompletion();
    resident_results = resident->results_delivered();
    benchmark::DoNotOptimize(resident_results);
  }
  state.counters["resident_results"] =
      benchmark::Counter(static_cast<double>(resident_results));
  state.SetItemsProcessed(state.iterations() * churn * 2);
}

// The same storm through a real client connection: socket round-trips,
// framing, per-tenant bookkeeping, server-side handle tables.
void BM_ServerRegisterStorm(benchmark::State& state) {
  const int num_queries = static_cast<int>(state.range(0));

  engine::Engine engine;
  auto writer = engine.AddStream("trades", TradesSchema(), 100.0);
  PIPES_CHECK(writer.ok());
  server::PipesServer server(engine);
  if (!server.Start().ok()) {
    state.SkipWithError("no loopback sockets in this environment");
    return;
  }
  auto client = server::Client::Connect("127.0.0.1", server.port(), "bench");
  if (!client.ok()) {
    server.Stop();
    state.SkipWithError("loopback connect failed");
    return;
  }

  for (auto _ : state) {
    std::vector<std::uint64_t> ids;
    ids.reserve(static_cast<std::size_t>(num_queries));
    for (int q = 0; q < num_queries; ++q) {
      auto registered = client->Register(QueryText(q));
      PIPES_CHECK_MSG(registered.ok(),
                      registered.status().ToString().c_str());
      ids.push_back(registered->query_id);
    }
    for (const std::uint64_t id : ids) {
      PIPES_CHECK(client->Cancel(id).ok());
    }
  }
  state.counters["operators"] = benchmark::Counter(
      static_cast<double>(engine.stats().operators_created));
  state.SetItemsProcessed(state.iterations() * num_queries * 2);

  client->Close();
  server.Stop();
}

}  // namespace

// The shared storm must stay flat out past a thousand live queries; the
// unshared baseline is capped where its linear growth already shows.
BENCHMARK(BM_RegisterCancelStormShared)->Arg(16)->Arg(256)->Arg(1024);
BENCHMARK(BM_RegisterCancelStormUnshared)->Arg(16)->Arg(64);
BENCHMARK(BM_ChurnWhileStreaming)->Arg(16)->Arg(64);
BENCHMARK(BM_ServerRegisterStorm)->Arg(16)->Arg(256);
