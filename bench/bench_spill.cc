// E11 — Lossless spill-to-disk state tier (docs/memory.md).
//
// Claim under test: a windowed equi-join whose SweepArea state exceeds the
// RAM budget by 10x-100x sustains throughput by paging cold partitions to
// disk as sorted runs — at 100% recall, unlike load shedding (E6) which
// buys the same bound by dropping results.
//
// Harness: the E6 windowed self-join shape, but on the spillable join and
// swept across budgets of ~1x, ~1/10x and ~1/100x of peak exact state.
// Counters: recall (must stay 100), peak RAM vs the budget, peak disk, and
// run count. Every iteration (smoke included) hard-fails on recall loss or
// any shed element: losing results here is a correctness bug, not a
// performance data point.
//
// Expected shape: items/s degrades gently as the budget shrinks (sequential
// run I/O plus deferred-probe merges), recall_pct pins at 100, and
// peak_ram_kb tracks the budget while peak_disk_kb absorbs the rest.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/algebra/join.h"
#include "src/common/macros.h"
#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace {

using namespace pipes;  // NOLINT

constexpr int kElements = 20'000;
constexpr int kKeyDomain = 100;
constexpr Timestamp kWindow = 2000;

std::vector<StreamElement<int>> MakeStream(std::uint64_t seed) {
  Random rng(seed);
  std::vector<StreamElement<int>> input;
  input.reserve(kElements);
  for (int i = 0; i < kElements; ++i) {
    input.push_back(StreamElement<int>(
        static_cast<int>(rng.NextBounded(kKeyDomain)), i, i + kWindow));
  }
  return input;
}

int Identity(int v) { return v; }
int Combine(int a, int b) { return a * 1000 + b; }

struct SpillRunStats {
  std::uint64_t results = 0;
  std::size_t peak_ram = 0;
  std::size_t peak_disk = 0;
  std::uint64_t peak_runs = 0;
  std::uint64_t shed = 0;
};

SpillRunStats RunOnce(std::size_t budget_bytes) {
  QueryGraph graph;
  auto& l = graph.Add<VectorSource<int>>(MakeStream(1));
  auto& r = graph.Add<VectorSource<int>>(MakeStream(2));
  auto& join = graph.Add(
      algebra::MakeSpillableHashJoin<int, int>(Identity, Identity, Combine));
  auto& sink = graph.Add<CountingSink<int>>();
  l.AddSubscriber(join.left());
  r.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());
  join.SetMemoryLimit(budget_bytes);

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 64);
  SpillRunStats stats;
  while (driver.Step()) {
    stats.peak_ram = std::max(stats.peak_ram, join.MemoryUsage());
    stats.peak_disk = std::max<std::size_t>(stats.peak_disk, join.DiskUsage());
    stats.peak_runs =
        std::max<std::uint64_t>(stats.peak_runs, join.SpilledPartitions());
  }
  stats.results = sink.count();
  stats.shed = join.ShedCount();
  return stats;
}

std::uint64_t ExactResultCount() {
  static const std::uint64_t kExact =
      RunOnce(std::size_t{1} << 40).results;
  return kExact;
}

// Peak exact state is ~2 * window elements * ~56 B/element per side; the
// sweep expresses budgets as fractions of that measured-once figure.
std::size_t PeakExactStateBytes() {
  static const std::size_t kPeak = RunOnce(std::size_t{1} << 40).peak_ram;
  return kPeak;
}

void BM_SpillJoin(benchmark::State& state) {
  const auto state_over_budget = static_cast<std::size_t>(state.range(0));
  const std::size_t budget =
      std::max<std::size_t>(PeakExactStateBytes() / state_over_budget, 4096);
  const std::uint64_t exact = ExactResultCount();
  SpillRunStats stats;
  for (auto _ : state) {
    stats = RunOnce(budget);
    benchmark::DoNotOptimize(stats.results);
    PIPES_CHECK(stats.results == exact);  // the spill tier is lossless
    PIPES_CHECK(stats.shed == 0);
  }
  state.counters["recall_pct"] = benchmark::Counter(
      100.0 * static_cast<double>(stats.results) / static_cast<double>(exact));
  state.counters["budget_kb"] =
      benchmark::Counter(static_cast<double>(budget) / 1024.0);
  state.counters["peak_ram_kb"] =
      benchmark::Counter(static_cast<double>(stats.peak_ram) / 1024.0);
  state.counters["peak_disk_kb"] =
      benchmark::Counter(static_cast<double>(stats.peak_disk) / 1024.0);
  state.counters["peak_runs"] =
      benchmark::Counter(static_cast<double>(stats.peak_runs));
  state.counters["shed_elements"] =
      benchmark::Counter(static_cast<double>(stats.shed));
  state.SetItemsProcessed(state.iterations() * kElements * 2);
}

// State-to-budget ratios: 1x (all resident), 10x and 100x (disk-backed).
BENCHMARK(BM_SpillJoin)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
