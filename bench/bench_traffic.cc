// E8 — The traffic-management demo scenario end to end.
//
// Paper demo: continuous queries over FSP-style loop-detector streams —
// hourly HOV speed averages and sustained sub-threshold segment speeds
// (congestion/incident indicator).
//
// Harness: the full CQL pipeline (compile -> optimize -> instantiate ->
// execute) over a generated day of traffic, measuring end-to-end reading
// throughput; a counter verifies the incident is detected (alert segments
// at the incident detector during the incident window).

#include <optional>

#include <benchmark/benchmark.h>

#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/cql/catalog.h"
#include "src/optimizer/plan_manager.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/traffic.h"

namespace {

using namespace pipes;  // NOLINT
using relational::Schema;
using relational::Tuple;
using relational::Value;
using relational::ValueType;
using workloads::TrafficGenerator;
using workloads::TrafficIncident;
using workloads::TrafficOptions;
using workloads::TrafficReading;

Schema TrafficSchema() {
  return Schema({{"detector", ValueType::kInt},
                 {"lane", ValueType::kInt},
                 {"direction", ValueType::kInt},
                 {"speed", ValueType::kDouble}});
}

TrafficOptions BenchOptions() {
  TrafficOptions options;
  options.num_detectors = 8;
  options.num_lanes = 3;
  options.duration_ms = 2ll * 3600 * 1000;  // two hours
  options.base_rate_per_s = 0.1;
  TrafficIncident incident;
  incident.begin = 1800'000;
  incident.end = 3600'000;
  incident.detector = 5;
  incident.direction = 0;
  incident.speed_factor = 0.25;
  options.incidents = {incident};
  return options;
}

void BM_TrafficQueries(benchmark::State& state) {
  std::uint64_t readings = 0;
  std::uint64_t alerts = 0;
  for (auto _ : state) {
    TrafficGenerator generator(BenchOptions());
    QueryGraph graph;
    std::uint64_t produced = 0;
    auto& source = graph.Add<FunctionSource<Tuple>>(
        [&]() -> std::optional<StreamElement<Tuple>> {
          auto r = generator.Next();
          if (!r.has_value()) return std::nullopt;
          ++produced;
          return StreamElement<Tuple>::Point(
              Tuple{Value(static_cast<std::int64_t>(r->detector)),
                    Value(static_cast<std::int64_t>(r->lane)),
                    Value(static_cast<std::int64_t>(r->direction)),
                    Value(r->speed_kmh)},
              r->timestamp);
        },
        "traffic");
    cql::Catalog catalog;
    PIPES_CHECK(
        catalog.RegisterStream("traffic", TrafficSchema(), &source, 50.0)
            .ok());
    optimizer::PlanManager manager(&graph, &catalog);

    auto q1 = manager.InstallQuery(
        "SELECT direction, AVG(speed) AS avg_speed FROM traffic "
        "[RANGE 1 HOURS SLIDE 15 MINUTES] WHERE lane = 0 GROUP BY "
        "direction");
    PIPES_CHECK_MSG(q1.ok(), q1.status().ToString().c_str());
    auto& q1_sink = graph.Add<CountingSink<Tuple>>();
    q1->output->AddSubscriber(q1_sink.input());

    auto q2 = manager.InstallQuery(
        "SELECT detector, AVG(speed) AS avg_speed FROM traffic "
        "[RANGE 15 MINUTES SLIDE 5 MINUTES] WHERE direction = 0 GROUP BY "
        "detector");
    PIPES_CHECK_MSG(q2.ok(), q2.status().ToString().c_str());
    std::uint64_t alert_count = 0;
    auto& q2_sink = graph.Add<CallbackSink<Tuple>>(
        [&alert_count](const StreamElement<Tuple>& e) {
          if (e.payload.field(1).AsDouble() < 40.0) ++alert_count;
        });
    q2->output->AddSubscriber(q2_sink.input());

    scheduler::RoundRobinStrategy strategy;
    scheduler::SingleThreadScheduler driver(graph, strategy, 1024);
    driver.RunToCompletion();

    readings = produced;
    alerts = alert_count;
    benchmark::DoNotOptimize(alerts);
  }
  state.counters["readings"] =
      benchmark::Counter(static_cast<double>(readings));
  state.counters["congestion_alerts"] =
      benchmark::Counter(static_cast<double>(alerts));
  state.SetItemsProcessed(state.iterations() * readings);
}

}  // namespace

BENCHMARK(BM_TrafficQueries);
