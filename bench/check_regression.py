#!/usr/bin/env python3
"""Distill google-benchmark JSON into a per-bench snapshot and gate on it.

Two modes:

  distill OUT.json IN.json [IN.json ...]
      Reads one google-benchmark ``--json-out`` file per bench binary and
      writes a compact snapshot: ``{"benchmarks": {"<binary>:<name>":
      items_per_second}}``. The binary prefix comes from each input's
      context block, so several benches merge into one snapshot without
      name collisions. This is the format of the checked-in BENCH_PR6.json.

  compare BASELINE.json CURRENT.json [--threshold=0.10] [--guard=REGEX]
      Prints every benchmark the two snapshots share with its relative
      delta, then fails (exit 1) if any benchmark matching ``--guard``
      (default: the bench_batch filter→map→union chain) is more than
      ``--threshold`` below the baseline. Benchmarks present on only one
      side are reported but never fail the gate, so adding or renaming
      benches does not break CI.

The gate compares absolute items/s, so the checked-in baseline is only
meaningful on comparable hardware; refresh BENCH_PR6.json (distill mode)
whenever the perf trajectory legitimately moves or the reference machine
changes.
"""

import argparse
import json
import os
import re
import sys


GUARD_DEFAULT = r"bench_batch:BM_(Executor)?FilterMapUnionBufferChain/"


def load(path):
    with open(path) as f:
        return json.load(f)


def distill(out_path, in_paths):
    merged = {}
    for path in in_paths:
        raw = load(path)
        executable = raw.get("context", {}).get("executable", path)
        prefix = os.path.basename(executable)
        for bench in raw.get("benchmarks", []):
            # Skip aggregate rows (mean/median/stddev of repetitions); the
            # snapshot records one figure per (benchmark, config).
            if bench.get("run_type") == "aggregate":
                continue
            rate = bench.get("items_per_second")
            if rate is None:
                continue
            key = f"{prefix}:{bench['name']}"
            # Repetitions collapse to their best run: the minimum-noise
            # estimate on a machine with background load.
            merged[key] = max(merged.get(key, 0.0), rate)
    snapshot = {"benchmarks": dict(sorted(merged.items()))}
    with open(out_path, "w") as f:
        json.dump(snapshot, f, indent=2)
        f.write("\n")
    print(f"distilled {len(merged)} benchmarks from "
          f"{len(in_paths)} file(s) -> {out_path}")
    return 0


def fmt_rate(rate):
    return f"{rate / 1e6:10.2f}M/s"


def compare(baseline_path, current_path, threshold, guard):
    # .get(): a snapshot from an older/newer schema (or an empty one) is a
    # comparison with nothing shared, never a crash.
    baseline = load(baseline_path).get("benchmarks", {})
    current = load(current_path).get("benchmarks", {})
    guard_re = re.compile(guard)
    failures = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"  {name}: only in baseline (informational)")
            continue
        if name not in baseline:
            # A bench absent from the checked-in snapshot (e.g. newly
            # added) is reported but can never fail the gate.
            print(f"  {name}: only in current ({fmt_rate(current[name])}) "
                  f"(informational)")
            continue
        old, new = baseline[name], current[name]
        delta = (new - old) / old if old > 0 else 0.0
        guarded = bool(guard_re.search(name))
        marker = "*" if guarded else " "
        print(f" {marker}{name}: {fmt_rate(old)} -> {fmt_rate(new)} "
              f"({delta:+.1%})")
        if guarded and delta < -threshold:
            failures.append((name, delta))
    if failures:
        print(f"\nFAIL: {len(failures)} guarded benchmark(s) regressed more "
              f"than {threshold:.0%}:")
        for name, delta in failures:
            print(f"  {name}: {delta:+.1%}")
        return 1
    print(f"\nOK: no guarded benchmark regressed more than {threshold:.0%} "
          f"(guard: {guard})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="mode", required=True)

    p_distill = sub.add_parser("distill")
    p_distill.add_argument("out")
    p_distill.add_argument("inputs", nargs="+")

    p_compare = sub.add_parser("compare")
    p_compare.add_argument("baseline")
    p_compare.add_argument("current")
    p_compare.add_argument("--threshold", type=float, default=0.10)
    p_compare.add_argument("--guard", default=GUARD_DEFAULT)

    args = parser.parse_args()
    if args.mode == "distill":
        return distill(args.out, args.inputs)
    return compare(args.baseline, args.current, args.threshold, args.guard)


if __name__ == "__main__":
    sys.exit(main())
