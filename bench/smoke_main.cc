// Shared driver for the stock benchmark binaries. `--smoke` runs every
// registered benchmark once with a minimal time budget — the CI sanity pass
// that each experiment still constructs its graphs and drains them
// end-to-end — while any other invocation behaves exactly like the standard
// google-benchmark main. `--json-out=PATH` writes the per-bench results
// (items_per_second per config) as google-benchmark JSON to PATH — the
// machine-readable feed for BENCH_PR6.json and the CI regression gate
// (bench/check_regression.py). Binaries with semantic smoke checks
// (bench_observability, bench_parallel) keep their own mains.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_out;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 4);
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    } else {
      args.push_back(argv[i]);
    }
  }
  // Numeric-seconds spelling: portable across benchmark versions (the "Nx"
  // iteration form is newer than some toolchains ship).
  char min_time[] = "--benchmark_min_time=0.001";
  char repetitions[] = "--benchmark_repetitions=1";
  if (smoke) {
    args.push_back(min_time);
    args.push_back(repetitions);
  }
  // Spelled through the library's own file reporter so the output carries
  // the full context block (host, CPU, build) alongside each benchmark.
  std::string out_flag;
  std::string out_format_flag = "--benchmark_out_format=json";
  if (!json_out.empty()) {
    out_flag = "--benchmark_out=" + json_out;
    args.push_back(out_flag.data());
    args.push_back(out_format_flag.data());
  }

  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoke && ran == 0) {
    std::fprintf(stderr, "smoke: no benchmarks ran\n");
    return 1;
  }
  return 0;
}
