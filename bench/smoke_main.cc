// Shared driver for the stock benchmark binaries. `--smoke` runs every
// registered benchmark once with a minimal time budget — the CI sanity pass
// that each experiment still constructs its graphs and drains them
// end-to-end — while any other invocation behaves exactly like the standard
// google-benchmark main. Binaries with semantic smoke checks
// (bench_observability, bench_parallel) keep their own mains.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <vector>

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  // Numeric-seconds spelling: portable across benchmark versions (the "Nx"
  // iteration form is newer than some toolchains ship).
  char min_time[] = "--benchmark_min_time=0.001";
  char repetitions[] = "--benchmark_repetitions=1";
  if (smoke) {
    args.push_back(min_time);
    args.push_back(repetitions);
  }

  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (smoke && ran == 0) {
    std::fprintf(stderr, "smoke: no benchmarks ran\n");
    return 1;
  }
  return 0;
}
