file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregation.dir/bench_aggregation.cc.o"
  "CMakeFiles/bench_aggregation.dir/bench_aggregation.cc.o.d"
  "bench_aggregation"
  "bench_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
