# Empty compiler generated dependencies file for bench_aggregation.
# This may be replaced when dependencies are built.
