file(REMOVE_RECURSE
  "CMakeFiles/bench_hybrid.dir/bench_hybrid.cc.o"
  "CMakeFiles/bench_hybrid.dir/bench_hybrid.cc.o.d"
  "bench_hybrid"
  "bench_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
