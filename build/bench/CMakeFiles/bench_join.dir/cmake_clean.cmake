file(REMOVE_RECURSE
  "CMakeFiles/bench_join.dir/bench_join.cc.o"
  "CMakeFiles/bench_join.dir/bench_join.cc.o.d"
  "bench_join"
  "bench_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
