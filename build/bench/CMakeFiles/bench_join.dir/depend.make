# Empty dependencies file for bench_join.
# This may be replaced when dependencies are built.
