file(REMOVE_RECURSE
  "CMakeFiles/bench_loadshed.dir/bench_loadshed.cc.o"
  "CMakeFiles/bench_loadshed.dir/bench_loadshed.cc.o.d"
  "bench_loadshed"
  "bench_loadshed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loadshed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
