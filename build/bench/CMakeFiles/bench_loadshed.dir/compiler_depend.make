# Empty compiler generated dependencies file for bench_loadshed.
# This may be replaced when dependencies are built.
