file(REMOVE_RECURSE
  "CMakeFiles/bench_metadata.dir/bench_metadata.cc.o"
  "CMakeFiles/bench_metadata.dir/bench_metadata.cc.o.d"
  "bench_metadata"
  "bench_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
