file(REMOVE_RECURSE
  "CMakeFiles/bench_mjoin.dir/bench_mjoin.cc.o"
  "CMakeFiles/bench_mjoin.dir/bench_mjoin.cc.o.d"
  "bench_mjoin"
  "bench_mjoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mjoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
