# Empty dependencies file for bench_mjoin.
# This may be replaced when dependencies are built.
