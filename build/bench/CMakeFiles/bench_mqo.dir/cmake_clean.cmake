file(REMOVE_RECURSE
  "CMakeFiles/bench_mqo.dir/bench_mqo.cc.o"
  "CMakeFiles/bench_mqo.dir/bench_mqo.cc.o.d"
  "bench_mqo"
  "bench_mqo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mqo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
