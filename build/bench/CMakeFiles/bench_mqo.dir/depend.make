# Empty dependencies file for bench_mqo.
# This may be replaced when dependencies are built.
