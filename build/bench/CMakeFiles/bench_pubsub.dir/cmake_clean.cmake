file(REMOVE_RECURSE
  "CMakeFiles/bench_pubsub.dir/bench_pubsub.cc.o"
  "CMakeFiles/bench_pubsub.dir/bench_pubsub.cc.o.d"
  "bench_pubsub"
  "bench_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
