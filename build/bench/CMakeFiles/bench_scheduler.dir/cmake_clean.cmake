file(REMOVE_RECURSE
  "CMakeFiles/bench_scheduler.dir/bench_scheduler.cc.o"
  "CMakeFiles/bench_scheduler.dir/bench_scheduler.cc.o.d"
  "bench_scheduler"
  "bench_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
