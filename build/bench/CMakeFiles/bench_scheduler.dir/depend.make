# Empty dependencies file for bench_scheduler.
# This may be replaced when dependencies are built.
