file(REMOVE_RECURSE
  "CMakeFiles/bench_traffic.dir/bench_traffic.cc.o"
  "CMakeFiles/bench_traffic.dir/bench_traffic.cc.o.d"
  "bench_traffic"
  "bench_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
