file(REMOVE_RECURSE
  "CMakeFiles/example_cql_demo.dir/cql_demo.cpp.o"
  "CMakeFiles/example_cql_demo.dir/cql_demo.cpp.o.d"
  "example_cql_demo"
  "example_cql_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cql_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
