# Empty compiler generated dependencies file for example_cql_demo.
# This may be replaced when dependencies are built.
