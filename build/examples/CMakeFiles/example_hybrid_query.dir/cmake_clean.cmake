file(REMOVE_RECURSE
  "CMakeFiles/example_hybrid_query.dir/hybrid_query.cpp.o"
  "CMakeFiles/example_hybrid_query.dir/hybrid_query.cpp.o.d"
  "example_hybrid_query"
  "example_hybrid_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hybrid_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
