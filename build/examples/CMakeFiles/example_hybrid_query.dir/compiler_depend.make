# Empty compiler generated dependencies file for example_hybrid_query.
# This may be replaced when dependencies are built.
