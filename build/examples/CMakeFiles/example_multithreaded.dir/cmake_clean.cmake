file(REMOVE_RECURSE
  "CMakeFiles/example_multithreaded.dir/multithreaded.cpp.o"
  "CMakeFiles/example_multithreaded.dir/multithreaded.cpp.o.d"
  "example_multithreaded"
  "example_multithreaded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multithreaded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
