# Empty compiler generated dependencies file for example_multithreaded.
# This may be replaced when dependencies are built.
