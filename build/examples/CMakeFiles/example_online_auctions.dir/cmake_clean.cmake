file(REMOVE_RECURSE
  "CMakeFiles/example_online_auctions.dir/online_auctions.cpp.o"
  "CMakeFiles/example_online_auctions.dir/online_auctions.cpp.o.d"
  "example_online_auctions"
  "example_online_auctions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_online_auctions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
