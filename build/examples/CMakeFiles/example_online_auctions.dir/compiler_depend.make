# Empty compiler generated dependencies file for example_online_auctions.
# This may be replaced when dependencies are built.
