file(REMOVE_RECURSE
  "CMakeFiles/example_traffic_monitoring.dir/traffic_monitoring.cpp.o"
  "CMakeFiles/example_traffic_monitoring.dir/traffic_monitoring.cpp.o.d"
  "example_traffic_monitoring"
  "example_traffic_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_traffic_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
