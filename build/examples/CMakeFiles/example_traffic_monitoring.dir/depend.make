# Empty dependencies file for example_traffic_monitoring.
# This may be replaced when dependencies are built.
