
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/random.cc" "src/CMakeFiles/pipes.dir/common/random.cc.o" "gcc" "src/CMakeFiles/pipes.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pipes.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pipes.dir/common/status.cc.o.d"
  "/root/repo/src/common/time.cc" "src/CMakeFiles/pipes.dir/common/time.cc.o" "gcc" "src/CMakeFiles/pipes.dir/common/time.cc.o.d"
  "/root/repo/src/core/graph.cc" "src/CMakeFiles/pipes.dir/core/graph.cc.o" "gcc" "src/CMakeFiles/pipes.dir/core/graph.cc.o.d"
  "/root/repo/src/core/node.cc" "src/CMakeFiles/pipes.dir/core/node.cc.o" "gcc" "src/CMakeFiles/pipes.dir/core/node.cc.o.d"
  "/root/repo/src/cql/analyzer.cc" "src/CMakeFiles/pipes.dir/cql/analyzer.cc.o" "gcc" "src/CMakeFiles/pipes.dir/cql/analyzer.cc.o.d"
  "/root/repo/src/cql/ast.cc" "src/CMakeFiles/pipes.dir/cql/ast.cc.o" "gcc" "src/CMakeFiles/pipes.dir/cql/ast.cc.o.d"
  "/root/repo/src/cql/catalog.cc" "src/CMakeFiles/pipes.dir/cql/catalog.cc.o" "gcc" "src/CMakeFiles/pipes.dir/cql/catalog.cc.o.d"
  "/root/repo/src/cql/lexer.cc" "src/CMakeFiles/pipes.dir/cql/lexer.cc.o" "gcc" "src/CMakeFiles/pipes.dir/cql/lexer.cc.o.d"
  "/root/repo/src/cql/parser.cc" "src/CMakeFiles/pipes.dir/cql/parser.cc.o" "gcc" "src/CMakeFiles/pipes.dir/cql/parser.cc.o.d"
  "/root/repo/src/memory/memory_manager.cc" "src/CMakeFiles/pipes.dir/memory/memory_manager.cc.o" "gcc" "src/CMakeFiles/pipes.dir/memory/memory_manager.cc.o.d"
  "/root/repo/src/metadata/monitor.cc" "src/CMakeFiles/pipes.dir/metadata/monitor.cc.o" "gcc" "src/CMakeFiles/pipes.dir/metadata/monitor.cc.o.d"
  "/root/repo/src/optimizer/cost.cc" "src/CMakeFiles/pipes.dir/optimizer/cost.cc.o" "gcc" "src/CMakeFiles/pipes.dir/optimizer/cost.cc.o.d"
  "/root/repo/src/optimizer/logical_plan.cc" "src/CMakeFiles/pipes.dir/optimizer/logical_plan.cc.o" "gcc" "src/CMakeFiles/pipes.dir/optimizer/logical_plan.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/pipes.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/pipes.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/physical.cc" "src/CMakeFiles/pipes.dir/optimizer/physical.cc.o" "gcc" "src/CMakeFiles/pipes.dir/optimizer/physical.cc.o.d"
  "/root/repo/src/optimizer/plan_manager.cc" "src/CMakeFiles/pipes.dir/optimizer/plan_manager.cc.o" "gcc" "src/CMakeFiles/pipes.dir/optimizer/plan_manager.cc.o.d"
  "/root/repo/src/optimizer/plan_xml.cc" "src/CMakeFiles/pipes.dir/optimizer/plan_xml.cc.o" "gcc" "src/CMakeFiles/pipes.dir/optimizer/plan_xml.cc.o.d"
  "/root/repo/src/optimizer/rules.cc" "src/CMakeFiles/pipes.dir/optimizer/rules.cc.o" "gcc" "src/CMakeFiles/pipes.dir/optimizer/rules.cc.o.d"
  "/root/repo/src/relational/expression.cc" "src/CMakeFiles/pipes.dir/relational/expression.cc.o" "gcc" "src/CMakeFiles/pipes.dir/relational/expression.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/CMakeFiles/pipes.dir/relational/schema.cc.o" "gcc" "src/CMakeFiles/pipes.dir/relational/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/CMakeFiles/pipes.dir/relational/tuple.cc.o" "gcc" "src/CMakeFiles/pipes.dir/relational/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/CMakeFiles/pipes.dir/relational/value.cc.o" "gcc" "src/CMakeFiles/pipes.dir/relational/value.cc.o.d"
  "/root/repo/src/scheduler/scheduler.cc" "src/CMakeFiles/pipes.dir/scheduler/scheduler.cc.o" "gcc" "src/CMakeFiles/pipes.dir/scheduler/scheduler.cc.o.d"
  "/root/repo/src/scheduler/strategy.cc" "src/CMakeFiles/pipes.dir/scheduler/strategy.cc.o" "gcc" "src/CMakeFiles/pipes.dir/scheduler/strategy.cc.o.d"
  "/root/repo/src/workloads/nexmark.cc" "src/CMakeFiles/pipes.dir/workloads/nexmark.cc.o" "gcc" "src/CMakeFiles/pipes.dir/workloads/nexmark.cc.o.d"
  "/root/repo/src/workloads/nexmark_queries.cc" "src/CMakeFiles/pipes.dir/workloads/nexmark_queries.cc.o" "gcc" "src/CMakeFiles/pipes.dir/workloads/nexmark_queries.cc.o.d"
  "/root/repo/src/workloads/traffic.cc" "src/CMakeFiles/pipes.dir/workloads/traffic.cc.o" "gcc" "src/CMakeFiles/pipes.dir/workloads/traffic.cc.o.d"
  "/root/repo/src/workloads/traffic_queries.cc" "src/CMakeFiles/pipes.dir/workloads/traffic_queries.cc.o" "gcc" "src/CMakeFiles/pipes.dir/workloads/traffic_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
