file(REMOVE_RECURSE
  "libpipes.a"
)
