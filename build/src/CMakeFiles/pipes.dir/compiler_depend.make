# Empty compiler generated dependencies file for pipes.
# This may be replaced when dependencies are built.
