file(REMOVE_RECURSE
  "CMakeFiles/cql_property_test.dir/cql_property_test.cc.o"
  "CMakeFiles/cql_property_test.dir/cql_property_test.cc.o.d"
  "cql_property_test"
  "cql_property_test.pdb"
  "cql_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
