# Empty compiler generated dependencies file for cql_property_test.
# This may be replaced when dependencies are built.
