file(REMOVE_RECURSE
  "CMakeFiles/cql_streams_test.dir/cql_streams_test.cc.o"
  "CMakeFiles/cql_streams_test.dir/cql_streams_test.cc.o.d"
  "cql_streams_test"
  "cql_streams_test.pdb"
  "cql_streams_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_streams_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
