# Empty compiler generated dependencies file for cql_streams_test.
# This may be replaced when dependencies are built.
