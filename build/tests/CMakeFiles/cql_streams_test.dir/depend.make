# Empty dependencies file for cql_streams_test.
# This may be replaced when dependencies are built.
