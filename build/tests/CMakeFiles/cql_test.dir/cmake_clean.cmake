file(REMOVE_RECURSE
  "CMakeFiles/cql_test.dir/cql_test.cc.o"
  "CMakeFiles/cql_test.dir/cql_test.cc.o.d"
  "cql_test"
  "cql_test.pdb"
  "cql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
