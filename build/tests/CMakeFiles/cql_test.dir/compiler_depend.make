# Empty compiler generated dependencies file for cql_test.
# This may be replaced when dependencies are built.
