file(REMOVE_RECURSE
  "CMakeFiles/cursors_test.dir/cursors_test.cc.o"
  "CMakeFiles/cursors_test.dir/cursors_test.cc.o.d"
  "cursors_test"
  "cursors_test.pdb"
  "cursors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cursors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
