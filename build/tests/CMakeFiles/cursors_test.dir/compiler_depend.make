# Empty compiler generated dependencies file for cursors_test.
# This may be replaced when dependencies are built.
