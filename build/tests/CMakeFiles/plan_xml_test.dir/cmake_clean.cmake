file(REMOVE_RECURSE
  "CMakeFiles/plan_xml_test.dir/plan_xml_test.cc.o"
  "CMakeFiles/plan_xml_test.dir/plan_xml_test.cc.o.d"
  "plan_xml_test"
  "plan_xml_test.pdb"
  "plan_xml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_xml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
