# Empty dependencies file for plan_xml_test.
# This may be replaced when dependencies are built.
