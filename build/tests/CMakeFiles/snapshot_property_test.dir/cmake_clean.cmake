file(REMOVE_RECURSE
  "CMakeFiles/snapshot_property_test.dir/snapshot_property_test.cc.o"
  "CMakeFiles/snapshot_property_test.dir/snapshot_property_test.cc.o.d"
  "snapshot_property_test"
  "snapshot_property_test.pdb"
  "snapshot_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
