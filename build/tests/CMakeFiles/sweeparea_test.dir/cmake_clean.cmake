file(REMOVE_RECURSE
  "CMakeFiles/sweeparea_test.dir/sweeparea_test.cc.o"
  "CMakeFiles/sweeparea_test.dir/sweeparea_test.cc.o.d"
  "sweeparea_test"
  "sweeparea_test.pdb"
  "sweeparea_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sweeparea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
