# Empty compiler generated dependencies file for sweeparea_test.
# This may be replaced when dependencies are built.
