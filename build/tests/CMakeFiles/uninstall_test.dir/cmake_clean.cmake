file(REMOVE_RECURSE
  "CMakeFiles/uninstall_test.dir/uninstall_test.cc.o"
  "CMakeFiles/uninstall_test.dir/uninstall_test.cc.o.d"
  "uninstall_test"
  "uninstall_test.pdb"
  "uninstall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uninstall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
