# Empty dependencies file for uninstall_test.
# This may be replaced when dependencies are built.
