file(REMOVE_RECURSE
  "CMakeFiles/workload_queries_test.dir/workload_queries_test.cc.o"
  "CMakeFiles/workload_queries_test.dir/workload_queries_test.cc.o.d"
  "workload_queries_test"
  "workload_queries_test.pdb"
  "workload_queries_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
