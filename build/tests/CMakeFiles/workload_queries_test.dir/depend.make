# Empty dependencies file for workload_queries_test.
# This may be replaced when dependencies are built.
