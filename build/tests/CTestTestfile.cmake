# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/alternatives_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/cql_property_test[1]_include.cmake")
include("/root/repo/build/tests/cql_streams_test[1]_include.cmake")
include("/root/repo/build/tests/cql_test[1]_include.cmake")
include("/root/repo/build/tests/cursors_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/plan_xml_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/snapshot_property_test[1]_include.cmake")
include("/root/repo/build/tests/sweeparea_test[1]_include.cmake")
include("/root/repo/build/tests/uninstall_test[1]_include.cmake")
include("/root/repo/build/tests/workload_queries_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
