add_test([=[Integration.PrototypeDsmsEndToEnd]=]  /root/repo/build/tests/integration_test [==[--gtest_filter=Integration.PrototypeDsmsEndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Integration.PrototypeDsmsEndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_test_TESTS Integration.PrototypeDsmsEndToEnd)
