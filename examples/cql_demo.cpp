// CQL front end + optimizer walkthrough: compiles continuous queries,
// shows the raw and optimized logical plans, installs overlapping queries
// through the multi-query plan manager (watch the reuse counters), and
// prints the resulting physical query graph in Graphviz DOT form — the
// text-mode counterpart of the paper's visual plan editor.

#include <cstdio>
#include <optional>

#include "src/core/generator_source.h"
#include "src/common/random.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/cql/analyzer.h"
#include "src/cql/catalog.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/plan_manager.h"
#include "src/scheduler/scheduler.h"

namespace {

using pipes::relational::Schema;
using pipes::relational::Tuple;
using pipes::relational::Value;
using pipes::relational::ValueType;

}  // namespace

int main() {
  using namespace pipes;  // NOLINT: example brevity

  QueryGraph graph;
  Random rng(3);

  // A synthetic "trades" stream.
  Timestamp now = 0;
  auto& trades = graph.Add<FunctionSource<Tuple>>(
      [&]() -> std::optional<StreamElement<Tuple>> {
        if (now >= 600'000) return std::nullopt;  // 10 minutes
        const Timestamp t = now;
        now += 100;
        return StreamElement<Tuple>::Point(
            Tuple{Value(static_cast<std::int64_t>(rng.NextBounded(5))),
                  Value(rng.UniformDouble(10, 500)),
                  Value(static_cast<std::int64_t>(rng.NextBounded(1000)))},
            t);
      },
      "trades");

  cql::Catalog catalog;
  PIPES_CHECK(catalog
                  .RegisterStream(
                      "trades",
                      Schema({{"symbol", ValueType::kInt},
                              {"price", ValueType::kDouble},
                              {"volume", ValueType::kInt}}),
                      &trades, /*rate_hint=*/10.0)
                  .ok());

  const char* query_text =
      "SELECT symbol, AVG(price) AS vwap, COUNT(*) AS trades "
      "FROM trades [RANGE 1 MINUTES SLIDE 30 SECONDS] "
      "WHERE volume > 100 GROUP BY symbol";

  std::printf("query:\n  %s\n\n", query_text);

  auto plan = cql::Compile(query_text, catalog);
  PIPES_CHECK_MSG(plan.ok(), plan.status().ToString().c_str());
  std::printf("analyzed logical plan:\n%s\n", (plan->plan)->ToString().c_str());

  optimizer::Optimizer optimizer(&catalog);
  auto optimized = optimizer.Optimize(plan->plan);
  std::printf("optimized plan (of %zu alternatives, est. cost %.0f):\n%s\n",
              optimized.alternatives_considered, optimized.cost,
              optimized.plan->ToString().c_str());

  // Install the query plus two overlapping ones: the plan manager shares
  // subplans of the running graph.
  optimizer::PlanManager manager(&graph, &catalog);
  auto q1 = manager.InstallQuery(query_text);
  PIPES_CHECK_MSG(q1.ok(), q1.status().ToString().c_str());
  auto q2 = manager.InstallQuery(
      "SELECT symbol, MAX(price) AS high FROM trades [RANGE 1 MINUTES SLIDE "
      "30 SECONDS] WHERE volume > 100 GROUP BY symbol");
  PIPES_CHECK_MSG(q2.ok(), q2.status().ToString().c_str());
  auto q3 = manager.InstallQuery(query_text);  // identical to q1
  PIPES_CHECK_MSG(q3.ok(), q3.status().ToString().c_str());

  std::printf("q1: created %zu, reused %zu operators\n",
              q1->operators_created, q1->operators_reused);
  std::printf("q2: created %zu, reused %zu operators (shares scan+filter)\n",
              q2->operators_created, q2->operators_reused);
  std::printf("q3: created %zu, reused %zu operators (fully shared)\n\n",
              q3->operators_created, q3->operators_reused);

  auto& vwap_sink = graph.Add<CollectorSink<Tuple>>("vwap-results");
  auto& high_sink = graph.Add<CollectorSink<Tuple>>("high-results");
  q1->output->AddSubscriber(vwap_sink.input());
  q2->output->AddSubscriber(high_sink.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 1024);
  driver.RunToCompletion();

  std::printf("q1 produced %zu result tuples; first rows:\n",
              vwap_sink.elements().size());
  for (std::size_t i = 0; i < std::min<std::size_t>(5, vwap_sink.elements().size());
       ++i) {
    const auto& e = vwap_sink.elements()[i];
    std::printf("  %s during [%llds, %llds)\n", e.payload.ToString().c_str(),
                static_cast<long long>(e.start() / 1000),
                static_cast<long long>(e.end() / 1000));
  }
  std::printf("q2 produced %zu result tuples\n\n",
              high_sink.elements().size());

  std::printf("physical query graph (graphviz):\n%s\n",
              graph.ToDot().c_str());
  return 0;
}
