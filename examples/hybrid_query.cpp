// Hybrid processing: the dataflow translation operators in action.
//
//   1. A demand-driven cursor over an order table is *lifted* into a
//      data-driven stream (CursorSource, pull -> push).
//   2. The stream runs through windowed data-driven operators.
//   3. Results land in a StreamBufferSink whose contents are consumed
//      *on demand* by the cursor algebra (push -> pull): a GroupByCursor
//      computes per-customer totals using the same online aggregation
//      policies the data-driven operators use.
//
// This is the code-reuse story of the paper: one aggregation package,
// both processing styles, plus persistent-relation access via cursors.

#include <cstdio>
#include <string>

#include "src/algebra/aggregates.h"
#include "src/algebra/filter.h"
#include "src/common/random.h"
#include "src/core/graph.h"
#include "src/cursors/cursor.h"
#include "src/cursors/relation.h"
#include "src/cursors/translate.h"
#include "src/scheduler/scheduler.h"

namespace {

struct Order {
  int customer_id;
  double amount;
  pipes::Timestamp at;
};

}  // namespace

int main() {
  using namespace pipes;  // NOLINT: example brevity

  // A persistent relation: customer id -> name, accessed through cursors.
  cursors::IndexedRelation<int, std::string> customers;
  customers.Insert(1, "ada");
  customers.Insert(2, "grace");
  customers.Insert(3, "edgar");

  // The "archive": orders stored in a demand-driven container.
  std::vector<Order> archive;
  Random rng(11);
  for (Timestamp t = 0; t < 500; ++t) {
    archive.push_back(Order{static_cast<int>(rng.NextBounded(3)) + 1,
                            rng.UniformDouble(5.0, 200.0), t * 10});
  }

  QueryGraph graph;

  // pull -> push: lift the archive cursor into a stream source.
  auto& source = graph.Add<cursors::CursorSource<Order>>(
      std::make_unique<cursors::VectorCursor<Order>>(archive),
      [](const Order& order) { return order.at; }, "order-archive");

  // Data-driven part: keep only substantial orders.
  auto big = [](const Order& o) { return o.amount >= 50.0; };
  auto& filter =
      graph.Add<algebra::Filter<Order, decltype(big)>>(big, "big-orders");

  // push -> pull: buffer results for on-demand consumption.
  auto& buffer = graph.Add<cursors::StreamBufferSink<Order>>("result-buffer");

  source.AddSubscriber(filter.input());
  filter.AddSubscriber(buffer.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  driver.RunToCompletion();

  std::printf("stream phase done: %zu big orders buffered\n",
              buffer.buffered());

  // Demand-driven part: group the buffered results with the shared
  // aggregation policies.
  auto payload_cursor =
      std::make_unique<cursors::MapCursor<StreamElement<Order>, Order>>(
          buffer.OpenCursor(),
          [](const StreamElement<Order>& e) { return e.payload; });
  auto key = [](const Order& o) { return o.customer_id; };
  auto value = [](const Order& o) { return o.amount; };
  cursors::GroupByCursor<Order, algebra::SumAgg<double>, decltype(key),
                         decltype(value)>
      totals(std::move(payload_cursor), key, value);

  std::printf("per-customer totals (cursor group-by + relation lookup):\n");
  while (auto row = totals.Next()) {
    auto names = customers.Lookup(row->first);
    std::string name = "?";
    if (auto n = names->Next()) name = *n;
    std::printf("  customer %d (%s): %.2f\n", row->first, name.c_str(),
                row->second);
  }
  return 0;
}
