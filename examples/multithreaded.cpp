// Layer-3 scheduling: running independent continuous queries on worker
// threads. Two query chains (traffic congestion detection and NEXMark
// highest-bid) are split from their sources with thread-safe buffers
// (layer-1 fusion boundaries) and driven by a two-worker ThreadScheduler,
// each worker running its own Chain strategy instance.

#include <cstdio>
#include <memory>
#include <optional>

#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/nexmark_queries.h"
#include "src/workloads/traffic_queries.h"

int main() {
  using namespace pipes;  // NOLINT: example brevity
  using namespace pipes::workloads;  // NOLINT

  QueryGraph graph;

  // --- Chain 1: traffic congestion detection -------------------------------
  TrafficOptions traffic_options;
  traffic_options.num_detectors = 6;
  traffic_options.num_lanes = 3;
  traffic_options.duration_ms = 3600'000;
  traffic_options.base_rate_per_s = 0.2;
  TrafficIncident incident;
  incident.begin = 900'000;
  incident.end = 2'100'000;
  incident.detector = 2;
  incident.direction = 0;
  incident.speed_factor = 0.25;
  traffic_options.incidents = {incident};
  auto traffic_gen = std::make_shared<TrafficGenerator>(traffic_options);
  auto& readings = graph.Add<FunctionSource<TrafficReading>>(
      [traffic_gen]() -> std::optional<StreamElement<TrafficReading>> {
        auto r = traffic_gen->Next();
        if (!r.has_value()) return std::nullopt;
        return StreamElement<TrafficReading>::Point(*r, r->timestamp);
      },
      "loop-detectors");

  // Layer 1: a thread-safe buffer right behind the source marks the
  // virtual-node boundary the two workers will hand elements across.
  auto& traffic_boundary =
      graph.Add<ConcurrentBuffer<TrafficReading>>("traffic-boundary");
  readings.AddSubscriber(traffic_boundary.input());

  auto& congestion = BuildCongestionQuery(graph, traffic_boundary,
                                          /*direction=*/0,
                                          /*avg_window=*/300'000,
                                          /*avg_slide=*/60'000,
                                          /*speed_threshold=*/40.0,
                                          /*min_duration=*/600'000);
  auto& alarm_sink = graph.Add<CollectorSink<Sustained<std::int32_t>>>();
  congestion.AddSubscriber(alarm_sink.input());

  // --- Chain 2: NEXMark highest bid ----------------------------------------
  NexmarkOptions auction_options;
  auction_options.num_events = 100'000;
  auction_options.mean_interarrival_ms = 20.0;
  auto nexmark_gen = std::make_shared<NexmarkGenerator>(auction_options);
  auto& events = graph.Add<FunctionSource<NexmarkEvent>>(
      [nexmark_gen]() -> std::optional<StreamElement<NexmarkEvent>> {
        auto e = nexmark_gen->Next();
        if (!e.has_value()) return std::nullopt;
        const Timestamp t = e->time;
        return StreamElement<NexmarkEvent>::Point(std::move(*e), t);
      },
      "auction-events");
  auto& nexmark_boundary =
      graph.Add<ConcurrentBuffer<NexmarkEvent>>("nexmark-boundary");
  events.AddSubscriber(nexmark_boundary.input());

  auto& bids = BuildBidStream(graph, nexmark_boundary);
  auto& highest = BuildHighestBidQuery(graph, bids, /*period=*/600'000);
  auto& bid_sink = graph.Add<CollectorSink<double>>();
  highest.AddSubscriber(bid_sink.input());

  // --- Layer 3: two workers; each chain's active nodes stay together.
  // Active nodes in insertion order: readings, traffic-buffer, events,
  // nexmark-buffer.
  std::vector<int> assignment = {0, 0, 1, 1};
  scheduler::ThreadScheduler scheduler(
      graph, /*num_threads=*/2,
      []() { return std::make_unique<scheduler::ChainStrategy>(); },
      assignment);
  const scheduler::RunStats stats = scheduler.RunToCompletion();

  std::printf("two workers processed %llu units in %llu decisions\n",
              static_cast<unsigned long long>(stats.units),
              static_cast<unsigned long long>(stats.iterations));
  std::printf("congestion alarms: %zu (incident at detector 2, 15m-35m)\n",
              alarm_sink.elements().size());
  for (const auto& alarm : alarm_sink.elements()) {
    std::printf("  detector %d congested since minute %lld (%lld min)\n",
                alarm.payload.key,
                static_cast<long long>(alarm.payload.since / 60000),
                static_cast<long long>(alarm.payload.duration / 60000));
  }
  std::printf("highest-bid windows produced: %zu\n",
              bid_sink.elements().size());
  return 0;
}
