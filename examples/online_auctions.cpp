// Online-auction scenario (the paper's second demo application, after
// NEXMark): one generated event stream is split into bids, auctions, and
// person registrations.
//
//   Q1 (CQL):   "Return every 10 minutes the highest bid of the recent 10
//               minutes" — a tumbling-window MAX.
//   Q2 (CQL):   currency conversion of all bids (NEXMark query 1 flavour).
//   Q3 (hybrid): bids joined with the *persons relation* through the
//               demand-driven cursor interface — the graceful combination
//               of data-driven and demand-driven processing.

#include <cstdio>
#include <optional>
#include <string>

#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/cql/catalog.h"
#include "src/cursors/relation.h"
#include "src/optimizer/plan_manager.h"
#include "src/scheduler/scheduler.h"
#include "src/workloads/nexmark.h"

namespace {

using pipes::relational::Schema;
using pipes::relational::Tuple;
using pipes::relational::Value;
using pipes::relational::ValueType;
using pipes::workloads::NexmarkEvent;
using pipes::workloads::NexmarkKind;
using pipes::workloads::Person;

Schema BidSchema() {
  return Schema({{"auction", ValueType::kInt},
                 {"bidder", ValueType::kInt},
                 {"price", ValueType::kDouble}});
}

}  // namespace

int main() {
  using namespace pipes;  // NOLINT: example brevity

  workloads::NexmarkOptions options;
  options.num_events = 50'000;
  options.mean_interarrival_ms = 50.0;  // ~40 minutes of auction time
  workloads::NexmarkGenerator generator(options);

  QueryGraph graph;

  // The raw event stream.
  auto& events = graph.Add<FunctionSource<NexmarkEvent>>(
      [&]() -> std::optional<StreamElement<NexmarkEvent>> {
        auto event = generator.Next();
        if (!event.has_value()) return std::nullopt;
        const Timestamp t = event->time;
        return StreamElement<NexmarkEvent>::Point(std::move(*event), t);
      },
      "nexmark-events");

  // Split: bids become a tuple stream for CQL; persons feed an indexed
  // relation (persistent data).
  auto is_bid = [](const NexmarkEvent& e) {
    return e.kind == NexmarkKind::kBid;
  };
  auto& bid_filter =
      graph.Add<algebra::Filter<NexmarkEvent, decltype(is_bid)>>(is_bid,
                                                                 "bids-only");
  auto to_tuple = [](const NexmarkEvent& e) {
    return Tuple{Value(e.bid.auction), Value(e.bid.bidder),
                 Value(e.bid.price)};
  };
  auto& bid_tuples =
      graph.Add<algebra::Map<NexmarkEvent, Tuple, decltype(to_tuple)>>(
          to_tuple, "bid-tuples");
  events.AddSubscriber(bid_filter.input());
  bid_filter.AddSubscriber(bid_tuples.input());

  cursors::IndexedRelation<std::int64_t, Person> persons;
  auto& person_loader = graph.Add<CallbackSink<NexmarkEvent>>(
      [&persons](const StreamElement<NexmarkEvent>& e) {
        if (e.payload.kind == NexmarkKind::kPerson) {
          persons.Insert(e.payload.person.id, e.payload.person);
        }
      },
      "person-loader");
  events.AddSubscriber(person_loader.input());

  cql::Catalog catalog;
  PIPES_CHECK(
      catalog.RegisterStream("bids", BidSchema(), &bid_tuples, 20.0).ok());

  optimizer::PlanManager manager(&graph, &catalog);

  // Q1: tumbling 10-minute MAX.
  auto q1 = manager.InstallQuery(
      "SELECT MAX(price) AS high FROM bids [RANGE 10 MINUTES SLIDE 10 "
      "MINUTES]");
  PIPES_CHECK_MSG(q1.ok(), q1.status().ToString().c_str());
  auto& high_sink = graph.Add<CallbackSink<Tuple>>(
      [](const StreamElement<Tuple>& e) {
        std::printf("[Q1] minute %4lld: highest bid of last 10 min = %10.2f\n",
                    static_cast<long long>(e.start() / 60000),
                    e.payload.field(0).AsDouble());
      },
      "highest-bid-display");
  q1->output->AddSubscriber(high_sink.input());

  // Q2: currency conversion (shares the bids scan with Q1 via MQO).
  auto q2 = manager.InstallQuery(
      "SELECT auction, price * 0.89 AS eur FROM bids WHERE price > 500");
  PIPES_CHECK_MSG(q2.ok(), q2.status().ToString().c_str());
  auto& eur_count = graph.Add<CountingSink<Tuple>>("eur-count");
  q2->output->AddSubscriber(eur_count.input());

  // Q3: hybrid stream-relation join via the cursor interface.
  auto bidder_key = [](const Tuple& t) { return t.field(1).AsInt(); };
  auto enrich = [](const Tuple& bid, const Person& person) {
    return person.name + " (" + person.city + ") bids " +
           bid.field(2).ToString();
  };
  auto& hybrid = graph.Add<
      cursors::StreamRelationJoin<Tuple, std::int64_t, Person,
                                  decltype(bidder_key), decltype(enrich)>>(
      &persons, bidder_key, enrich, "bids-x-persons");
  bid_tuples.AddSubscriber(hybrid.input());
  auto& enriched_count = graph.Add<CountingSink<std::string>>("enriched");
  hybrid.AddSubscriber(enriched_count.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, 1024);
  driver.RunToCompletion();

  std::printf("--\n");
  std::printf("Q2 produced %llu converted bids over 500\n",
              static_cast<unsigned long long>(eur_count.count()));
  std::printf("Q3 enriched %llu bids against %zu registered persons\n",
              static_cast<unsigned long long>(enriched_count.count()),
              persons.size());
  std::printf("MQO: operators created=%zu reused=%zu across %zu queries\n",
              manager.total_operators_created(),
              manager.total_operators_reused(), manager.installed_queries());
  return 0;
}
