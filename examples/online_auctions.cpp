// Online-auction scenario (the paper's second demo application, after
// NEXMark): one generated event stream is split into bids, auctions, and
// person registrations.
//
//   Q1 (CQL):   "Return every 10 minutes the highest bid of the recent 10
//               minutes" — a tumbling-window MAX, registered on the engine.
//   Q2 (CQL):   currency conversion of all bids (NEXMark query 1 flavour) —
//               shares the bids scan with Q1 through the engine's MQO.
//   Q3 (hybrid): bids joined with the *persons relation* through the
//               demand-driven cursor interface — the graceful combination
//               of data-driven and demand-driven processing.
//
// The typed splitter network (events -> bids-only -> bid-tuples) and the
// hybrid join are wired directly against `engine.graph()` during setup —
// the sanctioned window for direct mutation (DESIGN.md §4g) — while both
// CQL queries go through `Engine::Register` and stream results out of
// their handles.

#include <cstdio>
#include <optional>
#include <string>

#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/core/generator_source.h"
#include "src/core/sink.h"
#include "src/cursors/relation.h"
#include "src/engine/engine.h"
#include "src/workloads/nexmark.h"

namespace {

using pipes::relational::Schema;
using pipes::relational::Tuple;
using pipes::relational::Value;
using pipes::relational::ValueType;
using pipes::workloads::NexmarkEvent;
using pipes::workloads::NexmarkKind;
using pipes::workloads::Person;

Schema BidSchema() {
  return Schema({{"auction", ValueType::kInt},
                 {"bidder", ValueType::kInt},
                 {"price", ValueType::kDouble}});
}

}  // namespace

int main() {
  using namespace pipes;  // NOLINT: example brevity

  workloads::NexmarkOptions options;
  options.num_events = 50'000;
  options.mean_interarrival_ms = 50.0;  // ~40 minutes of auction time
  workloads::NexmarkGenerator generator(options);

  engine::Engine engine;
  QueryGraph& graph = engine.graph();

  // The raw event stream.
  auto& events = graph.Add<FunctionSource<NexmarkEvent>>(
      [&]() -> std::optional<StreamElement<NexmarkEvent>> {
        auto event = generator.Next();
        if (!event.has_value()) return std::nullopt;
        const Timestamp t = event->time;
        return StreamElement<NexmarkEvent>::Point(std::move(*event), t);
      },
      "nexmark-events");

  // Split: bids become a tuple stream for CQL; persons feed an indexed
  // relation (persistent data).
  auto is_bid = [](const NexmarkEvent& e) {
    return e.kind == NexmarkKind::kBid;
  };
  auto& bid_filter =
      graph.Add<algebra::Filter<NexmarkEvent, decltype(is_bid)>>(is_bid,
                                                                 "bids-only");
  auto to_tuple = [](const NexmarkEvent& e) {
    return Tuple{Value(e.bid.auction), Value(e.bid.bidder),
                 Value(e.bid.price)};
  };
  auto& bid_tuples =
      graph.Add<algebra::Map<NexmarkEvent, Tuple, decltype(to_tuple)>>(
          to_tuple, "bid-tuples");
  events.AddSubscriber(bid_filter.input());
  bid_filter.AddSubscriber(bid_tuples.input());

  cursors::IndexedRelation<std::int64_t, Person> persons;
  auto& person_loader = graph.Add<CallbackSink<NexmarkEvent>>(
      [&persons](const StreamElement<NexmarkEvent>& e) {
        if (e.payload.kind == NexmarkKind::kPerson) {
          persons.Insert(e.payload.person.id, e.payload.person);
        }
      },
      "person-loader");
  events.AddSubscriber(person_loader.input());

  PIPES_CHECK(engine.BindStream("bids", BidSchema(), bid_tuples, 20.0).ok());

  // Q1: tumbling 10-minute MAX.
  auto q1 = engine.Register(
      "SELECT MAX(price) AS high FROM bids [RANGE 10 MINUTES SLIDE 10 "
      "MINUTES]");
  PIPES_CHECK_MSG(q1.ok(), q1.status().ToString().c_str());
  PIPES_CHECK(q1->OnResult([](const StreamElement<Tuple>& e) {
                   std::printf(
                       "[Q1] minute %4lld: highest bid of last 10 min = "
                       "%10.2f\n",
                       static_cast<long long>(e.start() / 60000),
                       e.payload.field(0).AsDouble());
                 }).ok());

  // Q2: currency conversion (shares the bids scan with Q1 via MQO).
  auto q2 = engine.Register(
      "SELECT auction, price * 0.89 AS eur FROM bids WHERE price > 500");
  PIPES_CHECK_MSG(q2.ok(), q2.status().ToString().c_str());

  // Q3: hybrid stream-relation join via the cursor interface.
  auto bidder_key = [](const Tuple& t) { return t.field(1).AsInt(); };
  auto enrich = [](const Tuple& bid, const Person& person) {
    return person.name + " (" + person.city + ") bids " +
           bid.field(2).ToString();
  };
  auto& hybrid = graph.Add<
      cursors::StreamRelationJoin<Tuple, std::int64_t, Person,
                                  decltype(bidder_key), decltype(enrich)>>(
      &persons, bidder_key, enrich, "bids-x-persons");
  bid_tuples.AddSubscriber(hybrid.input());
  auto& enriched_count = graph.Add<CountingSink<std::string>>("enriched");
  hybrid.AddSubscriber(enriched_count.input());

  engine.RunToCompletion();

  const engine::EngineStats stats = engine.stats();
  std::printf("--\n");
  std::printf("Q2 produced %llu converted bids over 500\n",
              static_cast<unsigned long long>(q2->results_delivered()));
  std::printf("Q3 enriched %llu bids against %zu registered persons\n",
              static_cast<unsigned long long>(enriched_count.count()),
              persons.size());
  std::printf("MQO: operators created=%zu reused=%zu across %llu queries\n",
              stats.operators_created, stats.operators_reused,
              static_cast<unsigned long long>(stats.total_registered));
  return 0;
}
