// pipes_conformance: the blackbox conformance-corpus gate (docs/workloads.md).
//
//   pipes_conformance                      run tests/corpus under all arms
//   pipes_conformance --corpus-dir DIR     run a different corpus directory
//   pipes_conformance --arm engine ...     restrict to named arms
//                                          (reference | engine | per-element
//                                           | columnar | keyed-parallel)
//   pipes_conformance --artifact-dir DIR   on failure, write one
//                                          <case>.diff file per failing case
//                                          with the expected and actual
//                                          interval tables (the CI artifact)
//   pipes_conformance --quiet              summary only, no per-case lines
//
// Every corpus case runs under every requested execution arm and is diffed
// against its expected interval table via snapshot equivalence (equal
// payload multisets at every instant). Exit codes: 0 all cases equivalent,
// 1 at least one diff or arm error, 2 usage/load error.

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/testing/conformance.h"

namespace conf = pipes::testing::conformance;

namespace {

int Usage() {
  std::cerr
      << "usage: pipes_conformance [--corpus-dir DIR] [--arm NAME ...]\n"
         "                         [--artifact-dir DIR] [--quiet]\n"
         "arms: reference engine per-element columnar keyed-parallel\n";
  return 2;
}

bool ParseArm(const std::string& name, conf::Arm* out) {
  for (conf::Arm arm : conf::AllArms()) {
    if (name == conf::ArmName(arm)) {
      *out = arm;
      return true;
    }
  }
  return false;
}

// One artifact file per failing case: the diff message plus both canonical
// interval tables, ready for side-by-side inspection in CI.
void WriteArtifact(const std::string& dir, const conf::CaseResult& failure) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(dir + "/" + failure.name + ".diff");
  out << "case: " << failure.name << " (" << failure.file << ")\n"
      << "failing arm: " << failure.failing_arm << "\n\n"
      << failure.message << "\n\n"
      << "--- expected interval table (canonical) ---\n"
      << failure.expected_rendered
      << "--- actual interval table (" << failure.failing_arm << ") ---\n"
      << failure.actual_rendered;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir = "tests/corpus";
  std::string artifact_dir;
  std::vector<conf::Arm> arms;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--corpus-dir" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg == "--arm" && i + 1 < argc) {
      conf::Arm arm;
      if (!ParseArm(argv[++i], &arm)) {
        std::cerr << "unknown arm: " << argv[i] << "\n";
        return Usage();
      }
      arms.push_back(arm);
    } else if (arg == "--artifact-dir" && i + 1 < argc) {
      artifact_dir = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }
  if (arms.empty()) arms = conf::AllArms();

  auto corpora = conf::LoadCorpusDir(corpus_dir);
  if (!corpora.ok()) {
    std::cerr << "failed to load corpus dir '" << corpus_dir
              << "': " << corpora.status().ToString() << "\n";
    return 2;
  }
  std::size_t total_cases = 0;
  for (const conf::Corpus& c : *corpora) total_cases += c.cases.size();
  std::cout << "conformance: " << corpora->size() << " corpus files, "
            << total_cases << " cases, " << arms.size() << " arms\n";

  conf::CorpusRunStats stats =
      conf::RunCorpora(*corpora, arms, quiet ? nullptr : &std::cout);

  for (const conf::CaseResult& failure : stats.failures) {
    std::cout << "\nFAIL " << failure.name << " (" << failure.file << ") arm "
              << failure.failing_arm << "\n"
              << failure.message << "\n"
              << "--- expected interval table (canonical) ---\n"
              << failure.expected_rendered
              << "--- actual interval table (" << failure.failing_arm
              << ") ---\n"
              << failure.actual_rendered;
    if (!artifact_dir.empty()) WriteArtifact(artifact_dir, failure);
  }

  std::cout << "\nconformance: " << stats.cases_run << " cases x "
            << arms.size() << " arms (" << stats.arms_run << " runs), "
            << stats.cases_failed << " failed\n";
  return stats.cases_failed == 0 ? 0 : 1;
}
