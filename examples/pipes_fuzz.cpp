// Deterministic simulation fuzzer: generates random-but-valid query graphs
// over randomized traffic streams, drives each through many seeded
// schedules and fault injections, and checks every run against the
// materializing reference executor plus the streaming invariants.
//
//   pipes_fuzz --cases 2000 --seed 1          # CI smoke campaign
//   pipes_fuzz --minutes 15                   # nightly time-boxed campaign
//   pipes_fuzz --replay <case-seed>           # reproduce one case verbosely
//   pipes_fuzz --self-check                   # verify the oracles detect
//                                             # planted canary bugs
//
// Exit status: 0 = everything passed, 1 = a failure (or missed canary).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/testing/generate.h"
#include "src/testing/harness.h"
#include "src/testing/materialize.h"
#include "src/testing/spec.h"

namespace {

using namespace pipes::testing;  // NOLINT: CLI brevity

struct CliOptions {
  std::uint64_t seed = 1;
  std::uint64_t cases = 2000;
  double minutes = 0;  // >0: time-boxed campaign, `cases` becomes the cap
  bool self_check = false;
  bool replay = false;
  std::uint64_t replay_seed = 0;
  HarnessOptions harness;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--cases N] [--minutes M] [--fault-mix MIX]\n"
      "          [--variants N] [--canary KIND] [--replay CASE_SEED]\n"
      "          [--self-check]\n"
      "  MIX: all | none | comma list of overflow,memory,stall\n"
      "  KIND: drop-element | duplicate-element | corrupt-payload |\n"
      "        widen-interval | stale-replay | heartbeat-overshoot\n",
      argv0);
  return 2;
}

bool ParseCanary(const std::string& name, CanaryKind* out) {
  for (int i = 0; i < kNumCanaryKinds; ++i) {
    const CanaryKind kind = static_cast<CanaryKind>(i);
    if (name == CanaryKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// Re-derives the (plan, streams) of one case seed, exactly as RunCase
/// does — used by replay and by shrinking after a campaign failure.
void RegenerateCase(std::uint64_t case_seed, const HarnessOptions& options,
                    PlanSpec* spec, std::vector<Stream>* raw,
                    std::vector<StreamProfile>* profiles) {
  pipes::Random rng(case_seed);
  GeneratedCase gc = GenerateCase(rng, options.gen);
  *spec = gc.spec;
  *profiles = gc.profiles;
  raw->clear();
  for (const StreamProfile& profile : gc.profiles) {
    raw->push_back(GenerateStream(rng, profile));
  }
}

/// Shrinks a failing case and prints the minimal repro + replay command.
void ReportFailure(std::uint64_t case_seed, const CliOptions& cli) {
  PlanSpec spec;
  std::vector<Stream> raw;
  std::vector<StreamProfile> profiles;
  RegenerateCase(case_seed, cli.harness, &spec, &raw, &profiles);

  std::cout << "shrinking...\n";
  ShrinkResult shrunk =
      Shrink(spec, raw, profiles, case_seed, cli.harness, 300);
  std::size_t total = 0;
  for (const Stream& s : shrunk.inputs) total += s.size();
  std::cout << "minimal repro (" << shrunk.spec.nodes.size() << " nodes, "
            << total << " input elements, " << shrunk.reruns << " reruns):\n"
            << shrunk.spec.ToString() << "failure: "
            << shrunk.result.Summary() << "\n";
  std::cout << "replay: pipes_fuzz --replay " << case_seed;
  if (cli.harness.fault_mix != "all") {
    std::cout << " --fault-mix " << cli.harness.fault_mix;
  }
  if (cli.harness.canary != CanaryKind::kNone) {
    std::cout << " --canary " << CanaryKindName(cli.harness.canary);
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cli.seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--cases") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cli.cases = std::strtoull(v, nullptr, 0);
    } else if (arg == "--minutes") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cli.minutes = std::strtod(v, nullptr);
      cli.cases = ~std::uint64_t{0};  // time-boxed: no case cap
    } else if (arg == "--fault-mix") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cli.harness.fault_mix = v;
    } else if (arg == "--variants") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cli.harness.schedule_variants = std::atoi(v);
    } else if (arg == "--canary") {
      const char* v = next();
      if (v == nullptr || !ParseCanary(v, &cli.harness.canary)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      cli.replay = true;
      cli.replay_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--self-check") {
      cli.self_check = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (cli.self_check) {
    std::cout << "self-check: planting canary bugs, every kind must be "
                 "caught\n";
    const bool ok = SelfCheck(cli.seed, &std::cout);
    std::cout << (ok ? "self-check passed\n" : "self-check FAILED\n");
    return ok ? 0 : 1;
  }

  if (cli.replay) {
    PlanSpec spec;
    std::vector<Stream> raw;
    std::vector<StreamProfile> profiles;
    RegenerateCase(cli.replay_seed, cli.harness, &spec, &raw, &profiles);
    std::cout << "replaying case seed " << cli.replay_seed << ":\n"
              << spec.ToString();
    CaseResult r = RunCaseOnSpec(spec, raw, profiles, cli.replay_seed,
                                 cli.harness);
    if (r.ok()) {
      std::cout << "case passed\n";
      return 0;
    }
    std::cout << "case FAILED: " << r.Summary() << "\n";
    ReportFailure(cli.replay_seed, cli);
    return 1;
  }

  const auto start = std::chrono::steady_clock::now();
  auto out_of_time = [&]() {
    if (cli.minutes <= 0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= cli.minutes * 60.0;
  };

  FuzzStats total;
  std::uint64_t index = 0;
  const std::uint64_t batch = 100;
  while (total.cases_run < cli.cases && !out_of_time()) {
    const std::uint64_t want =
        std::min<std::uint64_t>(batch, cli.cases - total.cases_run);
    // RunFuzz derives case seeds from (seed, global index), so batching
    // does not change which cases run.
    for (std::uint64_t b = 0; b < want; ++b) {
      const std::uint64_t case_seed = CaseSeed(cli.seed, index++);
      std::uint64_t arms = 0;
      PlanSpec spec;
      std::vector<Stream> raw;
      std::vector<StreamProfile> profiles;
      RegenerateCase(case_seed, cli.harness, &spec, &raw, &profiles);
      CaseResult r = RunCaseOnSpec(spec, raw, profiles, case_seed,
                                   cli.harness, &arms);
      ++total.cases_run;
      total.arms_run += arms;
      if (!r.ok()) {
        ++total.failed_cases;
        std::cout << "FAIL case " << (index - 1) << " seed " << case_seed
                  << ": " << r.Summary() << "\nplan:\n"
                  << spec.ToString();
        ReportFailure(case_seed, cli);
        return 1;
      }
      if (out_of_time()) break;
    }
    if (total.cases_run % 500 == 0 || out_of_time()) {
      std::cout << "  " << total.cases_run << " cases, " << total.arms_run
                << " arms, 0 failures\n";
    }
  }
  std::cout << "fuzz campaign passed: " << total.cases_run << " cases, "
            << total.arms_run << " arms, 0 failures\n";
  return 0;
}
