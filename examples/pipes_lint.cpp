// pipes_lint: the static contract checker for query graphs (docs/lint.md).
//
//   pipes_lint --rules                 list the rule catalog
//   pipes_lint --fixtures              self-check: every rule fires on its
//                                      broken-graph fixture
//   pipes_lint --workload traffic      lint a clean demo workload graph
//   pipes_lint --workload nexmark
//   pipes_lint --demo-plan             build a demo logical plan, lint it
//                                      in memory AND through an XML
//                                      round-trip, verify both agree
//   pipes_lint plan.xml [...]          lint stored plan documents
//
// Options: --json (machine-readable output), --fail-on=error|warning|note
// (exit 1 when a diagnostic at or above the threshold is present; default
// error). Exit codes: 0 clean (below threshold), 1 findings or fixture
// failure, 2 usage/input error.

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/fixtures.h"
#include "src/optimizer/logical_plan.h"
#include "src/optimizer/plan_xml.h"
#include "src/relational/expression.h"
#include "src/relational/schema.h"

namespace {

using pipes::analysis::Diagnostic;
using pipes::analysis::Severity;

struct Options {
  bool json = false;
  bool rules = false;
  bool fixtures = false;
  bool demo_plan = false;
  Severity fail_on = Severity::kError;
  std::vector<std::string> workloads;
  std::vector<std::string> plan_files;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--fail-on=error|warning|note] "
               "[--rules] [--fixtures] [--demo-plan] "
               "[--workload traffic|nexmark] [plan.xml ...]\n",
               argv0);
  return 2;
}

/// Renders diagnostics for one lint subject and folds its worst severity
/// into the process-wide gate.
void Report(const std::string& subject,
            const std::vector<Diagnostic>& diags, const Options& options,
            Severity* worst) {
  if (options.json) {
    std::printf("{\"subject\": \"%s\", \"diagnostics\": %s}\n",
                subject.c_str(), pipes::analysis::ToJson(diags).c_str());
  } else if (diags.empty()) {
    std::printf("%s: clean\n", subject.c_str());
  } else {
    std::printf("%s: %zu diagnostic(s)\n%s", subject.c_str(), diags.size(),
                pipes::analysis::ToText(diags).c_str());
  }
  const Severity max = pipes::analysis::MaxSeverity(diags);
  if (!diags.empty() && max > *worst) *worst = max;
}

/// A small plan with deliberate lint bait — DISTINCT over an UNBOUNDED
/// window — used to prove that linting the in-memory plan and linting its
/// XML serialization produce identical diagnostics.
pipes::optimizer::LogicalPlan DemoPlan() {
  using namespace pipes::optimizer;
  using namespace pipes::relational;
  const Schema bids({{"auction", ValueType::kInt},
                     {"bidder", ValueType::kInt},
                     {"price", ValueType::kDouble}});
  WindowSpec unbounded;
  unbounded.kind = WindowKind::kUnbounded;
  auto scan = ScanOp("bids", bids, unbounded);
  auto pricey = FilterOp(scan, MakeBinary(BinaryOp::kGt,
                                          MakeField(2, "price"),
                                          MakeLiteral(Value(10.0))));
  return DistinctOp(ProjectOp(pricey, {MakeField(0, "auction")},
                              {"auction"}));
}

int RunFixtures(const Options& options) {
  int failures = 0;
  for (const auto& fixture : pipes::analysis::BrokenGraphFixtures()) {
    const std::string error = pipes::analysis::CheckFixture(fixture);
    if (error.empty()) {
      if (!options.json) {
        std::printf("fixture %-28s %s fires as expected\n",
                    fixture.name.c_str(), fixture.rule_id.c_str());
      }
    } else {
      ++failures;
      std::fprintf(stderr, "FAIL %s\n", error.c_str());
    }
  }
  std::printf("%zu fixtures, %d failure(s)\n",
              pipes::analysis::BrokenGraphFixtures().size(), failures);
  return failures == 0 ? 0 : 1;
}

int RunDemoPlan(
    const Options& options, Severity* worst,
    const std::function<void(const std::vector<Diagnostic>&)>& gate) {
  const auto plan = DemoPlan();
  auto direct = pipes::analysis::LintPlan(plan);
  if (!direct.ok()) {
    std::fprintf(stderr, "demo-plan: %s\n",
                 direct.status().ToString().c_str());
    return 2;
  }
  const std::string xml = pipes::optimizer::ToXml(plan);
  auto via_xml = pipes::analysis::LintPlanXml(xml);
  if (!via_xml.ok()) {
    std::fprintf(stderr, "demo-plan xml: %s\n",
                 via_xml.status().ToString().c_str());
    return 2;
  }
  if (direct.value() != via_xml.value()) {
    std::fprintf(stderr,
                 "demo-plan: XML round-trip changed the diagnostics\n"
                 "in-memory:\n%svia xml:\n%s",
                 pipes::analysis::ToText(direct.value()).c_str(),
                 pipes::analysis::ToText(via_xml.value()).c_str());
    return 1;
  }
  Report("demo-plan", direct.value(), options, worst);
  gate(direct.value());
  std::printf("demo-plan: in-memory and XML round-trip diagnostics agree\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--rules") {
      options.rules = true;
    } else if (arg == "--fixtures") {
      options.fixtures = true;
    } else if (arg == "--demo-plan") {
      options.demo_plan = true;
    } else if (arg == "--fail-on=error") {
      options.fail_on = Severity::kError;
    } else if (arg == "--fail-on=warning") {
      options.fail_on = Severity::kWarning;
    } else if (arg == "--fail-on=note") {
      options.fail_on = Severity::kNote;
    } else if (arg == "--workload") {
      if (++i == argc) return Usage(argv[0]);
      options.workloads.push_back(argv[i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      options.plan_files.push_back(arg);
    }
  }
  if (!options.rules && !options.fixtures && !options.demo_plan &&
      options.workloads.empty() && options.plan_files.empty()) {
    return Usage(argv[0]);
  }

  if (options.rules) {
    for (const auto& rule : pipes::analysis::RuleCatalog()) {
      std::printf("%s  %-7s  %s\n", rule.id,
                  pipes::analysis::SeverityName(rule.severity),
                  rule.summary);
    }
  }

  int exit_code = 0;
  if (options.fixtures) {
    exit_code = std::max(exit_code, RunFixtures(options));
  }

  Severity worst = Severity::kNote;
  bool any_findings = false;
  const auto gate = [&](const std::vector<Diagnostic>& diags) {
    if (!diags.empty() &&
        pipes::analysis::MaxSeverity(diags) >= options.fail_on) {
      any_findings = true;
    }
  };

  for (const std::string& workload : options.workloads) {
    pipes::analysis::LintSubject subject;
    if (workload == "traffic") {
      subject = pipes::analysis::BuildTrafficLintGraph();
    } else if (workload == "nexmark") {
      subject = pipes::analysis::BuildNexmarkLintGraph();
    } else {
      std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
      return 2;
    }
    const auto diags = subject.LintAll();
    Report("workload:" + workload, diags, options, &worst);
    gate(diags);
  }

  if (options.demo_plan) {
    const int rc = RunDemoPlan(options, &worst, gate);
    if (rc != 0) return rc;
  }

  for (const std::string& file : options.plan_files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream xml;
    xml << in.rdbuf();
    auto diags = pipes::analysis::LintPlanXml(xml.str());
    if (!diags.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   diags.status().ToString().c_str());
      return 2;
    }
    Report(file, diags.value(), options, &worst);
    gate(diags.value());
  }

  if (any_findings) exit_code = std::max(exit_code, 1);
  return exit_code;
}
