// pipes_lint: the static contract checker for query graphs (docs/lint.md).
//
//   pipes_lint --rules                 list the rule catalog
//   pipes_lint --fixtures              self-check: every rule fires on its
//                                      broken-graph fixture
//   pipes_lint --workload traffic      lint a clean demo workload graph
//   pipes_lint --workload nexmark
//   pipes_lint --demo-plan             build a demo logical plan, lint it
//                                      in memory AND through an XML
//                                      round-trip, verify both agree
//   pipes_lint plan.xml [...]          lint stored plan documents
//   pipes_lint --certify ...           dataflow abstract interpretation:
//                                      print the per-edge fact table and
//                                      the StateCertificate for each
//                                      subject (workloads, plan files,
//                                      --demo-plan, --fuzz-corpus N)
//   pipes_lint --certify --fuzz-corpus 15
//                                      certify N generated fuzz-corpus
//                                      plans (seeded, deterministic)
//
// Options: --json (machine-readable output, schema_version stamped),
// --dot (Graphviz fact graph in certify mode), --corpus-seed N,
// --fail-on=error|warning|note (exit 1 when a diagnostic at or above the
// threshold is present; default error; in certify mode an unbounded or
// non-progressing certificate counts as a warning). Exit codes: 0 clean
// (below threshold), 1 findings or fixture failure, 2 usage/input error.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/analysis/dataflow.h"
#include "src/analysis/fixtures.h"
#include "src/common/random.h"
#include "src/optimizer/logical_plan.h"
#include "src/optimizer/plan_xml.h"
#include "src/relational/expression.h"
#include "src/relational/schema.h"
#include "src/testing/generate.h"
#include "src/testing/harness.h"
#include "src/testing/materialize.h"

namespace {

using pipes::analysis::Diagnostic;
using pipes::analysis::Severity;

struct Options {
  bool json = false;
  bool dot = false;
  bool rules = false;
  bool fixtures = false;
  bool demo_plan = false;
  bool certify = false;
  int fuzz_corpus = 0;
  std::uint64_t corpus_seed = 1;
  Severity fail_on = Severity::kError;
  std::vector<std::string> workloads;
  std::vector<std::string> plan_files;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--json] [--dot] [--fail-on=error|warning|note] "
               "[--rules] [--fixtures] [--demo-plan] [--certify] "
               "[--fuzz-corpus N] [--corpus-seed N] "
               "[--workload traffic|nexmark|espbench] [plan.xml ...]\n",
               argv0);
  return 2;
}

/// Renders diagnostics for one lint subject and folds its worst severity
/// into the process-wide gate.
void Report(const std::string& subject,
            const std::vector<Diagnostic>& diags, const Options& options,
            Severity* worst) {
  if (options.json) {
    std::printf("{\"schema_version\": %d, \"subject\": \"%s\", "
                "\"diagnostics\": %s}\n",
                pipes::analysis::kLintJsonSchemaVersion, subject.c_str(),
                pipes::analysis::ToJson(diags).c_str());
  } else if (diags.empty()) {
    std::printf("%s: clean\n", subject.c_str());
  } else {
    std::printf("%s: %zu diagnostic(s)\n%s", subject.c_str(), diags.size(),
                pipes::analysis::ToText(diags).c_str());
  }
  const Severity max = pipes::analysis::MaxSeverity(diags);
  if (!diags.empty() && max > *worst) *worst = max;
}

/// Renders one dataflow analysis (certify mode). Returns whether the
/// certificate is healthy: bounded RAM, guaranteed progress, no cycle,
/// and (when a cost cross-check ran) a cost-model rate within the
/// certified bound. An unhealthy certificate counts as a warning-level
/// finding for the --fail-on gate.
bool CertifyReport(const std::string& subject,
                   const pipes::analysis::DataflowResult& analyzed,
                   const std::vector<Diagnostic>& diags,
                   const Options& options) {
  namespace an = pipes::analysis;
  if (options.json) {
    std::printf("{\"schema_version\": %d, \"subject\": \"%s\", "
                "\"dataflow\": %s, \"diagnostics\": %s}\n",
                an::kLintJsonSchemaVersion, subject.c_str(),
                an::ToJson(analyzed).c_str(), an::ToJson(diags).c_str());
  } else if (options.dot) {
    std::printf("%s", an::ToDot(analyzed).c_str());
  } else {
    std::printf("=== %s ===\n%s", subject.c_str(),
                an::ToText(analyzed).c_str());
    if (!diags.empty()) {
      std::printf("%s", an::ToText(diags).c_str());
    }
  }
  std::vector<std::string> problems;
  if (analyzed.has_cycle) problems.push_back("graph has a cycle");
  if (!analyzed.certificate.ram_bounded()) {
    problems.push_back("RAM certificate is unbounded");
  }
  if (!analyzed.certificate.progress_ok) {
    problems.push_back("watermark progress is not guaranteed");
  }
  if (analyzed.has_cost_check && !analyzed.rate_consistent) {
    problems.push_back("cost-model rate exceeds the certified rate bound");
  }
  for (const std::string& p : problems) {
    std::fprintf(stderr, "%s: certificate: %s\n", subject.c_str(), p.c_str());
  }
  return problems.empty();
}

/// A small plan with deliberate lint bait — DISTINCT over an UNBOUNDED
/// window — used to prove that linting the in-memory plan and linting its
/// XML serialization produce identical diagnostics.
pipes::optimizer::LogicalPlan DemoPlan() {
  using namespace pipes::optimizer;
  using namespace pipes::relational;
  const Schema bids({{"auction", ValueType::kInt},
                     {"bidder", ValueType::kInt},
                     {"price", ValueType::kDouble}});
  WindowSpec unbounded;
  unbounded.kind = WindowKind::kUnbounded;
  auto scan = ScanOp("bids", bids, unbounded);
  auto pricey = FilterOp(scan, MakeBinary(BinaryOp::kGt,
                                          MakeField(2, "price"),
                                          MakeLiteral(Value(10.0))));
  return DistinctOp(ProjectOp(pricey, {MakeField(0, "auction")},
                              {"auction"}));
}

int RunFixtures(const Options& options) {
  int failures = 0;
  for (const auto& fixture : pipes::analysis::BrokenGraphFixtures()) {
    const std::string error = pipes::analysis::CheckFixture(fixture);
    if (error.empty()) {
      if (!options.json) {
        std::printf("fixture %-28s %s fires as expected\n",
                    fixture.name.c_str(), fixture.rule_id.c_str());
      }
    } else {
      ++failures;
      std::fprintf(stderr, "FAIL %s\n", error.c_str());
    }
  }
  std::printf("%zu fixtures, %d failure(s)\n",
              pipes::analysis::BrokenGraphFixtures().size(), failures);
  return failures == 0 ? 0 : 1;
}

int RunDemoPlan(
    const Options& options, Severity* worst,
    const std::function<void(const std::vector<Diagnostic>&)>& gate) {
  const auto plan = DemoPlan();
  auto direct = pipes::analysis::LintPlan(plan);
  if (!direct.ok()) {
    std::fprintf(stderr, "demo-plan: %s\n",
                 direct.status().ToString().c_str());
    return 2;
  }
  const std::string xml = pipes::optimizer::ToXml(plan);
  auto via_xml = pipes::analysis::LintPlanXml(xml);
  if (!via_xml.ok()) {
    std::fprintf(stderr, "demo-plan xml: %s\n",
                 via_xml.status().ToString().c_str());
    return 2;
  }
  if (direct.value() != via_xml.value()) {
    std::fprintf(stderr,
                 "demo-plan: XML round-trip changed the diagnostics\n"
                 "in-memory:\n%svia xml:\n%s",
                 pipes::analysis::ToText(direct.value()).c_str(),
                 pipes::analysis::ToText(via_xml.value()).c_str());
    return 1;
  }
  Report("demo-plan", direct.value(), options, worst);
  gate(direct.value());
  std::printf("demo-plan: in-memory and XML round-trip diagnostics agree\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg == "--dot") {
      options.dot = true;
    } else if (arg == "--certify") {
      options.certify = true;
    } else if (arg == "--fuzz-corpus") {
      if (++i == argc) return Usage(argv[0]);
      options.fuzz_corpus = std::atoi(argv[i]);
      if (options.fuzz_corpus <= 0) return Usage(argv[0]);
    } else if (arg == "--corpus-seed") {
      if (++i == argc) return Usage(argv[0]);
      options.corpus_seed =
          static_cast<std::uint64_t>(std::strtoull(argv[i], nullptr, 10));
    } else if (arg == "--rules") {
      options.rules = true;
    } else if (arg == "--fixtures") {
      options.fixtures = true;
    } else if (arg == "--demo-plan") {
      options.demo_plan = true;
    } else if (arg == "--fail-on=error") {
      options.fail_on = Severity::kError;
    } else if (arg == "--fail-on=warning") {
      options.fail_on = Severity::kWarning;
    } else if (arg == "--fail-on=note") {
      options.fail_on = Severity::kNote;
    } else if (arg == "--workload") {
      if (++i == argc) return Usage(argv[0]);
      options.workloads.push_back(argv[i]);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      options.plan_files.push_back(arg);
    }
  }
  if (!options.rules && !options.fixtures && !options.demo_plan &&
      options.workloads.empty() && options.plan_files.empty() &&
      options.fuzz_corpus == 0) {
    return Usage(argv[0]);
  }
  // --fuzz-corpus and --dot only make sense in certify mode.
  if ((options.fuzz_corpus > 0 || options.dot) && !options.certify) {
    return Usage(argv[0]);
  }

  if (options.rules) {
    for (const auto& rule : pipes::analysis::RuleCatalog()) {
      std::printf("%s  %-7s  %s\n", rule.id,
                  pipes::analysis::SeverityName(rule.severity),
                  rule.summary);
    }
  }

  int exit_code = 0;
  if (options.fixtures) {
    exit_code = std::max(exit_code, RunFixtures(options));
  }

  Severity worst = Severity::kNote;
  bool any_findings = false;
  const auto gate = [&](const std::vector<Diagnostic>& diags) {
    if (!diags.empty() &&
        pipes::analysis::MaxSeverity(diags) >= options.fail_on) {
      any_findings = true;
    }
  };
  // Certify-mode health gate: an unhealthy certificate is a warning-level
  // finding even when no diagnostic rule fired.
  const auto cert_gate = [&](bool healthy) {
    if (!healthy && Severity::kWarning >= options.fail_on) {
      any_findings = true;
    }
  };

  for (const std::string& workload : options.workloads) {
    pipes::analysis::LintSubject subject;
    if (workload == "traffic") {
      subject = pipes::analysis::BuildTrafficLintGraph();
    } else if (workload == "nexmark") {
      subject = pipes::analysis::BuildNexmarkLintGraph();
    } else if (workload == "espbench") {
      subject = pipes::analysis::BuildEspbenchLintGraph();
    } else {
      std::fprintf(stderr, "unknown workload '%s'\n", workload.c_str());
      return 2;
    }
    const auto diags = subject.LintAll();
    if (options.certify) {
      const auto analyzed = pipes::analysis::AnalyzeDataflow(*subject.graph);
      cert_gate(
          CertifyReport("workload:" + workload, analyzed, diags, options));
    } else {
      Report("workload:" + workload, diags, options, &worst);
    }
    gate(diags);
  }

  if (options.demo_plan) {
    if (options.certify) {
      const auto plan = DemoPlan();
      auto analyzed = pipes::analysis::AnalyzeDataflowPlan(plan);
      auto diags = pipes::analysis::LintPlan(plan);
      if (!analyzed.ok() || !diags.ok()) {
        std::fprintf(stderr, "demo-plan: %s\n",
                     (!analyzed.ok() ? analyzed.status() : diags.status())
                         .ToString()
                         .c_str());
        return 2;
      }
      cert_gate(
          CertifyReport("demo-plan", analyzed.value(), diags.value(), options));
      gate(diags.value());
    } else {
      const int rc = RunDemoPlan(options, &worst, gate);
      if (rc != 0) return rc;
    }
  }

  for (const std::string& file : options.plan_files) {
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot read '%s'\n", file.c_str());
      return 2;
    }
    std::ostringstream xml;
    xml << in.rdbuf();
    auto diags = pipes::analysis::LintPlanXml(xml.str());
    if (!diags.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   diags.status().ToString().c_str());
      return 2;
    }
    if (options.certify) {
      auto plan = pipes::optimizer::FromXml(xml.str());
      if (!plan.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     plan.status().ToString().c_str());
        return 2;
      }
      auto analyzed = pipes::analysis::AnalyzeDataflowPlan(plan.value());
      if (!analyzed.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     analyzed.status().ToString().c_str());
        return 2;
      }
      cert_gate(CertifyReport(file, analyzed.value(), diags.value(), options));
    } else {
      Report(file, diags.value(), options, &worst);
    }
    gate(diags.value());
  }

  // Certify a deterministic slice of the fuzz corpus: the same generator
  // and seed schedule the fuzz harness uses, materialized with pristine
  // options (no faults, no canaries). Gated on the dataflow rules plus
  // certificate health only — generated plans may legitimately trip
  // structural lint rules (e.g. distinct-over-unbounded bait).
  for (int i = 0; i < options.fuzz_corpus; ++i) {
    pipes::Random rng(pipes::testing::CaseSeed(options.corpus_seed,
                                               static_cast<std::uint64_t>(i)));
    const pipes::testing::GeneratedCase gc =
        pipes::testing::GenerateCase(rng);
    std::vector<pipes::testing::Stream> raw;
    raw.reserve(gc.profiles.size());
    for (const auto& profile : gc.profiles) {
      raw.push_back(pipes::testing::GenerateStream(rng, profile));
    }
    const auto m = pipes::testing::Materialize(gc.spec, raw, gc.profiles);
    if (!m->build_failures.empty()) {
      std::fprintf(stderr, "fuzz-corpus[%d]: materialization failed\n", i);
      return 2;
    }
    const auto analyzed = pipes::analysis::AnalyzeDataflow(m->graph);
    const auto diags = pipes::analysis::DataflowDiagnostics(m->graph);
    char subject[64];
    std::snprintf(subject, sizeof(subject), "fuzz-corpus[%d](seed=%llu)", i,
                  static_cast<unsigned long long>(options.corpus_seed));
    cert_gate(CertifyReport(subject, analyzed, diags, options));
    gate(diags);
  }

  if (any_findings) exit_code = std::max(exit_code, 1);
  return exit_code;
}
