// Multi-tenant continuous-query server: one `engine::Engine` with a
// synthetic "trades" stream behind the PIPES TCP front end. Clients
// (examples/pipes_top.cpp --connect, bench/bench_server.cc, or anything
// speaking docs/server.md's framing) register CQL queries, fetch results,
// and pull metrics snapshots; overlapping queries from different tenants
// share subplans on the one live graph.
//
// Usage:
//   pipes_serve [--port N] [--rate-hz N]   serve until SIGINT/SHUTDOWN frame
//   pipes_serve --smoke                    self-drive: start on an ephemeral
//                                          port, run a client conversation
//                                          (register -> fetch -> snapshot ->
//                                          cancel -> shutdown), exit 0.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "src/common/random.h"
#include "src/engine/engine.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace {

using pipes::Random;
using pipes::StreamElement;
using pipes::Timestamp;
using pipes::relational::Schema;
using pipes::relational::Tuple;
using pipes::relational::Value;
using pipes::relational::ValueType;

Schema TradesSchema() {
  return Schema({{"symbol", ValueType::kInt},
                 {"price", ValueType::kDouble},
                 {"volume", ValueType::kInt}});
}

/// Pushes synthetic trades through the engine's locked StreamWriter until
/// `stop` flips. Stream time advances `step_ms` per tuple regardless of
/// wall-clock pacing, so windowed queries close at a predictable rate.
void FeedTrades(pipes::engine::StreamWriter writer, std::atomic<bool>& stop,
                int rate_hz) {
  Random rng(17);
  Timestamp now = 0;
  const Timestamp step_ms = 100;
  while (!stop.load()) {
    Tuple trade{Value(static_cast<std::int64_t>(rng.NextBounded(5))),
                Value(rng.UniformDouble(10, 500)),
                Value(static_cast<std::int64_t>(rng.NextBounded(1000)))};
    if (!writer.Push(std::move(trade), now).ok()) break;
    now += step_ms;
    if (rate_hz > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(1'000'000 / rate_hz));
    }
  }
  (void)writer.Close();
}

int RunSmoke(pipes::engine::Engine& engine, pipes::server::PipesServer& server,
             std::atomic<bool>& stop_feed) {
  namespace server_ns = pipes::server;
  std::printf("smoke: server on 127.0.0.1:%d\n", server.port());

  auto client = server_ns::Client::Connect("127.0.0.1", server.port(), "smoke");
  if (!client.ok()) {
    std::fprintf(stderr, "smoke: connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  if (const auto s = client->Ping(); !s.ok()) {
    std::fprintf(stderr, "smoke: ping failed: %s\n", s.ToString().c_str());
    return 1;
  }

  auto vwap = client->Register(
      "SELECT symbol, AVG(price) AS vwap FROM trades "
      "[RANGE 1 SECONDS SLIDE 1 SECONDS] GROUP BY symbol");
  if (!vwap.ok()) {
    std::fprintf(stderr, "smoke: register failed: %s\n",
                 vwap.status().ToString().c_str());
    return 1;
  }
  std::printf("smoke: registered query %llu schema %s\n",
              static_cast<unsigned long long>(vwap->query_id),
              vwap->schema.c_str());

  // A second, overlapping query: proves multi-query registration works
  // through the wire (the engine shares its scan subplan with the first).
  auto high = client->Register(
      "SELECT symbol, MAX(price) AS high FROM trades "
      "[RANGE 1 SECONDS SLIDE 1 SECONDS] GROUP BY symbol");
  if (!high.ok()) {
    std::fprintf(stderr, "smoke: second register failed: %s\n",
                 high.status().ToString().c_str());
    return 1;
  }

  // Fetch until the windowed query emits (the feeder advances stream time
  // 100ms per tuple, so 1-second windows close quickly).
  std::size_t rows = 0;
  for (int attempt = 0; attempt < 200 && rows == 0; ++attempt) {
    auto fetched = client->Fetch(vwap->query_id, 128);
    if (!fetched.ok()) {
      std::fprintf(stderr, "smoke: fetch failed: %s\n",
                   fetched.status().ToString().c_str());
      return 1;
    }
    rows = fetched->size();
    if (rows > 0) {
      std::printf("smoke: first results (%zu rows):\n", rows);
      for (std::size_t i = 0; i < std::min<std::size_t>(3, rows); ++i) {
        std::printf("  [%lld, %lld) %s\n",
                    static_cast<long long>((*fetched)[i].start),
                    static_cast<long long>((*fetched)[i].end),
                    (*fetched)[i].tuple.c_str());
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (rows == 0) {
    std::fprintf(stderr, "smoke: no results after 200 fetches\n");
    return 1;
  }

  auto snapshot = client->SnapshotJson(/*whole_graph=*/false);
  if (!snapshot.ok() || snapshot->empty()) {
    std::fprintf(stderr, "smoke: snapshot failed: %s\n",
                 snapshot.ok() ? "empty" : snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("smoke: tenant snapshot is %zu bytes of JSON\n",
              snapshot->size());

  if (const auto s = client->Cancel(high->query_id); !s.ok()) {
    std::fprintf(stderr, "smoke: cancel failed: %s\n", s.ToString().c_str());
    return 1;
  }
  // The first query must keep producing after the overlapping one dies —
  // the shared prefix stays (cancel never quiesces the graph).
  auto after = client->Fetch(vwap->query_id, 128);
  if (!after.ok()) {
    std::fprintf(stderr, "smoke: post-cancel fetch failed: %s\n",
                 after.status().ToString().c_str());
    return 1;
  }

  const auto counters = engine.tenant_counters("smoke");
  std::printf("smoke: tenant counters registered=%llu live=%llu "
              "cancelled=%llu delivered=%llu\n",
              static_cast<unsigned long long>(counters.registered),
              static_cast<unsigned long long>(counters.live),
              static_cast<unsigned long long>(counters.cancelled),
              static_cast<unsigned long long>(counters.results_delivered));

  stop_feed.store(true);
  if (const auto s = client->Shutdown(); !s.ok()) {
    std::fprintf(stderr, "smoke: shutdown failed: %s\n", s.ToString().c_str());
    return 1;
  }
  client->Close();
  server.Wait();
  std::printf("smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int port = 0;
  int rate_hz = 2000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--rate-hz") == 0 && i + 1 < argc) {
      rate_hz = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--rate-hz N] [--smoke]\n", argv[0]);
      return 2;
    }
  }

  pipes::engine::EngineOptions options;
  options.memory_budget_bytes = 64u << 20;
  options.admission = pipes::engine::AdmissionPolicy::kReject;
  pipes::engine::Engine engine(options);

  auto writer = engine.AddStream("trades", TradesSchema(), /*rate_hint=*/10.0);
  PIPES_CHECK_MSG(writer.ok(), writer.status().ToString().c_str());

  pipes::server::ServerOptions server_options;
  server_options.port = static_cast<std::uint16_t>(port);
  pipes::server::PipesServer server(engine, server_options);
  if (const auto s = server.Start(); !s.ok()) {
    // Sandboxes without loopback sockets land here; the smoke run reports
    // success-with-skip so offline builds stay green.
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    if (smoke) {
      std::printf("smoke: SKIPPED (no sockets available)\n");
      return 0;
    }
    return 1;
  }

  std::atomic<bool> stop_feed{false};
  // Throttled even in smoke mode: an unpaced feeder stages work faster
  // than teardown can drain it.
  std::thread feeder(
      [&] { FeedTrades(*writer, stop_feed, smoke ? 4000 : rate_hz); });

  int exit_code = 0;
  if (smoke) {
    exit_code = RunSmoke(engine, server, stop_feed);
  } else {
    std::printf("pipes_serve listening on 127.0.0.1:%d (stream: trades%s)\n",
                server.port(), TradesSchema().ToString().c_str());
    std::printf("send a SHUTDOWN frame (or kill the process) to stop\n");
    server.Wait();
  }

  stop_feed.store(true);
  feeder.join();
  server.Stop();
  return exit_code;
}
