// pipes_top: a `top`-style text dashboard over a running query graph.
//
// Drives a two-query workload (a shared sensor source feeding a filtered
// windowed average and a raw counter) with a SingleThreadScheduler, and
// between scheduling bursts captures a MetricsSnapshot — per-node element
// counts, selectivities, queue/state sizes, watermark lag, scheduler
// service times — and renders it as a table. Rates are computed against the
// previous frame, exactly how an external monitor would use the snapshot
// API against a live system.
//
// The run is deterministic and terminating (a fixed element budget), so it
// doubles as a smoke test for the observability layer.
//
// With `--connect host:port` the dashboard attaches to a running
// `pipes_serve` instead: each frame pulls a whole-graph snapshot over the
// wire (SNAPSHOT frame -> JSON -> SnapshotFromJson) and renders the same
// table — the monitor never touches the engine's memory.
//
// Flags:
//   --frames N          number of dashboard frames (default 5)
//   --json              dump the final snapshot as JSON instead of a table
//   --dot               dump the final snapshot as Graphviz DOT
//   --connect HOST:PORT monitor a remote engine instead of the local demo
//   --interval-ms N     frame interval in remote mode (default 500)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "src/algebra/aggregate.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/metrics.h"
#include "src/core/pipeline.h"
#include "src/core/sink.h"
#include "src/metadata/snapshot.h"
#include "src/scheduler/profiler.h"
#include "src/scheduler/scheduler.h"
#include "src/server/client.h"

namespace {

using namespace pipes;  // NOLINT: example brevity

constexpr int kReadings = 200'000;

void BuildWorkload(QueryGraph& graph) {
  // Sensor: one reading per ms, values cycling 0..99.
  Timestamp now = 0;
  auto& sensor = graph.Add<FunctionSource<int>>(
      [now]() mutable -> std::optional<StreamElement<int>> {
        if (now >= kReadings) return std::nullopt;
        const Timestamp t = now++;
        return StreamElement<int>::Point(static_cast<int>(t % 100), t);
      },
      "sensor");

  // Query 1: valid readings -> 50ms window -> average.
  dsl::From(graph, sensor)
      | dsl::Filter([](int v) { return v < 75; }, "valid")
      | dsl::TimeWindow(50, "50ms")
      | dsl::Average([](int v) { return static_cast<double>(v); })
      | dsl::Detach("q1-out")
      | dsl::Into(std::make_unique<CountingSink<double>>("q1-sink"));

  // Query 2: raw reading count off the same (shared) source.
  dsl::From(graph, sensor)
      | dsl::Detach("q2-out")
      | dsl::Into(std::make_unique<CountingSink<int>>("q2-sink"));
}

void PrintFrame(int frame, const metadata::MetricsSnapshot& snap,
                const metadata::MetricsSnapshot& prev, double elapsed_s) {
  std::printf("\n== frame %d  (high watermark %lld) %s\n", frame,
              static_cast<long long>(snap.high_watermark),
              std::string(40, '=').c_str());
  std::printf("%-12s %10s %10s %10s %6s %7s %8s %9s %9s %10s\n", "node", "in",
              "out", "el/s", "sel", "queue", "lag", "state-B", "spill-B",
              "sched-us");
  for (const metadata::NodeSnapshot& n : snap.nodes) {
    const metadata::NodeSnapshot* p = prev.FindNode(n.id);
    const double rate =
        (p != nullptr && elapsed_s > 0)
            ? static_cast<double>(n.elements_out - p->elements_out) / elapsed_s
            : 0.0;
    std::printf(
        "%-12s %10llu %10llu %10.0f %6.2f %7llu %8lld %9llu %9llu %10.1f\n",
        n.name.c_str(), static_cast<unsigned long long>(n.elements_in),
        static_cast<unsigned long long>(n.elements_out), rate, n.selectivity,
        static_cast<unsigned long long>(n.queue_size),
        static_cast<long long>(n.watermark_lag),
        static_cast<unsigned long long>(n.memory_bytes),
        static_cast<unsigned long long>(n.spilled_bytes),
        static_cast<double>(n.sched_service_ns) / 1e3);
  }
  if (snap.memory.present) {
    std::printf("memory: %llu / %llu bytes over %llu users\n",
                static_cast<unsigned long long>(snap.memory.usage_bytes),
                static_cast<unsigned long long>(snap.memory.budget_bytes),
                static_cast<unsigned long long>(snap.memory.users));
    if (snap.memory.disk_usage_bytes > 0 || snap.memory.spill_users > 0) {
      std::printf("disk:   %llu / %llu bytes over %llu spill users\n",
                  static_cast<unsigned long long>(
                      snap.memory.disk_usage_bytes),
                  static_cast<unsigned long long>(
                      snap.memory.disk_budget_bytes),
                  static_cast<unsigned long long>(snap.memory.spill_users));
    }
  }
}

/// Remote mode: the same dashboard against a live pipes_serve, one
/// whole-graph snapshot per frame over the wire.
int MonitorRemote(const std::string& endpoint, int frames, int interval_ms,
                  bool dump_json, bool dump_dot) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "--connect wants HOST:PORT, got %s\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);

  auto client = server::Client::Connect(host, port, "pipes-top");
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  metadata::MetricsSnapshot prev;
  std::int64_t prev_ns = obs::SteadyNowNs();
  for (int frame = 1; frame <= frames; ++frame) {
    auto json = client->SnapshotJson(/*whole_graph=*/true);
    if (!json.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    if (frame == frames && dump_json) {
      std::printf("%s\n", json->c_str());
      return 0;
    }
    auto snap = metadata::SnapshotFromJson(*json);
    if (!snap.ok()) {
      std::fprintf(stderr, "bad snapshot JSON: %s\n",
                   snap.status().ToString().c_str());
      return 1;
    }
    if (frame == frames && dump_dot) {
      std::printf("%s", metadata::ToDot(*snap).c_str());
      return 0;
    }
    const std::int64_t now_ns = obs::SteadyNowNs();
    PrintFrame(frame, *snap, prev,
               static_cast<double>(now_ns - prev_ns) / 1e9);
    prev = *std::move(snap);
    prev_ns = now_ns;
    if (frame < frames) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int frames = 5;
  bool dump_json = false;
  bool dump_dot = false;
  std::string connect;
  int interval_ms = 500;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) dump_json = true;
    if (std::strcmp(argv[i], "--dot") == 0) dump_dot = true;
    if (std::strcmp(argv[i], "--frames") == 0 && i + 1 < argc) {
      frames = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect = argv[++i];
    }
    if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::atoi(argv[++i]);
    }
  }

  if (!connect.empty()) {
    return MonitorRemote(connect, frames, interval_ms, dump_json, dump_dot);
  }

  obs::SetMetricsEnabled(true);
  QueryGraph graph;
  BuildWorkload(graph);

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy, /*batch_size=*/256);
  scheduler::Profiler profiler;
  driver.set_profiler(&profiler);

  metadata::CaptureOptions capture;
  capture.profiler = &profiler;

  metadata::MetricsSnapshot prev = metadata::CaptureSnapshot(graph, capture);
  std::int64_t prev_ns = obs::SteadyNowNs();

  for (int frame = 1; frame <= frames; ++frame) {
    // One burst of scheduling per frame; a real monitor would sleep here
    // instead, but a fixed step count keeps the demo deterministic.
    for (int step = 0; step < 2000 && driver.Step(); ++step) {
    }
    const metadata::MetricsSnapshot snap =
        metadata::CaptureSnapshot(graph, capture);
    const std::int64_t now_ns = obs::SteadyNowNs();
    if (!dump_json && !dump_dot) {
      PrintFrame(frame, snap, prev,
                 static_cast<double>(now_ns - prev_ns) / 1e9);
    }
    prev = snap;
    prev_ns = now_ns;
  }

  // Drain whatever the frame budget left over, then report.
  driver.RunToCompletion();
  const metadata::MetricsSnapshot final_snap =
      metadata::CaptureSnapshot(graph, capture);
  if (dump_json) {
    std::printf("%s\n", metadata::ToJson(final_snap).c_str());
  } else if (dump_dot) {
    std::printf("%s", metadata::ToDot(final_snap).c_str());
  } else {
    PrintFrame(frames + 1, final_snap, prev, 0.0);
    std::printf("\n-- scheduler profile --\n%s", profiler.Summary().c_str());
  }
  return 0;
}
