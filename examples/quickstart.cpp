// Quickstart: build a query with the fluent pipeline API, register it on a
// `pipes::Engine`, and observe windowed aggregates through its QueryHandle.
//
//   temperature readings -> filter (valid range) -> 10s time window
//                        -> average -> result callback
//
// Each `|` stage adds one operator to the graph and subscribes it to the
// previous stage — sugar over the publish-subscribe core, where operators
// connect directly (no queues) and results stream out incrementally as
// watermarks advance. The engine owns the graph, executor, and the query's
// lifecycle: `Register` grafts the pipeline on, the handle streams results
// out, and `Cancel` would tear it down without stopping anything else
// (DESIGN.md §4g).

#include <cstdio>
#include <optional>

#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/pipeline.h"
#include "src/engine/engine.h"

namespace {

struct Reading {
  double celsius;
};

}  // namespace

int main() {
  using namespace pipes;  // NOLINT: example brevity
  using relational::Tuple;
  using relational::Value;

  engine::Engine engine;
  Random rng(7);

  // One pipeline query, built against the engine's graph. The builder runs
  // under the engine's mutation protocol, so the same call works while
  // other queries stream.
  Timestamp now = 0;
  auto handle = engine.Register(
      [&](QueryGraph& graph) -> Result<Source<Tuple>*> {
        // An adapter wrapping a "raw sensor" into a source: one reading
        // every second (timestamps in ms), 60 seconds total.
        auto& sensor = graph.Add<FunctionSource<Reading>>(
            [&rng, &now]() -> std::optional<StreamElement<Reading>> {
              if (now >= 60'000) return std::nullopt;
              const Timestamp t = now;
              now += 1000;
              // Occasional bogus reading from a flaky sensor.
              const double celsius = rng.Bernoulli(0.1)
                                         ? -273.0
                                         : 20.0 + 5.0 * rng.Gaussian();
              return StreamElement<Reading>::Point(Reading{celsius}, t);
            },
            "thermometer");

        auto tail =
            dsl::From(graph, sensor)
            | dsl::Filter([](const Reading& r) { return r.celsius > -50; },
                          "valid")
            | dsl::TimeWindow(10'000, "10s")
            | dsl::Average([](const Reading& r) { return r.celsius; })
            | dsl::Map([](double avg) { return Tuple{Value(avg)}; },
                       "to-tuple");
        return &tail.source();
      });
  PIPES_CHECK_MSG(handle.ok(), handle.status().ToString().c_str());

  PIPES_CHECK(handle
                  ->OnResult([](const StreamElement<Tuple>& e) {
                    std::printf("avg over [%6lld ms, %6lld ms) = %5.2f C\n",
                                static_cast<long long>(e.start()),
                                static_cast<long long>(e.end()),
                                e.payload.field(0).AsDouble());
                  })
                  .ok());

  const scheduler::RunStats stats = engine.RunToCompletion();

  const Node* filter = nullptr;
  for (const Node* node : engine.graph().nodes()) {
    if (node->name() == "valid") filter = node;
  }

  std::printf("--\nprocessed %llu work units in %llu scheduling steps\n",
              static_cast<unsigned long long>(stats.units),
              static_cast<unsigned long long>(stats.iterations));
  std::printf("filter passed %llu of %llu readings\n",
              static_cast<unsigned long long>(filter->elements_out()),
              static_cast<unsigned long long>(filter->elements_in()));
  std::printf("query %llu delivered %llu windowed averages\n",
              static_cast<unsigned long long>(handle->id()),
              static_cast<unsigned long long>(handle->results_delivered()));
  return 0;
}
