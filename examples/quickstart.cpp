// Quickstart: build a query with the fluent pipeline API, run it with a
// scheduler, and observe windowed aggregates.
//
//   temperature readings -> filter (valid range) -> 10s time window
//                        -> average -> print
//
// Each `|` stage adds one operator to the graph and subscribes it to the
// previous stage — sugar over the publish-subscribe core, where operators
// connect directly (no queues) and results stream out incrementally as
// watermarks advance.

#include <cstdio>
#include <memory>
#include <optional>

#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/pipeline.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace {

struct Reading {
  double celsius;
};

}  // namespace

int main() {
  using namespace pipes;  // NOLINT: example brevity

  QueryGraph graph;
  Random rng(7);

  // An adapter wrapping a "raw sensor" into a source: one reading every
  // second (timestamps in ms), 60 seconds total.
  Timestamp now = 0;
  auto& sensor = graph.Add<FunctionSource<Reading>>(
      [&]() -> std::optional<StreamElement<Reading>> {
        if (now >= 60'000) return std::nullopt;
        const Timestamp t = now;
        now += 1000;
        // Occasional bogus reading from a flaky sensor.
        const double celsius = rng.Bernoulli(0.1)
                                   ? -273.0
                                   : 20.0 + 5.0 * rng.Gaussian();
        return StreamElement<Reading>::Point(Reading{celsius}, t);
      },
      "thermometer");

  dsl::From(graph, sensor)
      | dsl::Filter([](const Reading& r) { return r.celsius > -50; }, "valid")
      | dsl::TimeWindow(10'000, "10s")
      | dsl::Average([](const Reading& r) { return r.celsius; })
      | dsl::Into(std::make_unique<CallbackSink<double>>(
            [](const StreamElement<double>& e) {
              std::printf("avg over [%6lld ms, %6lld ms) = %5.2f C\n",
                          static_cast<long long>(e.start()),
                          static_cast<long long>(e.end()), e.payload);
            },
            "printer"));

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  const scheduler::RunStats stats = driver.RunToCompletion();

  const Node* filter = nullptr;
  for (const Node* node : graph.nodes()) {
    if (node->name() == "valid") filter = node;
  }

  std::printf("--\nprocessed %llu work units in %llu scheduling steps\n",
              static_cast<unsigned long long>(stats.units),
              static_cast<unsigned long long>(stats.iterations));
  std::printf("filter passed %llu of %llu readings\n",
              static_cast<unsigned long long>(filter->elements_out()),
              static_cast<unsigned long long>(filter->elements_in()));
  return 0;
}
