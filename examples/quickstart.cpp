// Quickstart: build a query graph by hand with the generic operator
// algebra, run it with a scheduler, and observe windowed aggregates.
//
//   temperature readings -> filter (valid range) -> 10s time window
//                        -> average -> print
//
// Demonstrates the publish-subscribe core: operators connect directly (no
// queues), results stream out incrementally as watermarks advance.

#include <cstdio>
#include <optional>

#include "src/algebra/aggregate.h"
#include "src/algebra/filter.h"
#include "src/algebra/window.h"
#include "src/common/random.h"
#include "src/core/generator_source.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/scheduler/scheduler.h"

namespace {

struct Reading {
  double celsius;
};

}  // namespace

int main() {
  using namespace pipes;  // NOLINT: example brevity

  QueryGraph graph;
  Random rng(7);

  // An adapter wrapping a "raw sensor" into a source: one reading every
  // second (timestamps in ms), 60 seconds total.
  Timestamp now = 0;
  auto& sensor = graph.Add<FunctionSource<Reading>>(
      [&]() -> std::optional<StreamElement<Reading>> {
        if (now >= 60'000) return std::nullopt;
        const Timestamp t = now;
        now += 1000;
        // Occasional bogus reading from a flaky sensor.
        const double celsius = rng.Bernoulli(0.1)
                                   ? -273.0
                                   : 20.0 + 5.0 * rng.Gaussian();
        return StreamElement<Reading>::Point(Reading{celsius}, t);
      },
      "thermometer");

  auto valid = [](const Reading& r) { return r.celsius > -50; };
  auto& filter =
      graph.Add<algebra::Filter<Reading, decltype(valid)>>(valid, "valid");

  auto& window = graph.Add<algebra::TimeWindow<Reading>>(10'000, "10s");

  auto value = [](const Reading& r) { return r.celsius; };
  auto& average = graph.Add<algebra::TemporalAggregate<
      Reading, algebra::AvgAgg<double>, decltype(value)>>(value, "avg");

  auto& printer = graph.Add<CallbackSink<double>>(
      [](const StreamElement<double>& e) {
        std::printf("avg over [%6lld ms, %6lld ms) = %5.2f C\n",
                    static_cast<long long>(e.start()),
                    static_cast<long long>(e.end()), e.payload);
      },
      "printer");

  sensor.SubscribeTo(filter.input());
  filter.SubscribeTo(window.input());
  window.SubscribeTo(average.input());
  average.SubscribeTo(printer.input());

  scheduler::RoundRobinStrategy strategy;
  scheduler::SingleThreadScheduler driver(graph, strategy);
  const scheduler::RunStats stats = driver.RunToCompletion();

  std::printf("--\nprocessed %llu work units in %llu scheduling steps\n",
              static_cast<unsigned long long>(stats.units),
              static_cast<unsigned long long>(stats.iterations));
  std::printf("filter passed %llu of %llu readings\n",
              static_cast<unsigned long long>(filter.elements_out()),
              static_cast<unsigned long long>(filter.elements_in()));
  return 0;
}
