// Traffic-management scenario (the paper's first demo application):
// loop-detector streams from an FSP-style highway section, analyzed by two
// continuous CQL queries registered on a `pipes::Engine`:
//
//   Q1: average HOV-lane speed per direction over the last hour,
//       refreshed every 15 minutes.
//   Q2: per-detector 15-minute average speed, refreshed every 5 minutes —
//       sustained low averages indicate incidents / congestion.
//
// An incident is injected between 1h and 1h30 near detector 4; watch Q2's
// averages collapse there. The engine owns the graph, shares the scan
// between the queries, and streams results through each query's handle;
// the metadata monitor samples the source between pumps.

#include <cstdio>
#include <iostream>
#include <optional>

#include "src/core/generator_source.h"
#include "src/engine/engine.h"
#include "src/metadata/monitor.h"
#include "src/workloads/traffic.h"

namespace {

using pipes::relational::Schema;
using pipes::relational::Tuple;
using pipes::relational::Value;
using pipes::relational::ValueType;

Schema TrafficSchema() {
  return Schema({{"detector", ValueType::kInt},
                 {"lane", ValueType::kInt},
                 {"direction", ValueType::kInt},
                 {"speed", ValueType::kDouble},
                 {"length", ValueType::kDouble}});
}

Tuple ToTuple(const pipes::workloads::TrafficReading& r) {
  return Tuple{Value(static_cast<std::int64_t>(r.detector)),
               Value(static_cast<std::int64_t>(r.lane)),
               Value(static_cast<std::int64_t>(r.direction)),
               Value(r.speed_kmh), Value(r.length_m)};
}

}  // namespace

int main() {
  using namespace pipes;  // NOLINT: example brevity

  // --- Workload: 4 hours of traffic with one incident ----------------------
  workloads::TrafficOptions options;
  options.num_detectors = 8;
  options.num_lanes = 3;  // lane 0 = HOV
  options.duration_ms = 4ll * 3600 * 1000;
  options.base_rate_per_s = 0.05;
  workloads::TrafficIncident incident;
  incident.begin = 3600'000;
  incident.end = 5400'000;
  incident.detector = 4;
  incident.direction = 0;
  incident.speed_factor = 0.25;
  options.incidents = {incident};
  workloads::TrafficGenerator generator(options);

  // --- Engine + generator-driven stream ------------------------------------
  engine::Engine engine;
  auto& source = engine.graph().Add<FunctionSource<Tuple>>(
      [&]() -> std::optional<StreamElement<Tuple>> {
        auto reading = generator.Next();
        if (!reading.has_value()) return std::nullopt;
        return StreamElement<Tuple>::Point(ToTuple(*reading),
                                           reading->timestamp);
      },
      "loop-detectors");
  PIPES_CHECK(engine
                  .BindStream("traffic", TrafficSchema(), source,
                              /*rate_hint=*/100.0)
                  .ok());

  // --- Continuous queries ---------------------------------------------------
  const char* q1_text =
      "SELECT direction, AVG(speed) AS avg_speed "
      "FROM traffic [RANGE 1 HOURS SLIDE 15 MINUTES] "
      "WHERE lane = 0 GROUP BY direction";
  const char* q2_text =
      "SELECT detector, AVG(speed) AS avg_speed "
      "FROM traffic [RANGE 15 MINUTES SLIDE 5 MINUTES] "
      "WHERE direction = 0 GROUP BY detector";

  // The one CQL entry path: compile to inspect, register to run.
  auto q1_compiled = cql::Compile(q1_text, engine.catalog());
  PIPES_CHECK_MSG(q1_compiled.ok(), q1_compiled.status().ToString().c_str());
  std::printf("Q1 plan:\n%s\n", (q1_compiled->plan)->ToString().c_str());
  auto q2_compiled = cql::Compile(q2_text, engine.catalog());
  PIPES_CHECK_MSG(q2_compiled.ok(), q2_compiled.status().ToString().c_str());
  std::printf("Q2 plan:\n%s\n", (q2_compiled->plan)->ToString().c_str());

  auto q1 = engine.Register(q1_text);
  PIPES_CHECK_MSG(q1.ok(), q1.status().ToString().c_str());
  auto q2 = engine.Register(q2_text);
  PIPES_CHECK_MSG(q2.ok(), q2.status().ToString().c_str());

  PIPES_CHECK(q1->OnResult([](const StreamElement<Tuple>& e) {
                   std::printf(
                       "[Q1] dir=%lld  avg HOV speed %5.1f km/h  during "
                       "%lldm-%lldm\n",
                       static_cast<long long>(e.payload.field(0).AsInt()),
                       e.payload.field(1).AsDouble(),
                       static_cast<long long>(e.start() / 60000),
                       static_cast<long long>(e.end() / 60000));
                 }).ok());

  int alarms = 0;
  PIPES_CHECK(q2->OnResult([&alarms](const StreamElement<Tuple>& e) {
                   const double avg = e.payload.field(1).AsDouble();
                   if (avg < 40.0) {
                     ++alarms;
                     std::printf(
                         "[Q2] ALERT detector=%lld avg speed %5.1f km/h "
                         "during %lldm-%lldm\n",
                         static_cast<long long>(e.payload.field(0).AsInt()),
                         avg, static_cast<long long>(e.start() / 60000),
                         static_cast<long long>(e.end() / 60000));
                   }
                 }).ok());

  // --- Secondary metadata ----------------------------------------------------
  metadata::Monitor monitor;
  monitor.Watch(source, {metadata::MetricKind::kOutputRate,
                         metadata::MetricKind::kSubscriberCount});

  while (engine.Pump(1024) > 0) {
    monitor.Sample();
  }

  const engine::EngineStats stats = engine.stats();
  std::printf("--\n%d congestion alerts (incident at detector 4, 60m-90m)\n",
              alarms);
  std::printf("operators created=%zu reused=%zu\n", stats.operators_created,
              stats.operators_reused);
  std::printf("\nmonitor output:\n");
  metadata::Monitor::WriteCsvHeader(std::cout);
  monitor.WriteCsv(std::cout);
  return 0;
}
