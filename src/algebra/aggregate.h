#ifndef PIPES_ALGEBRA_AGGREGATE_H_
#define PIPES_ALGEBRA_AGGREGATE_H_

#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "src/algebra/aggregates.h"
#include "src/common/macros.h"
#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// Temporal aggregation with the sweep-line algorithm: the time axis is
/// partitioned into segments by the interval endpoints seen so far; each
/// segment carries a partial aggregate of every element whose validity
/// covers it. When the watermark passes a segment's end the segment is
/// final and one output element (aggregate value, segment interval) is
/// emitted — the snapshot of the output at any t is exactly the aggregate
/// of the input snapshot at t. The operator is non-blocking: it emits as
/// progress permits instead of waiting for end-of-stream.

namespace pipes::algebra {

/// The sweep-line core, shared by the scalar and grouped operators (and by
/// anything else that needs interval-partitioned accumulation).
template <typename Agg>
class SweepLineAggregator {
 public:
  using Value = typename Agg::Value;
  using Output = typename Agg::Output;

  /// Policies may carry runtime parameters (e.g. the dynamic tuple
  /// aggregates of the CQL layer); stateless policies default-construct.
  explicit SweepLineAggregator(Agg agg = Agg()) : agg_(std::move(agg)) {}

  /// Accumulates `v` over [start, end).
  void Add(Timestamp start, Timestamp end, const Value& v) {
    PIPES_DCHECK(start < end);
    EnsureBoundary(start);
    EnsureBoundary(end);
    for (auto it = boundaries_.lower_bound(start);
         it != boundaries_.end() && it->first < end; ++it) {
      if (!it->second.has_value()) {
        it->second = agg_.Init();
      }
      agg_.Add(*it->second, v);
    }
  }

  /// Emits every finalized segment with end <= watermark, in start order,
  /// via `emit(Output, TimeInterval)`. Gap segments produce nothing.
  template <typename EmitFn>
  void EmitUpTo(Timestamp watermark, EmitFn&& emit) {
    while (boundaries_.size() >= 2) {
      auto first = boundaries_.begin();
      auto second = std::next(first);
      if (second->first > watermark) break;
      if (first->second.has_value()) {
        emit(agg_.Result(*first->second),
             TimeInterval(first->first, second->first));
      }
      boundaries_.erase(first);
    }
    // A trailing gap boundary carries no information once it is the only
    // entry left.
    if (boundaries_.size() == 1 &&
        !boundaries_.begin()->second.has_value()) {
      boundaries_.clear();
    }
  }

  bool empty() const { return boundaries_.empty(); }
  std::size_t num_segments() const { return boundaries_.size(); }

  /// Smallest segment start still held (kMaxTimestamp when empty); callers
  /// use it to cap heartbeats.
  Timestamp FirstPendingStart() const {
    return boundaries_.empty() ? kMaxTimestamp : boundaries_.begin()->first;
  }

 private:
  /// Splits the segment covering `t` so that a boundary exists exactly at
  /// `t`. The new segment inherits the covering segment's partial state.
  void EnsureBoundary(Timestamp t) {
    auto it = boundaries_.lower_bound(t);
    if (it != boundaries_.end() && it->first == t) return;
    if (it == boundaries_.begin()) {
      // t lies before every known boundary: opens a new (gap) segment.
      boundaries_.emplace(t, std::nullopt);
      return;
    }
    auto prev = std::prev(it);
    boundaries_.emplace_hint(it, t, prev->second);
  }

  Agg agg_;
  // Key = segment start; value = partial aggregate (nullopt = gap, i.e. no
  // element covers the segment). A segment extends to the next key; the
  // last boundary is always a gap created by some element's end.
  std::map<Timestamp, std::optional<typename Agg::State>> boundaries_;
};

/// Scalar (ungrouped) temporal aggregate. `ValueFn` extracts the aggregated
/// value from the payload.
template <typename In, typename Agg, typename ValueFn>
class TemporalAggregate : public UnaryPipe<In, typename Agg::Output> {
 public:
  using Output = typename Agg::Output;

  TemporalAggregate(ValueFn value_fn, std::string name = "aggregate",
                    Agg agg = Agg())
      : UnaryPipe<In, Output>(std::move(name)),
        value_fn_(std::move(value_fn)),
        core_(std::move(agg)) {}

  std::size_t state_segments() const { return core_.num_segments(); }

  std::size_t ApproxMemoryBytes() const override {
    return core_.num_segments() * (sizeof(typename Agg::State) + 48);
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<In, Output>::Describe();
    d.op = "aggregate";
    d.blocking = true;
    d.has_columnar_kernel = true;
    // Each input element opens at most two sweep-line boundaries, each a
    // potential output segment; one trailing gap boundary may linger.
    d.dataflow.output_factor = 2.0;
    d.dataflow.state_bytes_per_element =
        2 * (sizeof(typename Agg::State) + 48);
    d.dataflow.state_bytes_fixed = sizeof(typename Agg::State) + 48;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<In>& e) override {
    core_.Add(e.start(), e.end(), value_fn_(e.payload));
  }

  /// Columnar kernel: feeds the sweep-line straight from the columns — the
  /// value function walks the payload column while the interval columns are
  /// read positionally, with no `StreamElement` rematerialization.
  void PortRun(int /*port_id*/, const ColumnarRun<In>& run) override {
    const std::size_t n = run.size();
    for (std::size_t i = 0; i < n; ++i) {
      core_.Add(run.starts[i], run.ends[i], value_fn_(run.payloads[i]));
    }
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    EmitRun(watermark);
    this->TransferHeartbeat(std::min(watermark, core_.FirstPendingStart()));
  }

  void PortDone(int /*port_id*/) override {
    EmitRun(kMaxTimestamp);
    this->TransferDone();
  }

 private:
  /// Finalized segments leave as one columnar run per progress notification
  /// (`EmitUpTo` releases in start order, so the run invariant holds).
  void EmitRun(Timestamp watermark) {
    out_run_.clear();
    core_.EmitUpTo(watermark, [this](Output out, TimeInterval iv) {
      out_run_.Append(std::move(out), iv.start, iv.end);
    });
    this->TransferRun(std::move(out_run_));
  }

  ValueFn value_fn_;
  SweepLineAggregator<Agg> core_;
  ColumnarRun<Output> out_run_;
};

/// Grouped temporal aggregate (the algebra behind CQL GROUP BY): one
/// sweep-line per group key; outputs (key, aggregate) pairs. Segments of
/// different groups interleave, so finalized results are re-ordered through
/// a staging buffer before transfer.
template <typename In, typename Agg, typename KeyFn, typename ValueFn>
class GroupedAggregate
    : public UnaryPipe<
          In, std::pair<std::decay_t<std::invoke_result_t<KeyFn, const In&>>,
                        typename Agg::Output>> {
 public:
  using Key = std::decay_t<std::invoke_result_t<KeyFn, const In&>>;
  using Output = std::pair<Key, typename Agg::Output>;

  GroupedAggregate(KeyFn key_fn, ValueFn value_fn,
                   std::string name = "group-aggregate", Agg agg = Agg())
      : UnaryPipe<In, Output>(std::move(name)),
        key_fn_(std::move(key_fn)),
        value_fn_(std::move(value_fn)),
        agg_(std::move(agg)) {}

  std::size_t num_groups() const { return groups_.size(); }

  std::size_t ApproxMemoryBytes() const override {
    std::size_t segments = 0;
    for (const auto& [key, core] : groups_) segments += core.num_segments();
    return groups_.size() * (sizeof(Key) + 64) +
           segments * (sizeof(typename Agg::State) + 48);
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<In, Output>::Describe();
    d.op = "group-aggregate";
    d.blocking = true;
    d.key_partitionable = true;
    d.has_columnar_kernel = true;
    // Per input element: at most one new group entry plus two sweep-line
    // boundaries in that group's aggregator (see ApproxMemoryBytes).
    d.dataflow.output_factor = 2.0;
    d.dataflow.state_bytes_per_element =
        (sizeof(Key) + 64) + 2 * (sizeof(typename Agg::State) + 48);
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<In>& e) override {
    auto [it, inserted] = groups_.try_emplace(
        key_fn_(e.payload), SweepLineAggregator<Agg>(agg_));
    it->second.Add(e.start(), e.end(), value_fn_(e.payload));
  }

  /// Columnar kernel: group lookup and sweep-line accumulation straight
  /// from the columns.
  void PortRun(int /*port_id*/, const ColumnarRun<In>& run) override {
    const std::size_t n = run.size();
    for (std::size_t i = 0; i < n; ++i) {
      auto [it, inserted] = groups_.try_emplace(
          key_fn_(run.payloads[i]), SweepLineAggregator<Agg>(agg_));
      it->second.Add(run.starts[i], run.ends[i],
                     value_fn_(run.payloads[i]));
    }
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    this->TransferHeartbeat(Release(watermark));
  }

  void PortDone(int /*port_id*/) override {
    Release(kMaxTimestamp);
    out_run_.clear();
    staged_.FlushAll(
        [this](const StreamElement<Output>& e) { out_run_.Append(e); });
    this->TransferRun(std::move(out_run_));
    this->TransferDone();
  }

 private:
  /// Finalizes segments up to `watermark` and releases staged results as
  /// far as global ordering allows: a result may only leave once no group
  /// still holds a pending segment with an earlier start. Returns the safe
  /// progress bound.
  Timestamp Release(Timestamp watermark) {
    for (auto it = groups_.begin(); it != groups_.end();) {
      it->second.EmitUpTo(
          watermark, [&](typename Agg::Output out, TimeInterval iv) {
            staged_.Push(StreamElement<Output>(
                Output(it->first, std::move(out)), iv));
          });
      if (it->second.empty()) {
        it = groups_.erase(it);
      } else {
        ++it;
      }
    }
    const Timestamp bound = std::min(watermark, MinPendingStart());
    out_run_.clear();
    staged_.FlushUpTo(bound, [this](const StreamElement<Output>& e) {
      out_run_.Append(e);
    });
    this->TransferRun(std::move(out_run_));
    return bound;
  }

  Timestamp MinPendingStart() const {
    Timestamp t = kMaxTimestamp;
    for (const auto& [key, core] : groups_) {
      t = std::min(t, core.FirstPendingStart());
    }
    return t;
  }

  KeyFn key_fn_;
  ValueFn value_fn_;
  Agg agg_;
  std::unordered_map<Key, SweepLineAggregator<Agg>> groups_;
  OrderedOutputBuffer<Output> staged_;
  ColumnarRun<Output> out_run_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_AGGREGATE_H_
