#ifndef PIPES_ALGEBRA_AGGREGATES_H_
#define PIPES_ALGEBRA_AGGREGATES_H_

#include <cstdint>

/// \file
/// Online (incremental) aggregation functions. Each aggregate is a stateless
/// policy type over a copyable `State`; it is deliberately independent of
/// the kind of processing that drives it — the data-driven temporal
/// aggregation operators and the demand-driven cursor group-by both consume
/// the same policies (the paper's "broad package of online aggregation
/// functions designed independently from the underlying kind of
/// processing").
///
/// Policy interface:
///   using Value  = ...;  // input value type
///   using State  = ...;  // copyable accumulator
///   using Output = ...;  // result type
///   static State Init();
///   static void Add(State&, const Value&);
///   static Output Result(const State&);

namespace pipes::algebra {

template <typename V>
struct CountAgg {
  using Value = V;
  using State = std::uint64_t;
  using Output = std::uint64_t;
  static State Init() { return 0; }
  static void Add(State& s, const Value&) { ++s; }
  static Output Result(const State& s) { return s; }
};

template <typename V>
struct SumAgg {
  using Value = V;
  using State = V;
  using Output = V;
  static State Init() { return V{}; }
  static void Add(State& s, const Value& v) { s += v; }
  static Output Result(const State& s) { return s; }
};

template <typename V>
struct AvgAgg {
  using Value = V;
  struct State {
    V sum{};
    std::uint64_t count = 0;
  };
  using Output = double;
  static State Init() { return State{}; }
  static void Add(State& s, const Value& v) {
    s.sum += v;
    ++s.count;
  }
  static Output Result(const State& s) {
    return s.count == 0 ? 0.0
                        : static_cast<double>(s.sum) /
                              static_cast<double>(s.count);
  }
};

template <typename V>
struct MinAgg {
  using Value = V;
  struct State {
    V value{};
    bool set = false;
  };
  using Output = V;
  static State Init() { return State{}; }
  static void Add(State& s, const Value& v) {
    if (!s.set || v < s.value) {
      s.value = v;
      s.set = true;
    }
  }
  static Output Result(const State& s) { return s.value; }
};

template <typename V>
struct MaxAgg {
  using Value = V;
  struct State {
    V value{};
    bool set = false;
  };
  using Output = V;
  static State Init() { return State{}; }
  static void Add(State& s, const Value& v) {
    if (!s.set || s.value < v) {
      s.value = v;
      s.set = true;
    }
  }
  static Output Result(const State& s) { return s.value; }
};

/// Population variance via Welford's online update.
template <typename V>
struct VarianceAgg {
  using Value = V;
  struct State {
    double mean = 0;
    double m2 = 0;
    std::uint64_t count = 0;
  };
  using Output = double;
  static State Init() { return State{}; }
  static void Add(State& s, const Value& v) {
    ++s.count;
    const double x = static_cast<double>(v);
    const double delta = x - s.mean;
    s.mean += delta / static_cast<double>(s.count);
    s.m2 += delta * (x - s.mean);
  }
  static Output Result(const State& s) {
    return s.count < 2 ? 0.0 : s.m2 / static_cast<double>(s.count);
  }
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_AGGREGATES_H_
