#ifndef PIPES_ALGEBRA_COALESCE_H_
#define PIPES_ALGEBRA_COALESCE_H_

#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/pipe.h"

/// \file
/// Coalescing: merges consecutive elements with equal payloads and abutting
/// or overlapping validity into a single element. Snapshot-equivalent to
/// the identity, but it *reduces the physical stream rate* — the mechanism
/// the paper advertises for keeping rates low downstream of aggregates
/// (whose piecewise output often repeats the same value across adjacent
/// segments).

namespace pipes::algebra {

/// Rate-reducing identity. `T` must be equality-comparable. Input elements
/// with equal payloads must be adjacent to merge (true for aggregate
/// outputs); interleaved equal payloads merge only opportunistically.
template <typename T>
class Coalesce : public UnaryPipe<T, T> {
 public:
  explicit Coalesce(std::string name = "coalesce")
      : UnaryPipe<T, T>(std::move(name)) {}

  std::uint64_t merged_count() const { return merged_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "coalesce";
    d.has_batch_kernel = true;
    // Merging abutting equal-payload intervals can extend validity without
    // static bound.
    d.dataflow.extends_validity = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    if (held_.has_value()) {
      if (held_->payload == e.payload && e.start() <= held_->end() &&
          e.end() >= held_->start()) {
        held_->interval.end = std::max(held_->end(), e.end());
        ++merged_;
        return;
      }
      this->Transfer(*held_);
    }
    held_ = e;
  }

  /// Batch kernel: runs the merge loop over the whole batch against the
  /// held element and emits every released element as one downstream batch
  /// (released elements leave in arrival order, which is start order).
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    out_.clear();
    for (const StreamElement<T>& e : batch) {
      if (held_.has_value()) {
        if (held_->payload == e.payload && e.start() <= held_->end() &&
            e.end() >= held_->start()) {
          held_->interval.end = std::max(held_->end(), e.end());
          ++merged_;
          continue;
        }
        out_.push_back(*held_);
      }
      held_ = e;
    }
    this->TransferBatch(out_);
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    // The held element can still be extended by an element starting at or
    // before its end; it is safe to release once the watermark passes that.
    if (held_.has_value()) {
      if (watermark > held_->end()) {
        this->Transfer(*held_);
        held_.reset();
        this->TransferHeartbeat(watermark);
      } else {
        this->TransferHeartbeat(std::min(watermark, held_->start()));
      }
    } else {
      this->TransferHeartbeat(watermark);
    }
  }

  void PortDone(int /*port_id*/) override {
    if (held_.has_value()) {
      this->Transfer(*held_);
      held_.reset();
    }
    this->TransferDone();
  }

 private:
  std::optional<StreamElement<T>> held_;
  std::uint64_t merged_ = 0;
  std::vector<StreamElement<T>> out_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_COALESCE_H_
