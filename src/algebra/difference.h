#ifndef PIPES_ALGEBRA_DIFFERENCE_H_
#define PIPES_ALGEBRA_DIFFERENCE_H_

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// Temporal multiset difference L - R: at every time t the output snapshot
/// contains max(0, mult_L(p, t) - mult_R(p, t)) copies of each payload p.
/// The implementation keeps, per payload, a boundary map of multiplicity
/// deltas from both inputs and sweeps it up to the combined watermark,
/// emitting the surplus copies per constant segment. This is the most
/// blocking-prone relational operator; the watermark mechanism is what
/// keeps it non-blocking.

namespace pipes::algebra {

/// Multiset difference (left minus right). `T` must be hashable and
/// equality-comparable.
template <typename T>
class Difference : public BinaryPipe<T, T, T> {
 public:
  explicit Difference(std::string name = "difference")
      : BinaryPipe<T, T, T>(std::move(name)) {}

  std::size_t state_size() const { return payloads_.size(); }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = BinaryPipe<T, T, T>::Describe();
    d.op = "difference";
    d.blocking = true;
    // Each input element adds at most one payload entry, two delta-map
    // boundaries, and (eventually) one staged surplus segment per boundary.
    d.dataflow.output_factor = 2.0;
    d.dataflow.state_bytes_per_element =
        (sizeof(T) + 64) + 2 * 64 + (sizeof(StreamElement<T>) + 48);
    return d;
  }

 protected:
  void OnElementLeft(const StreamElement<T>& e) override {
    auto& state = payloads_[e.payload];
    state.deltas[e.start()].first += 1;
    state.deltas[e.end()].first -= 1;
  }

  void OnElementRight(const StreamElement<T>& e) override {
    auto& state = payloads_[e.payload];
    state.deltas[e.start()].second += 1;
    state.deltas[e.end()].second -= 1;
  }

  void OnProgressSide(int /*side*/, Timestamp /*watermark*/) override {
    this->TransferHeartbeat(Release(this->CombinedWatermark()));
  }

  void OnDoneSide(int /*side*/) override {
    if (this->BothDone()) {
      Release(kMaxTimestamp);
      staged_.FlushAll(
          [this](const StreamElement<T>& e) { this->Transfer(e); });
      this->TransferDone();
    } else {
      OnProgressSide(0, this->CombinedWatermark());
    }
  }

 private:
  struct PayloadState {
    // boundary timestamp -> (delta of left multiplicity, delta of right).
    std::map<Timestamp, std::pair<int, int>> deltas;
    // Running multiplicities valid on [carry_from, first remaining boundary).
    int left_count = 0;
    int right_count = 0;
    Timestamp carry_from = kMinTimestamp;
  };

  /// Finalizes segments and releases staged surplus copies; returns the
  /// safe progress bound (results wait for the earliest pending boundary
  /// across all payloads).
  Timestamp Release(Timestamp watermark) {
    for (auto it = payloads_.begin(); it != payloads_.end();) {
      PayloadState& state = it->second;
      // A segment [b_i, b_{i+1}) is final once b_{i+1} <= watermark: both
      // inputs have promised no element starting before the watermark, so
      // no new boundary can appear below it.
      while (state.deltas.size() >= 2) {
        auto first = state.deltas.begin();
        auto second = std::next(first);
        if (second->first > watermark) break;
        state.left_count += first->second.first;
        state.right_count += first->second.second;
        const int surplus = state.left_count - state.right_count;
        for (int i = 0; i < surplus; ++i) {
          staged_.Push(StreamElement<T>(
              it->first, TimeInterval(first->first, second->first)));
        }
        state.deltas.erase(first);
      }
      // The last boundary closes all intervals; once processed the counts
      // return to zero and the entry can be dropped.
      if (state.deltas.size() == 1 &&
          state.deltas.begin()->first <= watermark) {
        state.left_count += state.deltas.begin()->second.first;
        state.right_count += state.deltas.begin()->second.second;
        PIPES_DCHECK(state.left_count == 0 && state.right_count == 0);
        state.deltas.clear();
      }
      if (state.deltas.empty()) {
        it = payloads_.erase(it);
      } else {
        ++it;
      }
    }
    const Timestamp bound = std::min(watermark, MinPendingStart());
    staged_.FlushUpTo(bound, [this](const StreamElement<T>& e) {
      this->Transfer(e);
    });
    return bound;
  }

  Timestamp MinPendingStart() const {
    Timestamp t = kMaxTimestamp;
    for (const auto& [payload, state] : payloads_) {
      if (!state.deltas.empty()) {
        t = std::min(t, state.deltas.begin()->first);
      }
    }
    return t;
  }

  std::unordered_map<T, PayloadState> payloads_;
  OrderedOutputBuffer<T> staged_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_DIFFERENCE_H_
