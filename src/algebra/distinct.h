#ifndef PIPES_ALGEBRA_DISTINCT_H_
#define PIPES_ALGEBRA_DISTINCT_H_

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// Temporal duplicate elimination: the snapshot of the output at time t is
/// the *set* of payloads in the input snapshot at t. Physically, the
/// operator maintains the coalesced union of validity intervals per
/// distinct payload and emits each maximal finalized piece once the
/// watermark passes its end.

namespace pipes::algebra {

/// Duplicate elimination. `T` must be hashable and equality-comparable.
template <typename T>
class Distinct : public UnaryPipe<T, T> {
 public:
  explicit Distinct(std::string name = "distinct")
      : UnaryPipe<T, T>(std::move(name)) {}

  std::size_t state_size() const {
    std::size_t n = 0;
    for (const auto& [payload, intervals] : pending_) n += intervals.size();
    return n;
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "distinct";
    d.blocking = true;
    d.key_partitionable = true;
    // Per input element: at most one map entry, one coalesced interval,
    // and one staged output copy.
    d.dataflow.state_bytes_per_element =
        (sizeof(T) + 64) + sizeof(TimeInterval) +
        (sizeof(StreamElement<T>) + 48);
    // Coalescing abutting intervals can extend validity past any single
    // input element's.
    d.dataflow.extends_validity = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    Merge(pending_[e.payload], e.interval);
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    this->TransferHeartbeat(Release(watermark));
  }

  void PortDone(int /*port_id*/) override {
    Release(kMaxTimestamp);
    staged_.FlushAll(
        [this](const StreamElement<T>& e) { this->Transfer(e); });
    this->TransferDone();
  }

 private:
  /// Inserts `iv` into the sorted, disjoint, non-abutting interval list.
  static void Merge(std::vector<TimeInterval>& intervals, TimeInterval iv) {
    // Find the insertion window of intervals that overlap or abut iv.
    auto first = std::lower_bound(
        intervals.begin(), intervals.end(), iv,
        [](const TimeInterval& a, const TimeInterval& b) {
          return a.end < b.start;  // strictly before (not even abutting)
        });
    auto last = first;
    while (last != intervals.end() && last->start <= iv.end) {
      iv.start = std::min(iv.start, last->start);
      iv.end = std::max(iv.end, last->end);
      ++last;
    }
    if (first == last) {
      intervals.insert(first, iv);
    } else {
      *first = iv;
      intervals.erase(std::next(first), last);
    }
  }

  /// Finalizes and releases pieces; returns the safe progress bound (a
  /// piece may only leave once no payload holds an earlier pending start).
  Timestamp Release(Timestamp watermark) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      auto& intervals = it->second;
      std::size_t emitted = 0;
      for (const TimeInterval& iv : intervals) {
        // A piece whose end is below the watermark can no longer grow:
        // future elements start at or after the watermark and could at most
        // abut it, which is snapshot-equivalent to a separate element.
        if (iv.end > watermark) break;
        staged_.Push(StreamElement<T>(it->first, iv));
        ++emitted;
      }
      intervals.erase(intervals.begin(), intervals.begin() + emitted);
      if (intervals.empty()) {
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    const Timestamp bound = std::min(watermark, MinPendingStart());
    staged_.FlushUpTo(bound, [this](const StreamElement<T>& e) {
      this->Transfer(e);
    });
    return bound;
  }

  Timestamp MinPendingStart() const {
    Timestamp t = kMaxTimestamp;
    for (const auto& [payload, intervals] : pending_) {
      if (!intervals.empty()) t = std::min(t, intervals.front().start);
    }
    return t;
  }

  std::unordered_map<T, std::vector<TimeInterval>> pending_;
  OrderedOutputBuffer<T> staged_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_DISTINCT_H_
