#ifndef PIPES_ALGEBRA_FILTER_H_
#define PIPES_ALGEBRA_FILTER_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/pipe.h"

/// \file
/// Selection. Stateless, non-blocking: an element passes iff the predicate
/// holds on its payload; the validity interval is untouched, so snapshot
/// equivalence with relational selection is immediate.

namespace pipes::algebra {

/// Generic selection operator, parameterized by a predicate on payloads
/// (the paper's algebra is "parameterized by functions and predicates" and
/// handles arbitrary objects, not just relational tuples).
template <typename T, typename Pred>
class Filter : public UnaryPipe<T, T> {
 public:
  explicit Filter(Pred pred, std::string name = "filter")
      : UnaryPipe<T, T>(std::move(name)), pred_(std::move(pred)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "filter";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    if (pred_(e.payload)) {
      this->Transfer(e);
    }
  }

  /// Batch kernel: evaluate the predicate in a tight loop, forward the
  /// survivors as one downstream batch (order is inherited from the input).
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    out_.clear();
    for (const StreamElement<T>& e : batch) {
      if (pred_(e.payload)) out_.push_back(e);
    }
    this->TransferBatch(out_);
  }

  /// Columnar kernel: the predicate runs over the payload column alone
  /// (exactly once per element), and each maximal run of survivors is
  /// copied as one contiguous range per column — a selective filter pays
  /// per segment, not per element.
  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    run_out_.clear();
    const std::size_t n = run.size();
    run_out_.reserve(n);
    std::size_t i = 0;
    while (i < n) {
      while (i < n && !pred_(run.payloads[i])) ++i;
      const std::size_t begin = i;
      while (i < n && pred_(run.payloads[i])) ++i;
      if (i > begin) run_out_.AppendRange(run, begin, i);
    }
    this->TransferRun(std::move(run_out_));
  }

 private:
  Pred pred_;
  std::vector<StreamElement<T>> out_;
  ColumnarRun<T> run_out_;
};

/// Deduction helper: `auto& f = graph.Add<Filter<T, decltype(pred)>>(...)`
/// is unwieldy; `MakeFilter<T>(pred)` is used by the plan builders instead.
template <typename T, typename Pred>
Filter<T, Pred> MakeFilter(Pred pred, std::string name = "filter") {
  return Filter<T, Pred>(std::move(pred), std::move(name));
}

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_FILTER_H_
