#ifndef PIPES_ALGEBRA_INTERSECT_H_
#define PIPES_ALGEBRA_INTERSECT_H_

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// Temporal multiset intersection: at every time t the output snapshot
/// contains min(mult_L(p, t), mult_R(p, t)) copies of each payload p — the
/// dual of `Difference` and the remaining member of the extended
/// relational algebra's set operations. Same boundary-sweep machinery:
/// per-payload multiplicity deltas finalized by the combined watermark.

namespace pipes::algebra {

/// Multiset intersection. `T` must be hashable and equality-comparable.
template <typename T>
class Intersect : public BinaryPipe<T, T, T> {
 public:
  explicit Intersect(std::string name = "intersect")
      : BinaryPipe<T, T, T>(std::move(name)) {}

  std::size_t state_size() const { return payloads_.size(); }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = BinaryPipe<T, T, T>::Describe();
    d.op = "intersect";
    d.blocking = true;
    // Same boundary-sweep state shape as Difference; output segments have
    // both multiplicities positive, so validity intersects the inputs'.
    d.dataflow.output_factor = 2.0;
    d.dataflow.intersects_validity = true;
    d.dataflow.state_bytes_per_element =
        (sizeof(T) + 64) + 2 * 64 + (sizeof(StreamElement<T>) + 48);
    return d;
  }

 protected:
  void OnElementLeft(const StreamElement<T>& e) override {
    auto& state = payloads_[e.payload];
    state.deltas[e.start()].first += 1;
    state.deltas[e.end()].first -= 1;
  }

  void OnElementRight(const StreamElement<T>& e) override {
    auto& state = payloads_[e.payload];
    state.deltas[e.start()].second += 1;
    state.deltas[e.end()].second -= 1;
  }

  void OnProgressSide(int /*side*/, Timestamp /*watermark*/) override {
    this->TransferHeartbeat(Release(this->CombinedWatermark()));
  }

  void OnDoneSide(int /*side*/) override {
    if (this->BothDone()) {
      Release(kMaxTimestamp);
      staged_.FlushAll(
          [this](const StreamElement<T>& e) { this->Transfer(e); });
      this->TransferDone();
    } else {
      OnProgressSide(0, this->CombinedWatermark());
    }
  }

 private:
  struct PayloadState {
    std::map<Timestamp, std::pair<int, int>> deltas;
    int left_count = 0;
    int right_count = 0;
  };

  Timestamp Release(Timestamp watermark) {
    for (auto it = payloads_.begin(); it != payloads_.end();) {
      PayloadState& state = it->second;
      while (state.deltas.size() >= 2) {
        auto first = state.deltas.begin();
        auto second = std::next(first);
        if (second->first > watermark) break;
        state.left_count += first->second.first;
        state.right_count += first->second.second;
        const int copies = std::min(state.left_count, state.right_count);
        for (int i = 0; i < copies; ++i) {
          staged_.Push(StreamElement<T>(
              it->first, TimeInterval(first->first, second->first)));
        }
        state.deltas.erase(first);
      }
      if (state.deltas.size() == 1 &&
          state.deltas.begin()->first <= watermark) {
        state.deltas.clear();
      }
      if (state.deltas.empty()) {
        it = payloads_.erase(it);
      } else {
        ++it;
      }
    }
    const Timestamp bound = std::min(watermark, MinPendingStart());
    staged_.FlushUpTo(bound, [this](const StreamElement<T>& e) {
      this->Transfer(e);
    });
    return bound;
  }

  Timestamp MinPendingStart() const {
    Timestamp t = kMaxTimestamp;
    for (const auto& [payload, state] : payloads_) {
      if (!state.deltas.empty()) {
        t = std::min(t, state.deltas.begin()->first);
      }
    }
    return t;
  }

  std::unordered_map<T, PayloadState> payloads_;
  OrderedOutputBuffer<T> staged_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_INTERSECT_H_
