#ifndef PIPES_ALGEBRA_JOIN_H_
#define PIPES_ALGEBRA_JOIN_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"
#include "src/memory/memory_user.h"
#include "src/sweeparea/hash_sweep_area.h"
#include "src/sweeparea/list_sweep_area.h"
#include "src/sweeparea/sweep_area.h"
#include "src/sweeparea/tree_sweep_area.h"

/// \file
/// The temporal binary join: a generalized symmetric ripple join over two
/// SweepAreas. Each arriving element probes the opposite SweepArea (every
/// match yields a result valid on the intersection of the two intervals),
/// is inserted into its own area, and areas are reorganized (purged) using
/// the opposite input's watermark. Results are released in start order via
/// an ordered staging buffer.
///
/// Snapshot semantics: payloads p_l, p_r joined at time t iff both are in
/// their stream's snapshot at t and the predicate holds — hence the output
/// element combine(p_l, p_r) with interval l ∩ r.
///
/// The join is a `memory::MemoryUser`: under a memory limit it sheds state
/// from the larger SweepArea (approximate answers), counting what it drops.

namespace pipes::algebra {

/// What to do when the memory limit is exceeded.
enum class ShedPolicy {
  /// Evict elements from the larger SweepArea until within the limit.
  kEvictFromLargerArea,
  /// Ignore the limit (measurement-only mode).
  kNone,
};

/// Symmetric temporal join. `Combine(l_payload, r_payload)` produces the
/// output payload; `LeftSA` stores L probed by R, `RightSA` stores R probed
/// by L.
template <typename L, typename R, typename Out, typename LeftSA,
          typename RightSA, typename Combine>
class TemporalJoin : public BinaryPipe<L, R, Out>, public memory::MemoryUser {
 public:
  TemporalJoin(LeftSA left_sa, RightSA right_sa, Combine combine,
               std::string name = "join")
      : BinaryPipe<L, R, Out>(std::move(name)),
        left_sa_(std::move(left_sa)),
        right_sa_(std::move(right_sa)),
        combine_(std::move(combine)) {}

  // --- memory::MemoryUser ---------------------------------------------------

  std::size_t MemoryUsage() const override {
    return left_sa_.ApproxBytes() + right_sa_.ApproxBytes();
  }

  void SetMemoryLimit(std::size_t bytes) override {
    memory_limit_ = bytes;
    Shed();
  }

  std::size_t memory_limit() const { return memory_limit_; }

  void set_shed_policy(ShedPolicy policy) { shed_policy_ = policy; }

  /// Elements dropped by load shedding so far (accuracy loss indicator).
  std::uint64_t shed_count() const { return shed_count_; }

  std::uint64_t ShedCount() const override { return shed_count_; }

  std::size_t left_state_size() const { return left_sa_.size(); }
  std::size_t right_state_size() const { return right_sa_.size(); }

  /// Metadata-monitor hook: join state = both SweepAreas.
  std::size_t ApproxMemoryBytes() const override { return MemoryUsage(); }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = BinaryPipe<L, R, Out>::Describe();
    d.op = std::string(LeftSA::kAreaName) + "-join";
    d.blocking = true;
    // Replicating by key is only sound when both probe directions are keyed
    // equi-probes — must mirror the `algebra::KeyPartitionable` trait
    // specialization (checked in tests/analysis_test.cc).
    d.key_partitionable = LeftSA::kKeyedEquiProbe && RightSA::kKeyedEquiProbe;
    d.has_columnar_kernel = true;
    return d;
  }

 protected:
  void OnElementLeft(const StreamElement<L>& e) override {
    right_sa_.Query(e, [&](const StreamElement<R>& r) {
      staged_.Push(StreamElement<Out>(combine_(e.payload, r.payload),
                                      e.interval.Intersect(r.interval)));
    });
    left_sa_.Insert(e);
    Shed();
    Flush();
  }

  void OnElementRight(const StreamElement<R>& e) override {
    left_sa_.Query(e, [&](const StreamElement<L>& l) {
      staged_.Push(StreamElement<Out>(combine_(l.payload, e.payload),
                                      l.interval.Intersect(e.interval)));
    });
    right_sa_.Insert(e);
    Shed();
    Flush();
  }

  /// Columnar kernels: probe the whole run against the opposite SweepArea,
  /// then bulk-insert it and flush once. Probing everything before inserting
  /// is equivalent to the per-element interleave — a run's elements go into
  /// their *own* side's area, which its probes never touch. Under an active
  /// memory limit the kernels fall back to the per-element path so shedding
  /// decisions (which depend on the interleave) are bit-identical.
  void OnRunLeft(const ColumnarRun<L>& run) override {
    if (ShedActive()) {
      for (std::size_t i = 0; i < run.size(); ++i) {
        OnElementLeft(run.ElementAt(i));
      }
      return;
    }
    right_sa_.QueryRun(run, [&](std::size_t i, const StreamElement<R>& r) {
      staged_.Push(StreamElement<Out>(
          combine_(run.payloads[i], r.payload),
          TimeInterval(run.starts[i], run.ends[i]).Intersect(r.interval)));
    });
    left_sa_.InsertRun(run);
    Flush();
  }

  void OnRunRight(const ColumnarRun<R>& run) override {
    if (ShedActive()) {
      for (std::size_t i = 0; i < run.size(); ++i) {
        OnElementRight(run.ElementAt(i));
      }
      return;
    }
    left_sa_.QueryRun(run, [&](std::size_t i, const StreamElement<L>& l) {
      staged_.Push(StreamElement<Out>(
          combine_(l.payload, run.payloads[i]),
          l.interval.Intersect(TimeInterval(run.starts[i], run.ends[i]))));
    });
    right_sa_.InsertRun(run);
    Flush();
  }

  void OnProgressSide(int /*side*/, Timestamp /*watermark*/) override {
    // Reorganization: a stored left element can never again match once its
    // validity ended before every future right element's start (and vice
    // versa).
    left_sa_.PurgeBefore(this->right().watermark());
    right_sa_.PurgeBefore(this->left().watermark());
    Flush();
  }

  void OnDoneSide(int /*side*/) override {
    if (this->BothDone()) {
      out_run_.clear();
      staged_.FlushAll(
          [this](const StreamElement<Out>& e) { out_run_.Append(e); });
      this->TransferRun(std::move(out_run_));
      this->TransferDone();
    } else {
      OnProgressSide(0, this->CombinedWatermark());
    }
  }

 private:
  /// True when the memory limit can actually trigger eviction.
  bool ShedActive() const {
    return shed_policy_ != ShedPolicy::kNone &&
           memory_limit_ != std::numeric_limits<std::size_t>::max();
  }

  void Flush() {
    const Timestamp combined = this->CombinedWatermark();
    out_run_.clear();
    staged_.FlushUpTo(
        combined, [this](const StreamElement<Out>& e) { out_run_.Append(e); });
    this->TransferRun(std::move(out_run_));
    if (combined < kMaxTimestamp) {
      this->TransferHeartbeat(combined);
    }
  }

  void Shed() {
    if (shed_policy_ == ShedPolicy::kNone) return;
    while (MemoryUsage() > memory_limit_) {
      const bool left_bigger = left_sa_.ApproxBytes() >= right_sa_.ApproxBytes();
      const bool evicted =
          left_bigger ? left_sa_.EvictOne() : right_sa_.EvictOne();
      if (!evicted) {
        // Both areas empty yet still over the limit: nothing sheddable.
        break;
      }
      ++shed_count_;
    }
  }

  LeftSA left_sa_;
  RightSA right_sa_;
  Combine combine_;
  OrderedOutputBuffer<Out> staged_;
  ColumnarRun<Out> out_run_;
  std::size_t memory_limit_ = std::numeric_limits<std::size_t>::max();
  ShedPolicy shed_policy_ = ShedPolicy::kEvictFromLargerArea;
  std::uint64_t shed_count_ = 0;
};

// --- Convenience factories --------------------------------------------------
// The SweepArea types are inferred from the parameter functions; use
// `QueryGraph::Add(MakeHashJoin(...))` to put the result in a graph.

/// Equi-join on `key_l(l) == key_r(r)` with hash SweepAreas on both sides.
template <typename L, typename R, typename KeyL, typename KeyR,
          typename Combine>
auto MakeHashJoin(KeyL key_l, KeyR key_r, Combine combine,
                  std::string name = "hash-join") {
  using Out = std::decay_t<std::invoke_result_t<Combine, const L&, const R&>>;
  using LeftSA = sweeparea::HashSweepArea<L, R, KeyL, KeyR>;
  using RightSA = sweeparea::HashSweepArea<R, L, KeyR, KeyL>;
  return std::make_unique<
      TemporalJoin<L, R, Out, LeftSA, RightSA, Combine>>(
      LeftSA(key_l, key_r), RightSA(key_r, key_l), std::move(combine),
      std::move(name));
}

/// Theta join on an arbitrary predicate with list SweepAreas.
template <typename L, typename R, typename Pred, typename Combine>
auto MakeNestedLoopsJoin(Pred pred, Combine combine,
                         std::string name = "nl-join") {
  using Out = std::decay_t<std::invoke_result_t<Combine, const L&, const R&>>;
  // The stored/probe argument order differs per side: normalize to (l, r).
  auto pred_lr = [pred](const L& l, const R& r) { return pred(l, r); };
  auto pred_rl = [pred](const R& r, const L& l) { return pred(l, r); };
  using LeftSA = sweeparea::ListSweepArea<L, R, decltype(pred_lr)>;
  using RightSA = sweeparea::ListSweepArea<R, L, decltype(pred_rl)>;
  return std::make_unique<
      TemporalJoin<L, R, Out, LeftSA, RightSA, Combine>>(
      LeftSA(pred_lr), RightSA(pred_rl), std::move(combine), std::move(name));
}

/// Band join: |key_l(l) - key_r(r)| <= band, with tree SweepAreas.
template <typename L, typename R, typename KeyL, typename KeyR,
          typename Combine>
auto MakeBandJoin(KeyL key_l, KeyR key_r,
                  std::invoke_result_t<KeyL, const L&> band, Combine combine,
                  std::string name = "band-join") {
  using Key = std::decay_t<std::invoke_result_t<KeyL, const L&>>;
  using Out = std::decay_t<std::invoke_result_t<Combine, const L&, const R&>>;
  auto range_from_r = [key_r, band](const R& r) {
    const Key k = key_r(r);
    return std::pair<Key, Key>(k - band, k + band);
  };
  auto range_from_l = [key_l, band](const L& l) {
    const Key k = key_l(l);
    return std::pair<Key, Key>(k - band, k + band);
  };
  using LeftSA = sweeparea::TreeSweepArea<L, R, KeyL, decltype(range_from_r)>;
  using RightSA = sweeparea::TreeSweepArea<R, L, KeyR, decltype(range_from_l)>;
  return std::make_unique<
      TemporalJoin<L, R, Out, LeftSA, RightSA, Combine>>(
      LeftSA(key_l, range_from_r), RightSA(key_r, range_from_l),
      std::move(combine), std::move(name));
}

/// Cartesian product (all interval-overlapping pairs).
template <typename L, typename R, typename Combine>
auto MakeCrossProduct(Combine combine, std::string name = "cross") {
  auto always = [](const L&, const R&) { return true; };
  return MakeNestedLoopsJoin<L, R>(always, std::move(combine),
                                   std::move(name));
}

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_JOIN_H_
