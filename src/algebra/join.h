#ifndef PIPES_ALGEBRA_JOIN_H_
#define PIPES_ALGEBRA_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"
#include "src/memory/memory_user.h"
#include "src/sweeparea/hash_sweep_area.h"
#include "src/sweeparea/list_sweep_area.h"
#include "src/sweeparea/spillable_hash_sweep_area.h"
#include "src/sweeparea/sweep_area.h"
#include "src/sweeparea/tree_sweep_area.h"

/// \file
/// The temporal binary join: a generalized symmetric ripple join over two
/// SweepAreas. Each arriving element probes the opposite SweepArea (every
/// match yields a result valid on the intersection of the two intervals),
/// is inserted into its own area, and areas are reorganized (purged) using
/// the opposite input's watermark. Results are released in start order via
/// an ordered staging buffer.
///
/// Snapshot semantics: payloads p_l, p_r joined at time t iff both are in
/// their stream's snapshot at t and the predicate holds — hence the output
/// element combine(p_l, p_r) with interval l ∩ r.
///
/// The join is a `memory::MemoryUser`. Under a memory limit it walks the
/// RAM → disk → shed ladder (docs/memory.md): with spillable SweepAreas
/// (`kSpillable` below) cold state pages to disk losslessly and shedding is
/// a deliberate opt-in; with resident-only areas it sheds from the larger
/// SweepArea (approximate answers), counting what it drops.

namespace pipes::algebra {

/// What to do when the memory limit is exceeded and spilling is either
/// unavailable or exhausted.
enum class ShedPolicy {
  /// Evict elements from the larger SweepArea until within the limit.
  kEvictFromLargerArea,
  /// Never drop state. For resident-only areas this means measurement-only
  /// mode (the limit is ignored); for spillable areas it is the default —
  /// pressure resolves by paging to disk, and if the disk budget is also
  /// exhausted the RAM bound goes soft rather than lossy.
  kNone,
};

/// Detects SweepAreas with a lossless disk tier (declare
/// `static constexpr bool kSpillable = true`, e.g.
/// `sweeparea::SpillableHashSweepArea`).
template <typename SA, typename = void>
struct IsSpillableArea : std::false_type {};
template <typename SA>
struct IsSpillableArea<SA, std::void_t<decltype(SA::kSpillable)>>
    : std::bool_constant<SA::kSpillable> {};

/// Symmetric temporal join. `Combine(l_payload, r_payload)` produces the
/// output payload; `LeftSA` stores L probed by R, `RightSA` stores R probed
/// by L.
template <typename L, typename R, typename Out, typename LeftSA,
          typename RightSA, typename Combine>
class TemporalJoin : public BinaryPipe<L, R, Out>, public memory::MemoryUser {
 public:
  /// True when both SweepAreas can page state to disk: memory pressure then
  /// resolves by lossless spill and shedding becomes opt-in.
  static constexpr bool kSpillable =
      IsSpillableArea<LeftSA>::value && IsSpillableArea<RightSA>::value;

  TemporalJoin(LeftSA left_sa, RightSA right_sa, Combine combine,
               std::string name = "join")
      : BinaryPipe<L, R, Out>(std::move(name)),
        left_sa_(std::move(left_sa)),
        right_sa_(std::move(right_sa)),
        combine_(std::move(combine)) {
    if constexpr (kSpillable) {
      // Shedding is demoted to an explicit opt-in when a lossless tier
      // exists (set_shed_policy re-enables it; lint P020 flags that).
      shed_policy_ = ShedPolicy::kNone;
    }
  }

  // --- memory::MemoryUser ---------------------------------------------------

  std::size_t MemoryUsage() const override {
    return left_sa_.ApproxBytes() + right_sa_.ApproxBytes();
  }

  void SetMemoryLimit(std::size_t bytes) override {
    memory_limit_ = bytes;
    EnforceBudget();
  }

  bool SpillCapable() const override { return kSpillable; }

  std::size_t DiskUsage() const override {
    if constexpr (kSpillable) {
      return left_sa_.SpilledBytes() + right_sa_.SpilledBytes();
    } else {
      return 0;
    }
  }

  void SetDiskBudget(std::size_t bytes) override { disk_budget_ = bytes; }

  std::size_t disk_budget() const { return disk_budget_; }

  std::size_t memory_limit() const { return memory_limit_; }

  void set_shed_policy(ShedPolicy policy) { shed_policy_ = policy; }

  /// Elements dropped by load shedding so far (accuracy loss indicator).
  std::uint64_t shed_count() const { return shed_count_; }

  std::uint64_t ShedCount() const override { return shed_count_; }

  std::size_t left_state_size() const { return left_sa_.size(); }
  std::size_t right_state_size() const { return right_sa_.size(); }

  /// Metadata-monitor hook: join state = both SweepAreas (RAM only).
  std::size_t ApproxMemoryBytes() const override { return MemoryUsage(); }

  std::uint64_t SpilledBytes() const override { return DiskUsage(); }

  std::uint64_t SpilledPartitions() const override {
    if constexpr (kSpillable) {
      return left_sa_.SpilledRunCount() + right_sa_.SpilledRunCount();
    } else {
      return 0;
    }
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = BinaryPipe<L, R, Out>::Describe();
    d.op = std::string(LeftSA::kAreaName) + "-join";
    d.blocking = true;
    // Replicating by key is only sound when both probe directions are keyed
    // equi-probes — must mirror the `algebra::KeyPartitionable` trait
    // specialization (checked in tests/analysis_test.cc).
    d.key_partitionable = LeftSA::kKeyedEquiProbe && RightSA::kKeyedEquiProbe;
    d.has_columnar_kernel = true;
    d.spill_capable = kSpillable;
    d.shedding_enabled = shed_policy_ != ShedPolicy::kNone;
    d.dataflow.output_per_pair = true;
    d.dataflow.intersects_validity = true;
    // Each input element is inserted into its own SweepArea once and (on
    // the spill path) may additionally be staged as a deferred probe.
    d.dataflow.state_bytes_per_element =
        2 * (std::max(sizeof(L), sizeof(R)) +
             sweeparea::kPerElementOverheadBytes);
    return d;
  }

 protected:
  void OnElementLeft(const StreamElement<L>& e) override {
    right_sa_.Query(e, [&](const StreamElement<R>& r) {
      staged_.Push(StreamElement<Out>(combine_(e.payload, r.payload),
                                      e.interval.Intersect(r.interval)));
    });
    left_sa_.Insert(e);
    EnforceBudget();
    Flush();
  }

  void OnElementRight(const StreamElement<R>& e) override {
    left_sa_.Query(e, [&](const StreamElement<L>& l) {
      staged_.Push(StreamElement<Out>(combine_(l.payload, e.payload),
                                      l.interval.Intersect(e.interval)));
    });
    right_sa_.Insert(e);
    EnforceBudget();
    Flush();
  }

  /// Columnar kernels: probe the whole run against the opposite SweepArea,
  /// then bulk-insert it and flush once. Probing everything before inserting
  /// is equivalent to the per-element interleave — a run's elements go into
  /// their *own* side's area, which its probes never touch. Under an active
  /// memory limit the kernels fall back to the per-element path so shedding
  /// decisions (which depend on the interleave) are bit-identical.
  void OnRunLeft(const ColumnarRun<L>& run) override {
    if (ShedActive()) {
      for (std::size_t i = 0; i < run.size(); ++i) {
        OnElementLeft(run.ElementAt(i));
      }
      return;
    }
    right_sa_.QueryRun(run, [&](std::size_t i, const StreamElement<R>& r) {
      staged_.Push(StreamElement<Out>(
          combine_(run.payloads[i], r.payload),
          TimeInterval(run.starts[i], run.ends[i]).Intersect(r.interval)));
    });
    left_sa_.InsertRun(run);
    // Spill rides the columnar path: one budget check per run (bounded
    // overshoot of one run) keeps the kernel zero-copy.
    if constexpr (kSpillable) EnforceBudget();
    Flush();
  }

  void OnRunRight(const ColumnarRun<R>& run) override {
    if (ShedActive()) {
      for (std::size_t i = 0; i < run.size(); ++i) {
        OnElementRight(run.ElementAt(i));
      }
      return;
    }
    left_sa_.QueryRun(run, [&](std::size_t i, const StreamElement<L>& l) {
      staged_.Push(StreamElement<Out>(
          combine_(l.payload, run.payloads[i]),
          l.interval.Intersect(TimeInterval(run.starts[i], run.ends[i]))));
    });
    right_sa_.InsertRun(run);
    if constexpr (kSpillable) EnforceBudget();
    Flush();
  }

  void OnProgressSide(int /*side*/, Timestamp /*watermark*/) override {
    // Reorganization: a stored left element can never again match once its
    // validity ended before every future right element's start (and vice
    // versa). Pending probes must be answered first — purge may delete
    // runs they still need.
    if constexpr (kSpillable) {
      if ((left_sa_.HasPendingProbes() &&
           left_sa_.MinPendingStart() < this->right().watermark()) ||
          (right_sa_.HasPendingProbes() &&
           right_sa_.MinPendingStart() < this->left().watermark())) {
        ServicePending();
      }
    }
    left_sa_.PurgeBefore(this->right().watermark());
    right_sa_.PurgeBefore(this->left().watermark());
    Flush();
  }

  void OnDoneSide(int /*side*/) override {
    if (this->BothDone()) {
      if constexpr (kSpillable) ServicePending();
      out_run_.clear();
      staged_.FlushAll(
          [this](const StreamElement<Out>& e) { out_run_.Append(e); });
      this->TransferRun(std::move(out_run_));
      this->TransferDone();
    } else {
      OnProgressSide(0, this->CombinedWatermark());
    }
  }

 private:
  /// True when the memory limit can actually trigger eviction.
  bool ShedActive() const {
    return shed_policy_ != ShedPolicy::kNone &&
           memory_limit_ != std::numeric_limits<std::size_t>::max();
  }

  void Flush() {
    const Timestamp combined = this->CombinedWatermark();
    if constexpr (kSpillable) {
      // Output fence: results a pending probe will still produce have
      // start >= its staging start, so nothing may be released past the
      // minimum pending start until those probes are answered.
      if (combined > MinPendingStart()) ServicePending();
    }
    out_run_.clear();
    staged_.FlushUpTo(
        combined, [this](const StreamElement<Out>& e) { out_run_.Append(e); });
    this->TransferRun(std::move(out_run_));
    if (combined < kMaxTimestamp) {
      this->TransferHeartbeat(combined);
    }
  }

  /// Resolves memory pressure down the tier ladder: spill (lossless) when
  /// the areas support it and disk remains, then shed if opted in, else
  /// let the RAM bound go soft (never drop state silently).
  void EnforceBudget() {
    if constexpr (kSpillable) {
      if (memory_limit_ == std::numeric_limits<std::size_t>::max()) return;
      // Staged probes count against RAM; answer them once they occupy a
      // meaningful slice of the budget.
      if ((left_sa_.PendingBytes() + right_sa_.PendingBytes()) * 4 >
          memory_limit_) {
        ServicePending();
      }
      while (MemoryUsage() > memory_limit_) {
        std::size_t freed = 0;
        if (DiskUsage() < disk_budget_) {
          const bool left_bigger = left_sa_.HotBytes() >= right_sa_.HotBytes();
          freed = left_bigger ? left_sa_.SpillColdest()
                              : right_sa_.SpillColdest();
          if (freed == 0) {
            freed = left_bigger ? right_sa_.SpillColdest()
                                : left_sa_.SpillColdest();
          }
        }
        if (freed > 0) continue;
        // Disk exhausted (or nothing resident to page): shed only if the
        // user opted in; otherwise the bound goes soft — lossless overrun.
        if (shed_policy_ == ShedPolicy::kNone || !ShedOne()) break;
      }
    } else {
      if (shed_policy_ == ShedPolicy::kNone) return;
      while (MemoryUsage() > memory_limit_) {
        if (!ShedOne()) break;  // both areas empty: nothing sheddable
      }
    }
  }

  bool ShedOne() {
    const bool left_bigger = left_sa_.ApproxBytes() >= right_sa_.ApproxBytes();
    const bool evicted =
        left_bigger ? left_sa_.EvictOne() : right_sa_.EvictOne();
    if (evicted) ++shed_count_;
    return evicted;
  }

  /// Oldest staged probe across both areas; `kMaxTimestamp` when none.
  Timestamp MinPendingStart() const {
    if constexpr (kSpillable) {
      return std::min(left_sa_.MinPendingStart(),
                      right_sa_.MinPendingStart());
    } else {
      return kMaxTimestamp;
    }
  }

  /// Answers every staged probe against the spilled runs (streamed k-way
  /// merge inside the areas) and stages the matches; the ordered buffer
  /// restores emission order.
  void ServicePending() {
    if constexpr (kSpillable) {
      left_sa_.ServicePendingProbes(
          [&](const StreamElement<R>& probe, const StreamElement<L>& stored) {
            staged_.Push(StreamElement<Out>(
                combine_(stored.payload, probe.payload),
                stored.interval.Intersect(probe.interval)));
          });
      right_sa_.ServicePendingProbes(
          [&](const StreamElement<L>& probe, const StreamElement<R>& stored) {
            staged_.Push(StreamElement<Out>(
                combine_(probe.payload, stored.payload),
                probe.interval.Intersect(stored.interval)));
          });
    }
  }

  LeftSA left_sa_;
  RightSA right_sa_;
  Combine combine_;
  OrderedOutputBuffer<Out> staged_;
  ColumnarRun<Out> out_run_;
  std::size_t memory_limit_ = std::numeric_limits<std::size_t>::max();
  std::size_t disk_budget_ = std::numeric_limits<std::size_t>::max();
  ShedPolicy shed_policy_ = ShedPolicy::kEvictFromLargerArea;
  std::uint64_t shed_count_ = 0;
};

// --- Convenience factories --------------------------------------------------
// The SweepArea types are inferred from the parameter functions; use
// `QueryGraph::Add(MakeHashJoin(...))` to put the result in a graph.

/// Equi-join on `key_l(l) == key_r(r)` with hash SweepAreas on both sides.
template <typename L, typename R, typename KeyL, typename KeyR,
          typename Combine>
auto MakeHashJoin(KeyL key_l, KeyR key_r, Combine combine,
                  std::string name = "hash-join") {
  using Out = std::decay_t<std::invoke_result_t<Combine, const L&, const R&>>;
  using LeftSA = sweeparea::HashSweepArea<L, R, KeyL, KeyR>;
  using RightSA = sweeparea::HashSweepArea<R, L, KeyR, KeyL>;
  return std::make_unique<
      TemporalJoin<L, R, Out, LeftSA, RightSA, Combine>>(
      LeftSA(key_l, key_r), RightSA(key_r, key_l), std::move(combine),
      std::move(name));
}

/// Lossless equi-join under bounded RAM: hash SweepAreas that page cold
/// state to disk as sorted runs instead of shedding (docs/memory.md).
/// Shedding stays available but only as an explicit opt-in via
/// `set_shed_policy` — lint rule P020 flags that combination.
template <typename L, typename R, typename KeyL, typename KeyR,
          typename Combine>
auto MakeSpillableHashJoin(KeyL key_l, KeyR key_r, Combine combine,
                           std::string name = "spill-hash-join",
                           sweeparea::SpillOptions options = {}) {
  using Out = std::decay_t<std::invoke_result_t<Combine, const L&, const R&>>;
  using LeftSA = sweeparea::SpillableHashSweepArea<L, R, KeyL, KeyR>;
  using RightSA = sweeparea::SpillableHashSweepArea<R, L, KeyR, KeyL>;
  return std::make_unique<TemporalJoin<L, R, Out, LeftSA, RightSA, Combine>>(
      LeftSA(key_l, key_r, {}, options), RightSA(key_r, key_l, {}, options),
      std::move(combine), std::move(name));
}

/// Theta join on an arbitrary predicate with list SweepAreas.
template <typename L, typename R, typename Pred, typename Combine>
auto MakeNestedLoopsJoin(Pred pred, Combine combine,
                         std::string name = "nl-join") {
  using Out = std::decay_t<std::invoke_result_t<Combine, const L&, const R&>>;
  // The stored/probe argument order differs per side: normalize to (l, r).
  auto pred_lr = [pred](const L& l, const R& r) { return pred(l, r); };
  auto pred_rl = [pred](const R& r, const L& l) { return pred(l, r); };
  using LeftSA = sweeparea::ListSweepArea<L, R, decltype(pred_lr)>;
  using RightSA = sweeparea::ListSweepArea<R, L, decltype(pred_rl)>;
  return std::make_unique<
      TemporalJoin<L, R, Out, LeftSA, RightSA, Combine>>(
      LeftSA(pred_lr), RightSA(pred_rl), std::move(combine), std::move(name));
}

/// Band join: |key_l(l) - key_r(r)| <= band, with tree SweepAreas.
template <typename L, typename R, typename KeyL, typename KeyR,
          typename Combine>
auto MakeBandJoin(KeyL key_l, KeyR key_r,
                  std::invoke_result_t<KeyL, const L&> band, Combine combine,
                  std::string name = "band-join") {
  using Key = std::decay_t<std::invoke_result_t<KeyL, const L&>>;
  using Out = std::decay_t<std::invoke_result_t<Combine, const L&, const R&>>;
  auto range_from_r = [key_r, band](const R& r) {
    const Key k = key_r(r);
    return std::pair<Key, Key>(k - band, k + band);
  };
  auto range_from_l = [key_l, band](const L& l) {
    const Key k = key_l(l);
    return std::pair<Key, Key>(k - band, k + band);
  };
  using LeftSA = sweeparea::TreeSweepArea<L, R, KeyL, decltype(range_from_r)>;
  using RightSA = sweeparea::TreeSweepArea<R, L, KeyR, decltype(range_from_l)>;
  return std::make_unique<
      TemporalJoin<L, R, Out, LeftSA, RightSA, Combine>>(
      LeftSA(key_l, range_from_r), RightSA(key_r, range_from_l),
      std::move(combine), std::move(name));
}

/// Cartesian product (all interval-overlapping pairs).
template <typename L, typename R, typename Combine>
auto MakeCrossProduct(Combine combine, std::string name = "cross") {
  auto always = [](const L&, const R&) { return true; };
  return MakeNestedLoopsJoin<L, R>(always, std::move(combine),
                                   std::move(name));
}

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_JOIN_H_
