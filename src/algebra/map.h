#ifndef PIPES_ALGEBRA_MAP_H_
#define PIPES_ALGEBRA_MAP_H_

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/pipe.h"

/// \file
/// Mapping (generalized projection). Applies a user function to every
/// payload; validity intervals pass through unchanged.

namespace pipes::algebra {

/// Stateless transformation of payloads from `In` to `Out`.
template <typename In, typename Out, typename Fn>
class Map : public UnaryPipe<In, Out> {
 public:
  explicit Map(Fn fn, std::string name = "map")
      : UnaryPipe<In, Out>(std::move(name)), fn_(std::move(fn)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<In, Out>::Describe();
    d.op = "map";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<In>& e) override {
    this->Transfer(StreamElement<Out>(fn_(e.payload), e.interval));
  }

  /// Batch kernel: transform payloads in a tight loop, forward one output
  /// batch (intervals pass through, so order is inherited from the input).
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<In>> batch) override {
    out_.clear();
    out_.reserve(batch.size());
    for (const StreamElement<In>& e : batch) {
      out_.emplace_back(fn_(e.payload), e.interval);
    }
    this->TransferBatch(out_);
  }

  /// Columnar kernel: both timestamp columns are bulk-copied (memcpy) and
  /// the user function runs in a tight loop over the payload column only.
  void PortRun(int /*port_id*/, const ColumnarRun<In>& run) override {
    run_out_.clear();
    run_out_.starts.assign(run.starts.begin(), run.starts.end());
    run_out_.ends.assign(run.ends.begin(), run.ends.end());
    run_out_.payloads.reserve(run.size());
    for (const In& p : run.payloads) {
      run_out_.payloads.push_back(fn_(p));
    }
    this->TransferRun(std::move(run_out_));
  }

 private:
  Fn fn_;
  std::vector<StreamElement<Out>> out_;
  ColumnarRun<Out> run_out_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_MAP_H_
