#ifndef PIPES_ALGEBRA_PARALLEL_H_
#define PIPES_ALGEBRA_PARALLEL_H_

#include <cstddef>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/join.h"
#include "src/algebra/window.h"
#include "src/core/buffer.h"
#include "src/core/graph.h"
#include "src/core/parallel.h"
#include "src/scheduler/scheduler.h"

/// \file
/// QueryGraph-level keyed replication: clone an operator into N shared-
/// nothing replicas between a `Partition` and a `Merge`. Only operators
/// whose state decomposes by the partitioning key are safe to replicate —
/// grouped aggregates, duplicate elimination, partitioned windows, and
/// equi-joins keyed on the join attribute. Everything else (scalar
/// aggregates, count windows, unions, non-equi joins) would compute wrong
/// answers from a keyed subset of the stream, so the helpers refuse them at
/// compile time via the `KeyPartitionable` trait.
///
/// Correctness requirement on the caller: the partitioning key must refine
/// the operator's own grouping — every element of one group (one distinct
/// payload, one window partition, one join key) must land in the same
/// replica. Passing the operator's own key function satisfies this.

namespace pipes::algebra {

// --- Safety trait -----------------------------------------------------------

/// True for operators whose state is disjoint across partition keys, which
/// makes N keyed replicas element-for-element equivalent to one instance.
/// The default is false: refusal, not permission, is the baseline.
template <typename Op>
struct KeyPartitionable : std::false_type {};

/// Grouped aggregation: one sweep-line per key; keys never interact.
template <typename In, typename Agg, typename KeyFn, typename ValueFn>
struct KeyPartitionable<GroupedAggregate<In, Agg, KeyFn, ValueFn>>
    : std::true_type {};

/// Duplicate elimination: interval coalescing is per distinct payload.
template <typename T>
struct KeyPartitionable<Distinct<T>> : std::true_type {};

/// Partitioned (per-key ROWS) window: one deque per key.
template <typename T, typename KeyFn>
struct KeyPartitionable<PartitionedWindow<T, KeyFn>> : std::true_type {};

/// Equi-joins (hash SweepAreas on both sides) keyed on the join attribute:
/// matching pairs co-locate when both inputs partition by their join keys
/// under the same hash. Theta/band joins (list/tree SweepAreas) stay false:
/// a pair can match across partition boundaries.
template <typename L, typename R, typename Out, typename KeyL, typename KeyR,
          typename Combine>
struct KeyPartitionable<
    TemporalJoin<L, R, Out, sweeparea::HashSweepArea<L, R, KeyL, KeyR>,
                 sweeparea::HashSweepArea<R, L, KeyR, KeyL>, Combine>>
    : std::true_type {};

/// The spillable variant is keyed the same way: spilled runs hold only
/// this replica's keys, so state stays disjoint across replicas.
template <typename L, typename R, typename Out, typename KeyL, typename KeyR,
          typename Combine>
struct KeyPartitionable<TemporalJoin<
    L, R, Out, sweeparea::SpillableHashSweepArea<L, R, KeyL, KeyR>,
    sweeparea::SpillableHashSweepArea<R, L, KeyR, KeyL>, Combine>>
    : std::true_type {};

// --- Replicated-stage handles ----------------------------------------------

/// Untyped topology of one replicated stage, for scheduler pinning and for
/// inspecting per-partition skew (`splitters[...]->PartitionCounts()`).
struct ParallelTopology {
  /// The Partition node(s): one for a unary stage, two for a join.
  std::vector<Node*> splitters;
  Node* merge = nullptr;
  /// Replica operator nodes, by replica index.
  std::vector<Node*> replicas;
  /// Active (`ConcurrentBuffer`) nodes feeding each replica. All buffers of
  /// one replica must run on one worker: the replica operator is passive
  /// state driven by whichever worker drains them.
  std::vector<std::vector<Node*>> replica_inputs;
  /// Active buffers carrying each replica's output into the merge. These
  /// must all run on one worker — `Merge` is passive shared state.
  std::vector<Node*> replica_outputs;

  /// ThreadScheduler assignment pinning replica i's input buffers to worker
  /// 1 + (i % (num_workers - 1)) and everything else — upstream sources,
  /// the merge-side buffers, unrelated active nodes — to worker 0. With
  /// num_workers = replicas + 1, every replica chain gets its own worker.
  /// num_workers <= 1 degenerates to all-on-worker-0.
  std::vector<int> PinnedAssignment(const QueryGraph& graph,
                                    int num_workers) const {
    std::unordered_map<const Node*, int> worker_of;
    if (num_workers > 1) {
      for (std::size_t r = 0; r < replica_inputs.size(); ++r) {
        for (const Node* buffer : replica_inputs[r]) {
          worker_of[buffer] = 1 + static_cast<int>(r % (num_workers - 1));
        }
      }
    }
    return scheduler::MakeAssignment(graph, worker_of);
  }
};

/// Handles of a replicated unary stage: route upstream into `input`,
/// subscribe downstream to `output`.
template <typename In, typename Out>
struct ParallelChain : ParallelTopology {
  InputPort<In>* input = nullptr;
  Source<Out>* output = nullptr;
};

/// Handles of a replicated equi-join: two partitioned inputs, one merged
/// output.
template <typename L, typename R, typename Out>
struct ParallelJoinChain : ParallelTopology {
  InputPort<L>* left = nullptr;
  InputPort<R>* right = nullptr;
  Source<Out>* output = nullptr;
};

// --- Replication helpers ----------------------------------------------------

/// Clones the unary operator `OpT` into `n` keyed replicas:
///
///     upstream -> Partition -+-> buf -> OpT#0 -> buf -+-> Merge -> ...
///                            +-> buf -> OpT#1 -> buf -+
///
/// Each replica is constructed from a copy of `args...` (so the same
/// functors/parameters as the single-replica form), decoupled by
/// `ConcurrentBuffer`s so `ThreadScheduler` can drive each chain on its own
/// worker (see `ParallelTopology::PinnedAssignment`). Refuses operators
/// that are not key-partitionable at compile time.
template <typename OpT, typename KeyFn, typename... Args>
auto MakeKeyedParallel(QueryGraph& graph, std::size_t n, KeyFn key_fn,
                       const Args&... args) {
  static_assert(
      KeyPartitionable<OpT>::value,
      "MakeKeyedParallel: operator state does not decompose by key — only "
      "grouped aggregates, Distinct, PartitionedWindow, and hash equi-joins "
      "are safe to replicate (see docs/operators.md)");
  using In = typename OpT::InputType;
  using Out = typename OpT::OutputType;
  PIPES_CHECK(n > 0);

  ParallelChain<In, Out> chain;
  auto& split = graph.Add<Partition<In, KeyFn>>(n, std::move(key_fn));
  auto& merge = graph.Add<Merge<Out>>(n);
  chain.splitters.push_back(&split);
  chain.merge = &merge;
  chain.input = &split.input();
  chain.output = &merge;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = "-" + std::to_string(i);
    auto& in_buf = graph.Add<ConcurrentBuffer<In>>("replica-in" + suffix);
    auto& op = graph.Add<OpT>(args...);
    op.set_name(op.name() + suffix);
    auto& out_buf = graph.Add<ConcurrentBuffer<Out>>("replica-out" + suffix);
    split.AddSubscriber(i, in_buf.input());
    in_buf.AddSubscriber(op.input());
    op.AddSubscriber(out_buf.input());
    out_buf.AddSubscriber(merge.input(i));
    chain.replicas.push_back(&op);
    chain.replica_inputs.push_back({&in_buf});
    chain.replica_outputs.push_back(&out_buf);
  }
  return chain;
}

/// Clones a hash equi-join into `n` keyed replicas: both inputs partition
/// by their join keys (same `std::hash`, same modulus, so matching keys
/// co-locate), each replica joins its key subset, and the merge restores
/// global order. Both of a replica's input buffers must be driven by one
/// worker — `PinnedAssignment` guarantees that.
///
/// The two key extractors must yield the same key type (as the hash join
/// itself requires): partitioning relies on hash(key_l(l)) == hash(key_r(r))
/// whenever the keys are equal.
template <typename L, typename R, typename KeyL, typename KeyR,
          typename Combine>
auto MakeParallelHashJoin(QueryGraph& graph, std::size_t n, KeyL key_l,
                          KeyR key_r, Combine combine,
                          std::string name = "hash-join") {
  static_assert(
      std::is_same_v<std::decay_t<std::invoke_result_t<KeyL, const L&>>,
                     std::decay_t<std::invoke_result_t<KeyR, const R&>>>,
      "MakeParallelHashJoin: both key extractors must yield the same key "
      "type, or the two Partition nodes would hash-route inconsistently");
  using Out = std::decay_t<std::invoke_result_t<Combine, const L&, const R&>>;
  PIPES_CHECK(n > 0);

  ParallelJoinChain<L, R, Out> chain;
  auto& lsplit =
      graph.Add<Partition<L, KeyL>>(n, key_l, name + "-partition-l");
  auto& rsplit =
      graph.Add<Partition<R, KeyR>>(n, key_r, name + "-partition-r");
  auto& merge = graph.Add<Merge<Out>>(n, name + "-merge");
  chain.splitters = {&lsplit, &rsplit};
  chain.merge = &merge;
  chain.left = &lsplit.input();
  chain.right = &rsplit.input();
  chain.output = &merge;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string suffix = "-" + std::to_string(i);
    auto& lbuf = graph.Add<ConcurrentBuffer<L>>(name + "-in-l" + suffix);
    auto& rbuf = graph.Add<ConcurrentBuffer<R>>(name + "-in-r" + suffix);
    auto& join =
        graph.Add(MakeHashJoin<L, R>(key_l, key_r, combine, name + suffix));
    static_assert(
        KeyPartitionable<
            std::remove_reference_t<decltype(join)>>::value,
        "hash equi-joins must satisfy the KeyPartitionable trait");
    auto& out_buf = graph.Add<ConcurrentBuffer<Out>>(name + "-out" + suffix);
    lsplit.AddSubscriber(i, lbuf.input());
    rsplit.AddSubscriber(i, rbuf.input());
    lbuf.AddSubscriber(join.left());
    rbuf.AddSubscriber(join.right());
    join.AddSubscriber(out_buf.input());
    out_buf.AddSubscriber(merge.input(i));
    chain.replicas.push_back(&join);
    chain.replica_inputs.push_back({&lbuf, &rbuf});
    chain.replica_outputs.push_back(&out_buf);
  }
  return chain;
}

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_PARALLEL_H_
