#ifndef PIPES_ALGEBRA_RELATION_TO_STREAM_H_
#define PIPES_ALGEBRA_RELATION_TO_STREAM_H_

#include <string>
#include <utility>

#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// CQL's relation-to-stream operators over interval streams. A temporal
/// stream *is* a time-varying relation (its snapshots); these operators
/// project the changes back out as point streams:
///
///  * `IStream` — one point element whenever a payload *enters* the
///    snapshot (at its validity start),
///  * `DStream` — one point element whenever a payload *leaves* the
///    snapshot (at its validity end),
///  * RSTREAM is the identity on interval streams and needs no operator.

namespace pipes::algebra {

/// Insert stream: [s, e) becomes the point [s, s+1). Stateless.
template <typename T>
class IStream : public UnaryPipe<T, T> {
 public:
  explicit IStream(std::string name = "istream")
      : UnaryPipe<T, T>(std::move(name)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "istream";
    d.bounds_validity = true;
    d.dataflow.validity_extent = 1;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    this->Transfer(StreamElement<T>::Point(e.payload, e.start()));
  }
};

/// Delete stream: [s, e) becomes the point [e, e+1). Deletions do not
/// arrive in end order, so results are staged and released by watermark.
/// Elements valid forever (end = kMaxTimestamp) never expire and produce
/// nothing.
template <typename T>
class DStream : public UnaryPipe<T, T> {
 public:
  explicit DStream(std::string name = "dstream")
      : UnaryPipe<T, T>(std::move(name)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "dstream";
    // Output points land at input *ends*: results stage until the
    // watermark passes them, and unbounded inputs produce nothing at all.
    d.blocking = true;
    d.bounds_validity = true;
    d.dataflow.validity_extent = 1;
    // One staged point per bounded input element.
    d.dataflow.state_bytes_per_element = sizeof(StreamElement<T>) + 48;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    if (e.end() == kMaxTimestamp) return;
    staged_.Push(StreamElement<T>::Point(e.payload, e.end()));
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    // A future input has start >= watermark, so its deletion lands at its
    // end > watermark: everything staged below the watermark is final.
    staged_.FlushUpTo(watermark, [this](const StreamElement<T>& e) {
      this->Transfer(e);
    });
    this->TransferHeartbeat(watermark);
  }

  void PortDone(int /*port_id*/) override {
    staged_.FlushAll(
        [this](const StreamElement<T>& e) { this->Transfer(e); });
    this->TransferDone();
  }

 private:
  OrderedOutputBuffer<T> staged_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_RELATION_TO_STREAM_H_
