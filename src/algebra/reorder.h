#ifndef PIPES_ALGEBRA_REORDER_H_
#define PIPES_ALGEBRA_REORDER_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>

#include "src/common/macros.h"
#include "src/core/ordered_buffer.h"
#include "src/core/source.h"

/// \file
/// Out-of-order adapter: autonomous data sources (sensors, network feeds)
/// may deliver elements slightly out of timestamp order. A
/// `ReorderingSource` wraps such a raw stream and restores the start-order
/// invariant the algebra relies on, holding elements back by a bounded
/// slack. Elements later than the slack allows are dropped (and counted).

namespace pipes::algebra {

/// Active source that buffers a raw (possibly disordered) generator and
/// emits in start order. Assumes disorder is bounded: after seeing an
/// element at time t, no element earlier than t - slack will arrive;
/// violators are dropped.
template <typename T>
class ReorderingSource : public Source<T> {
 public:
  using Generator = std::function<std::optional<StreamElement<T>>()>;

  ReorderingSource(Generator generator, Timestamp slack,
                   std::string name = "reordering-source")
      : Source<T>(std::move(name)),
        generator_(std::move(generator)),
        slack_(slack) {
    PIPES_CHECK(slack >= 0);
  }

  bool is_active() const override { return true; }
  bool HasWork() const override { return !exhausted_ || !staged_.empty(); }
  bool IsFinished() const override { return exhausted_ && staged_.empty(); }
  std::size_t queue_size() const override { return staged_.size(); }

  /// Elements discarded because they arrived later than the slack bound.
  std::uint64_t dropped_count() const { return dropped_; }

  std::uint64_t ShedCount() const override { return dropped_; }

  /// Declared dataflow feed contract of the *raw* generator (same meaning
  /// as `GeneratorSource::Declare*`): the reorderer forwards every in-slack
  /// element, so the emitted stream inherits the raw feed's cardinality,
  /// rate, and validity-extent bounds. Workload adapters set these from
  /// generator parameters so the static state analysis stays bounded.
  void DeclareTotalElements(std::uint64_t total) {
    declared_.total_elements = total;
  }
  void DeclareRatePerUnit(double rate) { declared_.rate_per_unit = rate; }
  void DeclareValidityExtent(Timestamp extent) {
    declared_.validity_extent = extent;
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kSource;
    d.op = "reordering-source";
    d.emits_heartbeats = true;
    d.dataflow = declared_;
    // Emitted starts are ordered; the heartbeat trails max_seen_ by the
    // slack, so downstream retention grows by the same amount. Raw-feed
    // disorder beyond the slack is declared per-instance via the
    // "dataflow.feed_disorder" gauge (lint P023).
    d.dataflow.reorder_slack = slack_;
    d.dataflow.watermark_lag = slack_;
    d.notes.push_back(
        "reordering source drops elements arriving later than the slack "
        "bound; results may silently drop data");
    return d;
  }

  std::size_t DoWork(std::size_t max_units) override {
    std::size_t n = 0;
    while (n < max_units && !exhausted_) {
      std::optional<StreamElement<T>> e = generator_();
      ++n;
      if (!e.has_value()) {
        exhausted_ = true;
        break;
      }
      if (max_seen_ > kMinTimestamp && e->start() < max_seen_ - slack_) {
        ++dropped_;  // Violates the disorder bound; cannot emit in order.
        continue;
      }
      max_seen_ = std::max(max_seen_, e->start());
      staged_.Push(std::move(*e));
      Flush();
    }
    if (exhausted_) {
      staged_.FlushAll(
          [this](const StreamElement<T>& e) { this->Transfer(e); });
      this->TransferDone();
    }
    return n;
  }

 private:
  void Flush() {
    if (max_seen_ == kMinTimestamp) return;
    const Timestamp safe = max_seen_ - slack_;
    staged_.FlushUpTo(safe + 1,
                      [this](const StreamElement<T>& e) { this->Transfer(e); });
    if (safe > kMinTimestamp) {
      this->TransferHeartbeat(safe);
    }
  }

  Generator generator_;
  Timestamp slack_;
  NodeDescriptor::Dataflow declared_;
  OrderedOutputBuffer<T> staged_;
  Timestamp max_seen_ = kMinTimestamp;
  bool exhausted_ = false;
  std::uint64_t dropped_ = 0;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_REORDER_H_
