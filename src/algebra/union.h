#ifndef PIPES_ALGEBRA_UNION_H_
#define PIPES_ALGEBRA_UNION_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// Multiset union. The logical operator simply merges the snapshots of both
/// inputs; physically the only work is re-establishing the global
/// start-order of the output, released by the combined watermark.
/// Non-blocking: elements leave as soon as both inputs have progressed past
/// their start.

namespace pipes::algebra {

/// Order-preserving union of two streams of the same payload type. For an
/// n-ary union, chain instances or subscribe several sources to `left()` —
/// the input port merges the progress of all its upstreams.
///
/// Staging is a pair of per-side FIFO queues: with one upstream per port
/// each side arrives in non-decreasing start order, so the globally next
/// element (smallest (start, arrival)) is always at one of the two fronts
/// and release is a plain two-way merge — O(1) per element, no heap. If a
/// side ever observes an out-of-order arrival (several upstreams fanned in
/// to one port), the queues are spilled — in arrival order, preserving the
/// release order exactly — into an ordered heap used from then on.
template <typename T>
class Union : public BinaryPipe<T, T, T> {
 public:
  explicit Union(std::string name = "union")
      : BinaryPipe<T, T, T>(std::move(name)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = BinaryPipe<T, T, T>::Describe();
    d.op = "union";
    d.has_batch_kernel = true;
    return d;
  }

 protected:
  void OnElementLeft(const StreamElement<T>& e) override { Stage(0, e); }
  void OnElementRight(const StreamElement<T>& e) override { Stage(1, e); }

  /// Batch kernels: stage the whole run; the single per-batch progress
  /// notification that follows does one flush instead of one per element.
  void OnBatchLeft(std::span<const StreamElement<T>> batch) override {
    for (const StreamElement<T>& e : batch) Stage(0, e);
  }
  void OnBatchRight(std::span<const StreamElement<T>> batch) override {
    for (const StreamElement<T>& e : batch) Stage(1, e);
  }

  void OnProgressSide(int /*side*/, Timestamp /*watermark*/) override {
    const Timestamp combined = this->CombinedWatermark();
    FlushBatched(combined);
    if (combined < kMaxTimestamp) {
      this->TransferHeartbeat(combined);
    }
  }

  void OnDoneSide(int /*side*/) override {
    if (this->BothDone()) {
      FlushBatched(kMaxTimestamp);
      this->TransferDone();
    } else {
      // One side finished: progress is now governed by the other side only.
      OnProgressSide(0, this->CombinedWatermark());
    }
  }

 private:
  struct Pending {
    StreamElement<T> element;
    std::uint64_t seq;
  };

  void Stage(int side, const StreamElement<T>& e) {
    if (!spilled_) {
      std::deque<Pending>& q = queue_[side];
      if (q.empty() || q.back().element.start() <= e.start()) {
        q.push_back(Pending{e, next_seq_++});
        return;
      }
      SpillToHeap();
    }
    staged_.Push(e);
  }

  /// Fan-in broke a side's start order: move everything into the heap, in
  /// arrival (seq) order so release order among equal starts is unchanged.
  void SpillToHeap() {
    spilled_ = true;
    std::deque<Pending>& l = queue_[0];
    std::deque<Pending>& r = queue_[1];
    while (!l.empty() || !r.empty()) {
      std::deque<Pending>& q =
          r.empty() || (!l.empty() && l.front().seq < r.front().seq) ? l : r;
      staged_.Push(std::move(q.front().element));
      q.pop_front();
    }
  }

  /// Releases everything ripe below `watermark` as one downstream batch.
  void FlushBatched(Timestamp watermark) {
    out_.clear();
    if (spilled_) {
      staged_.FlushUpTo(watermark, [this](const StreamElement<T>& e) {
        out_.push_back(e);
      });
    } else {
      std::deque<Pending>& l = queue_[0];
      std::deque<Pending>& r = queue_[1];
      while (true) {
        const bool l_ripe = !l.empty() && l.front().element.start() < watermark;
        const bool r_ripe = !r.empty() && r.front().element.start() < watermark;
        std::deque<Pending>* q = nullptr;
        if (l_ripe && r_ripe) {
          const Pending& a = l.front();
          const Pending& b = r.front();
          const bool left_first =
              a.element.start() != b.element.start()
                  ? a.element.start() < b.element.start()
                  : a.seq < b.seq;
          q = left_first ? &l : &r;
        } else if (l_ripe) {
          q = &l;
        } else if (r_ripe) {
          q = &r;
        } else {
          break;
        }
        out_.push_back(std::move(q->front().element));
        q->pop_front();
      }
    }
    this->TransferBatch(out_);
  }

  std::deque<Pending> queue_[2];
  std::uint64_t next_seq_ = 0;
  bool spilled_ = false;
  OrderedOutputBuffer<T> staged_;
  std::vector<StreamElement<T>> out_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_UNION_H_
