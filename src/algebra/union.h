#ifndef PIPES_ALGEBRA_UNION_H_
#define PIPES_ALGEBRA_UNION_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/columnar.h"
#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// Multiset union. The logical operator simply merges the snapshots of both
/// inputs; physically the only work is re-establishing the global
/// start-order of the output, released by the combined watermark.
/// Non-blocking: elements leave as soon as both inputs have progressed past
/// their start.

namespace pipes::algebra {

/// Order-preserving union of two streams of the same payload type. For an
/// n-ary union, chain instances or subscribe several sources to `left()` —
/// the input port merges the progress of all its upstreams.
///
/// Staging is a pair of per-side FIFO queues: with one upstream per port
/// each side arrives in non-decreasing start order, so the globally next
/// element (smallest (start, arrival)) is always at one of the two fronts
/// and release is a plain two-way merge — O(1) per element, no heap. Each
/// queue is columnar (the element columns plus an arrival-sequence column
/// and a consumed-head index): runs stage as bulk column appends, and the
/// merge reads and writes plain arrays without ever materializing AoS
/// elements. If a side ever observes an out-of-order arrival (several
/// upstreams fanned in to one port), the queues are spilled — in arrival
/// order, preserving the release order exactly — into an ordered heap used
/// from then on.
template <typename T>
class Union : public BinaryPipe<T, T, T> {
 public:
  explicit Union(std::string name = "union")
      : BinaryPipe<T, T, T>(std::move(name)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = BinaryPipe<T, T, T>::Describe();
    d.op = "union";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    return d;
  }

 protected:
  void OnElementLeft(const StreamElement<T>& e) override { Stage(0, e); }
  void OnElementRight(const StreamElement<T>& e) override { Stage(1, e); }

  /// Batch kernels: stage the whole run; the single per-batch progress
  /// notification that follows does one flush instead of one per element.
  void OnBatchLeft(std::span<const StreamElement<T>> batch) override {
    for (const StreamElement<T>& e : batch) Stage(0, e);
  }
  void OnBatchRight(std::span<const StreamElement<T>> batch) override {
    for (const StreamElement<T>& e : batch) Stage(1, e);
  }

  /// Columnar kernels: stage straight from the columns — the common case
  /// (run continues the side's start order) is one bulk append per run with
  /// no intermediate `StreamElement` materialization.
  void OnRunLeft(const ColumnarRun<T>& run) override { StageRun(0, run); }
  void OnRunRight(const ColumnarRun<T>& run) override { StageRun(1, run); }

  void OnProgressSide(int /*side*/, Timestamp /*watermark*/) override {
    const Timestamp combined = this->CombinedWatermark();
    FlushBatched(combined);
    if (combined < kMaxTimestamp) {
      this->TransferHeartbeat(combined);
    }
  }

  void OnDoneSide(int /*side*/) override {
    if (this->BothDone()) {
      FlushBatched(kMaxTimestamp);
      this->TransferDone();
    } else {
      // One side finished: progress is now governed by the other side only.
      OnProgressSide(0, this->CombinedWatermark());
    }
  }

 private:
  /// One side's staged elements in arrival order: the element columns plus
  /// an arrival-sequence column, consumed from `head`. The fully-drained
  /// case (the common one — a watermark usually releases everything) resets
  /// in O(1) keeping capacity; a long undrained tail is compacted instead.
  struct SideQueue {
    ColumnarRun<T> cols;
    std::vector<std::uint64_t> seqs;
    std::size_t head = 0;

    bool empty() const { return head == cols.size(); }
    Timestamp FrontStart() const { return cols.starts[head]; }
    std::uint64_t FrontSeq() const { return seqs[head]; }

    void Settle() {
      if (head == cols.size()) {
        cols.clear();
        seqs.clear();
        head = 0;
      } else if (head > 1024 && head * 2 >= cols.size()) {
        cols.EraseFront(head);
        seqs.erase(seqs.begin(), seqs.begin() + head);
        head = 0;
      }
    }
  };

  void Stage(int side, const StreamElement<T>& e) {
    if (!spilled_) {
      SideQueue& q = queue_[side];
      if (q.empty() || q.cols.starts.back() <= e.start()) {
        q.cols.Append(e);
        q.seqs.push_back(next_seq_++);
        return;
      }
      SpillToHeap();
    }
    staged_.Push(e);
  }

  /// Stages a whole columnar run on one side. A run is internally ordered,
  /// so only its first start can break the side's order (fan-in), checked
  /// once; afterwards the columns append in bulk.
  void StageRun(int side, const ColumnarRun<T>& run) {
    if (!spilled_) {
      SideQueue& q = queue_[side];
      if (q.empty() || q.cols.starts.back() <= run.starts.front()) {
        q.cols.AppendRun(run);
        q.seqs.reserve(q.seqs.size() + run.size());
        for (std::size_t i = 0; i < run.size(); ++i) {
          q.seqs.push_back(next_seq_++);
        }
        return;
      }
      SpillToHeap();
    }
    for (std::size_t i = 0; i < run.size(); ++i) {
      staged_.Push(
          StreamElement<T>(run.payloads[i], run.starts[i], run.ends[i]));
    }
  }

  /// Fan-in broke a side's start order: move everything into the heap, in
  /// arrival (seq) order so release order among equal starts is unchanged.
  void SpillToHeap() {
    spilled_ = true;
    SideQueue& l = queue_[0];
    SideQueue& r = queue_[1];
    while (!l.empty() || !r.empty()) {
      SideQueue& q =
          r.empty() || (!l.empty() && l.FrontSeq() < r.FrontSeq()) ? l : r;
      staged_.Push(q.cols.ElementAt(q.head));
      ++q.head;
    }
    l.Settle();
    r.Settle();
  }

  /// First index at or after `q.head` whose start is >= `watermark` —
  /// starts are sorted per side, so the ripe prefix ends at a binary
  /// search, not a scan.
  static std::size_t RipeEnd(const SideQueue& q, Timestamp watermark) {
    const auto& s = q.cols.starts;
    return static_cast<std::size_t>(
        std::lower_bound(s.begin() + q.head, s.end(), watermark) - s.begin());
  }

  /// (start, arrival-seq) of `a[i]` precedes that of `b[j]`.
  static bool Precedes(const SideQueue& a, std::size_t i, const SideQueue& b,
                       std::size_t j) {
    const Timestamp as = a.cols.starts[i];
    const Timestamp bs = b.cols.starts[j];
    return as != bs ? as < bs : a.seqs[i] < b.seqs[j];
  }

  /// Releases everything ripe below `watermark` as one downstream columnar
  /// run — the two-way merge reads the side columns and fills the output
  /// columns directly, without ever materializing AoS elements. The ripe
  /// boundary of each side is found once up front (and the output reserved
  /// exactly), so the merge loop carries no watermark checks or capacity
  /// growth; once either side's ripe prefix drains, the other's remainder
  /// leaves as a single bulk append.
  void FlushBatched(Timestamp watermark) {
    out_run_.clear();
    if (spilled_) {
      staged_.FlushUpTo(watermark, [this](const StreamElement<T>& e) {
        out_run_.Append(e);
      });
    } else {
      SideQueue& l = queue_[0];
      SideQueue& r = queue_[1];
      std::size_t lh = l.head;
      std::size_t rh = r.head;
      const std::size_t lend = RipeEnd(l, watermark);
      const std::size_t rend = RipeEnd(r, watermark);
      out_run_.reserve(out_run_.size() + (lend - lh) + (rend - rh));
      while (lh < lend && rh < rend) {
        if (Precedes(l, lh, r, rh)) {
          out_run_.Append(l.cols.payloads[lh], l.cols.starts[lh],
                          l.cols.ends[lh]);
          ++lh;
        } else {
          out_run_.Append(r.cols.payloads[rh], r.cols.starts[rh],
                          r.cols.ends[rh]);
          ++rh;
        }
      }
      if (lh < lend) {
        out_run_.AppendRange(l.cols, lh, lend);
        lh = lend;
      }
      if (rh < rend) {
        out_run_.AppendRange(r.cols, rh, rend);
        rh = rend;
      }
      l.head = lh;
      r.head = rh;
      l.Settle();
      r.Settle();
    }
    this->TransferRun(std::move(out_run_));
  }

  SideQueue queue_[2];
  std::uint64_t next_seq_ = 0;
  bool spilled_ = false;
  OrderedOutputBuffer<T> staged_;
  ColumnarRun<T> out_run_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_UNION_H_
