#ifndef PIPES_ALGEBRA_UNION_H_
#define PIPES_ALGEBRA_UNION_H_

#include <string>
#include <utility>

#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// Multiset union. The logical operator simply merges the snapshots of both
/// inputs; physically the only work is re-establishing the global
/// start-order of the output, which is done with an ordered staging buffer
/// released by the combined watermark. Non-blocking: elements leave as soon
/// as both inputs have progressed past their start.

namespace pipes::algebra {

/// Order-preserving union of two streams of the same payload type. For an
/// n-ary union, chain instances or subscribe several sources to `left()` —
/// the input port merges the progress of all its upstreams.
template <typename T>
class Union : public BinaryPipe<T, T, T> {
 public:
  explicit Union(std::string name = "union")
      : BinaryPipe<T, T, T>(std::move(name)) {}

 protected:
  void OnElementLeft(const StreamElement<T>& e) override { Stage(e); }
  void OnElementRight(const StreamElement<T>& e) override { Stage(e); }

  void OnProgressSide(int /*side*/, Timestamp /*watermark*/) override {
    const Timestamp combined = this->CombinedWatermark();
    staged_.FlushUpTo(combined,
                      [this](const StreamElement<T>& e) { this->Transfer(e); });
    if (combined < kMaxTimestamp) {
      this->TransferHeartbeat(combined);
    }
  }

  void OnDoneSide(int /*side*/) override {
    if (this->BothDone()) {
      staged_.FlushAll(
          [this](const StreamElement<T>& e) { this->Transfer(e); });
      this->TransferDone();
    } else {
      // One side finished: progress is now governed by the other side only.
      OnProgressSide(0, this->CombinedWatermark());
    }
  }

 private:
  void Stage(const StreamElement<T>& e) { staged_.Push(e); }

  OrderedOutputBuffer<T> staged_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_UNION_H_
