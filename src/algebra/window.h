#ifndef PIPES_ALGEBRA_WINDOW_H_
#define PIPES_ALGEBRA_WINDOW_H_

#include <algorithm>
#include <deque>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/core/ordered_buffer.h"
#include "src/core/pipe.h"

/// \file
/// Window operators: the bridge between raw (point-interval) streams and
/// the temporal algebra. A window operator only rewrites validity
/// intervals; CQL's RANGE / RANGE-SLIDE / ROWS / PARTITION-BY-ROWS window
/// specifications each map to one operator here. Downstream stateful
/// operators (join, aggregation, ...) are window-agnostic — they just honor
/// intervals — which is what makes the algebra compositional.

namespace pipes::algebra {

/// Time-based sliding window (CQL `[RANGE w]`): an element with point
/// validity at t becomes valid on [t, t + w). Snapshot at time τ therefore
/// contains exactly the elements with t in (τ - w, τ].
template <typename T>
class TimeWindow : public UnaryPipe<T, T> {
 public:
  TimeWindow(Timestamp size, std::string name = "time-window")
      : UnaryPipe<T, T>(std::move(name)), size_(size) {
    PIPES_CHECK(size > 0);
  }

  Timestamp size() const { return size_; }

  /// Runtime window shrinking — the load-shedding hook the memory manager
  /// uses (approximate answers under pressure). Affects future elements.
  void set_size(Timestamp size) {
    PIPES_CHECK(size > 0);
    size_ = size;
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "time-window";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    d.bounds_validity = true;
    d.dataflow.validity_extent = size_;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    this->Transfer(
        StreamElement<T>(e.payload, e.start(), e.start() + size_));
  }

  /// Batch kernel: widen intervals in a tight loop; starts are untouched,
  /// so the input's order carries over to the output batch.
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    out_.clear();
    out_.reserve(batch.size());
    for (const StreamElement<T>& e : batch) {
      out_.emplace_back(e.payload, e.start(), e.start() + size_);
    }
    this->TransferBatch(out_);
  }

  /// Columnar kernel: payloads and starts are bulk-copied; only the ends
  /// column is rewritten, in a loop over one plain timestamp array.
  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    run_out_.clear();
    run_out_.starts.assign(run.starts.begin(), run.starts.end());
    run_out_.payloads.assign(run.payloads.begin(), run.payloads.end());
    run_out_.ends.resize(run.size());
    const Timestamp w = size_;
    for (std::size_t i = 0; i < run.size(); ++i) {
      run_out_.ends[i] = run.starts[i] + w;
    }
    this->TransferRun(std::move(run_out_));
  }

 private:
  Timestamp size_;
  std::vector<StreamElement<T>> out_;
  ColumnarRun<T> run_out_;
};

/// Time-based hopping window (CQL `[RANGE w SLIDE s]`): results are only
/// defined at multiples of the slide `s`. An element at t is visible at
/// evaluation instants τ = k*s with t in (τ - w, τ], i.e. on the interval
/// [ceil(t/s)*s, ceil((t+w)/s)*s). Aligning both endpoints to the slide
/// grid is what *reduces the output rate* of downstream aggregates — their
/// result changes only at grid points (the paper's "special mechanisms
/// that substantially reduce stream rates").
template <typename T>
class SlideWindow : public UnaryPipe<T, T> {
 public:
  SlideWindow(Timestamp size, Timestamp slide,
              std::string name = "slide-window")
      : UnaryPipe<T, T>(std::move(name)), size_(size), slide_(slide) {
    PIPES_CHECK(size > 0 && slide > 0);
  }

  Timestamp size() const { return size_; }
  Timestamp slide() const { return slide_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "slide-window";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    d.bounds_validity = true;
    // AlignUp(t + size) - AlignUp(t) < size + slide.
    d.dataflow.validity_extent = size_ + slide_;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    const Timestamp first = AlignUp(e.start());
    const Timestamp last = AlignUp(e.start() + size_);
    if (first < last) {
      this->Transfer(StreamElement<T>(e.payload, first, last));
    }
    // else: the element falls between grid points entirely — no instant
    // ever observes it. (Cannot happen when size_ >= slide_.)
  }

  /// Batch kernel. AlignUp is monotone in the start, so aligned starts stay
  /// non-decreasing and the output batch keeps the ordering invariant.
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    out_.clear();
    out_.reserve(batch.size());
    for (const StreamElement<T>& e : batch) {
      const Timestamp first = AlignUp(e.start());
      const Timestamp last = AlignUp(e.start() + size_);
      if (first < last) {
        out_.emplace_back(e.payload, first, last);
      }
    }
    this->TransferBatch(out_);
  }

  /// Columnar kernel: grid-aligns both timestamp columns in one pass.
  /// AlignUp is monotone, so survivor starts stay non-decreasing.
  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    run_out_.clear();
    run_out_.reserve(run.size());
    for (std::size_t i = 0; i < run.size(); ++i) {
      const Timestamp first = AlignUp(run.starts[i]);
      const Timestamp last = AlignUp(run.starts[i] + size_);
      if (first < last) {
        run_out_.Append(run.payloads[i], first, last);
      }
    }
    this->TransferRun(std::move(run_out_));
  }

 private:
  Timestamp AlignUp(Timestamp t) const {
    // Smallest multiple of slide_ that is >= t (timestamps are >= 0 in all
    // workloads; negative t would align toward zero).
    return ((t + slide_ - 1) / slide_) * slide_;
  }

  Timestamp size_;
  Timestamp slide_;
  std::vector<StreamElement<T>> out_;
  ColumnarRun<T> run_out_;
};

/// Unbounded window (CQL `[UNBOUNDED]`): every element stays valid forever
/// — the semantics of treating the stream as an ever-growing relation.
/// Stateful consumers below an unbounded window never purge; use with the
/// memory manager.
template <typename T>
class UnboundedWindow : public UnaryPipe<T, T> {
 public:
  explicit UnboundedWindow(std::string name = "unbounded-window")
      : UnaryPipe<T, T>(std::move(name)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "unbounded-window";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    d.unbounded_validity = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    this->Transfer(StreamElement<T>(e.payload, e.start(), kMaxTimestamp));
  }

  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    out_.clear();
    out_.reserve(batch.size());
    for (const StreamElement<T>& e : batch) {
      out_.emplace_back(e.payload, e.start(), kMaxTimestamp);
    }
    this->TransferBatch(out_);
  }

  /// Columnar kernel: copy starts and payloads, fill ends with +inf.
  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    run_out_.clear();
    run_out_.starts.assign(run.starts.begin(), run.starts.end());
    run_out_.payloads.assign(run.payloads.begin(), run.payloads.end());
    run_out_.ends.assign(run.size(), kMaxTimestamp);
    this->TransferRun(std::move(run_out_));
  }

 private:
  std::vector<StreamElement<T>> out_;
  ColumnarRun<T> run_out_;
};

/// Count-based window (CQL `[ROWS n]`): each element stays valid until `n`
/// further elements have arrived; the last `n` elements at end-of-stream
/// stay valid forever. Emission is delayed by `n` elements because an
/// element's expiry timestamp is the start of its n-th successor.
template <typename T>
class CountWindow : public UnaryPipe<T, T> {
 public:
  CountWindow(std::size_t rows, std::string name = "count-window")
      : UnaryPipe<T, T>(std::move(name)), rows_(rows) {
    PIPES_CHECK(rows > 0);
  }

  std::size_t rows() const { return rows_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "count-window";
    // Re-stamps validity, but an element's expiry is the start of its n-th
    // successor — no static time bound (and the last n live forever), so
    // dataflow.validity_extent stays at the unknown sentinel.
    d.bounds_validity = true;
    d.dataflow.state_bytes_fixed =
        (rows_ + 1) * (sizeof(StreamElement<T>) + 48);
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    pending_.push_back(e);
    if (pending_.size() > rows_) {
      StreamElement<T> out = std::move(pending_.front());
      pending_.pop_front();
      // Valid from its own start until the start of its n-th successor.
      const Timestamp expiry = std::max(e.start(), out.start() + 1);
      this->Transfer(StreamElement<T>(std::move(out.payload), out.start(),
                                      expiry));
    }
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    // Pending elements have starts below the watermark but are not emitted
    // yet; cap the heartbeat so downstream never sees a start below it.
    Timestamp bound = watermark;
    if (!pending_.empty()) {
      bound = std::min(bound, pending_.front().start());
    }
    if (bound > kMinTimestamp) {
      this->TransferHeartbeat(bound);
    }
  }

  void PortDone(int /*port_id*/) override {
    for (StreamElement<T>& e : pending_) {
      this->Transfer(
          StreamElement<T>(std::move(e.payload), e.start(), kMaxTimestamp));
    }
    pending_.clear();
    this->TransferDone();
  }

 private:
  std::size_t rows_;
  std::deque<StreamElement<T>> pending_;
};

/// Partitioned count window (CQL `[PARTITION BY k ROWS n]`): a ROWS-n
/// window maintained independently per partition key.
template <typename T, typename KeyFn>
class PartitionedWindow : public UnaryPipe<T, T> {
 public:
  PartitionedWindow(KeyFn key_fn, std::size_t rows,
                    std::string name = "partitioned-window")
      : UnaryPipe<T, T>(std::move(name)),
        key_fn_(std::move(key_fn)),
        rows_(rows) {
    PIPES_CHECK(rows > 0);
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.op = "partitioned-window";
    // Same unknown-extent caveat as count-window, per partition.
    d.bounds_validity = true;
    d.key_partitionable = true;
    // One retained copy in its partition deque plus one staged copy.
    d.dataflow.state_bytes_per_element =
        2 * (sizeof(StreamElement<T>) + 48);
    return d;
  }

 protected:
  using Key = std::decay_t<decltype(std::declval<KeyFn>()(
      std::declval<const T&>()))>;

  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    auto& partition = partitions_[key_fn_(e.payload)];
    partition.push_back(e);
    if (partition.size() > rows_) {
      StreamElement<T> out = std::move(partition.front());
      partition.pop_front();
      const Timestamp expiry = std::max(e.start(), out.start() + 1);
      staged_.Push(StreamElement<T>(std::move(out.payload), out.start(),
                                    expiry));
    }
    Release();
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    Release();
    Timestamp bound = watermark;
    for (const auto& [key, partition] : partitions_) {
      if (!partition.empty()) {
        bound = std::min(bound, partition.front().start());
      }
    }
    if (bound > kMinTimestamp) {
      this->TransferHeartbeat(bound);
    }
  }

  void PortDone(int /*port_id*/) override {
    for (auto& [key, partition] : partitions_) {
      for (StreamElement<T>& e : partition) {
        staged_.Push(StreamElement<T>(std::move(e.payload), e.start(),
                                      kMaxTimestamp));
      }
    }
    partitions_.clear();
    staged_.FlushAll(
        [this](const StreamElement<T>& e) { this->Transfer(e); });
    this->TransferDone();
  }

 private:
  /// Expired elements from different partitions interleave out of start
  /// order; release them only up to the minimum retained start.
  void Release() {
    Timestamp bound = this->input().watermark();
    for (const auto& [key, partition] : partitions_) {
      if (!partition.empty()) {
        bound = std::min(bound, partition.front().start());
      }
    }
    staged_.FlushUpTo(bound,
                      [this](const StreamElement<T>& e) { this->Transfer(e); });
  }

  KeyFn key_fn_;
  std::size_t rows_;
  std::unordered_map<Key, std::deque<StreamElement<T>>> partitions_;
  OrderedOutputBuffer<T> staged_;
};

}  // namespace pipes::algebra

#endif  // PIPES_ALGEBRA_WINDOW_H_
