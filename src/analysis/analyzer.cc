#include "src/analysis/analyzer.h"

#include <algorithm>

#include "src/analysis/dataflow.h"
#include <cstdio>
#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/descriptor.h"
#include "src/core/generator_source.h"
#include "src/core/sink.h"
#include "src/cql/catalog.h"
#include "src/optimizer/physical.h"
#include "src/optimizer/plan_xml.h"
#include "src/relational/tuple.h"

namespace pipes::analysis {
namespace {

using Kind = NodeDescriptor::Kind;

/// Metadata gauge-name conventions carrying lint annotations: a gauge named
/// `lint.deprecated:<hint>` or `lint.footgun:<note>` attached to a node is
/// reported by P015/P016 — the hook for plan builders and wrappers to flag
/// API-level hazards the descriptor itself cannot know.
constexpr const char kDeprecatedGaugePrefix[] = "lint.deprecated:";
constexpr const char kFootgunGaugePrefix[] = "lint.footgun:";
/// Stamped by `engine::Engine` on every registered query's output node;
/// the suffix is the owning tenant (see P019).
constexpr const char kEngineOutputGaugePrefix[] = "engine.registered_output:";

/// The analyzer's working copy of the graph: descriptors plus deduplicated
/// in-graph adjacency (multi-edges collapse; edges to nodes outside the
/// graph are split off as foreign).
struct NodeInfo {
  const Node* node = nullptr;
  NodeDescriptor desc;
  std::vector<std::size_t> ups;    // deduped, in-graph upstream indices
  std::vector<std::size_t> downs;  // deduped, in-graph downstream indices
  std::vector<const Node*> foreign;  // edge endpoints not owned by the graph
};

struct GraphModel {
  std::vector<NodeInfo> info;
  std::unordered_map<const Node*, std::size_t> index;
  bool has_cycle = false;
  /// Indices in topological (upstream-before-downstream) order; only the
  /// processed prefix is meaningful when `has_cycle`.
  std::vector<std::size_t> topo;
  /// Nodes left unprocessed by the topological sort — members of (or
  /// downstream of) a cycle.
  std::vector<std::size_t> cycle_residue;
};

GraphModel BuildModel(const QueryGraph& graph) {
  GraphModel m;
  const std::vector<Node*> nodes = graph.nodes();
  m.info.reserve(nodes.size());
  for (Node* node : nodes) {
    m.index.emplace(node, m.info.size());
    NodeInfo info;
    info.node = node;
    info.desc = node->Describe();
    m.info.push_back(std::move(info));
  }
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    NodeInfo& info = m.info[i];
    std::unordered_set<const Node*> seen;
    for (const Node* up : info.node->upstream()) {
      if (!seen.insert(up).second) continue;
      auto it = m.index.find(up);
      if (it == m.index.end()) {
        info.foreign.push_back(up);
      } else {
        info.ups.push_back(it->second);
      }
    }
    seen.clear();
    for (const Node* down : info.node->downstream()) {
      if (!seen.insert(down).second) continue;
      auto it = m.index.find(down);
      if (it == m.index.end()) {
        info.foreign.push_back(down);
      } else {
        info.downs.push_back(it->second);
      }
    }
  }
  // Kahn's algorithm over the deduplicated edges.
  std::vector<std::size_t> indegree(m.info.size(), 0);
  for (const NodeInfo& info : m.info) {
    for (std::size_t down : info.downs) ++indegree[down];
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    m.topo.push_back(i);
    for (std::size_t down : m.info[i].downs) {
      if (--indegree[down] == 0) ready.push_back(down);
    }
  }
  if (m.topo.size() != m.info.size()) {
    m.has_cycle = true;
    for (std::size_t i = 0; i < m.info.size(); ++i) {
      if (indegree[i] > 0) m.cycle_residue.push_back(i);
    }
  }
  return m;
}

/// Diagnostic accumulator with the shared emit shape.
class Linter {
 public:
  void Emit(const char* rule_id, Severity severity, const Node* node,
            std::string path, std::string message, std::string fixit) {
    Diagnostic d;
    d.rule_id = rule_id;
    d.severity = severity;
    if (node != nullptr) {
      d.node_id = node->id();
      d.node = node->name();
    }
    d.path = std::move(path);
    d.message = std::move(message);
    d.fixit = std::move(fixit);
    diags_.push_back(std::move(d));
  }

  /// Adopts an externally built diagnostic (the dataflow rules).
  void Add(Diagnostic d) { diags_.push_back(std::move(d)); }

  std::vector<Diagnostic> Take() {
    // Sort key == the Diagnostic equality tuple (operator==), so equal
    // diagnostic sets always order identically — the plan-XML parity
    // contract compares whole sorted vectors.
    std::sort(diags_.begin(), diags_.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                return std::tie(a.rule_id, a.severity, a.node, a.path,
                                a.message, a.fixit) <
                       std::tie(b.rule_id, b.severity, b.node, b.path,
                                b.message, b.fixit);
              });
    return std::move(diags_);
  }

 private:
  std::vector<Diagnostic> diags_;
};

// --- Structural rules ---------------------------------------------------------

void CheckCycle(const GraphModel& m, Linter& lint) {  // P001
  if (!m.has_cycle) return;
  std::vector<std::string> names;
  for (std::size_t i : m.cycle_residue) names.push_back(m.info[i].node->name());
  std::sort(names.begin(), names.end());
  std::string list;
  for (const std::string& n : names) {
    if (!list.empty()) list += ", ";
    list += n;
  }
  lint.Emit("P001", Severity::kError, m.info[m.cycle_residue.front()].node, "",
            "subscription edges form a cycle through {" + list +
                "}; delivery would recurse forever",
            "break the cycle: streams flow source -> operators -> sink");
}

void CheckForeignEdges(const GraphModel& m, Linter& lint) {  // P002
  for (const NodeInfo& info : m.info) {
    std::unordered_set<const Node*> reported;
    for (const Node* foreign : info.foreign) {
      if (!reported.insert(foreign).second) continue;
      lint.Emit("P002", Severity::kError, info.node, "",
                "edge to '" + foreign->name() +
                    "', which this graph does not own; its lifetime is not "
                    "tied to the graph",
                "Add the node to the graph (QueryGraph::Add) or unsubscribe "
                "before it is destroyed");
    }
  }
}

void CheckDanglingInputs(const GraphModel& m, Linter& lint) {  // P003
  for (const NodeInfo& info : m.info) {
    for (std::size_t p = 0; p < info.desc.port_upstreams.size(); ++p) {
      if (info.desc.port_upstreams[p] != 0) continue;
      lint.Emit("P003", Severity::kError, info.node, "",
                "input port " + std::to_string(p) +
                    " has no upstream: the port never receives elements or "
                    "end-of-stream, so the node (and everything merging its "
                    "progress) stalls forever",
                "subscribe a source to the port, or remove the node");
    }
  }
}

void CheckUnsubscribedOutputs(const GraphModel& m, Linter& lint) {  // P004
  for (const NodeInfo& info : m.info) {
    const Kind kind = info.desc.kind;
    if (kind == Kind::kSink || kind == Kind::kOpaque) continue;
    if (kind == Kind::kPartition) {
      for (std::size_t i = 0; i < info.desc.output_subscribers.size(); ++i) {
        if (!info.desc.output_subscribers[i].empty()) continue;
        lint.Emit("P004", Severity::kWarning, info.node, "",
                  "partition output " + std::to_string(i) +
                      " has no subscribers: every element hash-routed to it "
                      "is silently dropped",
                  "subscribe a replica chain to each partition output");
      }
      continue;
    }
    if (info.downs.empty() && info.foreign.empty()) {
      lint.Emit("P004", Severity::kWarning, info.node, "",
                "output has no subscribers: all produced elements are "
                "silently dropped",
                "subscribe a downstream operator or sink, or remove the node");
    }
  }
}

void CheckSinkReachability(const GraphModel& m, Linter& lint) {  // P005
  // Reverse reachability from sinks along upstream edges (cycle-safe).
  std::vector<char> reaches(m.info.size(), 0);
  std::deque<std::size_t> frontier;
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    if (m.info[i].desc.kind == Kind::kSink) {
      reaches[i] = 1;
      frontier.push_back(i);
    }
  }
  while (!frontier.empty()) {
    const std::size_t i = frontier.front();
    frontier.pop_front();
    for (std::size_t up : m.info[i].ups) {
      if (!reaches[up]) {
        reaches[up] = 1;
        frontier.push_back(up);
      }
    }
  }
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    const NodeInfo& info = m.info[i];
    if (info.desc.kind != Kind::kSource || reaches[i]) continue;
    if (info.downs.empty() && info.foreign.empty()) continue;  // P004's case
    lint.Emit("P005", Severity::kWarning, info.node, "",
              "no sink is reachable from this source: the subscribed "
              "operators compute results nobody consumes",
              "subscribe a sink to the query output, or remove the subtree");
  }
}

// --- Contract rules -----------------------------------------------------------

void CheckUnboundedBlocking(const GraphModel& m, Linter& lint) {  // P006
  if (m.has_cycle) return;  // needs topological propagation
  // unbounded[i]: some element leaving node i may be valid forever.
  // origin[i]: the node that introduced the unbounded validity.
  std::vector<char> unbounded(m.info.size(), 0);
  std::vector<std::size_t> origin(m.info.size(), 0);
  for (std::size_t i : m.topo) {
    const NodeInfo& info = m.info[i];
    if (info.desc.unbounded_validity) {
      unbounded[i] = 1;
      origin[i] = i;
      continue;
    }
    if (info.desc.bounds_validity) continue;  // re-bounds whatever comes in
    for (std::size_t up : info.ups) {
      if (unbounded[up]) {
        unbounded[i] = 1;
        origin[i] = origin[up];
        break;
      }
    }
  }
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    const NodeInfo& info = m.info[i];
    if (!info.desc.blocking) continue;
    for (std::size_t up : info.ups) {
      if (!unbounded[up]) continue;
      const Node* source_of = m.info[origin[up]].node;
      lint.Emit("P006", Severity::kWarning, info.node,
                source_of->name() + " -> " + info.node->name(),
                "stateful operator consumes elements that may be valid "
                "forever (introduced by '" +
                    source_of->name() +
                    "'): its state never purges and grows without bound",
                "insert a time/count window (or IStream) between '" +
                    source_of->name() + "' and '" + info.node->name() +
                    "', or attach the memory manager");
      break;  // one finding per blocking node
    }
  }
}

/// First non-buffer nodes reachable downstream of `start` (buffers are
/// transparent decoupling stages inside a replica chain).
std::vector<std::size_t> ThroughBuffers(const GraphModel& m,
                                        std::size_t start) {
  std::vector<std::size_t> out;
  std::unordered_set<std::size_t> visited;
  std::deque<std::size_t> frontier{start};
  while (!frontier.empty()) {
    const std::size_t i = frontier.front();
    frontier.pop_front();
    if (!visited.insert(i).second) continue;
    if (m.info[i].desc.kind == Kind::kBuffer) {
      for (std::size_t down : m.info[i].downs) frontier.push_back(down);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

/// The replica-stage operators fed by partition `p`: for each keyed output,
/// the first non-buffer node downstream of each subscriber.
std::vector<std::size_t> ReplicaOperators(const GraphModel& m,
                                          const NodeInfo& p) {
  std::vector<std::size_t> ops;
  std::unordered_set<std::size_t> seen;
  for (const auto& subscribers : p.desc.output_subscribers) {
    for (const Node* sub : subscribers) {
      auto it = m.index.find(sub);
      if (it == m.index.end()) continue;  // foreign: P002's case
      const Kind kind = m.info[it->second].desc.kind;
      const auto targets = kind == Kind::kBuffer
                               ? ThroughBuffers(m, it->second)
                               : std::vector<std::size_t>{it->second};
      for (std::size_t t : targets) {
        if (seen.insert(t).second) ops.push_back(t);
      }
    }
  }
  return ops;
}

void CheckPartitionStages(const GraphModel& m, Linter& lint) {  // P007-P009
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    const NodeInfo& p = m.info[i];
    if (p.desc.kind != Kind::kPartition) continue;

    // Nearest merges downstream (not expanding past a merge or sink).
    std::vector<std::size_t> merges;
    std::unordered_set<std::size_t> visited{i};
    std::deque<std::size_t> frontier(p.downs.begin(), p.downs.end());
    while (!frontier.empty()) {
      const std::size_t j = frontier.front();
      frontier.pop_front();
      if (!visited.insert(j).second) continue;
      const Kind kind = m.info[j].desc.kind;
      if (kind == Kind::kMerge) {
        merges.push_back(j);
        continue;
      }
      if (kind == Kind::kSink) continue;
      for (std::size_t down : m.info[j].downs) frontier.push_back(down);
    }

    if (merges.empty()) {  // P007
      lint.Emit("P007", Severity::kWarning, p.node, "",
                "partition has no downstream Merge: replica outputs are "
                "never recombined, so consumers see " +
                    std::to_string(p.desc.fan_out) +
                    " interleaved per-key streams instead of one globally "
                    "ordered stream",
                "subscribe each replica's output into a Merge with fan_in " +
                    std::to_string(p.desc.fan_out));
    }
    for (std::size_t j : merges) {  // P008
      const NodeInfo& merge = m.info[j];
      if (merge.desc.fan_in == p.desc.fan_out) continue;
      lint.Emit("P008", Severity::kError, merge.node,
                p.node->name() + " -> " + merge.node->name(),
                "merge fan-in " + std::to_string(merge.desc.fan_in) +
                    " does not match partition fan-out " +
                    std::to_string(p.desc.fan_out) +
                    ": unconnected merge ports never report progress, so the "
                    "merge withholds results forever",
                "construct the Merge with fan_in " +
                    std::to_string(p.desc.fan_out) +
                    " (one port per replica)");
    }
    if (p.desc.fan_out >= 2) {  // P009
      for (std::size_t j : ReplicaOperators(m, p)) {
        const NodeInfo& op = m.info[j];
        // Stateless (non-blocking) operators are safe to replicate: each
        // element is processed alone, so the key split cannot be observed.
        if (op.desc.kind != Kind::kOperator || op.desc.key_partitionable ||
            !op.desc.blocking) {
          continue;
        }
        lint.Emit(
            "P009", Severity::kError, op.node,
            p.node->name() + " -> " + op.node->name(),
            "operator '" + op.desc.op +
                "' is replicated per key but its state does not decompose "
                "by key: each replica sees only its key subset and computes "
                "wrong results",
            "replicate only key-partitionable operators (grouped "
            "aggregate, distinct, partitioned window, hash equi-join) — "
            "see docs/operators.md");
      }
    }
  }
}

void CheckBatchPathBreaks(const GraphModel& m, Linter& lint) {  // P013
  for (const NodeInfo& info : m.info) {
    if (info.desc.kind != Kind::kOperator) continue;
    if (info.desc.has_batch_kernel || info.desc.blocking) continue;
    const auto batched = [&](std::size_t j) {
      return m.info[j].desc.has_batch_kernel;
    };
    const bool batched_up = std::any_of(info.ups.begin(), info.ups.end(),
                                        batched);
    const bool batched_down = std::any_of(info.downs.begin(),
                                          info.downs.end(), batched);
    if (!batched_up || !batched_down) continue;
    lint.Emit("P013", Severity::kNote, info.node, "",
              "operator sits between batched stages but has no batch "
              "kernel: upstream trains are replayed element-by-element here "
              "and downstream batching restarts from scratch",
              "override PortBatch with a batch kernel (DESIGN.md 'Batched "
              "delivery') if this operator is on a hot path");
  }
}

void CheckStalledInputs(const GraphModel& m, Linter& lint) {  // P014
  if (m.has_cycle) return;
  // advances[i]: the node's output watermark can move before end-of-stream.
  std::vector<char> advances(m.info.size(), 1);
  for (std::size_t i : m.topo) {
    const NodeInfo& info = m.info[i];
    if (info.desc.kind == Kind::kSource) {
      advances[i] = info.desc.emits_heartbeats ? 1 : 0;
      continue;
    }
    // Merged progress is the min over inputs: one dead input stalls all.
    for (std::size_t up : info.ups) {
      if (!advances[up]) {
        advances[i] = 0;
        break;
      }
    }
  }
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    const NodeInfo& info = m.info[i];
    if (info.desc.kind == Kind::kSource || info.ups.size() < 2) continue;
    const bool any_live = std::any_of(
        info.ups.begin(), info.ups.end(),
        [&](std::size_t up) { return advances[up] != 0; });
    if (!any_live) continue;  // reported at the dead source's own fan-in
    for (std::size_t up : info.ups) {
      if (advances[up]) continue;
      lint.Emit("P014", Severity::kError, info.node,
                m.info[up].node->name() + " -> " + info.node->name(),
                "fan-in merges progress from '" + m.info[up].node->name() +
                    "', whose watermark can never advance (no heartbeating "
                    "source upstream): the merged watermark stays at the "
                    "minimum and results are withheld until end-of-stream",
                "enable heartbeats on the silent source, or detach it");
    }
  }
}

void CheckMixedExecutorAttachment(const GraphModel& m, Linter& lint) {
  // P018. A node counts as pollable when it has an output pipe an executor
  // could own. Sinks have no output, Partition delivers synchronously by
  // design, and opaque nodes declare no contract — all three are exempt.
  std::vector<const NodeInfo*> attached;
  std::vector<const NodeInfo*> unattached;
  for (const NodeInfo& info : m.info) {
    const Kind kind = info.desc.kind;
    if (kind == Kind::kSink || kind == Kind::kPartition ||
        kind == Kind::kOpaque) {
      continue;
    }
    (info.node->executor_attached() ? attached : unattached).push_back(&info);
  }
  if (attached.empty() || unattached.empty()) return;
  std::string example = attached.front()->node->name();
  for (const NodeInfo* info : attached) {
    example = std::min(example, info->node->name());
  }
  for (const NodeInfo* info : unattached) {
    lint.Emit("P018", Severity::kWarning, info->node, "",
              "output delivers to subscribers by direct recursion while " +
                  std::to_string(attached.size()) +
                  " other node(s) in this graph (e.g. '" + example +
                  "') stage output through executor pipes: mixed delivery "
                  "re-introduces unbounded recursion depth and interleaves "
                  "recursive calls with polled pipe delivery",
              "attach the executor to the whole graph (PipeExecutor's "
              "constructor attaches to every node), or to none of it");
  }
}

void CheckOrphanedTenantOutputs(const GraphModel& m, Linter& lint) {
  // P019. The engine stamps every registered query's output node with an
  // `engine.registered_output:<tenant>` gauge and subscribes its result
  // sink to it. An output still carrying the gauge but with no downstream
  // is an orphaned tenant subgraph: the engine's sink detached (or direct
  // graph surgery cut it off) without the registration being cancelled, so
  // the operators keep consuming memory and scheduler time while every
  // result is silently dropped and the tenant's handle stays "running".
  for (const NodeInfo& info : m.info) {
    for (const std::string& gauge : info.node->metadata().GaugeNames()) {
      if (gauge.rfind(kEngineOutputGaugePrefix, 0) != 0) continue;
      if (!info.downs.empty()) continue;
      const std::string tenant =
          gauge.substr(sizeof(kEngineOutputGaugePrefix) - 1);
      lint.Emit("P019", Severity::kError, info.node, "",
                "registered query output of tenant '" + tenant +
                    "' has no subscribers: the engine's result sink is "
                    "gone but the query was never cancelled, so its "
                    "operators run on with every result dropped",
                "cancel the query through Engine::Cancel (which removes "
                "the unshared suffix), or re-subscribe the result sink "
                "instead of detaching it by hand");
    }
  }
}

void CheckMetadataAnnotations(const GraphModel& m, Linter& lint) {
  for (const NodeInfo& info : m.info) {
    if (!info.desc.deprecated.empty()) {  // P015
      lint.Emit("P015", Severity::kWarning, info.node, "",
                "built through a deprecated API: " + info.desc.deprecated,
                info.desc.deprecated);
    }
    for (const std::string& note : info.desc.notes) {  // P016
      lint.Emit("P016", Severity::kNote, info.node, "", note, "");
    }
    for (const std::string& gauge : info.node->metadata().GaugeNames()) {
      if (gauge.rfind(kDeprecatedGaugePrefix, 0) == 0) {  // P015
        const std::string hint =
            gauge.substr(sizeof(kDeprecatedGaugePrefix) - 1);
        lint.Emit("P015", Severity::kWarning, info.node, "",
                  "built through a deprecated API: " + hint, hint);
      } else if (gauge.rfind(kFootgunGaugePrefix, 0) == 0) {  // P016
        lint.Emit("P016", Severity::kNote, info.node, "",
                  gauge.substr(sizeof(kFootgunGaugePrefix) - 1), "");
      }
    }
  }
}

void CheckSheddingWithSpillTier(const GraphModel& m, Linter& lint) {
  // P020. A spill-capable operator can page state to disk losslessly
  // (docs/memory.md), so enabling load shedding on it trades recall for
  // nothing the spill tier does not already provide — every shed element
  // is a join result silently lost that a spilled run would have kept.
  for (const NodeInfo& info : m.info) {
    if (!info.desc.spill_capable || !info.desc.shedding_enabled) continue;
    lint.Emit("P020", Severity::kWarning, info.node, "",
              "load shedding is enabled on a spill-capable operator: under "
              "memory pressure it will drop state (losing results) even "
              "though it could page to disk losslessly",
              "leave the shed policy at ShedPolicy::kNone (the spillable "
              "default) unless disk is scarcer than recall; bound disk with "
              "MemoryManager::set_disk_budget instead");
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "note";
}

bool operator==(const Diagnostic& a, const Diagnostic& b) {
  // node_id is process-unique and deliberately excluded: equivalent graphs
  // built independently (in-memory vs. from plan XML) must compare equal.
  return std::tie(a.rule_id, a.severity, a.node, a.path, a.message,
                  a.fixit) == std::tie(b.rule_id, b.severity, b.node, b.path,
                                       b.message, b.fixit);
}

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> kCatalog = {
      {"P001", Severity::kError,
       "subscription edges form a cycle (delivery would recurse forever)"},
      {"P002", Severity::kError,
       "edge to a node the graph does not own (lifetime hazard)"},
      {"P003", Severity::kError,
       "input port with no upstream (node stalls forever)"},
      {"P004", Severity::kWarning,
       "output (or partition output) with no subscribers (results dropped)"},
      {"P005", Severity::kWarning,
       "no sink reachable from a subscribed source (results unconsumed)"},
      {"P006", Severity::kWarning,
       "blocking operator downstream of unbounded validity with no window "
       "(state never purges)"},
      {"P007", Severity::kWarning,
       "Partition without a downstream Merge (replica outputs never "
       "recombined)"},
      {"P008", Severity::kError,
       "Merge fan-in differs from Partition fan-out (results withheld "
       "forever)"},
      {"P009", Severity::kError,
       "non-key-partitionable operator replicated per key (wrong results)"},
      {"P010", Severity::kError,
       "merge-side active node assigned off worker 0 (data race: Merge is "
       "single-threaded by construction)"},
      {"P011", Severity::kError,
       "one replica's input buffers split across workers (data race on "
       "replica state)"},
      {"P012", Severity::kWarning,
       "replica chains share a worker while another worker is idle (lost "
       "parallelism)"},
      {"P013", Severity::kNote,
       "operator without a batch kernel between batched stages (batching "
       "benefit lost)"},
      {"P014", Severity::kError,
       "fan-in merging progress from an input that can never advance "
       "(results withheld until end-of-stream)"},
      {"P015", Severity::kWarning, "deprecated API recorded on the node"},
      {"P016", Severity::kNote, "foot-gun API use recorded on the node"},
      {"P017", Severity::kError,
       "assignment shape invalid (length or worker index out of range)"},
      {"P018", Severity::kWarning,
       "graph mixes executor-polled pipes with legacy recursive subscriber "
       "edges (bounded-stack guarantee lost)"},
      {"P019", Severity::kError,
       "registered query output with no subscribers (orphaned tenant "
       "subgraph: results dropped, resources still consumed)"},
      {"P020", Severity::kWarning,
       "load shedding enabled on a spill-capable operator (recall traded "
       "away where a lossless disk tier exists)"},
      {"P021", Severity::kWarning,
       "blocking state with no static bound and no spill tier (grows until "
       "shedding or death)"},
      {"P022", Severity::kWarning,
       "provable watermark starvation: a blocking operator's only input "
       "never advances (state never purges, results withheld)"},
      {"P023", Severity::kWarning,
       "declared feed disorder exceeds the reordering slack (late elements "
       "silently dropped)"},
      {"P024", Severity::kWarning,
       "partition underprovisioned for the certified input rate (replicas "
       "cannot keep up)"},
      {"P025", Severity::kWarning,
       "state certificate exceeds the declared memory budget (admission "
       "would be rejected)"},
  };
  return kCatalog;
}

std::vector<Diagnostic> Lint(const QueryGraph& graph) {
  const GraphModel m = BuildModel(graph);
  Linter lint;
  CheckCycle(m, lint);
  CheckForeignEdges(m, lint);
  CheckDanglingInputs(m, lint);
  CheckUnsubscribedOutputs(m, lint);
  CheckSinkReachability(m, lint);
  CheckUnboundedBlocking(m, lint);
  CheckPartitionStages(m, lint);
  CheckBatchPathBreaks(m, lint);
  CheckStalledInputs(m, lint);
  CheckMixedExecutorAttachment(m, lint);
  CheckOrphanedTenantOutputs(m, lint);
  CheckSheddingWithSpillTier(m, lint);
  CheckMetadataAnnotations(m, lint);
  for (Diagnostic& d : DataflowDiagnostics(graph)) {  // P021-P025
    lint.Add(std::move(d));
  }
  return lint.Take();
}

std::vector<Diagnostic> LintAssignment(const QueryGraph& graph,
                                       const std::vector<int>& assignment,
                                       int num_workers) {
  const GraphModel m = BuildModel(graph);
  Linter lint;
  const std::vector<Node*> active = graph.ActiveNodes();

  bool shape_ok = true;
  if (assignment.size() != active.size()) {  // P017
    shape_ok = false;
    lint.Emit("P017", Severity::kError, nullptr, "",
              "assignment has " + std::to_string(assignment.size()) +
                  " entries for " + std::to_string(active.size()) +
                  " active nodes (ThreadScheduler pairs them positionally in "
                  "ActiveNodes() order)",
              "build the assignment with scheduler::MakeAssignment");
  }
  for (std::size_t i = 0; i < assignment.size() && i < active.size(); ++i) {
    if (assignment[i] >= 0 && assignment[i] < num_workers) continue;
    shape_ok = false;
    lint.Emit("P017", Severity::kError, active[i], "",
              "assigned worker " + std::to_string(assignment[i]) +
                  " outside [0, " + std::to_string(num_workers) + ")",
              "use worker indices below num_workers");
  }
  if (!shape_ok) return lint.Take();

  std::unordered_map<const Node*, int> worker_of;
  for (std::size_t i = 0; i < active.size(); ++i) {
    worker_of.emplace(active[i], assignment[i]);
  }
  const auto worker = [&](const Node* n) {
    auto it = worker_of.find(n);
    return it == worker_of.end() ? 0 : it->second;
  };

  for (std::size_t i = 0; i < m.info.size(); ++i) {
    const NodeInfo& info = m.info[i];
    if (info.desc.kind == Kind::kMerge) {  // P010
      for (std::size_t up : info.ups) {
        const Node* up_node = m.info[up].node;
        if (!up_node->is_active() || worker(up_node) == 0) continue;
        lint.Emit("P010", Severity::kError, up_node,
                  up_node->name() + " -> " + info.node->name(),
                  "feeds merge '" + info.node->name() + "' from worker " +
                      std::to_string(worker(up_node)) +
                      ": Merge is passive shared state, single-threaded by "
                      "construction on worker 0 — draining it from another "
                      "worker races with worker 0",
                  "pin merge-side buffers to worker 0 "
                  "(ParallelTopology::PinnedAssignment does)");
      }
    }
    if (info.desc.kind != Kind::kPartition) continue;

    // Replica chains of this stage: P011 within a replica, P012 across.
    std::vector<int> replica_workers;
    for (std::size_t op_idx : ReplicaOperators(m, info)) {
      const NodeInfo& op = m.info[op_idx];
      if (op.desc.kind == Kind::kMerge || op.desc.kind == Kind::kSink) {
        continue;  // unreplicated direct wiring; nothing to pin
      }
      std::vector<int> workers;
      for (std::size_t up : op.ups) {
        const Node* up_node = m.info[up].node;
        if (up_node->is_active() && m.info[up].desc.kind == Kind::kBuffer) {
          workers.push_back(worker(up_node));
        }
      }
      if (workers.empty()) continue;
      const bool split = std::any_of(
          workers.begin(), workers.end(),
          [&](int w) { return w != workers.front(); });
      if (split) {  // P011
        lint.Emit("P011", Severity::kError, op.node,
                  info.node->name() + " -> " + op.node->name(),
                  "this replica's input buffers are assigned to different "
                  "workers: the replica operator is passive state driven by "
                  "whichever worker drains a buffer, so two workers would "
                  "mutate it concurrently",
                  "assign all of one replica's input buffers to one worker "
                  "(ParallelTopology::PinnedAssignment does)");
      } else {
        replica_workers.push_back(workers.front());
      }
    }
    if (num_workers > 1 && !replica_workers.empty()) {  // P012
      std::unordered_set<int> used(replica_workers.begin(),
                                   replica_workers.end());
      const std::size_t expect = std::min<std::size_t>(
          replica_workers.size(), static_cast<std::size_t>(num_workers) - 1);
      if (used.size() < expect) {
        lint.Emit("P012", Severity::kWarning, info.node, "",
                  std::to_string(replica_workers.size()) +
                      " replica chains share " + std::to_string(used.size()) +
                      " worker(s) while " + std::to_string(num_workers) +
                      " are available: parallelism is lost to an idle worker",
                  "spread replicas over distinct workers "
                  "(ParallelTopology::PinnedAssignment pins replica r to "
                  "worker 1 + r % (num_workers - 1))");
      }
    }
  }
  return lint.Take();
}

Result<std::vector<Diagnostic>> LintPlan(const optimizer::LogicalPlan& plan) {
  if (plan == nullptr) {
    return Status::InvalidArgument("LintPlan: null plan");
  }
  // Collect the distinct scanned streams (name -> schema).
  std::map<std::string, relational::Schema> scans;
  {
    std::vector<const optimizer::LogicalOp*> stack{plan.get()};
    std::unordered_set<const optimizer::LogicalOp*> visited;
    while (!stack.empty()) {
      const optimizer::LogicalOp* op = stack.back();
      stack.pop_back();
      if (!visited.insert(op).second) continue;
      if (op->kind == optimizer::LogicalOp::Kind::kStreamScan) {
        scans.emplace(op->stream_name, op->schema);
      }
      for (const auto& child : op->children) stack.push_back(child.get());
    }
  }
  // Materialize into a scratch graph: synthetic empty sources per scan, the
  // real lowering for everything else, a collector on the output — the lint
  // subject is exactly the operator graph the plan would run.
  QueryGraph graph;
  cql::Catalog catalog;
  for (const auto& [name, schema] : scans) {
    auto& source = graph.Add<VectorSource<relational::Tuple>>(
        std::vector<StreamElement<relational::Tuple>>{}, name);
    PIPES_RETURN_IF_ERROR(catalog.RegisterStream(name, schema, &source));
  }
  optimizer::PhysicalBuilder builder(&graph, &catalog);
  PIPES_ASSIGN_OR_RETURN(Source<relational::Tuple>* output,
                         builder.Build(plan));
  auto& sink = graph.Add<CollectorSink<relational::Tuple>>("plan-output");
  output->AddSubscriber(sink.input());
  return Lint(graph);
}

Result<std::vector<Diagnostic>> LintPlanXml(const std::string& xml) {
  PIPES_ASSIGN_OR_RETURN(optimizer::LogicalPlan plan,
                         optimizer::FromXml(xml));
  return LintPlan(plan);
}

Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics) {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity > max) max = d.severity;
  }
  return max;
}

std::string ToJson(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out << ",";
    out << "\n  {\"rule\": \"" << JsonEscape(d.rule_id) << "\", "
        << "\"severity\": \"" << SeverityName(d.severity) << "\", "
        << "\"node\": \"" << JsonEscape(d.node) << "\", "
        << "\"node_id\": " << d.node_id << ", "
        << "\"path\": \"" << JsonEscape(d.path) << "\", "
        << "\"message\": \"" << JsonEscape(d.message) << "\", "
        << "\"fixit\": \"" << JsonEscape(d.fixit) << "\"}";
  }
  out << (diagnostics.empty() ? "]" : "\n]");
  return out.str();
}

std::string ToText(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << SeverityName(d.severity) << " [" << d.rule_id << "]";
    if (!d.node.empty()) out << " " << d.node;
    out << ": " << d.message;
    if (!d.path.empty()) out << " (" << d.path << ")";
    if (!d.fixit.empty()) out << "\n    fix: " << d.fixit;
    out << "\n";
  }
  return out.str();
}

}  // namespace pipes::analysis
