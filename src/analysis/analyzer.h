#ifndef PIPES_ANALYSIS_ANALYZER_H_
#define PIPES_ANALYSIS_ANALYZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/graph.h"
#include "src/optimizer/logical_plan.h"

/// \file
/// pipes-lint: static contract checking for query graphs. `Lint` walks a
/// constructed `QueryGraph` — without running it — and reports violations
/// of the composition contracts of DESIGN.md §4a–4c (ordering, batched
/// delivery, keyed parallelism, pinned assignments) plus structural
/// mistakes (cycles, dangling ports, unreachable sinks). A miswired graph
/// that would fail *silently* at runtime fails loudly at analysis time.
///
/// The analyzer reads each node's `NodeDescriptor` (`Node::Describe()`),
/// the untyped mirror of the compile-time contracts that type erasure
/// hides behind `Node*` edges. Rule catalog: docs/lint.md.

namespace pipes::analysis {

/// How bad a finding is. Orderable: kError > kWarning > kNote.
enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

const char* SeverityName(Severity severity);

/// One finding of the analyzer.
struct Diagnostic {
  /// Stable rule identifier, e.g. "P006" (see docs/lint.md).
  std::string rule_id;
  Severity severity = Severity::kNote;
  /// Id of the offending node; 0 for graph-level findings. Process-unique,
  /// so *not* part of equality (two equivalent graphs built independently
  /// must lint identically — the plan-XML parity contract).
  std::uint64_t node_id = 0;
  /// Name of the offending node; empty for graph-level findings.
  std::string node;
  /// Provenance context for path-dependent rules ("unbounded-window ->
  /// join"); empty when the finding is local to the node.
  std::string path;
  std::string message;
  /// Suggested remedy; empty when no mechanical fix exists.
  std::string fixit;
};

/// Equality over everything except `node_id` (see its comment).
bool operator==(const Diagnostic& a, const Diagnostic& b);

/// Catalog entry of one rule, for `--rules` listings and docs.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// All rules, in id order.
const std::vector<RuleInfo>& RuleCatalog();

/// Lints a constructed graph. Diagnostics are sorted by (rule, node name,
/// message) — deterministic for equivalent graphs. Must not run
/// concurrently with a scheduler mutating the graph.
std::vector<Diagnostic> Lint(const QueryGraph& graph);

/// Lints a `ThreadScheduler` assignment against the graph's replicated
/// stages (rules P010–P012, P017): `assignment[i]` is the worker of the
/// i-th node in `graph.ActiveNodes()` order, workers in [0, num_workers).
/// Append these to `Lint(graph)` when a pinned run is planned.
std::vector<Diagnostic> LintAssignment(const QueryGraph& graph,
                                       const std::vector<int>& assignment,
                                       int num_workers);

/// Lints a logical plan by materializing it into a scratch graph (with
/// synthetic, empty sources per scan and a collector on the output) and
/// linting that — so plan-level analysis sees exactly the operators the
/// plan would run. Fails if the plan cannot be instantiated.
Result<std::vector<Diagnostic>> LintPlan(const optimizer::LogicalPlan& plan);

/// `FromXml` + `LintPlan`: the CLI path for stored plan documents.
Result<std::vector<Diagnostic>> LintPlanXml(const std::string& xml);

/// Highest severity present (kNote when empty).
Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics);

/// JSON rendering: an array of objects with the Diagnostic fields.
std::string ToJson(const std::vector<Diagnostic>& diagnostics);

/// Human rendering: "severity rule node: message (path) [fix: ...]".
std::string ToText(const std::vector<Diagnostic>& diagnostics);

}  // namespace pipes::analysis

#endif  // PIPES_ANALYSIS_ANALYZER_H_
