#include "src/analysis/dataflow.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <deque>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/descriptor.h"
#include "src/core/generator_source.h"
#include "src/core/node.h"
#include "src/core/sink.h"
#include "src/cql/catalog.h"
#include "src/optimizer/cost.h"
#include "src/optimizer/physical.h"
#include "src/relational/tuple.h"

namespace pipes::analysis {
namespace {

using Dataflow = NodeDescriptor::Dataflow;
using Kind = NodeDescriptor::Kind;

constexpr std::uint64_t kUnknownCount = Dataflow::kUnknownCount;
constexpr std::int64_t kUnknownTime = Dataflow::kUnknownTime;
constexpr std::uint64_t kUnknownBytes = NodeStateBound::kUnknownBytes;

/// Per-instance overrides of the declared transfer functions: metadata
/// gauges named "dataflow.<field>", stamped by plan lowering, the fuzz
/// materializer, and the engine. Gauge value -1 encodes unknown/unbounded.
constexpr const char kGaugeTotalElements[] = "dataflow.total_elements";
constexpr const char kGaugeRatePerUnit[] = "dataflow.rate_per_unit";
constexpr const char kGaugeBytesPerElement[] = "dataflow.bytes_per_element";
constexpr const char kGaugeFeedDisorder[] = "dataflow.feed_disorder";
constexpr const char kGaugeCapacityPerUnit[] = "dataflow.capacity_per_unit";
constexpr const char kGaugeRamBudget[] = "dataflow.ram_budget_bytes";
constexpr const char kGaugeDiskBudget[] = "dataflow.disk_budget_bytes";

// --- Saturating lattice arithmetic --------------------------------------------
// kUnknownCount / kUnknownTime / kUnknownBytes are absorbing top elements;
// overflow saturates into them (an astronomically large bound carries the
// same decision weight as "unbounded").

std::uint64_t AddCount(std::uint64_t a, std::uint64_t b) {
  if (a == kUnknownCount || b == kUnknownCount) return kUnknownCount;
  return (a > kUnknownCount - 1 - b) ? kUnknownCount : a + b;
}

std::uint64_t ScaleCount(std::uint64_t a, double factor) {
  if (a == kUnknownCount) return kUnknownCount;
  const double p = static_cast<double>(a) * factor;
  if (!(p < 1.0e19)) return kUnknownCount;
  return static_cast<std::uint64_t>(std::ceil(p));
}

std::uint64_t MulCount(std::uint64_t a, std::uint64_t b) {
  if (a == kUnknownCount || b == kUnknownCount) return kUnknownCount;
  const double p = static_cast<double>(a) * static_cast<double>(b);
  if (!(p < 1.0e19)) return kUnknownCount;
  return a * b;
}

std::int64_t AddTime(std::int64_t a, std::int64_t b) {
  if (a == kUnknownTime || b == kUnknownTime) return kUnknownTime;
  if (a > kUnknownTime - 1 - b) return kUnknownTime;
  return a + b;
}

std::uint64_t AddBytes(std::uint64_t a, std::uint64_t b) {
  if (a == kUnknownBytes || b == kUnknownBytes) return kUnknownBytes;
  return (a > kUnknownBytes - 1 - b) ? kUnknownBytes : a + b;
}

/// Elements retained per the rate contract: rate * (extent + lag + 1) time
/// units of live validity, unknown if any factor is.
std::uint64_t RetainedByRate(double rate, std::int64_t extent,
                             std::int64_t lag) {
  if (std::isinf(rate) || extent == kUnknownTime || lag == kUnknownTime) {
    return kUnknownCount;
  }
  const double window = static_cast<double>(extent) +
                        static_cast<double>(lag) + 1.0;
  const double p = rate * window;
  if (!(p < 1.0e19)) return kUnknownCount;
  return static_cast<std::uint64_t>(std::ceil(p));
}

// --- The working model --------------------------------------------------------
// Mirrors the analyzer's: descriptors plus deduplicated in-graph adjacency
// and a Kahn topological order.

struct NodeInfo {
  const Node* node = nullptr;
  NodeDescriptor desc;
  Dataflow eff;  ///< Declared transfer functions with gauge overrides folded in.
  std::vector<std::size_t> ups;
  std::vector<std::size_t> downs;
};

struct Model {
  std::vector<NodeInfo> info;
  bool has_cycle = false;
  std::vector<std::size_t> topo;
};

std::optional<double> ReadGauge(const Node* node, const char* name) {
  return node->metadata().Gauge(name);
}

Dataflow EffectiveDataflow(const Node* node, const NodeDescriptor& desc) {
  Dataflow d = desc.dataflow;
  if (auto v = ReadGauge(node, kGaugeTotalElements)) {
    d.total_elements =
        (*v < 0) ? kUnknownCount : static_cast<std::uint64_t>(*v);
  }
  if (auto v = ReadGauge(node, kGaugeRatePerUnit)) {
    d.rate_per_unit = (*v < 0) ? 0.0 : *v;  // 0 = undeclared = unbounded
  }
  if (auto v = ReadGauge(node, kGaugeFeedDisorder)) {
    d.feed_disorder = (*v < 0) ? kUnknownTime : static_cast<std::int64_t>(*v);
  }
  if (auto v = ReadGauge(node, kGaugeBytesPerElement)) {
    d.state_bytes_per_element =
        (*v < 0) ? 0 : static_cast<std::size_t>(*v);  // 0 = unknown
  }
  return d;
}

Model BuildModel(const QueryGraph& graph) {
  Model m;
  const std::vector<Node*> nodes = graph.nodes();
  std::unordered_map<const Node*, std::size_t> index;
  m.info.reserve(nodes.size());
  for (Node* node : nodes) {
    index.emplace(node, m.info.size());
    NodeInfo info;
    info.node = node;
    info.desc = node->Describe();
    info.eff = EffectiveDataflow(node, info.desc);
    m.info.push_back(std::move(info));
  }
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    NodeInfo& info = m.info[i];
    std::unordered_set<const Node*> seen;
    for (const Node* up : info.node->upstream()) {
      if (!seen.insert(up).second) continue;
      auto it = index.find(up);
      if (it != index.end()) info.ups.push_back(it->second);
    }
    seen.clear();
    for (const Node* down : info.node->downstream()) {
      if (!seen.insert(down).second) continue;
      auto it = index.find(down);
      if (it != index.end()) info.downs.push_back(it->second);
    }
  }
  std::vector<std::size_t> indegree(m.info.size(), 0);
  for (const NodeInfo& info : m.info) {
    for (std::size_t down : info.downs) ++indegree[down];
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < m.info.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    m.topo.push_back(i);
    for (std::size_t down : m.info[i].downs) {
      if (--indegree[down] == 0) ready.push_back(down);
    }
  }
  m.has_cycle = m.topo.size() != m.info.size();
  return m;
}

// --- Transfer functions -------------------------------------------------------

EdgeFacts::Order WorstOrder(EdgeFacts::Order a, EdgeFacts::Order b) {
  if (a == EdgeFacts::Order::kBoundedDisorder ||
      b == EdgeFacts::Order::kBoundedDisorder) {
    return EdgeFacts::Order::kBoundedDisorder;
  }
  if (a == EdgeFacts::Order::kResegmented ||
      b == EdgeFacts::Order::kResegmented) {
    return EdgeFacts::Order::kResegmented;
  }
  return EdgeFacts::Order::kOrdered;
}

/// Facts a source's output edge carries, seeded from its declared feed
/// contract.
EdgeFacts SourceFacts(const NodeDescriptor& desc, const Dataflow& eff) {
  EdgeFacts f;
  f.max_elements = eff.total_elements;
  f.rate_max = eff.rate_per_unit > 0.0
                   ? eff.rate_per_unit
                   : std::numeric_limits<double>::infinity();
  f.watermark_advances = desc.emits_heartbeats;
  f.watermark_lag = std::max<std::int64_t>(eff.watermark_lag, 0);
  f.validity_extent = eff.validity_extent;
  if (desc.unbounded_validity) f.validity_extent = kUnknownTime;
  // A reordering stage (slack >= 0) enforces order by dropping late
  // arrivals; a plain source declaring raw-feed disorder passes it on.
  if (eff.reorder_slack < 0 && eff.feed_disorder > 0) {
    f.order = EdgeFacts::Order::kBoundedDisorder;
    f.disorder = eff.feed_disorder;
  }
  return f;
}

/// Join of the facts entering a node over all its deduplicated upstreams.
EdgeFacts MergeInputs(const std::vector<EdgeFacts>& ins, bool intersects) {
  EdgeFacts f;
  if (ins.empty()) return f;
  f = ins.front();
  for (std::size_t i = 1; i < ins.size(); ++i) {
    const EdgeFacts& in = ins[i];
    f.order = WorstOrder(f.order, in.order);
    f.disorder = std::max(f.disorder, in.disorder);
    f.watermark_advances = f.watermark_advances && in.watermark_advances;
    f.watermark_lag = std::max(f.watermark_lag, in.watermark_lag);
    f.max_elements = AddCount(f.max_elements, in.max_elements);
    f.rate_max = f.rate_max + in.rate_max;
    if (intersects) {
      f.validity_extent = std::min(f.validity_extent, in.validity_extent);
    } else if (f.validity_extent == kUnknownTime ||
               in.validity_extent == kUnknownTime) {
      f.validity_extent = kUnknownTime;
    } else {
      f.validity_extent = std::max(f.validity_extent, in.validity_extent);
    }
  }
  return f;
}

/// Forward transfer through one non-source node: merged input facts in,
/// output-edge facts out.
EdgeFacts OperatorFacts(const NodeDescriptor& desc, const Dataflow& eff,
                        const std::vector<EdgeFacts>& ins,
                        const EdgeFacts& merged) {
  EdgeFacts out = merged;

  // Cardinality and rate.
  if (eff.output_per_pair && ins.size() >= 2) {
    // |out| <= prod |in_i|; rate <= sum_i rate_i * prod_{j != i} pop_j
    // where pop_j = rate_j * (extent_j + lag_j + 1) bounds the live
    // population of input j any arrival can pair with.
    std::uint64_t count = 1;
    for (const EdgeFacts& in : ins) count = MulCount(count, in.max_elements);
    out.max_elements = count;
    std::vector<double> pop(ins.size());
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const std::uint64_t p = RetainedByRate(
          ins[i].rate_max, ins[i].validity_extent, ins[i].watermark_lag);
      pop[i] = (p == kUnknownCount)
                   ? std::numeric_limits<double>::infinity()
                   : static_cast<double>(p);
    }
    double rate = 0.0;
    for (std::size_t i = 0; i < ins.size(); ++i) {
      double term = ins[i].rate_max;
      for (std::size_t j = 0; j < ins.size(); ++j) {
        if (j != i) term *= pop[j];
      }
      rate += term;
    }
    out.rate_max = rate;
  }
  out.max_elements = AddCount(ScaleCount(out.max_elements, eff.output_factor),
                              eff.output_fixed);
  out.rate_max = out.rate_max * eff.output_factor;

  // Validity extent.
  const bool restamps = desc.bounds_validity;
  if (eff.validity_extent != kUnknownTime) {
    out.validity_extent = eff.validity_extent;
  } else if (eff.extends_validity || desc.unbounded_validity) {
    out.validity_extent = kUnknownTime;
  } else if (eff.intersects_validity) {
    out.validity_extent = merged.validity_extent;  // merged with min above
  } else if (restamps) {
    out.validity_extent = kUnknownTime;  // re-stamped, no declared bound
  }

  // Ordering: blocking operators and re-stampers emit through ordered
  // staging (OrderedOutputBuffer / per-window flush) — output starts are
  // non-decreasing again, segment-stamped where validity was rewritten.
  if (desc.blocking || restamps) {
    out.order = restamps ? EdgeFacts::Order::kResegmented
                         : (merged.order == EdgeFacts::Order::kResegmented
                                ? EdgeFacts::Order::kResegmented
                                : EdgeFacts::Order::kOrdered);
    out.disorder = 0;
  }

  // Watermark lag: a blocking operator (or a re-stamper with no static
  // extent bound) can hold results back for up to the input's live extent
  // past the input watermark before its own output watermark follows.
  const bool unknown_restamp = restamps && eff.validity_extent == kUnknownTime;
  if (desc.blocking || unknown_restamp) {
    out.watermark_lag =
        AddTime(merged.watermark_lag, AddTime(merged.validity_extent, 1));
  }
  return out;
}

/// Peak-state bound from the facts entering the node.
NodeStateBound StateBound(const NodeDescriptor& desc, const Dataflow& eff,
                          const EdgeFacts& merged, bool any_input) {
  NodeStateBound b;
  b.transient = eff.transient_state;
  b.blocking = desc.blocking;
  if (b.transient) return b;

  const std::uint64_t fixed = eff.state_bytes_fixed;
  const std::uint64_t per = eff.state_bytes_per_element;
  if (per == 0) {
    // No per-element transfer function: sound only if the node declared a
    // constant bound or holds no watermark-purged state at all.
    if (desc.blocking && fixed == 0) {
      b.ram_bytes = kUnknownBytes;
    } else {
      b.ram_bytes = fixed;
    }
  } else if (!any_input) {
    b.ram_bytes = fixed;
  } else {
    // Retention: every retained element arrived, so cumulative input count
    // bounds it; the rate contract bounds the simultaneously-live window.
    const std::uint64_t by_count = merged.max_elements;
    const std::uint64_t by_rate = RetainedByRate(
        merged.rate_max, merged.validity_extent, merged.watermark_lag);
    const std::uint64_t retained = std::min(by_count, by_rate);
    if (retained == kUnknownCount) {
      b.ram_bytes = kUnknownBytes;
    } else {
      const double p = static_cast<double>(retained) *
                       static_cast<double>(per);
      b.ram_bytes = (p < 1.0e19)
                        ? AddBytes(fixed, retained * per)
                        : kUnknownBytes;
    }
  }
  // A spill-capable node may hold any retained element in either tier, so
  // the same bound appears in both columns.
  b.disk_bytes = desc.spill_capable ? b.ram_bytes : 0;
  return b;
}

struct Analysis {
  Model model;
  std::vector<EdgeFacts> out;     ///< per node index
  std::vector<EdgeFacts> merged;  ///< merged input facts per node index
  DataflowResult result;
};

Analysis Run(const QueryGraph& graph) {
  Analysis a;
  a.model = BuildModel(graph);
  Model& m = a.model;
  a.out.resize(m.info.size());
  a.merged.resize(m.info.size());
  a.result.has_cycle = m.has_cycle;

  // Worst-case defaults for nodes a cycle keeps out of the topo order.
  for (EdgeFacts& f : a.out) {
    f.max_elements = kUnknownCount;
    f.rate_max = std::numeric_limits<double>::infinity();
    f.validity_extent = kUnknownTime;
    f.watermark_lag = kUnknownTime;
    f.watermark_advances = false;
  }
  a.merged = a.out;

  for (std::size_t i : m.topo) {
    const NodeInfo& info = m.info[i];
    if (info.ups.empty()) {
      a.out[i] = SourceFacts(info.desc, info.eff);
      a.merged[i] = a.out[i];
      continue;
    }
    std::vector<EdgeFacts> ins;
    ins.reserve(info.ups.size());
    for (std::size_t up : info.ups) ins.push_back(a.out[up]);
    a.merged[i] = MergeInputs(ins, info.eff.intersects_validity);
    a.out[i] = (info.desc.kind == Kind::kSink)
                   ? a.merged[i]
                   : OperatorFacts(info.desc, info.eff, ins, a.merged[i]);
  }

  StateCertificate& cert = a.result.certificate;
  a.result.nodes.reserve(m.info.size());
  const std::vector<std::size_t>* order = &m.topo;
  std::vector<std::size_t> all;
  if (m.has_cycle) {
    all.resize(m.info.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    order = &all;
    cert.progress_ok = false;
  }
  for (std::size_t i : *order) {
    const NodeInfo& info = m.info[i];
    NodeFacts nf;
    nf.node = info.node;
    nf.node_id = info.node->id();
    nf.name = info.node->name();
    nf.op = info.desc.op;
    nf.kind = info.desc.kind;
    nf.out = a.out[i];
    nf.state = StateBound(info.desc, info.eff, a.merged[i], !info.ups.empty());
    if (m.has_cycle && info.desc.blocking) {
      nf.state.ram_bytes = kUnknownBytes;
      if (info.desc.spill_capable) nf.state.disk_bytes = kUnknownBytes;
    }
    if (!nf.state.transient) {
      cert.ram_bytes = AddBytes(cert.ram_bytes, nf.state.ram_bytes);
      cert.disk_bytes = AddBytes(cert.disk_bytes, nf.state.disk_bytes);
    }
    if (!nf.out.watermark_advances) cert.progress_ok = false;
    cert.disorder_bound = std::max(
        cert.disorder_bound, std::max(nf.out.watermark_lag, nf.out.disorder));
    a.result.nodes.push_back(std::move(nf));
  }
  return a;
}

std::string FormatCount(std::uint64_t v) {
  return v == kUnknownCount ? "unbounded" : std::to_string(v);
}

std::string FormatTime(std::int64_t v) {
  return v == kUnknownTime ? "unbounded" : std::to_string(v);
}

std::string FormatBytes(std::uint64_t v) {
  return v == kUnknownBytes ? "unbounded" : std::to_string(v);
}

std::string FormatRate(double v) {
  if (std::isinf(v)) return "unbounded";
  std::ostringstream out;
  out << v;
  return out.str();
}

/// JSON numeric encoding: -1 for the unknown/unbounded sentinels — a JSON
/// document must never contain inf or a 2^64-magnitude sentinel.
std::string JsonCount(std::uint64_t v) {
  return v == kUnknownCount ? "-1" : std::to_string(v);
}

std::string JsonTime(std::int64_t v) {
  return v == kUnknownTime ? "-1" : std::to_string(v);
}

std::string JsonBytes(std::uint64_t v) {
  return v == kUnknownBytes ? "-1" : std::to_string(v);
}

std::string JsonRate(double v) {
  if (std::isinf(v) || std::isnan(v)) return "-1";
  std::ostringstream out;
  out << v;
  return out.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void SortDiagnostics(std::vector<Diagnostic>& diags) {
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.rule_id, a.severity, a.node, a.path,
                              a.message, a.fixit) <
                     std::tie(b.rule_id, b.severity, b.node, b.path,
                              b.message, b.fixit);
            });
}

Diagnostic MakeDiag(const char* rule_id, Severity severity, const Node* node,
                    std::string message, std::string fixit) {
  Diagnostic d;
  d.rule_id = rule_id;
  d.severity = severity;
  if (node != nullptr) {
    d.node_id = node->id();
    d.node = node->name();
  }
  d.message = std::move(message);
  d.fixit = std::move(fixit);
  return d;
}

}  // namespace

const char* OrderName(EdgeFacts::Order order) {
  switch (order) {
    case EdgeFacts::Order::kOrdered:
      return "ordered";
    case EdgeFacts::Order::kBoundedDisorder:
      return "bounded-disorder";
    case EdgeFacts::Order::kResegmented:
      return "resegmented";
  }
  return "ordered";
}

DataflowResult AnalyzeDataflow(const QueryGraph& graph) {
  return Run(graph).result;
}

std::vector<Diagnostic> DataflowDiagnostics(const QueryGraph& graph) {
  std::vector<Diagnostic> diags;
  const Analysis a = Run(graph);
  const Model& m = a.model;
  if (m.has_cycle) return diags;  // P001 owns cyclic graphs

  for (std::size_t i = 0; i < m.info.size(); ++i) {
    const NodeInfo& info = m.info[i];
    const NodeStateBound bound =
        StateBound(info.desc, info.eff, a.merged[i], !info.ups.empty());

    // P021: blocking state with no static bound and no lossless spill
    // tier — under sustained input the node grows until the memory
    // manager sheds (losing results) or the process dies.
    if (info.desc.blocking && !info.desc.spill_capable && !bound.transient &&
        bound.ram_bytes == kUnknownBytes) {
      const bool no_transfer = info.eff.state_bytes_per_element == 0 &&
                               info.eff.state_bytes_fixed == 0;
      diags.push_back(MakeDiag(
          "P021", Severity::kWarning, info.node,
          no_transfer
              ? "blocking operator declares no state transfer function: the "
                "static state bound is unbounded and no spill tier exists"
              : "no static state bound: the feed's cardinality, rate, and "
                "validity extent leave retained state unbounded, and no "
                "spill tier exists",
          no_transfer
              ? "declare state_bytes_per_element in Describe() (or a "
                "dataflow.bytes_per_element gauge), or build the operator "
                "with a spillable SweepArea"
              : "declare a source feed contract (total elements or rate + "
                "bounded validity extent), or build the operator with a "
                "spillable SweepArea"));
    }

    // P022: a single-input blocking operator whose only input's watermark
    // provably never advances — state is never purged and results are
    // withheld until end-of-stream. (Fan-ins starved on one input are
    // P014's error.)
    if (info.desc.blocking && info.ups.size() == 1 &&
        !a.out[info.ups.front()].watermark_advances) {
      const NodeInfo& up = m.info[info.ups.front()];
      diags.push_back(MakeDiag(
          "P022", Severity::kWarning, info.node,
          "provable watermark starvation: the only input (via '" +
              up.node->name() +
              "') never advances its watermark, so blocked state is never "
              "purged and no result is released before end-of-stream",
          "feed the operator from a source that emits heartbeats (or "
          "declare emits_heartbeats on the source once it does)"));
    }

    // P023: a source whose declared raw-feed disorder exceeds the
    // reordering slack in front of it — late elements beyond the slack
    // are silently dropped.
    if (info.ups.empty() && info.eff.feed_disorder > 0) {
      const std::int64_t slack =
          std::max<std::int64_t>(info.eff.reorder_slack, 0);
      if (info.eff.feed_disorder == kUnknownTime ||
          info.eff.feed_disorder > slack) {
        diags.push_back(MakeDiag(
            "P023", Severity::kWarning, info.node,
            "declared feed disorder " + FormatTime(info.eff.feed_disorder) +
                " exceeds the reordering slack " + std::to_string(slack) +
                ": elements arriving later than the slack are silently "
                "dropped",
            "raise the ReorderingSource slack to at least the feed's "
            "disorder bound (latency trades against completeness)"));
      }
    }

    // P024: a Partition whose declared per-replica capacity cannot absorb
    // the certified input rate — the stage is underprovisioned.
    if (info.desc.kind == Kind::kPartition) {
      if (auto cap = ReadGauge(info.node, kGaugeCapacityPerUnit);
          cap && *cap > 0) {
        const double in_rate = a.merged[i].rate_max;
        const std::size_t fan_out = std::max<std::size_t>(info.desc.fan_out, 1);
        const double capacity = *cap * static_cast<double>(fan_out);
        if (!(in_rate <= capacity)) {
          const std::string need =
              std::isinf(in_rate)
                  ? "an unbounded input rate"
                  : "input rate " + FormatRate(in_rate) + "/unit";
          const std::size_t want =
              std::isinf(in_rate)
                  ? 0
                  : static_cast<std::size_t>(std::ceil(in_rate / *cap));
          diags.push_back(MakeDiag(
              "P024", Severity::kWarning, info.node,
              "partition underprovisioned: " + need + " exceeds " +
                  std::to_string(fan_out) + " replica(s) x " +
                  FormatRate(*cap) + "/unit declared capacity",
              want > 0
                  ? "raise the partition count to at least " +
                        std::to_string(want) +
                        " (or raise dataflow.capacity_per_unit if the "
                        "declared capacity is stale)"
                  : "declare a source feed contract so the input rate is "
                    "bounded, then size the partition count from it"));
        }
      }
    }

    // P025: a declared budget gauge the whole-plan certificate exceeds.
    const StateCertificate& cert = a.result.certificate;
    if (auto ram = ReadGauge(info.node, kGaugeRamBudget); ram && *ram >= 0) {
      const auto budget = static_cast<std::uint64_t>(*ram);
      if (cert.ram_bytes == kUnknownBytes || cert.ram_bytes > budget) {
        diags.push_back(MakeDiag(
            "P025", Severity::kWarning, info.node,
            "certified peak RAM " + FormatBytes(cert.ram_bytes) +
                " exceeds the declared budget of " + std::to_string(budget) +
                " bytes",
            "shrink windows/slack, spill to disk, or raise the declared "
            "dataflow.ram_budget_bytes"));
      }
    }
    if (auto disk = ReadGauge(info.node, kGaugeDiskBudget);
        disk && *disk >= 0) {
      const auto budget = static_cast<std::uint64_t>(*disk);
      if (cert.disk_bytes == kUnknownBytes || cert.disk_bytes > budget) {
        diags.push_back(MakeDiag(
            "P025", Severity::kWarning, info.node,
            "certified peak disk " + FormatBytes(cert.disk_bytes) +
                " exceeds the declared budget of " + std::to_string(budget) +
                " bytes",
            "shrink windows/slack or raise the declared "
            "dataflow.disk_budget_bytes"));
      }
    }
  }
  SortDiagnostics(diags);
  return diags;
}

Result<DataflowResult> AnalyzeDataflowPlan(const optimizer::LogicalPlan& plan,
                                           const cql::Catalog* catalog) {
  if (plan == nullptr) {
    return Status::InvalidArgument("AnalyzeDataflowPlan: null plan");
  }
  // Collect the distinct scanned streams (name -> schema), as LintPlan does.
  std::map<std::string, relational::Schema> scans;
  {
    std::vector<const optimizer::LogicalOp*> stack{plan.get()};
    std::unordered_set<const optimizer::LogicalOp*> visited;
    while (!stack.empty()) {
      const optimizer::LogicalOp* op = stack.back();
      stack.pop_back();
      if (!visited.insert(op).second) continue;
      if (op->kind == optimizer::LogicalOp::Kind::kStreamScan) {
        scans.emplace(op->stream_name, op->schema);
      }
      for (const auto& child : op->children) stack.push_back(child.get());
    }
  }
  QueryGraph graph;
  cql::Catalog scratch;
  for (const auto& [name, schema] : scans) {
    auto& source = graph.Add<VectorSource<relational::Tuple>>(
        std::vector<StreamElement<relational::Tuple>>{}, name);
    PIPES_RETURN_IF_ERROR(scratch.RegisterStream(name, schema, &source));
    // The scratch source stands in for an unbounded registered stream: its
    // empty backing vector must not masquerade as a finite feed. Seed the
    // rate contract from the catalog hint (elements/second -> per ms).
    double hint = 1000.0;
    if (catalog != nullptr) {
      if (auto looked = catalog->Lookup(name); looked.ok()) {
        hint = (*looked)->rate_hint;
      }
    }
    source.metadata().SetGauge(kGaugeTotalElements, -1);
    source.metadata().SetGauge(kGaugeRatePerUnit, hint / 1000.0);
  }
  optimizer::PhysicalBuilder builder(&graph, &scratch);
  PIPES_ASSIGN_OR_RETURN(Source<relational::Tuple>* output,
                         builder.Build(plan));
  auto& sink = graph.Add<CollectorSink<relational::Tuple>>("plan-output");
  output->AddSubscriber(sink.input());

  DataflowResult result = AnalyzeDataflow(graph);

  // Cross-check against the optimizer's cost model: its *expected* root
  // output rate must not exceed the certified upper bound (both in
  // elements per second; facts use the ms time unit).
  const optimizer::CostEstimate estimate =
      optimizer::CostModel(catalog).Estimate(plan);
  result.has_cost_check = true;
  result.cost_model_rate_eps = estimate.output_rate;
  result.certified_rate_eps = std::numeric_limits<double>::infinity();
  for (const NodeFacts& nf : result.nodes) {
    if (nf.kind == Kind::kSink) {
      result.certified_rate_eps = nf.out.rate_max * 1000.0;
      break;
    }
  }
  result.rate_consistent =
      std::isinf(result.certified_rate_eps) ||
      result.cost_model_rate_eps <= result.certified_rate_eps;
  return result;
}

std::string ToJson(const DataflowResult& result) {
  std::ostringstream out;
  const StateCertificate& c = result.certificate;
  out << "{\n  \"schema_version\": " << kLintJsonSchemaVersion << ",\n"
      << "  \"has_cycle\": " << (result.has_cycle ? "true" : "false") << ",\n"
      << "  \"certificate\": {\"ram_bytes\": " << JsonBytes(c.ram_bytes)
      << ", \"disk_bytes\": " << JsonBytes(c.disk_bytes)
      << ", \"progress_ok\": " << (c.progress_ok ? "true" : "false")
      << ", \"disorder_bound\": " << JsonTime(c.disorder_bound) << "},\n";
  if (result.has_cost_check) {
    out << "  \"cost_check\": {\"cost_model_rate_eps\": "
        << JsonRate(result.cost_model_rate_eps)
        << ", \"certified_rate_eps\": " << JsonRate(result.certified_rate_eps)
        << ", \"rate_consistent\": "
        << (result.rate_consistent ? "true" : "false") << "},\n";
  }
  out << "  \"nodes\": [";
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const NodeFacts& n = result.nodes[i];
    if (i > 0) out << ",";
    out << "\n    {\"name\": \"" << JsonEscape(n.name) << "\", "
        << "\"op\": \"" << JsonEscape(n.op) << "\", "
        << "\"kind\": \"" << NodeKindName(n.kind) << "\", "
        << "\"order\": \"" << OrderName(n.out.order) << "\", "
        << "\"disorder\": " << JsonTime(n.out.disorder) << ", "
        << "\"watermark_advances\": "
        << (n.out.watermark_advances ? "true" : "false") << ", "
        << "\"watermark_lag\": " << JsonTime(n.out.watermark_lag) << ", "
        << "\"max_elements\": " << JsonCount(n.out.max_elements) << ", "
        << "\"rate_max\": " << JsonRate(n.out.rate_max) << ", "
        << "\"validity_extent\": " << JsonTime(n.out.validity_extent) << ", "
        << "\"ram_bytes\": " << JsonBytes(n.state.ram_bytes) << ", "
        << "\"disk_bytes\": " << JsonBytes(n.state.disk_bytes) << ", "
        << "\"transient\": " << (n.state.transient ? "true" : "false") << "}";
  }
  out << (result.nodes.empty() ? "]\n}" : "\n  ]\n}");
  return out.str();
}

Result<int> ParseLintJsonSchemaVersion(const std::string& json) {
  const std::string key = "\"schema_version\"";
  const std::size_t at = json.find(key);
  if (at == std::string::npos) {
    return Status::InvalidArgument(
        "document has no schema_version field (predates schema version " +
        std::to_string(kLintJsonSchemaVersion) + ")");
  }
  std::size_t pos = at + key.size();
  while (pos < json.size() &&
         (json[pos] == ':' || json[pos] == ' ' || json[pos] == '\t' ||
          json[pos] == '\n' || json[pos] == '\r')) {
    ++pos;
  }
  std::size_t end = pos;
  while (end < json.size() &&
         std::isdigit(static_cast<unsigned char>(json[end]))) {
    ++end;
  }
  if (end == pos) {
    return Status::InvalidArgument("schema_version is not an integer");
  }
  return std::stoi(json.substr(pos, end - pos));
}

std::string ToDot(const DataflowResult& result) {
  std::unordered_map<const Node*, std::size_t> index;
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    index.emplace(result.nodes[i].node, i);
  }
  std::ostringstream out;
  out << "digraph dataflow {\n  rankdir=BT;\n  node [shape=box];\n";
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const NodeFacts& n = result.nodes[i];
    out << "  n" << i << " [label=\"" << JsonEscape(n.name) << "\\n" << n.op;
    if (!n.state.transient) {
      out << "\\nram<=" << FormatBytes(n.state.ram_bytes);
      if (n.state.disk_bytes != 0) {
        out << " disk<=" << FormatBytes(n.state.disk_bytes);
      }
    }
    out << "\"];\n";
  }
  for (std::size_t i = 0; i < result.nodes.size(); ++i) {
    const NodeFacts& n = result.nodes[i];
    if (n.node == nullptr) continue;
    std::unordered_set<const Node*> seen;
    for (const Node* down : n.node->downstream()) {
      if (!seen.insert(down).second) continue;
      auto it = index.find(down);
      if (it == index.end()) continue;
      out << "  n" << i << " -> n" << it->second << " [label=\""
          << OrderName(n.out.order) << "\\nrate<=" << FormatRate(n.out.rate_max)
          << " n<=" << FormatCount(n.out.max_elements) << "\\nextent<="
          << FormatTime(n.out.validity_extent) << " lag<="
          << FormatTime(n.out.watermark_lag) << "\"];\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string ToText(const DataflowResult& result) {
  std::ostringstream out;
  const StateCertificate& c = result.certificate;
  out << "certificate: ram<=" << FormatBytes(c.ram_bytes) << " disk<="
      << FormatBytes(c.disk_bytes)
      << " progress=" << (c.progress_ok ? "ok" : "STARVED") << " disorder<="
      << FormatTime(c.disorder_bound) << "\n";
  if (result.has_cost_check) {
    out << "cost-check: model=" << FormatRate(result.cost_model_rate_eps)
        << " eps, certified<=" << FormatRate(result.certified_rate_eps)
        << " eps, " << (result.rate_consistent ? "consistent" : "INCONSISTENT")
        << "\n";
  }
  if (result.has_cycle) out << "warning: graph has a cycle (facts partial)\n";
  for (const NodeFacts& n : result.nodes) {
    out << "  " << n.name << " [" << n.op << "] " << OrderName(n.out.order);
    if (n.out.order == EdgeFacts::Order::kBoundedDisorder) {
      out << "(" << FormatTime(n.out.disorder) << ")";
    }
    out << " adv=" << (n.out.watermark_advances ? "y" : "N") << " lag<="
        << FormatTime(n.out.watermark_lag) << " rate<="
        << FormatRate(n.out.rate_max) << " n<=" << FormatCount(n.out.max_elements)
        << " extent<=" << FormatTime(n.out.validity_extent);
    if (n.state.transient) {
      out << " state=transient";
    } else {
      out << " ram<=" << FormatBytes(n.state.ram_bytes);
      if (n.state.disk_bytes != 0) {
        out << " disk<=" << FormatBytes(n.state.disk_bytes);
      }
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace pipes::analysis
