#ifndef PIPES_ANALYSIS_DATAFLOW_H_
#define PIPES_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/common/status.h"
#include "src/core/descriptor.h"
#include "src/core/graph.h"
#include "src/optimizer/logical_plan.h"

/// \file
/// Dataflow abstract interpretation over query graphs: a forward pass in
/// topological order that composes the per-node transfer functions declared
/// in `NodeDescriptor::Dataflow` into per-edge facts — output ordering,
/// watermark progress and lag, cardinality and rate intervals, validity
/// extent — and folds the per-node peak-state bounds they imply into one
/// `StateCertificate` for the whole plan.
///
/// Everything here is *static*: no element flows, no scheduler runs. The
/// facts are sound relative to the declared contracts (a source that
/// declares a feed rate and then exceeds it voids its certificate); the
/// fuzz harness enforces the bounds empirically against observed peak
/// state on non-shedding runs (src/testing/harness.cc).
///
/// The certificate powers lint rules P021–P025 (`DataflowDiagnostics`),
/// `engine::Engine`'s admission gate (reject/queue a Register whose
/// certified footprint exceeds the remaining budget), and the
/// `pipes_lint --certify` CLI mode. Rule catalog: docs/lint.md.

namespace pipes::cql {
class Catalog;
}

namespace pipes::analysis {

/// Schema version stamped into every machine-readable document this module
/// and the lint CLI emit (`{"schema_version": N, ...}`). Bumped whenever a
/// field is added or changes meaning, so downstream parsers can reject
/// documents they do not understand.
inline constexpr int kLintJsonSchemaVersion = 2;

/// Abstract facts about the stream crossing one edge (equivalently: about
/// one node's output). Numeric fields are conservative upper bounds; the
/// sentinels from `NodeDescriptor::Dataflow` mean unknown/unbounded.
struct EdgeFacts {
  /// Ordering discipline of the element starts on this edge.
  enum class Order {
    kOrdered,          ///< Starts are non-decreasing.
    kBoundedDisorder,  ///< Starts may regress by at most `disorder`.
    kResegmented,      ///< Ordered, but starts were re-stamped to segment
                       ///< boundaries (windows, sweep-line aggregates).
  };

  Order order = Order::kOrdered;
  /// Max backward start displacement when `order == kBoundedDisorder`.
  std::int64_t disorder = 0;

  /// Whether the watermark on this edge provably advances before
  /// end-of-stream. False downstream of a source that emits no heartbeats
  /// (and of every fan-in merging such an input).
  bool watermark_advances = true;
  /// Max trailing distance of the edge watermark behind the max emitted
  /// start (a reordering source's slack, plus the segment extent of every
  /// re-stamping stage crossed). kUnknownTime = unbounded.
  std::int64_t watermark_lag = 0;

  /// Max elements ever crossing this edge. kUnknownCount = unbounded.
  std::uint64_t max_elements = NodeDescriptor::Dataflow::kUnknownCount;
  /// Max rate in elements per time unit; infinity = unbounded/undeclared.
  double rate_max = 0.0;
  /// Max validity extent (end - start) of any element on this edge.
  /// kUnknownTime = unbounded.
  std::int64_t validity_extent = NodeDescriptor::Dataflow::kUnknownTime;
};

const char* OrderName(EdgeFacts::Order order);

/// Peak-state bound for one node, in bytes. kUnknownBytes = no static
/// bound exists (the certificate for the containing plan is then
/// unbounded too, unless the node is transient).
struct NodeStateBound {
  static constexpr std::uint64_t kUnknownBytes =
      std::numeric_limits<std::uint64_t>::max();

  /// Peak RAM the node's watermark-purged state may occupy.
  std::uint64_t ram_bytes = 0;
  /// Peak disk-tier bytes (lossless spill). Spill-capable nodes carry
  /// their bound in *both* columns: any element may live in either tier.
  std::uint64_t disk_bytes = 0;
  /// Scheduler-transient queue occupancy (buffers, merge staging):
  /// excluded from the certificate and from the empirical oracle.
  bool transient = false;
  /// The node accumulates watermark-purged state at all.
  bool blocking = false;
};

/// The per-plan admission certificate: what the whole graph may ever hold,
/// plus the progress and ordering guarantees the facts establish.
struct StateCertificate {
  /// Sum of non-transient per-node RAM bounds. kUnknownBytes if any node
  /// has no static bound.
  std::uint64_t ram_bytes = 0;
  /// Sum of non-transient per-node disk bounds (spill tier).
  std::uint64_t disk_bytes = 0;
  /// Every edge's watermark provably advances (no static starvation).
  bool progress_ok = true;
  /// Max watermark lag / disorder bound over all edges; kUnknownTime if
  /// any edge's lag is unbounded.
  std::int64_t disorder_bound = 0;

  bool ram_bounded() const { return ram_bytes != NodeStateBound::kUnknownBytes; }
  bool disk_bounded() const {
    return disk_bytes != NodeStateBound::kUnknownBytes;
  }
};

/// One analyzed node: its identity plus the facts on its output edge and
/// its own state bound.
struct NodeFacts {
  const Node* node = nullptr;
  std::uint64_t node_id = 0;
  std::string name;
  std::string op;
  NodeDescriptor::Kind kind = NodeDescriptor::Kind::kOpaque;
  /// Facts on this node's output edge (for sinks: the merged input facts).
  EdgeFacts out;
  NodeStateBound state;
};

/// Result of one abstract-interpretation pass.
struct DataflowResult {
  /// Per-node facts in topological (upstream-before-downstream) order.
  std::vector<NodeFacts> nodes;
  StateCertificate certificate;
  /// The graph had a subscription cycle: only the acyclic prefix was
  /// analyzed and the certificate is unbounded/not-progressing.
  bool has_cycle = false;

  /// Cost-model cross-check (plan analysis only): the optimizer's expected
  /// root output rate must not exceed the certified static bound.
  bool has_cost_check = false;
  double cost_model_rate_eps = 0.0;  ///< optimizer::CostModel estimate.
  double certified_rate_eps = 0.0;   ///< root edge bound, elements/second.
  bool rate_consistent = true;       ///< estimate <= bound (or bound unknown).
};

/// Runs the forward abstract interpretation over a constructed graph.
/// Reads each node's `Describe()` plus any per-instance overrides in
/// metadata gauges named "dataflow.<field>" (value -1 = unknown).
DataflowResult AnalyzeDataflow(const QueryGraph& graph);

/// Plan-level analysis: materializes the plan into a scratch graph (the
/// same lowering `LintPlan` uses), seeds the synthetic sources from the
/// catalog's rate hints (`rate_hint` per second -> elements per ms, total
/// unknown: registered streams are unbounded feeds), analyzes it, and
/// cross-checks the root rate bound against `optimizer::CostModel`.
/// `catalog` supplies rate hints; nullptr uses the default hint.
Result<DataflowResult> AnalyzeDataflowPlan(const optimizer::LogicalPlan& plan,
                                           const cql::Catalog* catalog = nullptr);

/// The certificate-backed lint rules P021–P025 over a constructed graph.
/// `Lint()` includes these; standalone callers (the engine's admission
/// path) can run just the dataflow rules.
std::vector<Diagnostic> DataflowDiagnostics(const QueryGraph& graph);

/// JSON rendering: {"schema_version": N, "certificate": {...},
/// "nodes": [...]} with -1 encoding unknown/unbounded (never inf/NaN).
std::string ToJson(const DataflowResult& result);

/// Extracts the top-level `schema_version` of any machine-readable
/// document this module or the lint CLI emits, so downstream tooling can
/// reject documents it does not understand. InvalidArgument when the
/// field is absent (documents predating `kLintJsonSchemaVersion` = 2).
Result<int> ParseLintJsonSchemaVersion(const std::string& json);

/// Graphviz rendering with per-edge fact labels.
std::string ToDot(const DataflowResult& result);

/// Human rendering: a per-node fact table plus the certificate summary.
std::string ToText(const DataflowResult& result);

}  // namespace pipes::analysis

#endif  // PIPES_ANALYSIS_DATAFLOW_H_
