#include "src/analysis/fixtures.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/filter.h"
#include "src/algebra/parallel.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/core/buffer.h"
#include "src/core/generator_source.h"
#include "src/core/parallel.h"
#include "src/core/pipe_edge.h"
#include "src/core/sink.h"
#include "src/workloads/espbench_queries.h"
#include "src/workloads/nexmark_queries.h"
#include "src/workloads/traffic_queries.h"

namespace pipes::analysis {
namespace {

struct Identity {
  int operator()(const int& v) const { return v; }
};
struct AlwaysTrue {
  bool operator()(const int&) const { return true; }
};
struct AsDouble {
  double operator()(const int& v) const { return static_cast<double>(v); }
};
struct CombineSum {
  int operator()(const int& l, const int& r) const { return l + r; }
};

/// A correct-but-undeclared operator: forwards elements element-by-element
/// and (deliberately) overrides no batch kernel — the P013 subject.
class PlainRelay : public UnaryPipe<int, int> {
 public:
  explicit PlainRelay(std::string name = "relay")
      : UnaryPipe<int, int>(std::move(name)) {}

 protected:
  void PortElement(int /*port_id*/, const StreamElement<int>& e) override {
    this->Transfer(e);
  }
};

/// A source that never heartbeats (e.g. a raw network tap with no progress
/// protocol) — the P014 subject.
class SilentSource : public VectorSource<int> {
 public:
  explicit SilentSource(std::string name = "silent")
      : VectorSource<int>({}, std::move(name)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = VectorSource<int>::Describe();
    d.op = "silent-source";
    d.emits_heartbeats = false;
    return d;
  }
};

std::shared_ptr<QueryGraph> NewGraph() {
  return std::make_shared<QueryGraph>();
}

int ActiveIndexOf(const QueryGraph& graph, const Node* node) {
  const std::vector<Node*> active = graph.ActiveNodes();
  const auto it = std::find(active.begin(), active.end(), node);
  PIPES_CHECK(it != active.end());
  return static_cast<int>(it - active.begin());
}

// --- One builder per rule ----------------------------------------------------

LintSubject BuildCycle() {  // P001
  LintSubject s;
  s.graph = NewGraph();
  auto& a = s.graph->Add<BasicBuffer<int>>("loop-a");
  auto& b = s.graph->Add<BasicBuffer<int>>("loop-b");
  a.AddSubscriber(b.input());
  b.AddSubscriber(a.input());
  return s;
}

LintSubject BuildForeignEdge() {  // P002
  LintSubject s;
  s.graph = NewGraph();
  auto foreign = std::make_shared<CountingSink<int>>("foreign-sink");
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  src.AddSubscriber(foreign->input());
  s.keepalive = foreign;
  return s;
}

LintSubject BuildDanglingInput() {  // P003
  LintSubject s;
  s.graph = NewGraph();
  auto& filter = s.graph->Add<algebra::Filter<int, AlwaysTrue>>(
      AlwaysTrue{}, "orphan-filter");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  filter.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildUnsubscribedOutput() {  // P004
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& dead = s.graph->Add<algebra::Filter<int, AlwaysTrue>>(AlwaysTrue{},
                                                              "dead-end");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(dead.input());
  src.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildSinkUnreachable() {  // P005
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& filter =
      s.graph->Add<algebra::Filter<int, AlwaysTrue>>(AlwaysTrue{}, "f");
  src.AddSubscriber(filter.input());
  return s;
}

LintSubject BuildUnboundedBlocking() {  // P006
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& window =
      s.graph->Add<algebra::UnboundedWindow<int>>("unbounded-window");
  auto& agg = s.graph->Add<
      algebra::TemporalAggregate<int, algebra::MaxAgg<double>, AsDouble>>(
      AsDouble{}, "aggregate");
  auto& sink = s.graph->Add<CountingSink<double>>("sink");
  src.AddSubscriber(window.input());
  window.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildPartitionUnmerged() {  // P007
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& split = s.graph->Add<Partition<int, Identity>>(2, Identity{},
                                                       "partition");
  src.AddSubscriber(split.input());
  for (std::size_t i = 0; i < 2; ++i) {
    auto& buf = s.graph->Add<BasicBuffer<int>>("buf-" + std::to_string(i));
    auto& sink =
        s.graph->Add<CountingSink<int>>("sink-" + std::to_string(i));
    split.AddSubscriber(i, buf.input());
    buf.AddSubscriber(sink.input());
  }
  return s;
}

LintSubject BuildMergeFaninMismatch() {  // P008
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& split = s.graph->Add<Partition<int, Identity>>(3, Identity{},
                                                       "partition");
  auto& merge = s.graph->Add<Merge<int>>(2, "merge");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(split.input());
  for (std::size_t i = 0; i < 3; ++i) {
    auto& buf = s.graph->Add<BasicBuffer<int>>("buf-" + std::to_string(i));
    split.AddSubscriber(i, buf.input());
    if (i < 2) {
      buf.AddSubscriber(merge.input(i));
    } else {
      auto& spill = s.graph->Add<CountingSink<int>>("spill");
      buf.AddSubscriber(spill.input());
    }
  }
  merge.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildNonpartitionableReplica() {  // P009
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& split = s.graph->Add<Partition<int, Identity>>(2, Identity{},
                                                       "partition");
  auto& merge = s.graph->Add<Merge<double>>(2, "merge");
  auto& sink = s.graph->Add<CountingSink<double>>("sink");
  src.AddSubscriber(split.input());
  for (std::size_t i = 0; i < 2; ++i) {
    // A *scalar* aggregate: its single sweep-line spans all keys, so a
    // keyed split computes per-partition maxima, not the global one.
    auto& buf = s.graph->Add<BasicBuffer<int>>("buf-" + std::to_string(i));
    auto& agg = s.graph->Add<
        algebra::TemporalAggregate<int, algebra::MaxAgg<double>, AsDouble>>(
        AsDouble{}, "agg-" + std::to_string(i));
    split.AddSubscriber(i, buf.input());
    buf.AddSubscriber(agg.input());
    agg.AddSubscriber(merge.input(i));
  }
  merge.AddSubscriber(sink.input());
  return s;
}

/// A correctly built replicated Distinct stage: the base for the
/// assignment fixtures, which then perturb the pinned assignment.
LintSubject BuildParallelDistinct(int num_workers) {
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto chain =
      algebra::MakeKeyedParallel<algebra::Distinct<int>>(*s.graph, 2,
                                                         Identity{});
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(*chain.input);
  chain.output->AddSubscriber(sink.input());
  s.assignment = chain.PinnedAssignment(*s.graph, num_workers);
  s.num_workers = num_workers;
  // Stash the handles the perturbing builders need.
  s.keepalive = std::make_shared<algebra::ParallelChain<int, int>>(chain);
  return s;
}

LintSubject BuildMergeOffWorkerZero() {  // P010
  LintSubject s = BuildParallelDistinct(3);
  const auto& chain =
      *std::static_pointer_cast<algebra::ParallelChain<int, int>>(
          s.keepalive);
  s.assignment[ActiveIndexOf(*s.graph, chain.replica_outputs[0])] = 1;
  return s;
}

LintSubject BuildReplicaSplit() {  // P011
  LintSubject s;
  s.graph = NewGraph();
  auto& left = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "left-src");
  auto& right = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "right-src");
  auto chain = algebra::MakeParallelHashJoin<int, int>(
      *s.graph, 2, Identity{}, Identity{}, CombineSum{});
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  left.AddSubscriber(*chain.left);
  right.AddSubscriber(*chain.right);
  chain.output->AddSubscriber(sink.input());
  s.num_workers = 3;
  s.assignment = chain.PinnedAssignment(*s.graph, s.num_workers);
  // Split replica 0's two input buffers across workers 1 and 2.
  s.assignment[ActiveIndexOf(*s.graph, chain.replica_inputs[0][0])] = 1;
  s.assignment[ActiveIndexOf(*s.graph, chain.replica_inputs[0][1])] = 2;
  return s;
}

LintSubject BuildReplicaCollision() {  // P012
  LintSubject s = BuildParallelDistinct(3);
  const auto& chain =
      *std::static_pointer_cast<algebra::ParallelChain<int, int>>(
          s.keepalive);
  // Pile both replicas onto worker 1; worker 2 idles.
  for (const auto& buffers : chain.replica_inputs) {
    for (const Node* buffer : buffers) {
      s.assignment[ActiveIndexOf(*s.graph, buffer)] = 1;
    }
  }
  return s;
}

LintSubject BuildBatchPathBreak() {  // P013
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src", /*batch_size=*/8);
  auto& relay = s.graph->Add<PlainRelay>("relay");
  auto& filter =
      s.graph->Add<algebra::Filter<int, AlwaysTrue>>(AlwaysTrue{}, "filter");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(relay.input());
  relay.AddSubscriber(filter.input());
  filter.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildStalledInput() {  // P014
  LintSubject s;
  s.graph = NewGraph();
  auto& silent = s.graph->Add<SilentSource>("silent");
  auto& live = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "live");
  auto& merge = s.graph->Add<algebra::Union<int>>("union");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  silent.AddSubscriber(merge.left());
  live.AddSubscriber(merge.right());
  merge.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildDeprecatedApi() {  // P015
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(sink.input());
  src.metadata().SetGauge(
      "lint.deprecated:built via a legacy wrapper; use the fluent builder",
      1.0);
  return s;
}

LintSubject BuildFootgunBuffer() {  // P016
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& buf =
      s.graph->Add<BasicBuffer<int>>("lossy-buffer", /*capacity=*/8);
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(buf.input());
  buf.AddSubscriber(sink.input());
  return s;
}

/// A link that never polls: the fixture only needs attachment state, not a
/// running executor.
class NullExecutorLink : public ExecutorLink {
 public:
  void PipeReady(PipeBase* /*pipe*/) override {}
};

LintSubject BuildMixedExecutor() {  // P018
  LintSubject s;
  s.graph = NewGraph();
  auto link = std::make_shared<NullExecutorLink>();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& filter = s.graph->Add<algebra::Filter<int, AlwaysTrue>>(
      AlwaysTrue{}, "legacy-filter");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(filter.input());
  filter.AddSubscriber(sink.input());
  // Attach a pipe to the source only: the filter keeps delivering by
  // direct recursion, which is exactly the mix P018 exists to catch.
  src.AttachExecutor(link.get());
  s.keepalive = link;
  return s;
}

LintSubject BuildOrphanedTenantOutput() {  // P019
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "trades-scan");
  auto& out = s.graph->Add<algebra::Filter<int, AlwaysTrue>>(AlwaysTrue{},
                                                             "acme-output");
  src.AddSubscriber(out.input());
  // The engine stamps registered outputs with this gauge and keeps its
  // result sink subscribed; detaching the sink without cancelling leaves
  // exactly this shape behind.
  out.metadata().SetGauge("engine.registered_output:acme", 1.0);
  return s;
}

LintSubject BuildSheddingSpillableJoin() {  // P020
  LintSubject s;
  s.graph = NewGraph();
  auto& left = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "left");
  auto& right = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "right");
  auto& join = s.graph->Add(algebra::MakeSpillableHashJoin<int, int>(
      Identity{}, Identity{}, CombineSum{}, "spilly-join"));
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  left.AddSubscriber(join.left());
  right.AddSubscriber(join.right());
  join.AddSubscriber(sink.input());
  // The spillable default is ShedPolicy::kNone; opting back into shedding
  // on an operator that can page losslessly is the P020 subject.
  join.set_shed_policy(algebra::ShedPolicy::kEvictFromLargerArea);
  return s;
}

LintSubject BuildUnboundedStateNoSpill() {  // P021
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  // The backing vector is a stand-in: declare the feed unbounded (no total,
  // no rate), as a live network tap would be.
  src.metadata().SetGauge("dataflow.total_elements", -1);
  auto& distinct = s.graph->Add<algebra::Distinct<int>>("leaky-distinct");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(distinct.input());
  distinct.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildWatermarkStarvedBlocking() {  // P022
  LintSubject s;
  s.graph = NewGraph();
  auto& silent = s.graph->Add<SilentSource>("silent");
  auto& distinct = s.graph->Add<algebra::Distinct<int>>("starved-distinct");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  silent.AddSubscriber(distinct.input());
  distinct.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildDisorderExceedsSlack() {  // P023
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "jittery-src");
  // The feed arrives up to 50 units late, with no reordering stage (slack
  // 0) in front of it: elements later than the slack would be dropped.
  src.metadata().SetGauge("dataflow.feed_disorder", 50);
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(sink.input());
  return s;
}

LintSubject BuildPartitionUnderprovisioned() {  // P024
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  src.metadata().SetGauge("dataflow.rate_per_unit", 100.0);
  auto& split = s.graph->Add<Partition<int, Identity>>(2, Identity{},
                                                       "partition");
  auto& merge = s.graph->Add<Merge<int>>(2, "merge");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(split.input());
  for (std::size_t i = 0; i < 2; ++i) {
    auto& buf = s.graph->Add<BasicBuffer<int>>("buf-" + std::to_string(i));
    split.AddSubscriber(i, buf.input());
    buf.AddSubscriber(merge.input(i));
  }
  merge.AddSubscriber(sink.input());
  // Each replica keeps up with 10 elements/unit; 2 x 10 < the certified
  // input rate of 100/unit.
  split.metadata().SetGauge("dataflow.capacity_per_unit", 10.0);
  return s;
}

LintSubject BuildBudgetExceeded() {  // P025
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& agg = s.graph->Add<
      algebra::TemporalAggregate<int, algebra::MaxAgg<double>, AsDouble>>(
      AsDouble{}, "agg");
  auto& sink = s.graph->Add<CountingSink<double>>("sink");
  src.AddSubscriber(agg.input());
  agg.AddSubscriber(sink.input());
  // The aggregate's constant sweep-line overhead alone exceeds a declared
  // 16-byte budget — the admission gate would reject this plan.
  src.metadata().SetGauge("dataflow.ram_budget_bytes", 16.0);
  return s;
}

LintSubject BuildAssignmentShape() {  // P017
  LintSubject s;
  s.graph = NewGraph();
  auto& src = s.graph->Add<VectorSource<int>>(
      std::vector<StreamElement<int>>{}, "src");
  auto& sink = s.graph->Add<CountingSink<int>>("sink");
  src.AddSubscriber(sink.input());
  s.assignment = {0, 0, 0};  // one active node, three entries
  s.num_workers = 1;
  return s;
}

}  // namespace

std::vector<Diagnostic> LintSubject::LintAll() const {
  std::vector<Diagnostic> diags = Lint(*graph);
  if (num_workers > 0) {
    std::vector<Diagnostic> extra =
        LintAssignment(*graph, assignment, num_workers);
    diags.insert(diags.end(), extra.begin(), extra.end());
  }
  // Same key as Linter::Take() and Diagnostic equality: merged graph+
  // assignment diagnostics order exactly as a single lint pass would.
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.rule_id, a.severity, a.node, a.path,
                              a.message, a.fixit) <
                     std::tie(b.rule_id, b.severity, b.node, b.path,
                              b.message, b.fixit);
            });
  return diags;
}

const std::vector<LintFixture>& BrokenGraphFixtures() {
  static const std::vector<LintFixture> kFixtures = {
      {"cycle", "P001", Severity::kError, "loop-a", "", BuildCycle},
      {"foreign-edge", "P002", Severity::kError, "src", "",
       BuildForeignEdge},
      {"dangling-input", "P003", Severity::kError, "orphan-filter", "",
       BuildDanglingInput},
      {"unsubscribed-output", "P004", Severity::kWarning, "dead-end", "",
       BuildUnsubscribedOutput},
      {"sink-unreachable", "P005", Severity::kWarning, "src", "",
       BuildSinkUnreachable},
      {"unbounded-blocking", "P006", Severity::kWarning, "aggregate",
       "unbounded-window -> aggregate", BuildUnboundedBlocking},
      {"partition-unmerged", "P007", Severity::kWarning, "partition", "",
       BuildPartitionUnmerged},
      {"merge-fanin-mismatch", "P008", Severity::kError, "merge",
       "partition -> merge", BuildMergeFaninMismatch},
      {"nonpartitionable-replica", "P009", Severity::kError, "agg-0",
       "partition -> agg-0", BuildNonpartitionableReplica},
      {"merge-off-worker-zero", "P010", Severity::kError, "replica-out-0",
       "replica-out-0 -> merge", BuildMergeOffWorkerZero},
      {"replica-split", "P011", Severity::kError, "hash-join-0",
       "hash-join-partition-l -> hash-join-0", BuildReplicaSplit},
      {"replica-collision", "P012", Severity::kWarning, "partition", "",
       BuildReplicaCollision},
      {"batch-path-break", "P013", Severity::kNote, "relay", "",
       BuildBatchPathBreak},
      {"stalled-input", "P014", Severity::kError, "union",
       "silent -> union", BuildStalledInput},
      {"deprecated-api", "P015", Severity::kWarning, "src", "",
       BuildDeprecatedApi},
      {"footgun-buffer", "P016", Severity::kNote, "lossy-buffer", "",
       BuildFootgunBuffer},
      {"assignment-shape", "P017", Severity::kError, "", "",
       BuildAssignmentShape},
      {"mixed-executor", "P018", Severity::kWarning, "legacy-filter", "",
       BuildMixedExecutor},
      {"orphaned-tenant-output", "P019", Severity::kError, "acme-output", "",
       BuildOrphanedTenantOutput},
      {"shed-with-spill", "P020", Severity::kWarning, "spilly-join", "",
       BuildSheddingSpillableJoin},
      {"unbounded-state-no-spill", "P021", Severity::kWarning,
       "leaky-distinct", "", BuildUnboundedStateNoSpill},
      {"watermark-starved-blocking", "P022", Severity::kWarning,
       "starved-distinct", "", BuildWatermarkStarvedBlocking},
      {"disorder-exceeds-slack", "P023", Severity::kWarning, "jittery-src",
       "", BuildDisorderExceedsSlack},
      {"partition-underprovisioned", "P024", Severity::kWarning, "partition",
       "", BuildPartitionUnderprovisioned},
      {"budget-exceeded", "P025", Severity::kWarning, "src", "",
       BuildBudgetExceeded},
  };
  return kFixtures;
}

std::string CheckFixture(const LintFixture& fixture) {
  const LintSubject subject = fixture.build();
  const std::vector<Diagnostic> diags = subject.LintAll();
  for (const Diagnostic& d : diags) {
    if (d.rule_id == fixture.rule_id && d.severity == fixture.severity &&
        d.node == fixture.node && d.path == fixture.path) {
      if (d.message.empty()) {
        return "fixture '" + fixture.name + "': " + fixture.rule_id +
               " fired with an empty message";
      }
      return "";
    }
  }
  std::ostringstream out;
  out << "fixture '" << fixture.name << "': expected " << fixture.rule_id
      << " (" << SeverityName(fixture.severity) << ") on node '"
      << fixture.node << "'";
  if (!fixture.path.empty()) out << " path '" << fixture.path << "'";
  out << "; got " << diags.size() << " diagnostic(s):\n" << ToText(diags);
  return out.str();
}

LintSubject BuildTrafficLintGraph() {
  LintSubject s;
  s.graph = NewGraph();
  auto& readings =
      workloads::AddTrafficSource(*s.graph, workloads::TrafficOptions{},
                                  /*batch_size=*/8);
  auto& hov = workloads::BuildHovAverageSpeedQuery(*s.graph, readings,
                                                   /*range=*/3600,
                                                   /*slide=*/300);
  auto& hov_sink = s.graph->Add<
      CountingSink<std::pair<std::int32_t, double>>>("hov-sink");
  hov.AddSubscriber(hov_sink.input());

  auto& alarms = workloads::BuildCongestionQuery(
      *s.graph, readings, /*direction=*/0, /*avg_window=*/300,
      /*avg_slide=*/60, /*speed_threshold=*/40.0, /*min_duration=*/900);
  auto& alarm_sink =
      s.graph->Add<CountingSink<workloads::Sustained<std::int32_t>>>(
          "alarm-sink");
  alarms.AddSubscriber(alarm_sink.input());
  return s;
}

LintSubject BuildNexmarkLintGraph() {
  LintSubject s;
  s.graph = NewGraph();
  auto& events = workloads::AddNexmarkSource(
      *s.graph, workloads::NexmarkOptions{}, /*batch_size=*/8);
  auto& bids = workloads::BuildBidStream(*s.graph, events);

  auto& highest = workloads::BuildHighestBidQuery(*s.graph, bids,
                                                  /*period=*/60000);
  auto& highest_sink = s.graph->Add<CountingSink<double>>("highest-sink");
  highest.AddSubscriber(highest_sink.input());

  // The replicated flavour of the per-auction statistics, with the pinned
  // assignment — the clean counterpart of the P010–P012 fixtures.
  auto chain = algebra::MakeKeyedParallel<workloads::BidsPerAuction>(
      *s.graph, 2, workloads::AuctionOfBid{}, workloads::AuctionOfBid{},
      workloads::PriceOf{});
  auto& stats_sink =
      s.graph->Add<CountingSink<workloads::BidsPerAuction::Output>>(
          "stats-sink");
  bids.AddSubscriber(*chain.input);
  chain.output->AddSubscriber(stats_sink.input());
  s.num_workers = 3;
  s.assignment = chain.PinnedAssignment(*s.graph, s.num_workers);
  return s;
}

LintSubject BuildEspbenchLintGraph() {
  LintSubject s;
  s.graph = NewGraph();
  workloads::EspbenchOptions options;
  options.duration_ms = 30'000;
  options.disorder_slack_ms = 40;
  options.burst_period_ms = 5'000;
  options.overloads = {{/*begin=*/5'000, /*end=*/15'000, /*machine=*/3,
                        /*power_factor=*/2.0}};
  auto& events = workloads::AddReorderedEspbenchSource(*s.graph, options);

  auto& alerts = workloads::BuildPowerThresholdAlertQuery(
      *s.graph, events, /*threshold_w=*/1'300.0, /*min_duration=*/2'000);
  auto& alert_sink =
      s.graph->Add<CountingSink<workloads::Sustained<std::int64_t>>>(
          "alert-sink");
  alerts.AddSubscriber(alert_sink.input());

  auto& power = workloads::BuildMachinePowerQuery(*s.graph, events,
                                                  /*range=*/1'000,
                                                  /*slide=*/500);
  auto& power_sink = s.graph->Add<
      CountingSink<std::pair<std::int64_t, double>>>("power-sink");
  power.AddSubscriber(power_sink.input());

  auto& orders = workloads::AddOrderDimensionSource(
      *s.graph, workloads::GenerateOrders(options));
  auto& enriched =
      workloads::BuildOrderEnrichmentJoin(*s.graph, events, orders);
  auto& enriched_sink =
      s.graph->Add<CountingSink<workloads::EventWithOrder>>("enriched-sink");
  enriched.AddSubscriber(enriched_sink.input());
  return s;
}

}  // namespace pipes::analysis
