#ifndef PIPES_ANALYSIS_FIXTURES_H_
#define PIPES_ANALYSIS_FIXTURES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/analysis/analyzer.h"
#include "src/core/graph.h"

/// \file
/// The lint corpus: deliberately broken graphs, one per rule, shared by the
/// analyzer tests and the `pipes_lint --fixtures` CI gate — plus clean
/// builds of both demo workloads, which must lint without warnings. Keeping
/// the corpus in the library (not the test binary) lets the CLI re-verify
/// the whole catalog in CI without recompiling tests.

namespace pipes::analysis {

/// A graph under analysis, with everything needed to lint it.
struct LintSubject {
  std::shared_ptr<QueryGraph> graph;
  /// Nodes deliberately allocated outside the graph (the foreign-edge
  /// fixture); destroyed after the graph.
  std::shared_ptr<void> keepalive;
  /// When `num_workers` > 0, `LintAll` also runs `LintAssignment` with
  /// these.
  std::vector<int> assignment;
  int num_workers = 0;

  /// `Lint(*graph)` plus, when an assignment is attached,
  /// `LintAssignment(...)` — merged and re-sorted.
  std::vector<Diagnostic> LintAll() const;
};

/// One entry of the broken-graph corpus: building it and linting must
/// produce a diagnostic with exactly these coordinates.
struct LintFixture {
  std::string name;
  /// The rule this fixture exists to trigger.
  std::string rule_id;
  Severity severity = Severity::kNote;
  /// Expected `Diagnostic::node` (empty for graph-level findings).
  std::string node;
  /// Expected `Diagnostic::path` (empty when the rule has no provenance).
  std::string path;
  LintSubject (*build)();
};

/// The corpus, in rule order. Every rule of `RuleCatalog()` is covered.
const std::vector<LintFixture>& BrokenGraphFixtures();

/// Checks one fixture: lints its subject and verifies the expected
/// diagnostic is present. Returns the failure text, or empty on pass.
std::string CheckFixture(const LintFixture& fixture);

/// Clean builds of the demo workloads (traffic congestion query chain,
/// NEXMark bid statistics + open-auction join, ESPBench reordered
/// telemetry + ERP enrichment). All must produce no diagnostics of
/// severity >= kWarning.
LintSubject BuildTrafficLintGraph();
LintSubject BuildNexmarkLintGraph();
LintSubject BuildEspbenchLintGraph();

}  // namespace pipes::analysis

#endif  // PIPES_ANALYSIS_FIXTURES_H_
