#ifndef PIPES_COMMON_MACROS_H_
#define PIPES_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Invariant-checking macros. `PIPES_CHECK` is always on and aborts with a
/// message on violation; use it for conditions that indicate a programming
/// error rather than a runtime failure (runtime failures return
/// `pipes::Status` instead). `PIPES_DCHECK` compiles away in NDEBUG builds.

#define PIPES_CHECK(condition)                                              \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PIPES_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define PIPES_CHECK_MSG(condition, msg)                                     \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PIPES_CHECK failed at %s:%d: %s (%s)\n",        \
                   __FILE__, __LINE__, #condition, msg);                    \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define PIPES_DCHECK(condition) \
  do {                          \
  } while (false)
#else
#define PIPES_DCHECK(condition) PIPES_CHECK(condition)
#endif

#endif  // PIPES_COMMON_MACROS_H_
