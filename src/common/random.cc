#include "src/common/random.h"

#include <cmath>

namespace pipes {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Random::Random(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Random::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Random::NextBounded(std::uint64_t bound) {
  PIPES_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Random::UniformInt(std::int64_t lo, std::int64_t hi) {
  PIPES_DCHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(Next());
  }
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Random::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Random::Bernoulli(double p) { return UniformDouble() < p; }

double Random::Exponential(double lambda) {
  PIPES_DCHECK(lambda > 0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

std::int64_t Random::Poisson(double mean) {
  PIPES_DCHECK(mean >= 0);
  if (mean == 0) {
    return 0;
  }
  if (mean > 60) {
    // Normal approximation, adequate for workload generation.
    const double v = mean + std::sqrt(mean) * Gaussian();
    return v < 0 ? 0 : static_cast<std::int64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  std::int64_t k = 0;
  double product = UniformDouble();
  while (product > limit) {
    ++k;
    product *= UniformDouble();
  }
  return k;
}

double Random::Gaussian() {
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 == 0.0);
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double theta)
    : n_(n), theta_(theta), cdf_(n) {
  PIPES_CHECK(n > 0);
  double norm = 0;
  for (std::size_t i = 0; i < n; ++i) {
    norm += 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  double acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta) / norm;
    cdf_[i] = acc;
  }
  cdf_[n - 1] = 1.0;  // Guard against floating-point shortfall.
}

std::size_t ZipfDistribution::Sample(Random& rng) const {
  const double u = rng.UniformDouble();
  // First index with cdf_[i] >= u.
  std::size_t lo = 0;
  std::size_t hi = n_ - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace pipes
