#ifndef PIPES_COMMON_RANDOM_H_
#define PIPES_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "src/common/macros.h"

/// \file
/// Deterministic random number generation for workload generators and
/// property tests. A small xoshiro256** core plus the distributions stream
/// benchmarks need (uniform, zipf, poisson, exponential). We deliberately
/// avoid <random> engines so that sequences are stable across standard
/// library implementations.

namespace pipes {

/// Seedable xoshiro256** generator. Copyable; copies continue the sequence
/// independently.
class Random {
 public:
  explicit Random(std::uint64_t seed = 42);

  /// Uniform on [0, 2^64).
  std::uint64_t Next();

  /// Uniform on [0, bound). `bound` must be positive.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform on [lo, hi]. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform on [0, 1).
  double UniformDouble();

  /// Uniform on [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponential with rate lambda (> 0); mean 1/lambda.
  double Exponential(double lambda);

  /// Poisson with mean `mean` (>= 0); uses inversion for small means and a
  /// normal approximation above 60.
  std::int64_t Poisson(double mean);

  /// Standard normal via Box-Muller.
  double Gaussian();

 private:
  std::uint64_t state_[4];
};

/// Zipf-distributed values on {0, ..., n-1} with exponent `theta`.
/// Precomputes the harmonic table once; draws are O(log n).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double theta);

  std::size_t Sample(Random& rng) const;

  std::size_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::size_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace pipes

#endif  // PIPES_COMMON_RANDOM_H_
