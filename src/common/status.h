#ifndef PIPES_COMMON_STATUS_H_
#define PIPES_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "src/common/macros.h"

/// \file
/// Exception-free error handling, RocksDB/Arrow style. Fallible operations
/// return a `Status`, or a `Result<T>` when they also produce a value.

namespace pipes {

/// Coarse error categories for `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kParseError,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// The result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or a non-OK `Status`.
///
/// Access the value only after checking `ok()`; violating this aborts.
template <typename T>
class Result {
 public:
  /// Implicit so functions can `return value;` or `return status;`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    PIPES_CHECK_MSG(!std::get<Status>(data_).ok(),
                    "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    PIPES_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    PIPES_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    PIPES_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

#define PIPES_INTERNAL_CONCAT_IMPL(a, b) a##b
#define PIPES_INTERNAL_CONCAT(a, b) PIPES_INTERNAL_CONCAT_IMPL(a, b)

/// Propagates a non-OK status to the caller. The temporary's name is
/// line-unique so nested uses (e.g. inside a lambda passed to another
/// checked call) do not shadow each other.
#define PIPES_INTERNAL_RETURN_IF_ERROR(var, expr) \
  do {                                            \
    ::pipes::Status var = (expr);                 \
    if (!var.ok()) {                              \
      return var;                                 \
    }                                             \
  } while (false)

#define PIPES_RETURN_IF_ERROR(expr)      \
  PIPES_INTERNAL_RETURN_IF_ERROR(        \
      PIPES_INTERNAL_CONCAT(_pipes_status_, __LINE__), expr)

#define PIPES_INTERNAL_ASSIGN_OR_RETURN(var, lhs, expr) \
  auto var = (expr);                                    \
  if (!var.ok()) {                                      \
    return var.status();                                \
  }                                                     \
  lhs = std::move(var).value()

/// Assigns the value of a `Result<T>` expression or propagates its status.
/// `lhs` may declare a new variable or name an existing one.
#define PIPES_ASSIGN_OR_RETURN(lhs, expr)                                    \
  PIPES_INTERNAL_ASSIGN_OR_RETURN(                                           \
      PIPES_INTERNAL_CONCAT(_pipes_result_, __LINE__), lhs, expr)

}  // namespace pipes

#endif  // PIPES_COMMON_STATUS_H_
