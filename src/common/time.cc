#include "src/common/time.h"

#include <cstdio>

namespace pipes {

std::string ToString(const TimeInterval& interval) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%lld, %lld)",
                static_cast<long long>(interval.start),
                static_cast<long long>(interval.end));
  return buf;
}

}  // namespace pipes
