#ifndef PIPES_COMMON_TIME_H_
#define PIPES_COMMON_TIME_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

#include "src/common/macros.h"

/// \file
/// Application time. All stream semantics in PIPES are defined over logical
/// (application) timestamps carried by the data, never over wall-clock time;
/// this keeps execution deterministic and testable.

namespace pipes {

/// Logical application timestamp. The unit is workload-defined (the demo
/// workloads use milliseconds).
using Timestamp = std::int64_t;

/// Sentinel: before every valid timestamp.
inline constexpr Timestamp kMinTimestamp =
    std::numeric_limits<Timestamp>::min();
/// Sentinel: after every valid timestamp (used for "never expires").
inline constexpr Timestamp kMaxTimestamp =
    std::numeric_limits<Timestamp>::max();

/// Half-open validity interval [start, end) of a stream element.
///
/// The *snapshot* of a stream at time t contains exactly the payloads whose
/// interval contains t. Intervals are never empty (start < end).
struct TimeInterval {
  Timestamp start = 0;
  Timestamp end = 1;

  TimeInterval() = default;
  TimeInterval(Timestamp s, Timestamp e) : start(s), end(e) {
    PIPES_DCHECK(s < e);
  }

  /// Point interval [t, t+1): the canonical validity of a raw stream element
  /// before any window operator widens it.
  static TimeInterval Point(Timestamp t) { return TimeInterval(t, t + 1); }

  bool Contains(Timestamp t) const { return start <= t && t < end; }

  bool Overlaps(const TimeInterval& other) const {
    return start < other.end && other.start < end;
  }

  /// Intersection; valid only if `Overlaps(other)`.
  TimeInterval Intersect(const TimeInterval& other) const {
    PIPES_DCHECK(Overlaps(other));
    return TimeInterval(std::max(start, other.start),
                        std::min(end, other.end));
  }

  Timestamp Length() const { return end - start; }

  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

/// "[start, end)" for debugging.
std::string ToString(const TimeInterval& interval);

}  // namespace pipes

#endif  // PIPES_COMMON_TIME_H_
