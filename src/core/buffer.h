#ifndef PIPES_CORE_BUFFER_H_
#define PIPES_CORE_BUFFER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/core/element.h"
#include "src/core/pipe.h"

/// \file
/// Buffers: the only place in PIPES where inter-operator queues exist.
/// Direct subscriptions deliver synchronously; a `Buffer` decouples its
/// upstream from its downstream so a scheduler can drive the downstream
/// portion independently. The fusion layer (scheduler layer 1) inserts
/// buffers exactly at virtual-node boundaries; `ConcurrentBuffer` is the
/// thread-safe variant used at thread boundaries (scheduler layer 3).

namespace pipes {

/// No-op lockable for the single-threaded buffer.
struct NullMutex {
  void lock() {}
  void unlock() {}
};

/// A queueing identity pipe. Incoming elements and control signals are
/// enqueued; `DoWork` dequeues and forwards them. Consecutive heartbeats
/// are coalesced so idle upstreams cannot grow the queue.
///
/// With a `capacity`, the buffer is *bounded*: when a fluctuating stream
/// rate outruns the scheduler, the oldest queued element is dropped (and
/// counted) instead of growing memory without limit — buffer-level load
/// shedding. Control signals are never dropped.
template <typename T, typename Mutex = NullMutex>
class BasicBuffer : public UnaryPipe<T, T> {
 public:
  /// `capacity` = 0 means unbounded.
  explicit BasicBuffer(std::string name = "buffer",
                       std::size_t capacity = 0)
      : UnaryPipe<T, T>(std::move(name)), capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// Elements dropped because the buffer was full.
  std::uint64_t dropped_count() const {
    std::lock_guard<Mutex> lock(mu_);
    return dropped_;
  }

  std::uint64_t ShedCount() const override { return dropped_count(); }

  bool is_active() const override { return true; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.kind = NodeDescriptor::Kind::kBuffer;
    d.op = "buffer";
    d.has_batch_kernel = true;
    if (capacity_ > 0) {
      d.notes.push_back(
          "bounded buffer sheds oldest elements under overload (capacity " +
          std::to_string(capacity_) + "); results may silently drop data");
    }
    return d;
  }

  bool HasWork() const override {
    std::lock_guard<Mutex> lock(mu_);
    return !queue_.empty();
  }

  bool IsFinished() const override {
    std::lock_guard<Mutex> lock(mu_);
    return done_received_ && queue_.empty();
  }

  std::size_t queue_size() const override {
    std::lock_guard<Mutex> lock(mu_);
    return queue_.size();
  }

  std::size_t ApproxMemoryBytes() const override {
    std::lock_guard<Mutex> lock(mu_);
    return queue_.size() * (sizeof(Entry) + 16);
  }

  /// Drains up to `max_units` queued entries as one train: one lock
  /// acquisition to detach the train (per-train instead of per-element —
  /// the big win for `ConcurrentBuffer` on cross-thread scheduler edges),
  /// then maximal runs of consecutive elements forwarded with a single
  /// `TransferBatch` each; interleaved control signals are forwarded
  /// individually in order.
  std::size_t DoWork(std::size_t max_units) override {
    train_.clear();
    {
      std::lock_guard<Mutex> lock(mu_);
      while (train_.size() < max_units && !queue_.empty()) {
        train_.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    std::size_t i = 0;
    const std::size_t n = train_.size();
    while (i < n) {
      if (std::holds_alternative<StreamElement<T>>(train_[i])) {
        run_.clear();
        do {
          run_.push_back(std::move(std::get<StreamElement<T>>(train_[i])));
          ++i;
        } while (i < n && std::holds_alternative<StreamElement<T>>(train_[i]));
        this->TransferBatch(run_);
      } else if (auto* hb = std::get_if<Heartbeat>(&train_[i])) {
        this->TransferHeartbeat(hb->t);
        ++i;
      } else {
        this->TransferDone();
        ++i;
      }
    }
    return n;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    std::lock_guard<Mutex> lock(mu_);
    last_element_start_ = e.start();
    queue_.push_back(e);
    if (capacity_ > 0) {
      ShedToCapacity();
    }
  }

  /// Batched enqueue: the whole upstream batch goes in under one lock
  /// acquisition (and one shed pass), instead of one per element.
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    if (batch.empty()) return;
    std::lock_guard<Mutex> lock(mu_);
    last_element_start_ = batch.back().start();
    for (const StreamElement<T>& e : batch) {
      queue_.push_back(e);
    }
    if (capacity_ > 0) {
      ShedToCapacity();
    }
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    std::lock_guard<Mutex> lock(mu_);
    // An enqueued element already carries its own progress downstream; only
    // heartbeats that advance beyond the last element are worth queueing.
    if (watermark <= last_element_start_) return;
    if (!queue_.empty()) {
      if (auto* hb = std::get_if<Heartbeat>(&queue_.back())) {
        hb->t = watermark;
        return;
      }
    }
    queue_.push_back(Heartbeat{watermark});
  }

  void PortDone(int /*port_id*/) override {
    std::lock_guard<Mutex> lock(mu_);
    done_received_ = true;
    queue_.push_back(Done{});
  }

 private:
  struct Heartbeat {
    Timestamp t;
  };
  struct Done {};
  using Entry = std::variant<StreamElement<T>, Heartbeat, Done>;

  /// Drops the oldest queued *elements* (never control signals) until the
  /// element count fits the capacity. Requires mu_ held.
  void ShedToCapacity() {
    std::size_t elements = 0;
    for (const Entry& entry : queue_) {
      if (std::holds_alternative<StreamElement<T>>(entry)) ++elements;
    }
    for (auto it = queue_.begin();
         elements > capacity_ && it != queue_.end();) {
      if (std::holds_alternative<StreamElement<T>>(*it)) {
        it = queue_.erase(it);
        --elements;
        ++dropped_;
      } else {
        ++it;
      }
    }
  }

  mutable Mutex mu_;
  std::deque<Entry> queue_;
  /// DoWork scratch: the detached train and the current element run. Only
  /// touched by the (single) scheduler thread driving this node.
  std::vector<Entry> train_;
  std::vector<StreamElement<T>> run_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  Timestamp last_element_start_ = kMinTimestamp;
  bool done_received_ = false;
};

/// Single-threaded buffer (virtual-node boundary within one thread).
template <typename T>
using Buffer = BasicBuffer<T, NullMutex>;

/// Thread-safe buffer (edge crossing a thread boundary).
template <typename T>
using ConcurrentBuffer = BasicBuffer<T, std::mutex>;

}  // namespace pipes

#endif  // PIPES_CORE_BUFFER_H_
