#ifndef PIPES_CORE_BUFFER_H_
#define PIPES_CORE_BUFFER_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/core/pipe.h"

/// \file
/// Buffers: the only place in PIPES where inter-operator queues exist.
/// Direct subscriptions deliver synchronously; a `Buffer` decouples its
/// upstream from its downstream so a scheduler can drive the downstream
/// portion independently. The fusion layer (scheduler layer 1) inserts
/// buffers exactly at virtual-node boundaries; `ConcurrentBuffer` is the
/// thread-safe variant used at thread boundaries (scheduler layer 3).

namespace pipes {

/// No-op lockable for the single-threaded buffer.
struct NullMutex {
  void lock() {}
  void unlock() {}
};

/// A queueing identity pipe. Incoming elements and control signals are
/// enqueued; `DoWork` dequeues and forwards them. Consecutive heartbeats
/// are coalesced so idle upstreams cannot grow the queue.
///
/// The queue holds columnar run chunks interleaved with control markers:
/// elements enqueue as bulk column appends onto the tail chunk and leave as
/// whole `TransferRun`s, so the buffer's cost is per chunk, not per
/// element. Chunk size is capped so a partially drained front chunk (its
/// consumed prefix is tracked by an offset, not erased) never pins more
/// than a bounded amount of delivered data.
///
/// With a `capacity`, the buffer is *bounded*: when a fluctuating stream
/// rate outruns the scheduler, the oldest queued element is dropped (and
/// counted) instead of growing memory without limit — buffer-level load
/// shedding. Control signals are never dropped.
template <typename T, typename Mutex = NullMutex>
class BasicBuffer : public UnaryPipe<T, T> {
 public:
  /// `capacity` = 0 means unbounded.
  explicit BasicBuffer(std::string name = "buffer",
                       std::size_t capacity = 0)
      : UnaryPipe<T, T>(std::move(name)), capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }

  /// Elements dropped because the buffer was full.
  std::uint64_t dropped_count() const {
    std::lock_guard<Mutex> lock(mu_);
    return dropped_;
  }

  std::uint64_t ShedCount() const override { return dropped_count(); }

  bool is_active() const override { return true; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = UnaryPipe<T, T>::Describe();
    d.kind = NodeDescriptor::Kind::kBuffer;
    d.op = "buffer";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    // Queue occupancy depends on scheduling, not on watermark progress.
    d.dataflow.transient_state = true;
    if (capacity_ > 0) {
      d.notes.push_back(
          "bounded buffer sheds oldest elements under overload (capacity " +
          std::to_string(capacity_) + "); results may silently drop data");
    }
    return d;
  }

  bool HasWork() const override {
    std::lock_guard<Mutex> lock(mu_);
    return !queue_.empty();
  }

  bool IsFinished() const override {
    std::lock_guard<Mutex> lock(mu_);
    return done_received_ && queue_.empty();
  }

  std::size_t queue_size() const override {
    std::lock_guard<Mutex> lock(mu_);
    return elements_ + controls_;
  }

  std::size_t ApproxMemoryBytes() const override {
    std::lock_guard<Mutex> lock(mu_);
    return (elements_ + controls_) * (sizeof(StreamElement<T>) + 16);
  }

  /// Drains up to `max_units` queued units (elements + control signals) as
  /// one train: one lock acquisition to detach the train (per-train instead
  /// of per-element — the big win for `ConcurrentBuffer` on cross-thread
  /// scheduler edges), then each run chunk leaves through a single
  /// `TransferRun` (whole chunks are *moved* out — no copy); interleaved
  /// control signals are forwarded individually in order. An oversized
  /// front chunk is split by copying out a prefix and advancing the
  /// consumed offset.
  std::size_t DoWork(std::size_t max_units) override {
    train_.clear();
    {
      std::lock_guard<Mutex> lock(mu_);
      std::size_t budget = max_units;
      while (budget > 0 && !queue_.empty()) {
        Entry& front = queue_.front();
        if (auto* run = std::get_if<ColumnarRun<T>>(&front)) {
          const std::size_t avail = run->size() - front_offset_;
          if (avail <= budget && front_offset_ == 0) {
            budget -= avail;
            elements_ -= avail;
            train_.push_back(std::move(front));
            queue_.pop_front();
          } else {
            const std::size_t take = std::min(avail, budget);
            ColumnarRun<T> part;
            part.reserve(take);
            part.AppendRange(*run, front_offset_, front_offset_ + take);
            front_offset_ += take;
            budget -= take;
            elements_ -= take;
            if (front_offset_ == run->size()) {
              queue_.pop_front();
              front_offset_ = 0;
            }
            train_.push_back(Entry(std::move(part)));
          }
        } else {
          --budget;
          --controls_;
          train_.push_back(std::move(front));
          queue_.pop_front();
        }
      }
    }
    std::size_t drained = 0;
    for (Entry& entry : train_) {
      if (auto* run = std::get_if<ColumnarRun<T>>(&entry)) {
        drained += run->size();
        this->TransferRun(std::move(*run));
      } else if (auto* hb = std::get_if<Heartbeat>(&entry)) {
        ++drained;
        this->TransferHeartbeat(hb->t);
      } else {
        ++drained;
        this->TransferDone();
      }
    }
    train_.clear();
    return drained;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    std::lock_guard<Mutex> lock(mu_);
    last_element_start_ = e.start();
    TailChunk(e.start()).Append(e);
    elements_ += 1;
    if (capacity_ > 0) {
      ShedToCapacity();
    }
  }

  /// Batched enqueue: the whole upstream batch goes in under one lock
  /// acquisition (and one shed pass), transposed onto the tail chunk.
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    if (batch.empty()) return;
    std::lock_guard<Mutex> lock(mu_);
    last_element_start_ = batch.back().start();
    TailChunk(batch.front().start()).AppendBatch(batch);
    elements_ += batch.size();
    if (capacity_ > 0) {
      ShedToCapacity();
    }
  }

  /// Columnar enqueue: one lock acquisition and three bulk column appends
  /// for the whole run — the queue stays SoA end to end.
  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    if (run.empty()) return;
    std::lock_guard<Mutex> lock(mu_);
    last_element_start_ = run.starts.back();
    TailChunk(run.starts.front()).AppendRun(run);
    elements_ += run.size();
    if (capacity_ > 0) {
      ShedToCapacity();
    }
  }

  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    std::lock_guard<Mutex> lock(mu_);
    // An enqueued element already carries its own progress downstream; only
    // heartbeats that advance beyond the last element are worth queueing.
    if (watermark <= last_element_start_) return;
    if (!queue_.empty()) {
      if (auto* hb = std::get_if<Heartbeat>(&queue_.back())) {
        hb->t = watermark;
        return;
      }
    }
    queue_.push_back(Heartbeat{watermark});
    ++controls_;
  }

  void PortDone(int /*port_id*/) override {
    std::lock_guard<Mutex> lock(mu_);
    done_received_ = true;
    queue_.push_back(Done{});
    ++controls_;
  }

 private:
  struct Heartbeat {
    Timestamp t;
  };
  struct Done {};
  using Entry = std::variant<ColumnarRun<T>, Heartbeat, Done>;

  /// Soft cap on one chunk's element count: bounds how much delivered data
  /// a partially drained front chunk can pin via its consumed offset, and
  /// keeps any single enqueue/drain step O(cap).
  static constexpr std::size_t kMaxChunkElements = 4096;

  /// The run chunk new elements append to (mu_ held). Starts a fresh chunk
  /// when the tail is a control marker, the tail chunk is full, or
  /// `first_start` would break the tail chunk's internal start order.
  ColumnarRun<T>& TailChunk(Timestamp first_start) {
    if (!queue_.empty()) {
      if (auto* run = std::get_if<ColumnarRun<T>>(&queue_.back())) {
        if (run->size() < kMaxChunkElements &&
            (run->empty() || run->starts.back() <= first_start)) {
          return *run;
        }
      }
    }
    queue_.emplace_back(ColumnarRun<T>());
    return std::get<ColumnarRun<T>>(queue_.back());
  }

  /// Drops the oldest queued *elements* (never control signals) until the
  /// element count fits the capacity. Requires mu_ held.
  void ShedToCapacity() {
    std::size_t i = 0;
    while (elements_ > capacity_ && i < queue_.size()) {
      auto* run = std::get_if<ColumnarRun<T>>(&queue_[i]);
      if (run == nullptr) {
        ++i;
        continue;
      }
      const std::size_t offset = (i == 0) ? front_offset_ : 0;
      const std::size_t avail = run->size() - offset;
      const std::size_t drop = std::min(elements_ - capacity_, avail);
      run->EraseFront(offset + drop);
      if (i == 0) front_offset_ = 0;
      elements_ -= drop;
      dropped_ += drop;
      if (run->empty()) {
        queue_.erase(queue_.begin() + i);
      } else {
        ++i;
      }
    }
  }

  mutable Mutex mu_;
  std::deque<Entry> queue_;
  /// Queued element count across all run chunks (the consumed prefix of the
  /// front chunk excluded) and queued control-signal count.
  std::size_t elements_ = 0;
  std::size_t controls_ = 0;
  /// Already-delivered prefix of the front run chunk (split DoWork drains).
  std::size_t front_offset_ = 0;
  /// DoWork scratch: the detached train. Only touched by the (single)
  /// scheduler thread driving this node.
  std::vector<Entry> train_;
  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  Timestamp last_element_start_ = kMinTimestamp;
  bool done_received_ = false;
};

/// Single-threaded buffer (virtual-node boundary within one thread).
template <typename T>
using Buffer = BasicBuffer<T, NullMutex>;

/// Thread-safe buffer (edge crossing a thread boundary).
template <typename T>
using ConcurrentBuffer = BasicBuffer<T, std::mutex>;

}  // namespace pipes

#endif  // PIPES_CORE_BUFFER_H_
