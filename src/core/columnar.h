#ifndef PIPES_CORE_COLUMNAR_H_
#define PIPES_CORE_COLUMNAR_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/time.h"
#include "src/core/element.h"

/// \file
/// Columnar (structure-of-arrays) runs: the batch representation of the
/// executor-polled delivery path. A run is a maximal sequence of stream
/// elements from one producer, ordered by non-decreasing start, carrying no
/// control signals — the same contract as an AoS `TransferBatch` train, but
/// with the interval starts, interval ends, and payloads stored in three
/// contiguous arrays. Batch kernels that only touch one column (a filter
/// reads payloads, a window rewrites ends) become tight loops over plain
/// arrays the compiler can vectorize, instead of strided walks over
/// `StreamElement` records.

namespace pipes {

/// One columnar run. Invariants (checked where the run crosses a node
/// boundary, not per mutation): all three columns have equal length and
/// `starts` is non-decreasing.
template <typename T>
struct ColumnarRun {
  std::vector<Timestamp> starts;
  std::vector<Timestamp> ends;
  std::vector<T> payloads;

  std::size_t size() const { return starts.size(); }
  bool empty() const { return starts.empty(); }

  void clear() {
    starts.clear();
    ends.clear();
    payloads.clear();
  }

  void reserve(std::size_t n) {
    starts.reserve(n);
    ends.reserve(n);
    payloads.reserve(n);
  }

  void Append(T payload, Timestamp start, Timestamp end) {
    starts.push_back(start);
    ends.push_back(end);
    payloads.push_back(std::move(payload));
  }

  void Append(const StreamElement<T>& e) {
    Append(e.payload, e.start(), e.end());
  }

  void Append(StreamElement<T>&& e) {
    Append(std::move(e.payload), e.start(), e.end());
  }

  /// Transposes an AoS batch onto the end of this run.
  void AppendBatch(std::span<const StreamElement<T>> batch) {
    reserve(size() + batch.size());
    for (const StreamElement<T>& e : batch) Append(e);
  }

  /// Bulk append of a whole run — three range inserts, which degrade to
  /// memcpy for trivially copyable payloads.
  void AppendRun(const ColumnarRun& other) {
    starts.insert(starts.end(), other.starts.begin(), other.starts.end());
    ends.insert(ends.end(), other.ends.begin(), other.ends.end());
    payloads.insert(payloads.end(), other.payloads.begin(),
                    other.payloads.end());
  }

  /// Bulk append of `other`'s [from, to) sub-range.
  void AppendRange(const ColumnarRun& other, std::size_t from,
                   std::size_t to) {
    starts.insert(starts.end(), other.starts.begin() + from,
                  other.starts.begin() + to);
    ends.insert(ends.end(), other.ends.begin() + from,
                other.ends.begin() + to);
    payloads.insert(payloads.end(), other.payloads.begin() + from,
                    other.payloads.begin() + to);
  }

  /// Removes the first `n` elements (shifts the remainder down).
  void EraseFront(std::size_t n) {
    starts.erase(starts.begin(), starts.begin() + n);
    ends.erase(ends.begin(), ends.begin() + n);
    payloads.erase(payloads.begin(), payloads.begin() + n);
  }

  /// Takes `other`'s contents. When this run is empty the columns are
  /// swapped — O(1), and `other` inherits this run's (cleared) capacity, so
  /// a producer that hands its scratch run off and refills it allocates
  /// nothing in steady state. Otherwise falls back to a bulk append.
  /// `other` is empty afterwards either way.
  void TakeFrom(ColumnarRun& other) {
    if (empty()) {
      starts.swap(other.starts);
      ends.swap(other.ends);
      payloads.swap(other.payloads);
    } else {
      AppendRun(other);
    }
    other.clear();
  }

  StreamElement<T> ElementAt(std::size_t i) const {
    return StreamElement<T>(payloads[i], starts[i], ends[i]);
  }

  /// Re-materializes the run as AoS elements, appended to `out` — the
  /// compatibility shim behind the default `PortRun`, so operators without
  /// a columnar kernel keep their per-element/AoS semantics unchanged.
  void MaterializeTo(std::vector<StreamElement<T>>& out) const {
    out.reserve(out.size() + size());
    for (std::size_t i = 0; i < size(); ++i) {
      out.emplace_back(payloads[i], starts[i], ends[i]);
    }
  }
};

}  // namespace pipes

#endif  // PIPES_CORE_COLUMNAR_H_
