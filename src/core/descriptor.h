#ifndef PIPES_CORE_DESCRIPTOR_H_
#define PIPES_CORE_DESCRIPTOR_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

/// \file
/// Static self-description of query-graph nodes, the introspection surface
/// the static analyzer (`src/analysis/`) walks. Every node can answer "what
/// kind of thing am I, and which composition contracts do I participate
/// in?" without the analyzer knowing its element types — the runtime
/// equivalent of the compile-time traits (`algebra::KeyPartitionable`,
/// batch-kernel overrides) that type erasure hides once operators sit
/// behind untyped `Node*` edges.
///
/// Descriptors are *declarations*: a node vouches for its own contract
/// flags, and `tests/analysis_test.cc` holds the declared flags to the
/// compile-time traits where both exist. `Describe()` is meant for
/// analysis before (or after) a run, not concurrently with a scheduler.

namespace pipes {

class Node;

/// One node's static contract card.
struct NodeDescriptor {
  /// Structural role in the pub-sub graph.
  enum class Kind {
    kOpaque,     ///< Unknown: the node does not describe itself.
    kSource,     ///< Root producer (generator, reordering adapter).
    kOperator,   ///< Pipe: consumes and produces.
    kBuffer,     ///< Queueing identity at a scheduling boundary.
    kPartition,  ///< Keyed splitter of a replicated stage.
    kMerge,      ///< Order-restoring combiner of a replicated stage.
    kSink,       ///< Terminal consumer.
  };

  Kind kind = Kind::kOpaque;

  /// Operator family, e.g. "filter", "time-window", "hash-join". Purely
  /// informative; rules key off the flags, not this string.
  std::string op = "opaque";

  /// Per declared input port: how many upstreams are currently subscribed.
  /// Empty when the node has no input ports (sources) or does not expose
  /// them (opaque nodes) — rules that need arity skip empty vectors.
  std::vector<std::size_t> port_upstreams;

  /// Accumulates state that is only released/purged by watermark progress
  /// (join, aggregate, distinct, difference, intersect, multiway join).
  bool blocking = false;

  /// Overrides the batched delivery path (`PortBatch` kernel, or a source
  /// emitting `TransferBatch` trains). DESIGN.md "Batched delivery".
  bool has_batch_kernel = false;

  /// Overrides the columnar delivery path (`PortRun` kernel operating on
  /// SoA runs, DESIGN.md §4f). Operators without one still run correctly
  /// under the executor — the default `PortRun` re-materializes — but pay
  /// one AoS copy per run.
  bool has_columnar_kernel = false;

  /// Safe to clone into keyed shared-nothing replicas — must agree with
  /// `algebra::KeyPartitionable` where the compile-time trait exists.
  bool key_partitionable = false;

  /// Can page state to disk losslessly under memory pressure (spillable
  /// SweepAreas, docs/memory.md). With a spill tier available, shedding is
  /// an opt-in fallback — lint rule P020 flags the combination below.
  bool spill_capable = false;

  /// Load shedding is currently enabled on this node (drops state for
  /// bounded memory, trading recall). Always declared so P020 can compare
  /// it against `spill_capable`.
  bool shedding_enabled = false;

  /// Rewrites every output validity to a bounded interval (window
  /// operators, relation-to-stream): downstream state purges again even if
  /// the input was unbounded.
  bool bounds_validity = false;

  /// May emit elements valid forever (`UnboundedWindow`): blocking
  /// consumers downstream never purge.
  bool unbounded_validity = false;

  /// Source-kind nodes only: whether the node advances downstream
  /// watermarks (implicit heartbeats from monotone element starts, or
  /// explicit ones). A non-emitting source stalls every fan-in it feeds.
  bool emits_heartbeats = true;

  /// Partition only: number of keyed outputs.
  std::size_t fan_out = 0;

  /// Merge only: number of replica input ports.
  std::size_t fan_in = 0;

  /// Partition only: the subscriber nodes of each keyed output, by output
  /// index — what `Node::downstream()` flattens away and replica-stage
  /// analysis needs back.
  std::vector<std::vector<const Node*>> output_subscribers;

  /// Foot-gun notes the node wants surfaced (e.g. a bounded buffer that
  /// sheds elements). Reported by the lint rule for foot-gun APIs.
  std::vector<std::string> notes;

  /// Non-empty when the node was built through a deprecated API; the text
  /// is the migration hint.
  std::string deprecated;

  // --- Dataflow transfer functions (src/analysis/dataflow.h) ----------------
  // Conservative per-node annotations the abstract interpreter composes into
  // per-edge facts (cardinality, rate, validity extent, disorder, progress)
  // and the per-plan StateCertificate. Every numeric field is an upper
  // bound; the sentinels below mean "unknown / unbounded". Sources declare
  // feed contracts; operators declare output and state transfer functions.
  // Metadata gauges named "dataflow.<field>" override the corresponding
  // declaration on a per-instance basis (used by plan lowering and the fuzz
  // materializer, which know things the operator type cannot).
  struct Dataflow {
    /// Count sentinel: total element count is unknown or unbounded.
    static constexpr std::uint64_t kUnknownCount =
        std::numeric_limits<std::uint64_t>::max();
    /// Time sentinel: validity extent / disorder is unknown or unbounded.
    static constexpr std::int64_t kUnknownTime =
        std::numeric_limits<std::int64_t>::max();

    /// Sources: total elements this source will ever emit (kUnknownCount =
    /// unbounded feed). Finite backing stores (VectorSource) declare their
    /// size.
    std::uint64_t total_elements = kUnknownCount;
    /// Sources: declared peak feed rate in elements per time unit of the
    /// graph's timestamp domain (0 = undeclared). A contract, not a
    /// measurement: the analysis is sound relative to it.
    double rate_per_unit = 0.0;
    /// Sources: max backward displacement of the raw feed relative to its
    /// own running max start, in time units (0 = in-order feed).
    std::int64_t feed_disorder = 0;
    /// Reordering sources: slack absorbed before elements are dropped
    /// (-1 = not a reordering stage). Compared against feed_disorder by the
    /// disorder-exceeds-slack rule.
    std::int64_t reorder_slack = -1;
    /// Emitted watermarks may trail the max emitted start by this many time
    /// units (a reordering source's slack); downstream state retention
    /// grows by the same amount.
    std::int64_t watermark_lag = 0;

    /// Operators: max output elements per input element (filter <= 1,
    /// aggregates <= 2 sweep-line segments per input boundary, ...).
    double output_factor = 1.0;
    /// Additive output allowance independent of input count.
    std::uint64_t output_fixed = 0;
    /// Binary joins: output cardinality is bounded by |left| * |right|
    /// pairs (times output_factor) instead of per-input composition.
    bool output_per_pair = false;
    /// Nodes with bounds_validity set: max (end - start) of any output
    /// element in time units (kUnknownTime = the node re-stamps validity
    /// but with no static bound, e.g. count windows before end-of-stream).
    /// Joins intersect validities instead: see intersects_validity.
    std::int64_t validity_extent = kUnknownTime;
    /// Output validity is the intersection of the inputs' (temporal joins):
    /// the output extent is bounded by the *minimum* input extent.
    bool intersects_validity = false;
    /// Output validity may exceed any single input element's (coalescing
    /// merges abutting intervals): the output extent is statically
    /// unbounded even when the input's is known.
    bool extends_validity = false;

    /// Watermark-purged state: peak bytes retained per cumulative input
    /// element, covering the node's own accounting (`ApproxMemoryBytes` +
    /// `SpilledBytes`). 0 on a blocking node means unknown, i.e. an
    /// unbounded state bound.
    std::size_t state_bytes_per_element = 0;
    /// Constant state overhead independent of input count (e.g. a count
    /// window's bounded pending queue).
    std::size_t state_bytes_fixed = 0;
    /// The node's state is scheduler-transient queue occupancy (buffers,
    /// merge staging), not watermark-purged operator state: excluded from
    /// the StateCertificate, which bounds the latter (docs/lint.md).
    bool transient_state = false;
  };
  Dataflow dataflow;
};

/// Readable name of a descriptor kind ("source", "buffer", ...).
const char* NodeKindName(NodeDescriptor::Kind kind);

}  // namespace pipes

#endif  // PIPES_CORE_DESCRIPTOR_H_
