#ifndef PIPES_CORE_DESCRIPTOR_H_
#define PIPES_CORE_DESCRIPTOR_H_

#include <cstddef>
#include <string>
#include <vector>

/// \file
/// Static self-description of query-graph nodes, the introspection surface
/// the static analyzer (`src/analysis/`) walks. Every node can answer "what
/// kind of thing am I, and which composition contracts do I participate
/// in?" without the analyzer knowing its element types — the runtime
/// equivalent of the compile-time traits (`algebra::KeyPartitionable`,
/// batch-kernel overrides) that type erasure hides once operators sit
/// behind untyped `Node*` edges.
///
/// Descriptors are *declarations*: a node vouches for its own contract
/// flags, and `tests/analysis_test.cc` holds the declared flags to the
/// compile-time traits where both exist. `Describe()` is meant for
/// analysis before (or after) a run, not concurrently with a scheduler.

namespace pipes {

class Node;

/// One node's static contract card.
struct NodeDescriptor {
  /// Structural role in the pub-sub graph.
  enum class Kind {
    kOpaque,     ///< Unknown: the node does not describe itself.
    kSource,     ///< Root producer (generator, reordering adapter).
    kOperator,   ///< Pipe: consumes and produces.
    kBuffer,     ///< Queueing identity at a scheduling boundary.
    kPartition,  ///< Keyed splitter of a replicated stage.
    kMerge,      ///< Order-restoring combiner of a replicated stage.
    kSink,       ///< Terminal consumer.
  };

  Kind kind = Kind::kOpaque;

  /// Operator family, e.g. "filter", "time-window", "hash-join". Purely
  /// informative; rules key off the flags, not this string.
  std::string op = "opaque";

  /// Per declared input port: how many upstreams are currently subscribed.
  /// Empty when the node has no input ports (sources) or does not expose
  /// them (opaque nodes) — rules that need arity skip empty vectors.
  std::vector<std::size_t> port_upstreams;

  /// Accumulates state that is only released/purged by watermark progress
  /// (join, aggregate, distinct, difference, intersect, multiway join).
  bool blocking = false;

  /// Overrides the batched delivery path (`PortBatch` kernel, or a source
  /// emitting `TransferBatch` trains). DESIGN.md "Batched delivery".
  bool has_batch_kernel = false;

  /// Overrides the columnar delivery path (`PortRun` kernel operating on
  /// SoA runs, DESIGN.md §4f). Operators without one still run correctly
  /// under the executor — the default `PortRun` re-materializes — but pay
  /// one AoS copy per run.
  bool has_columnar_kernel = false;

  /// Safe to clone into keyed shared-nothing replicas — must agree with
  /// `algebra::KeyPartitionable` where the compile-time trait exists.
  bool key_partitionable = false;

  /// Can page state to disk losslessly under memory pressure (spillable
  /// SweepAreas, docs/memory.md). With a spill tier available, shedding is
  /// an opt-in fallback — lint rule P020 flags the combination below.
  bool spill_capable = false;

  /// Load shedding is currently enabled on this node (drops state for
  /// bounded memory, trading recall). Always declared so P020 can compare
  /// it against `spill_capable`.
  bool shedding_enabled = false;

  /// Rewrites every output validity to a bounded interval (window
  /// operators, relation-to-stream): downstream state purges again even if
  /// the input was unbounded.
  bool bounds_validity = false;

  /// May emit elements valid forever (`UnboundedWindow`): blocking
  /// consumers downstream never purge.
  bool unbounded_validity = false;

  /// Source-kind nodes only: whether the node advances downstream
  /// watermarks (implicit heartbeats from monotone element starts, or
  /// explicit ones). A non-emitting source stalls every fan-in it feeds.
  bool emits_heartbeats = true;

  /// Partition only: number of keyed outputs.
  std::size_t fan_out = 0;

  /// Merge only: number of replica input ports.
  std::size_t fan_in = 0;

  /// Partition only: the subscriber nodes of each keyed output, by output
  /// index — what `Node::downstream()` flattens away and replica-stage
  /// analysis needs back.
  std::vector<std::vector<const Node*>> output_subscribers;

  /// Foot-gun notes the node wants surfaced (e.g. a bounded buffer that
  /// sheds elements). Reported by the lint rule for foot-gun APIs.
  std::vector<std::string> notes;

  /// Non-empty when the node was built through a deprecated API; the text
  /// is the migration hint.
  std::string deprecated;
};

/// Readable name of a descriptor kind ("source", "buffer", ...).
const char* NodeKindName(NodeDescriptor::Kind kind);

}  // namespace pipes

#endif  // PIPES_CORE_DESCRIPTOR_H_
