#ifndef PIPES_CORE_ELEMENT_H_
#define PIPES_CORE_ELEMENT_H_

#include <utility>

#include "src/common/time.h"

/// \file
/// The stream element: a payload tagged with a half-open validity interval.
/// This is the physical representation behind the temporal operator algebra
/// (Krämer/Seeger): the logical content of a stream at time t (its
/// *snapshot*) is the multiset of payloads whose interval contains t, and
/// every physical operator is required to be snapshot-equivalent to its
/// logical counterpart.

namespace pipes {

/// A stream element: `payload` is valid during `interval` = [start, end).
///
/// Streams are ordered by non-decreasing `interval.start`. Raw source
/// elements carry point intervals [t, t+1); window operators widen them.
template <typename T>
struct StreamElement {
  T payload{};
  TimeInterval interval;

  StreamElement() = default;
  StreamElement(T p, TimeInterval i)
      : payload(std::move(p)), interval(i) {}
  StreamElement(T p, Timestamp start, Timestamp end)
      : payload(std::move(p)), interval(start, end) {}

  /// Element with point validity [t, t+1).
  static StreamElement Point(T p, Timestamp t) {
    return StreamElement(std::move(p), TimeInterval::Point(t));
  }

  Timestamp start() const { return interval.start; }
  Timestamp end() const { return interval.end; }

  friend bool operator==(const StreamElement&, const StreamElement&) = default;
};

}  // namespace pipes

#endif  // PIPES_CORE_ELEMENT_H_
