#ifndef PIPES_CORE_GENERATOR_SOURCE_H_
#define PIPES_CORE_GENERATOR_SOURCE_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/core/element.h"
#include "src/core/source.h"

/// \file
/// Active sources. An active source is driven by the scheduler (`DoWork`)
/// and produces elements from some underlying generator — the adapter that
/// "wraps a raw input stream to a source within a query graph".

namespace pipes {

/// Base class for sources that produce elements on demand. Subclasses
/// implement `Generate`; returning nullopt ends the stream.
template <typename T>
class GeneratorSource : public Source<T> {
 public:
  explicit GeneratorSource(std::string name) : Source<T>(std::move(name)) {}

  bool is_active() const override { return true; }
  bool HasWork() const override { return !exhausted_; }
  bool IsFinished() const override { return exhausted_; }

  std::size_t DoWork(std::size_t max_units) override {
    std::size_t n = 0;
    while (n < max_units && !exhausted_) {
      std::optional<StreamElement<T>> element = Generate();
      ++n;
      if (!element.has_value()) {
        exhausted_ = true;
        this->TransferDone();
        break;
      }
      this->Transfer(*element);
    }
    return n;
  }

 protected:
  /// Produces the next element (non-decreasing start), or nullopt at
  /// end-of-stream.
  virtual std::optional<StreamElement<T>> Generate() = 0;

 private:
  bool exhausted_ = false;
};

/// Replays a pre-built, start-ordered vector of elements. The unit-test
/// workhorse.
template <typename T>
class VectorSource : public GeneratorSource<T> {
 public:
  VectorSource(std::vector<StreamElement<T>> elements,
               std::string name = "vector-source")
      : GeneratorSource<T>(std::move(name)), elements_(std::move(elements)) {
    for (std::size_t i = 1; i < elements_.size(); ++i) {
      PIPES_CHECK_MSG(elements_[i - 1].start() <= elements_[i].start(),
                      "VectorSource input must be ordered by start");
    }
  }

  /// Convenience: wraps payloads as point elements at consecutive integer
  /// timestamps t0, t0+1, ...
  static std::vector<StreamElement<T>> Points(std::vector<T> payloads,
                                              Timestamp t0 = 0) {
    std::vector<StreamElement<T>> out;
    out.reserve(payloads.size());
    Timestamp t = t0;
    for (T& p : payloads) {
      out.push_back(StreamElement<T>::Point(std::move(p), t++));
    }
    return out;
  }

 protected:
  std::optional<StreamElement<T>> Generate() override {
    if (next_ >= elements_.size()) return std::nullopt;
    return elements_[next_++];
  }

 private:
  std::vector<StreamElement<T>> elements_;
  std::size_t next_ = 0;
};

/// Adapts a `std::function` generator, for ad-hoc sources in examples.
template <typename T>
class FunctionSource : public GeneratorSource<T> {
 public:
  using Generator = std::function<std::optional<StreamElement<T>>()>;

  FunctionSource(Generator generator, std::string name = "function-source")
      : GeneratorSource<T>(std::move(name)),
        generator_(std::move(generator)) {}

 protected:
  std::optional<StreamElement<T>> Generate() override { return generator_(); }

 private:
  Generator generator_;
};

}  // namespace pipes

#endif  // PIPES_CORE_GENERATOR_SOURCE_H_
