#ifndef PIPES_CORE_GENERATOR_SOURCE_H_
#define PIPES_CORE_GENERATOR_SOURCE_H_

#include <algorithm>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/core/source.h"

/// \file
/// Active sources. An active source is driven by the scheduler (`DoWork`)
/// and produces elements from some underlying generator — the adapter that
/// "wraps a raw input stream to a source within a query graph".

namespace pipes {

/// Base class for sources that produce elements on demand. Subclasses
/// implement `Generate`; returning nullopt ends the stream.
///
/// With `batch_size` > 1 the source accumulates up to that many elements
/// per scheduler invocation directly into a columnar scratch run and emits
/// them with a single consuming `TransferRun` — the batching knob of the
/// workload generators (DESIGN.md "Batched delivery"). Elements are
/// transposed into columns exactly once, at generation time, and under an
/// executor the scratch run's columns are swapped into the pipe (zero
/// copies in steady state). The default of 1 keeps the original
/// per-element `Transfer` path, byte-for-byte.
template <typename T>
class GeneratorSource : public Source<T> {
 public:
  explicit GeneratorSource(std::string name, std::size_t batch_size = 1)
      : Source<T>(std::move(name)), batch_size_(batch_size) {
    PIPES_CHECK(batch_size >= 1);
  }

  std::size_t batch_size() const { return batch_size_; }
  void set_batch_size(std::size_t batch_size) {
    PIPES_CHECK(batch_size >= 1);
    batch_size_ = batch_size;
  }

  bool is_active() const override { return true; }
  bool HasWork() const override { return !exhausted_; }
  bool IsFinished() const override { return exhausted_; }

  /// Declared dataflow feed contract (src/analysis/dataflow.h): total
  /// element count, peak rate in elements per time unit, and max output
  /// validity extent. The static analysis is sound *relative to* these
  /// declarations; workload adapters set them from generator parameters.
  void DeclareTotalElements(std::uint64_t total) {
    declared_.total_elements = total;
  }
  void DeclareRatePerUnit(double rate) { declared_.rate_per_unit = rate; }
  void DeclareValidityExtent(Timestamp extent) {
    declared_.validity_extent = extent;
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kSource;
    d.op = "generator-source";
    d.has_batch_kernel = batch_size_ > 1;
    // Monotone element starts advance downstream watermarks implicitly.
    d.emits_heartbeats = true;
    d.dataflow = declared_;
    return d;
  }

  std::size_t DoWork(std::size_t max_units) override {
    std::size_t n = 0;
    if (batch_size_ <= 1) {
      while (n < max_units && !exhausted_) {
        std::optional<StreamElement<T>> element = Generate();
        ++n;
        if (!element.has_value()) {
          exhausted_ = true;
          this->TransferDone();
          break;
        }
        this->Transfer(*element);
      }
      return n;
    }
    while (n < max_units && !exhausted_) {
      run_.clear();
      const std::size_t want = std::min(batch_size_, max_units - n);
      if (FillRun(run_, want)) {
        exhausted_ = true;
        ++n;  // the end-of-stream signal counts as one unit of work
      }
      n += run_.size();
      this->TransferRun(std::move(run_));
      run_.clear();
      if (exhausted_) this->TransferDone();
    }
    return n;
  }

 protected:
  /// Produces the next element (non-decreasing start), or nullopt at
  /// end-of-stream.
  virtual std::optional<StreamElement<T>> Generate() = 0;

  /// Appends up to `want` elements to `out`; returns true at end-of-stream.
  /// The default loops over `Generate`; sources whose backing store is
  /// already materialized (e.g. `VectorSource`) override it with a bulk
  /// copy.
  virtual bool FillRun(ColumnarRun<T>& out, std::size_t want) {
    while (out.size() < want) {
      std::optional<StreamElement<T>> element = Generate();
      if (!element.has_value()) return true;
      out.Append(std::move(*element));
    }
    return false;
  }

 private:
  std::size_t batch_size_;
  ColumnarRun<T> run_;
  NodeDescriptor::Dataflow declared_;
  bool exhausted_ = false;
};

/// Replays a pre-built, start-ordered vector of elements. The unit-test
/// workhorse.
template <typename T>
class VectorSource : public GeneratorSource<T> {
 public:
  VectorSource(std::vector<StreamElement<T>> elements,
               std::string name = "vector-source", std::size_t batch_size = 1)
      : GeneratorSource<T>(std::move(name), batch_size),
        elements_(std::move(elements)) {
    for (std::size_t i = 1; i < elements_.size(); ++i) {
      PIPES_CHECK_MSG(elements_[i - 1].start() <= elements_[i].start(),
                      "VectorSource input must be ordered by start");
    }
    // The backing store is materialized, so the feed contract is exact.
    this->DeclareTotalElements(elements_.size());
    Timestamp extent = 0;
    for (const StreamElement<T>& e : elements_) {
      if (e.end() == kMaxTimestamp) {
        extent = NodeDescriptor::Dataflow::kUnknownTime;
        break;
      }
      extent = std::max(extent, e.end() - e.start());
    }
    this->DeclareValidityExtent(extent);
  }

  /// Convenience: wraps payloads as point elements at consecutive integer
  /// timestamps t0, t0+1, ...
  static std::vector<StreamElement<T>> Points(std::vector<T> payloads,
                                              Timestamp t0 = 0) {
    std::vector<StreamElement<T>> out;
    out.reserve(payloads.size());
    Timestamp t = t0;
    for (T& p : payloads) {
      out.push_back(StreamElement<T>::Point(std::move(p), t++));
    }
    return out;
  }

 protected:
  std::optional<StreamElement<T>> Generate() override {
    if (next_ >= elements_.size()) return std::nullopt;
    return elements_[next_++];
  }

  /// The backing vector is already materialized: a whole batch transposes
  /// onto `out` in one contiguous-range append instead of element-wise
  /// `Generate` calls. End-of-stream is reported only when the fill comes
  /// up short — exactly when the `Generate` loop would have observed
  /// nullopt — so the done signal lands on the same scheduler poll as in
  /// the per-element path.
  bool FillRun(ColumnarRun<T>& out, std::size_t want) override {
    const std::size_t take = std::min(want, elements_.size() - next_);
    out.AppendBatch(
        std::span<const StreamElement<T>>(elements_.data() + next_, take));
    next_ += take;
    return take < want;
  }

 private:
  std::vector<StreamElement<T>> elements_;
  std::size_t next_ = 0;
};

/// Adapts a `std::function` generator, for ad-hoc sources in examples.
template <typename T>
class FunctionSource : public GeneratorSource<T> {
 public:
  using Generator = std::function<std::optional<StreamElement<T>>()>;

  FunctionSource(Generator generator, std::string name = "function-source",
                 std::size_t batch_size = 1)
      : GeneratorSource<T>(std::move(name), batch_size),
        generator_(std::move(generator)) {}

 protected:
  std::optional<StreamElement<T>> Generate() override { return generator_(); }

 private:
  Generator generator_;
};

}  // namespace pipes

#endif  // PIPES_CORE_GENERATOR_SOURCE_H_
