#include "src/core/graph.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace pipes {

Status QueryGraph::Remove(Node& node) {
  if (!node.upstream().empty() || !node.downstream().empty()) {
    return Status::FailedPrecondition(
        "node '" + node.name() + "' still has edges; unsubscribe first");
  }
  auto it = std::find_if(
      nodes_.begin(), nodes_.end(),
      [&](const std::unique_ptr<Node>& n) { return n.get() == &node; });
  if (it == nodes_.end()) {
    return Status::NotFound("node '" + node.name() + "' not in this graph");
  }
  nodes_.erase(it);
  return Status::OK();
}

bool QueryGraph::Contains(const Node& node) const {
  return std::any_of(
      nodes_.begin(), nodes_.end(),
      [&](const std::unique_ptr<Node>& n) { return n.get() == &node; });
}

std::vector<Node*> QueryGraph::nodes() const {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n.get());
  return out;
}

std::vector<Node*> QueryGraph::ActiveNodes() const {
  std::vector<Node*> out;
  for (const auto& n : nodes_) {
    if (n->is_active()) out.push_back(n.get());
  }
  return out;
}

bool QueryGraph::Finished() const {
  for (const auto& n : nodes_) {
    if (n->is_active() && !n->IsFinished()) return false;
  }
  return true;
}

Status QueryGraph::Validate() const {
  // Iterative three-color DFS over downstream edges.
  enum class Color { kWhite, kGray, kBlack };
  std::map<const Node*, Color> color;
  for (const auto& n : nodes_) color[n.get()] = Color::kWhite;

  for (const auto& start : nodes_) {
    if (color[start.get()] != Color::kWhite) continue;
    // Stack of (node, next-child-index).
    std::vector<std::pair<const Node*, std::size_t>> stack;
    stack.emplace_back(start.get(), 0);
    color[start.get()] = Color::kGray;
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      if (idx < node->downstream().size()) {
        const Node* child = node->downstream()[idx++];
        auto it = color.find(child);
        if (it == color.end()) {
          return Status::FailedPrecondition(
              "edge to node '" + child->name() + "' not owned by this graph");
        }
        if (it->second == Color::kGray) {
          return Status::FailedPrecondition(
              "query graph contains a cycle through '" + child->name() + "'");
        }
        if (it->second == Color::kWhite) {
          it->second = Color::kGray;
          stack.emplace_back(child, 0);
        }
      } else {
        color[node] = Color::kBlack;
        stack.pop_back();
      }
    }
  }
  return Status::OK();
}

std::string QueryGraph::ToDot() const {
  std::ostringstream out;
  out << "digraph pipes {\n  rankdir=BT;\n";
  for (const auto& n : nodes_) {
    out << "  n" << n->id() << " [label=\"" << n->name();
    if (n->is_active()) out << "\\n(active)";
    out << "\"];\n";
  }
  // Each downstream entry is one edge (duplicates = parallel edges).
  for (const auto& n : nodes_) {
    for (const Node* down : n->downstream()) {
      out << "  n" << n->id() << " -> n" << down->id() << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace pipes
