#ifndef PIPES_CORE_GRAPH_H_
#define PIPES_CORE_GRAPH_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/node.h"

/// \file
/// The directed acyclic query graph: owns all nodes of one (multi-)query
/// dataflow. Heterogeneous sources at the bottom, sinks at the top, and the
/// operator plans in between, possibly shared between queries (the
/// multi-query optimizer grafts new plans onto a running graph by
/// subscribing to existing nodes).

namespace pipes {

/// Owner and registry of query-graph nodes.
///
/// Nodes are created through `Add` and live until the graph is destroyed or
/// they are explicitly removed. Edges are formed by
/// `InputPort<T>::SubscribeTo(source)` (equivalently
/// `Source<T>::AddSubscriber(port)`) on the nodes themselves.
class QueryGraph {
 public:
  QueryGraph() = default;
  QueryGraph(const QueryGraph&) = delete;
  QueryGraph& operator=(const QueryGraph&) = delete;

  /// Constructs a node of type `NodeT` in place and returns a reference to
  /// it. The graph keeps ownership.
  template <typename NodeT, typename... Args>
  NodeT& Add(Args&&... args) {
    auto node = std::make_unique<NodeT>(std::forward<Args>(args)...);
    NodeT& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Adopts an externally constructed node (e.g. from the MakeHashJoin
  /// factory, whose exact type is deduced) and returns a reference to it.
  /// Part of the same overload set as the in-place `Add`: partial ordering
  /// prefers this overload for unique_ptr arguments.
  template <typename NodeT>
  NodeT& Add(std::unique_ptr<NodeT> node) {
    NodeT& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Removes `node` from the graph. Fails with FailedPrecondition while the
  /// node still has edges (unsubscribe first), NotFound if not owned here.
  /// This is the single removal API: callers (the optimizer's PlanManager,
  /// tests) detach all subscriptions first, then Remove — partial removal
  /// never happens.
  Status Remove(Node& node);

  /// True if `node` is owned by this graph.
  bool Contains(const Node& node) const;

  /// All nodes, in insertion order.
  std::vector<Node*> nodes() const;

  /// Nodes the scheduler must drive (sources and buffers).
  std::vector<Node*> ActiveNodes() const;

  /// True when every active node is finished — the graph has fully drained.
  bool Finished() const;

  /// Checks that the subscription edges form a DAG.
  Status Validate() const;

  /// Graphviz rendering of the topology, for plan inspection.
  std::string ToDot() const;

  std::size_t size() const { return nodes_.size(); }

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace pipes

#endif  // PIPES_CORE_GRAPH_H_
