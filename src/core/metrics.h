#ifndef PIPES_CORE_METRICS_H_
#define PIPES_CORE_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>

/// \file
/// Hot-path observability primitives. The paper's third demo artifact is a
/// monitoring tool fed by secondary metadata ("runtime behaviour of the
/// system ... displayed online"); this header holds the pieces that must be
/// cheap enough to live *inside* the transfer path: relaxed-atomic counters
/// and a fixed-bucket latency histogram. Everything heavier (rates, DOT
/// overlays, dashboards) derives from these in `metadata/snapshot.h`.
///
/// Cost model (see `bench/bench_observability`):
///  * Counters (elements, batches, progress) are always on: one relaxed
///    fetch_add / store per *batch*, amortized to nothing on the batched
///    path and bounded on the per-element path.
///  * Latency histograms are gated behind the global `MetricsEnabled()`
///    flag and additionally *sampled* (1 in `kLatencySamplePeriod`
///    deliveries), so the steady-state enabled cost is one relaxed load and
///    one local counter decrement per delivery.
///  * Defining `PIPES_DISABLE_OBSERVABILITY` compiles the gated
///    instrumentation out entirely (the compiled-out baseline).

namespace pipes::obs {

/// Runtime master switch for the sampled instrumentation (latency
/// histograms). Off by default: enabling observability is an explicit act
/// of the monitoring client, exactly like attaching the metadata monitor.
inline std::atomic<bool>& MetricsFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

inline bool MetricsEnabled() {
#ifdef PIPES_DISABLE_OBSERVABILITY
  return false;
#else
  return MetricsFlag().load(std::memory_order_relaxed);
#endif
}

inline void SetMetricsEnabled(bool enabled) {
  MetricsFlag().store(enabled, std::memory_order_relaxed);
}

/// One latency sample is recorded per this many gated deliveries.
inline constexpr std::uint32_t kLatencySamplePeriod = 16;

/// Monotonic nanosecond clock for latency measurements. Wall-clock time is
/// never used for stream semantics (see common/time.h); this clock only
/// feeds monitoring.
inline std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Plain (non-atomic) copy of a histogram, as captured by a snapshot.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 16;
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;

  double MeanNs() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_ns) / static_cast<double>(count);
  }

  /// Upper bound (ns) of bucket `i`; the last bucket is unbounded.
  static std::uint64_t BucketUpperNs(std::size_t i) {
    return std::uint64_t{256} << i;
  }

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Fixed-bucket latency histogram with relaxed-atomic counters. Buckets are
/// exponential: bucket 0 counts samples < 256 ns, bucket i samples in
/// [256·2^(i-1), 256·2^i) ns, and the last bucket everything ≥ ~2 ms.
/// Writers race benignly (relaxed increments); readers get a consistent
/// *enough* view for monitoring, never torn individual counters.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  void Record(std::uint64_t ns) {
    buckets_[BucketIndex(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot snap;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    snap.count = count_.load(std::memory_order_relaxed);
    snap.sum_ns = sum_ns_.load(std::memory_order_relaxed);
    return snap;
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  static std::size_t BucketIndex(std::uint64_t ns) {
    const std::uint64_t scaled = ns >> 8;  // 256 ns granularity
    if (scaled == 0) return 0;
    const std::size_t idx = static_cast<std::size_t>(std::bit_width(scaled));
    return idx < kBuckets ? idx : kBuckets - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

}  // namespace pipes::obs

#endif  // PIPES_CORE_METRICS_H_
