#include "src/core/node.h"

namespace pipes {

namespace {
std::atomic<std::uint64_t> g_next_node_id{1};
}  // namespace

Node::Node(std::string name) : id_(NextId()), name_(std::move(name)) {}

Node::~Node() = default;

std::size_t Node::DoWork(std::size_t /*max_units*/) { return 0; }

NodeDescriptor Node::Describe() const {
  NodeDescriptor d;
  d.kind = NodeDescriptor::Kind::kOpaque;
  d.op = "opaque";
  return d;
}

const char* NodeKindName(NodeDescriptor::Kind kind) {
  switch (kind) {
    case NodeDescriptor::Kind::kSource:
      return "source";
    case NodeDescriptor::Kind::kOperator:
      return "operator";
    case NodeDescriptor::Kind::kBuffer:
      return "buffer";
    case NodeDescriptor::Kind::kPartition:
      return "partition";
    case NodeDescriptor::Kind::kMerge:
      return "merge";
    case NodeDescriptor::Kind::kSink:
      return "sink";
    case NodeDescriptor::Kind::kOpaque:
      break;
  }
  return "opaque";
}

std::uint64_t Node::NextId() {
  return g_next_node_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pipes
