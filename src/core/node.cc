#include "src/core/node.h"

namespace pipes {

namespace {
std::atomic<std::uint64_t> g_next_node_id{1};
}  // namespace

Node::Node(std::string name) : id_(NextId()), name_(std::move(name)) {}

Node::~Node() = default;

std::size_t Node::DoWork(std::size_t /*max_units*/) { return 0; }

std::uint64_t Node::NextId() {
  return g_next_node_id.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pipes
