#ifndef PIPES_CORE_NODE_H_
#define PIPES_CORE_NODE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/core/descriptor.h"
#include "src/core/metrics.h"
#include "src/metadata/registry.h"

/// \file
/// The untyped base of every node in a query graph. The paper distinguishes
/// three node kinds — sources, sinks, and operators (pipes) — which in this
/// implementation are the typed templates `Source<T>`, `Sink<T>` and the
/// pipe bases built from them. `Node` carries what the runtime environment
/// (scheduler, memory manager, metadata monitor, optimizer) needs without
/// knowing element types: identity, graph topology, scheduling hooks, and
/// the secondary-metadata registry.

namespace pipes {

class ExecutorLink;
class PipeBase;

/// Base class of all query-graph nodes. Not copyable or movable: a node's
/// identity is its address (subscriptions hold pointers to it).
class Node {
 public:
  explicit Node(std::string name);
  virtual ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Process-unique id, assigned at construction.
  std::uint64_t id() const { return id_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- Topology -----------------------------------------------------------
  // Maintained by Subscribe/Unsubscribe; a node may appear multiple times if
  // multiple edges connect the same pair.

  const std::vector<Node*>& upstream() const { return upstream_; }
  const std::vector<Node*>& downstream() const { return downstream_; }

  // --- Scheduling hooks ----------------------------------------------------
  // An *active* node is one the scheduler must drive: a source that creates
  // elements, or a buffer that drains its queue. Everything connected by
  // direct subscriptions runs inside the caller's invocation — the paper's
  // "virtual node" fused unit. Passive nodes keep the defaults.

  /// True if this node must be driven by a scheduler.
  virtual bool is_active() const { return false; }

  /// Performs up to `max_units` units of work (one unit = one element or
  /// control signal). Returns the number of units actually performed.
  virtual std::size_t DoWork(std::size_t max_units);

  /// True if calling DoWork now could make progress.
  virtual bool HasWork() const { return false; }

  /// True once this node will never produce work again (source exhausted,
  /// or buffer drained after end-of-stream).
  virtual bool IsFinished() const { return true; }

  /// Number of queued entries (0 for queue-less nodes). Scheduling
  /// strategies such as Chain use this.
  virtual std::size_t queue_size() const { return 0; }

  /// Approximate bytes of operator state (SweepAreas, sweep-line segments,
  /// queues). The metadata monitor samples this for the memory_bytes
  /// metric; stateless operators keep the default.
  virtual std::size_t ApproxMemoryBytes() const { return 0; }

  /// Per-output-partition element counts for splitter nodes (`Partition`);
  /// empty for every other node. The snapshot layer turns these into the
  /// partition-skew metric (max/mean). Reading must be safe concurrently
  /// with a running scheduler (relaxed atomics).
  virtual std::vector<std::uint64_t> PartitionCounts() const { return {}; }

  /// Elements this node dropped under resource pressure: buffer overflow
  /// eviction or memory-manager-forced load shedding. Zero for nodes that
  /// never shed. Together with elements_in/elements_out this closes the
  /// conservation equation the simulation oracles check:
  /// elements_in == elements_out + retained_state + shed.
  virtual std::uint64_t ShedCount() const { return 0; }

  /// Bytes of operator state currently paged to the disk tier (lossless
  /// spill, docs/memory.md). Zero for nodes that never spill. Not part of
  /// `ApproxMemoryBytes()`, which reports RAM only.
  virtual std::uint64_t SpilledBytes() const { return 0; }

  /// Number of on-disk runs (spilled partitions) currently held.
  virtual std::uint64_t SpilledPartitions() const { return 0; }

  // --- Executor attachment --------------------------------------------------
  // The executor-polled execution model (DESIGN.md §4f): a `PipeExecutor`
  // attaches to every node of a graph before running it. Nodes with a typed
  // output (`Source<T>` and everything derived from it) create and own a
  // `Pipe<T>` edge object and route their `Transfer*` calls into it; the
  // default is for output-less nodes (sinks) and for splitters that deliver
  // synchronously by design (`Partition`).

  /// Creates this node's output pipe and reroutes transfers into it.
  /// Returns the pipe, or nullptr if this node has no pollable output.
  /// Must not be called while a run is in progress; one executor at a time.
  virtual PipeBase* AttachExecutor(ExecutorLink* link) {
    (void)link;
    return nullptr;
  }

  /// Destroys the output pipe and restores direct synchronous delivery.
  /// The pipe must be fully drained (the executor delivers everything
  /// staged before detaching).
  virtual void DetachExecutor() {}

  /// True while an executor's pipe carries this node's output. Static
  /// analysis (lint rule P018) uses this to detect graphs that mix
  /// executor-polled pipes with legacy recursive subscriber edges.
  bool executor_attached() const { return executor_attached_; }

  // --- Static introspection -------------------------------------------------

  /// The node's static contract card, consumed by `analysis::Lint`. The
  /// base implementation reports an opaque node (unknown kind, no contract
  /// flags); typed bases and operators override it to declare their role,
  /// per-port arity, and composition contracts. Not safe to call while a
  /// scheduler is mutating subscriptions.
  virtual NodeDescriptor Describe() const;

  // --- Secondary metadata ---------------------------------------------------
  // Hot-path counters: relaxed atomics written from inside the transfer
  // path, read by the metadata monitor and `metadata::MetricsSnapshot`.
  // Individual counters are never torn; cross-counter consistency is
  // monitoring-grade (each counter is independently monotone).

  /// Total elements received on all input ports.
  std::uint64_t elements_in() const {
    return elements_in_.load(std::memory_order_relaxed);
  }
  /// Total elements transferred to subscribers.
  std::uint64_t elements_out() const {
    return elements_out_.load(std::memory_order_relaxed);
  }
  /// Batched deliveries received on all input ports (`ReceiveBatch` calls;
  /// the per-element path counts none, so batches_in <= elements_in and the
  /// mean input batch length is elements_in / max(1, batches_in)).
  std::uint64_t batches_in() const {
    return batches_in_.load(std::memory_order_relaxed);
  }
  /// Batched transfers to subscribers (`TransferBatch` calls).
  std::uint64_t batches_out() const {
    return batches_out_.load(std::memory_order_relaxed);
  }

  void CountIn(std::uint64_t n = 1) {
    elements_in_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountOut(std::uint64_t n = 1) {
    elements_out_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountBatchIn() {
    batches_in_.fetch_add(1, std::memory_order_relaxed);
  }
  void CountBatchOut() {
    batches_out_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The node's progress clock: the largest timestamp this node is known to
  /// have advanced to — for operators the latest merged input watermark
  /// notified on any port, for sources the largest element start
  /// transferred. Snapshots turn the spread of progress clocks across a
  /// graph into per-node *watermark lag*.
  Timestamp progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Raises the progress clock to `t` (monotone; callers may race, losing a
  /// concurrent raise to a larger value only momentarily).
  void AdvanceProgress(Timestamp t) {
    if (t > progress_.load(std::memory_order_relaxed)) {
      progress_.store(t, std::memory_order_relaxed);
    }
  }

  /// Per-delivery service-time histogram, sampled on the port path while
  /// `obs::MetricsEnabled()` (one sample per `obs::kLatencySamplePeriod`
  /// deliveries).
  const obs::LatencyHistogram& service_histogram() const {
    return service_histogram_;
  }
  obs::LatencyHistogram& service_histogram() { return service_histogram_; }

  /// Named gauges/estimators attached by the metadata factory at runtime.
  metadata::Registry& metadata() { return metadata_; }
  const metadata::Registry& metadata() const { return metadata_; }

 protected:
  /// Maintained by the AttachExecutor/DetachExecutor overrides.
  bool executor_attached_ = false;

 private:
  template <typename T>
  friend class Source;
  template <typename T>
  friend class InputPort;
  template <typename T, typename KeyFn>
  friend class Partition;

  static std::uint64_t NextId();

  std::uint64_t id_;
  std::string name_;
  std::vector<Node*> upstream_;
  std::vector<Node*> downstream_;
  std::atomic<std::uint64_t> elements_in_{0};
  std::atomic<std::uint64_t> elements_out_{0};
  std::atomic<std::uint64_t> batches_in_{0};
  std::atomic<std::uint64_t> batches_out_{0};
  std::atomic<Timestamp> progress_{kMinTimestamp};
  obs::LatencyHistogram service_histogram_;
  metadata::Registry metadata_;
};

}  // namespace pipes

#endif  // PIPES_CORE_NODE_H_
