#ifndef PIPES_CORE_ORDERED_BUFFER_H_
#define PIPES_CORE_ORDERED_BUFFER_H_

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/core/element.h"

/// \file
/// Helper for operators whose raw results are not produced in start order
/// (joins, unions): results are staged in a priority queue and released —
/// ordered and deterministic — once the operator's input watermark
/// guarantees that no earlier-starting result can still appear.

namespace pipes {

/// Min-heap of stream elements keyed by (start, insertion sequence). The
/// sequence number makes release order deterministic among equal starts.
template <typename T>
class OrderedOutputBuffer {
 public:
  void Push(StreamElement<T> element) {
    heap_.push(Item{std::move(element), seq_++});
  }

  /// Emits (via `emit(const StreamElement<T>&)`) every staged element with
  /// `start() < watermark`, in order. Returns the number emitted.
  template <typename EmitFn>
  std::size_t FlushUpTo(Timestamp watermark, EmitFn&& emit) {
    std::size_t n = 0;
    while (!heap_.empty() && heap_.top().element.start() < watermark) {
      emit(heap_.top().element);
      heap_.pop();
      ++n;
    }
    return n;
  }

  /// Emits everything (end-of-stream).
  template <typename EmitFn>
  std::size_t FlushAll(EmitFn&& emit) {
    return FlushUpTo(kMaxTimestamp, std::forward<EmitFn>(emit));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  struct Item {
    StreamElement<T> element;
    std::uint64_t seq;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.element.start() != b.element.start()) {
        return a.element.start() > b.element.start();
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace pipes

#endif  // PIPES_CORE_ORDERED_BUFFER_H_
