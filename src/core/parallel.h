#ifndef PIPES_CORE_PARALLEL_H_
#define PIPES_CORE_PARALLEL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/common/time.h"
#include "src/core/element.h"
#include "src/core/node.h"
#include "src/core/ordered_buffer.h"
#include "src/core/port.h"
#include "src/core/source.h"

/// \file
/// Keyed data-parallel execution for the pub-sub core: `Partition` splits
/// one ordered stream into N keyed sub-streams (shared-nothing: every
/// element of one key goes to the same partition), `Merge` recombines the
/// N replica outputs into one globally start-ordered stream.
///
/// The parallelism contract (DESIGN.md "Keyed parallelism"):
///  * Each partition output is one ordered run per replica — a subsequence
///    of the input preserves non-decreasing start order, so a replica sees
///    a stream indistinguishable from a slower single-replica input.
///  * Heartbeats (and end-of-stream) are *broadcast* to all partitions:
///    an element routed to partition i advances time for every partition,
///    so idle replicas purge state and release results at the same pace as
///    busy ones.
///  * `Merge` restores global (start, arrival) order, released by the
///    minimum watermark over its replica inputs. Among equal starts the
///    interleaving across replicas follows arrival order and is therefore
///    scheduling-dependent; per replica it is deterministic.

namespace pipes {

/// Splitter with one input and `num_partitions` keyed outputs. Elements
/// hash-route by `std::hash` of `key_fn(payload)`; batches route as one
/// per-partition run each (one `ReceiveBatch` per non-empty partition), so
/// the batched path stays batched end-to-end through the split.
///
/// Downstream ports subscribe to a specific partition via
/// `AddSubscriber(i, port)`. Per-partition output counts are exposed
/// through `Node::PartitionCounts` for the snapshot layer's skew metric.
template <typename T, typename KeyFn>
class Partition : public Node, public PortOwner<T> {
 public:
  using Key = std::decay_t<std::invoke_result_t<KeyFn, const T&>>;

  Partition(std::size_t num_partitions, KeyFn key_fn,
            std::string name = "partition")
      : Node(std::move(name)),
        key_fn_(std::move(key_fn)),
        outputs_(num_partitions),
        counts_(std::make_unique<std::atomic<std::uint64_t>[]>(
            num_partitions)),
        runs_(num_partitions),
        input_(this, this, 0) {
    PIPES_CHECK(num_partitions > 0);
    for (std::size_t i = 0; i < num_partitions; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
  }

  InputPort<T>& input() { return input_; }
  std::size_t num_partitions() const { return outputs_.size(); }

  /// Subscribes `port` to partition `index`. Late subscribers immediately
  /// see the partition's current heartbeat level (and done, if signalled),
  /// mirroring `Source::AddSubscriber`.
  void AddSubscriber(std::size_t index, InputPort<T>& port) {
    PIPES_CHECK(index < outputs_.size());
    PartitionOutput& out = outputs_[index];
    const int slot = port.AddUpstream();
    out.subscriptions.push_back({&port, slot});
    downstream_.push_back(port.owner_node());
    port.owner_node()->upstream_.push_back(this);
    if (out.level > kMinTimestamp) {
      port.ReceiveHeartbeat(slot, out.level);
    }
    if (done_) {
      port.ReceiveDone(slot);
    }
  }

  /// The partition an element with this payload routes to.
  std::size_t PartitionIndex(const T& payload) const {
    return hash_(key_fn_(payload)) % outputs_.size();
  }

  /// Elements routed to partition `index` so far.
  std::uint64_t partition_elements(std::size_t index) const {
    PIPES_CHECK(index < outputs_.size());
    return counts_[index].load(std::memory_order_relaxed);
  }

  std::vector<std::uint64_t> PartitionCounts() const override {
    std::vector<std::uint64_t> counts(outputs_.size());
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      counts[i] = counts_[i].load(std::memory_order_relaxed);
    }
    return counts;
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kPartition;
    d.op = "partition";
    d.port_upstreams = {input_.num_upstreams()};
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    d.fan_out = outputs_.size();
    d.output_subscribers.resize(outputs_.size());
    for (std::size_t i = 0; i < outputs_.size(); ++i) {
      for (const Subscription& s : outputs_[i].subscriptions) {
        d.output_subscribers[i].push_back(s.port->owner_node());
      }
    }
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    const std::size_t p = PartitionIndex(e.payload);
    counts_[p].fetch_add(1, std::memory_order_relaxed);
    CountOut();
    PartitionOutput& out = outputs_[p];
    PIPES_DCHECK(e.start() >= out.level || out.level == kMinTimestamp);
    out.level = std::max(out.level, e.start());
    for (const Subscription& s : out.subscriptions) {
      s.port->Receive(s.slot, e);
    }
  }

  /// Routes the batch into per-partition runs and delivers one
  /// `ReceiveBatch` per non-empty partition. A subsequence of an ordered
  /// run is ordered, so every sub-run satisfies the batch contract.
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    for (auto& run : runs_) run.clear();
    for (const StreamElement<T>& e : batch) {
      runs_[PartitionIndex(e.payload)].push_back(e);
    }
    for (std::size_t p = 0; p < outputs_.size(); ++p) {
      if (runs_[p].empty()) continue;
      counts_[p].fetch_add(runs_[p].size(), std::memory_order_relaxed);
      CountOut(runs_[p].size());
      CountBatchOut();
      PartitionOutput& out = outputs_[p];
      out.level = std::max(out.level, runs_[p].back().start());
      for (const Subscription& s : out.subscriptions) {
        s.port->ReceiveBatch(s.slot, runs_[p]);
      }
    }
  }

  /// Columnar kernel: routes the run into per-partition columnar sub-runs
  /// and delivers one `ReceiveRun` per non-empty partition, so the columnar
  /// path stays columnar through the split.
  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    if (col_runs_.empty()) col_runs_.resize(outputs_.size());
    for (auto& r : col_runs_) r.clear();
    const std::size_t n = run.size();
    for (std::size_t i = 0; i < n; ++i) {
      col_runs_[PartitionIndex(run.payloads[i])].Append(
          run.payloads[i], run.starts[i], run.ends[i]);
    }
    for (std::size_t p = 0; p < outputs_.size(); ++p) {
      if (col_runs_[p].empty()) continue;
      counts_[p].fetch_add(col_runs_[p].size(), std::memory_order_relaxed);
      CountOut(col_runs_[p].size());
      CountBatchOut();
      PartitionOutput& out = outputs_[p];
      out.level = std::max(out.level, col_runs_[p].starts.back());
      for (const Subscription& s : out.subscriptions) {
        s.port->ReceiveRun(s.slot, col_runs_[p]);
      }
    }
  }

  /// Heartbeats broadcast: every partition's clock advances, whether or
  /// not it received the elements that drove the watermark.
  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    for (PartitionOutput& out : outputs_) {
      if (watermark <= out.level) continue;
      out.level = watermark;
      for (const Subscription& s : out.subscriptions) {
        s.port->ReceiveHeartbeat(s.slot, watermark);
      }
    }
  }

  void PortDone(int /*port_id*/) override {
    if (done_) return;
    done_ = true;
    AdvanceProgress(kMaxTimestamp);
    for (PartitionOutput& out : outputs_) {
      for (const Subscription& s : out.subscriptions) {
        s.port->ReceiveDone(s.slot);
      }
    }
  }

 private:
  struct Subscription {
    InputPort<T>* port;
    int slot;
  };
  /// One keyed output: its subscriber set and the largest start/heartbeat
  /// delivered so far (the level replayed to late subscribers).
  struct PartitionOutput {
    std::vector<Subscription> subscriptions;
    Timestamp level = kMinTimestamp;
  };

  KeyFn key_fn_;
  std::hash<Key> hash_;
  std::vector<PartitionOutput> outputs_;
  /// Routed-element counters, one per partition; atomics because the
  /// snapshot layer reads them while a scheduler thread routes.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  /// PortBatch scratch: per-partition runs of the batch being routed.
  std::vector<std::vector<StreamElement<T>>> runs_;
  /// PortRun scratch: per-partition columnar sub-runs (lazily sized).
  std::vector<ColumnarRun<T>> col_runs_;
  bool done_ = false;
  InputPort<T> input_;
};

/// Order-restoring combiner: one input port per replica, one output. Each
/// replica delivers one ordered run (the Partition contract), so recombining
/// is the union staging problem n-ary: stage arrivals in an
/// `OrderedOutputBuffer` keyed (start, arrival seq) and release everything
/// below the minimum watermark over all replica inputs as one batch.
template <typename T>
class Merge : public Source<T>, public PortOwner<T> {
 public:
  explicit Merge(std::size_t fan_in, std::string name = "merge")
      : Source<T>(std::move(name)) {
    PIPES_CHECK(fan_in > 0);
    ports_.reserve(fan_in);
    for (std::size_t i = 0; i < fan_in; ++i) {
      ports_.push_back(
          std::make_unique<InputPort<T>>(this, this, static_cast<int>(i)));
    }
  }

  /// The input carrying replica `i`'s output.
  InputPort<T>& input(std::size_t i) {
    PIPES_CHECK(i < ports_.size());
    return *ports_[i];
  }
  std::size_t fan_in() const { return ports_.size(); }

  std::size_t ApproxMemoryBytes() const override {
    return staged_.size() * (sizeof(StreamElement<T>) + 16);
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kMerge;
    d.op = "merge";
    d.port_upstreams.reserve(ports_.size());
    for (const auto& port : ports_) {
      d.port_upstreams.push_back(port->num_upstreams());
    }
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    d.fan_in = ports_.size();
    // Order-restoring staging: occupancy tracks replica scheduling skew,
    // not watermark progress.
    d.dataflow.transient_state = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    staged_.Push(e);
  }

  /// Batch kernel: stage the run; the one progress notification that
  /// follows the batch does a single flush.
  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    for (const StreamElement<T>& e : batch) staged_.Push(e);
  }

  /// Columnar kernel: stage straight from the columns.
  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    for (std::size_t i = 0; i < run.size(); ++i) {
      staged_.Push(run.ElementAt(i));
    }
  }

  void PortProgress(int /*port_id*/, Timestamp /*watermark*/) override {
    const Timestamp combined = CombinedWatermark();
    FlushBatched(combined);
    if (combined < kMaxTimestamp) {
      this->TransferHeartbeat(combined);
    }
  }

  void PortDone(int /*port_id*/) override {
    if (AllDone()) {
      FlushBatched(kMaxTimestamp);
      this->TransferDone();
    } else {
      // One replica finished; progress is governed by the others (a done
      // port reports kMaxTimestamp and drops out of the minimum).
      PortProgress(0, CombinedWatermark());
    }
  }

 private:
  /// min over all replica inputs: no future arrival starts before this.
  Timestamp CombinedWatermark() const {
    Timestamp min_wm = kMaxTimestamp;
    for (const auto& port : ports_) {
      min_wm = std::min(min_wm, port->watermark());
    }
    return min_wm;
  }

  bool AllDone() const {
    for (const auto& port : ports_) {
      if (!port->done()) return false;
    }
    return true;
  }

  /// Releases everything ripe below `watermark` as one downstream columnar
  /// run.
  void FlushBatched(Timestamp watermark) {
    out_run_.clear();
    staged_.FlushUpTo(watermark, [this](const StreamElement<T>& e) {
      out_run_.Append(e);
    });
    this->TransferRun(std::move(out_run_));
  }

  std::vector<std::unique_ptr<InputPort<T>>> ports_;
  OrderedOutputBuffer<T> staged_;
  ColumnarRun<T> out_run_;
};

}  // namespace pipes

#endif  // PIPES_CORE_PARALLEL_H_
