#ifndef PIPES_CORE_PIPE_H_
#define PIPES_CORE_PIPE_H_

#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/core/node.h"
#include "src/core/pipe_edge.h"
#include "src/core/port.h"
#include "src/core/source.h"

/// \file
/// Operator (pipe) base classes. A pipe "combines the functionality of a
/// sink and a source: it consumes an incoming element, processes it, and
/// transfers its results to its subscribed sinks". `UnaryPipe` and
/// `BinaryPipe` are the abstract pre-implementations the paper describes;
/// the ready-to-use operator algebra in `src/algebra/` derives from them.
///
/// The *edge* objects of the executor-polled execution model — the
/// three-state `Pipe<T>` (Idle/Request/Supply) that owns a source's staged
/// columnar run, plus its type-erased `PipeBase` — live in
/// `src/core/pipe_edge.h` (re-exported here): `Pipe<T>` is created by
/// `Source<T>::AttachExecutor` and polled by `scheduler::PipeExecutor`, so
/// it sits below these operator bases in the include order.

namespace pipes {

/// An operator with one input of type `In` and one output of type `Out`.
///
/// Subclasses implement `PortElement` and may override `PortProgress` /
/// `PortDone`; the defaults forward progress and end-of-stream downstream,
/// which is correct for stateless operators.
template <typename In, typename Out>
class UnaryPipe : public Source<Out>, public PortOwner<In> {
 public:
  /// Payload types, for generic plan builders (e.g. the keyed-parallel
  /// replication helper) that must name them from a deduced operator type.
  using InputType = In;
  using OutputType = Out;

  explicit UnaryPipe(std::string name)
      : Source<Out>(std::move(name)), input_(this, this, 0) {}

  /// The input to subscribe sources to.
  InputPort<In>& input() { return input_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kOperator;
    d.op = "unary-pipe";
    d.port_upstreams = {input_.num_upstreams()};
    return d;
  }

 protected:
  void PortProgress(int /*port_id*/, Timestamp watermark) override {
    this->TransferHeartbeat(watermark);
  }

  void PortDone(int /*port_id*/) override { this->TransferDone(); }

 private:
  InputPort<In> input_;
};

namespace internal_pipe {

/// Dispatch helper turning the per-type `PortOwner` callbacks into
/// side-labelled ones. The primary template (distinct input types) inherits
/// `PortOwner` twice and dispatches on the element type; the `L == R`
/// specialization inherits it once and dispatches on the port id.
template <typename L, typename R>
class BinaryDispatch : public PortOwner<L>, public PortOwner<R> {
 protected:
  static constexpr int kLeft = 0;
  static constexpr int kRight = 1;

  virtual void OnElementLeft(const StreamElement<L>& element) = 0;
  virtual void OnElementRight(const StreamElement<R>& element) = 0;
  /// Batched variants; the defaults replay the batch element-by-element, so
  /// binary operators keep working unmodified on the batched path.
  virtual void OnBatchLeft(std::span<const StreamElement<L>> batch) {
    for (const StreamElement<L>& e : batch) OnElementLeft(e);
  }
  virtual void OnBatchRight(std::span<const StreamElement<R>> batch) {
    for (const StreamElement<R>& e : batch) OnElementRight(e);
  }
  /// Columnar variants; the defaults re-materialize and replay through the
  /// AoS batch hooks (same shim as `PortOwner<T>::PortRun`).
  virtual void OnRunLeft(const ColumnarRun<L>& run) {
    std::vector<StreamElement<L>> scratch;
    run.MaterializeTo(scratch);
    OnBatchLeft(scratch);
  }
  virtual void OnRunRight(const ColumnarRun<R>& run) {
    std::vector<StreamElement<R>> scratch;
    run.MaterializeTo(scratch);
    OnBatchRight(scratch);
  }
  virtual void OnProgressSide(int side, Timestamp watermark) = 0;
  virtual void OnDoneSide(int side) = 0;

 private:
  void PortElement(int /*port_id*/, const StreamElement<L>& e) final {
    OnElementLeft(e);
  }
  void PortElement(int /*port_id*/, const StreamElement<R>& e) final {
    OnElementRight(e);
  }
  void PortBatch(int /*port_id*/, std::span<const StreamElement<L>> b) final {
    OnBatchLeft(b);
  }
  void PortBatch(int /*port_id*/, std::span<const StreamElement<R>> b) final {
    OnBatchRight(b);
  }
  void PortRun(int /*port_id*/, const ColumnarRun<L>& run) final {
    OnRunLeft(run);
  }
  void PortRun(int /*port_id*/, const ColumnarRun<R>& run) final {
    OnRunRight(run);
  }
  // Identical signature in both bases: this single override covers both.
  void PortProgress(int port_id, Timestamp watermark) final {
    OnProgressSide(port_id, watermark);
  }
  void PortDone(int port_id) final { OnDoneSide(port_id); }
};

template <typename T>
class BinaryDispatch<T, T> : public PortOwner<T> {
 protected:
  static constexpr int kLeft = 0;
  static constexpr int kRight = 1;

  virtual void OnElementLeft(const StreamElement<T>& element) = 0;
  virtual void OnElementRight(const StreamElement<T>& element) = 0;
  virtual void OnBatchLeft(std::span<const StreamElement<T>> batch) {
    for (const StreamElement<T>& e : batch) OnElementLeft(e);
  }
  virtual void OnBatchRight(std::span<const StreamElement<T>> batch) {
    for (const StreamElement<T>& e : batch) OnElementRight(e);
  }
  virtual void OnRunLeft(const ColumnarRun<T>& run) {
    std::vector<StreamElement<T>> scratch;
    run.MaterializeTo(scratch);
    OnBatchLeft(scratch);
  }
  virtual void OnRunRight(const ColumnarRun<T>& run) {
    std::vector<StreamElement<T>> scratch;
    run.MaterializeTo(scratch);
    OnBatchRight(scratch);
  }
  virtual void OnProgressSide(int side, Timestamp watermark) = 0;
  virtual void OnDoneSide(int side) = 0;

 private:
  void PortElement(int port_id, const StreamElement<T>& e) final {
    if (port_id == kLeft) {
      OnElementLeft(e);
    } else {
      OnElementRight(e);
    }
  }
  void PortBatch(int port_id, std::span<const StreamElement<T>> b) final {
    if (port_id == kLeft) {
      OnBatchLeft(b);
    } else {
      OnBatchRight(b);
    }
  }
  void PortRun(int port_id, const ColumnarRun<T>& run) final {
    if (port_id == kLeft) {
      OnRunLeft(run);
    } else {
      OnRunRight(run);
    }
  }
  void PortProgress(int port_id, Timestamp watermark) final {
    OnProgressSide(port_id, watermark);
  }
  void PortDone(int port_id) final { OnDoneSide(port_id); }
};

}  // namespace internal_pipe

/// An operator with two inputs (`left`, `right`) and one output.
///
/// Subclasses implement the `OnElement{Left,Right}` hooks plus
/// `OnProgressSide`/`OnDoneSide`. `CombinedWatermark()` gives the merged
/// progress over both inputs — the point up to which stateful operators may
/// finalize results — and `BothDone()` signals global end-of-stream.
template <typename L, typename R, typename Out>
class BinaryPipe : public Source<Out>,
                   public internal_pipe::BinaryDispatch<L, R> {
 public:
  using LeftType = L;
  using RightType = R;
  using OutputType = Out;

  explicit BinaryPipe(std::string name)
      : Source<Out>(std::move(name)),
        left_(this, this, internal_pipe::BinaryDispatch<L, R>::kLeft),
        right_(this, this, internal_pipe::BinaryDispatch<L, R>::kRight) {}

  InputPort<L>& left() { return left_; }
  InputPort<R>& right() { return right_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kOperator;
    d.op = "binary-pipe";
    d.port_upstreams = {left_.num_upstreams(), right_.num_upstreams()};
    return d;
  }

 protected:
  /// min over both input watermarks: no future element on either input
  /// starts before this.
  Timestamp CombinedWatermark() const {
    return std::min(left_.watermark(), right_.watermark());
  }

  bool BothDone() const { return left_.done() && right_.done(); }

 private:
  InputPort<L> left_;
  InputPort<R> right_;
};

}  // namespace pipes

#endif  // PIPES_CORE_PIPE_H_
