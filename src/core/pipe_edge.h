#ifndef PIPES_CORE_PIPE_EDGE_H_
#define PIPES_CORE_PIPE_EDGE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/macros.h"
#include "src/common/time.h"
#include "src/core/columnar.h"
#include "src/core/element.h"

/// \file
/// The `Pipe` edge object of the executor-polled execution model
/// (DESIGN.md §4f). On the classic publish-subscribe path a `Transfer*`
/// call recurses synchronously through the whole subscriber chain; under a
/// `PipeExecutor` every `Source<T>` instead *stages* its output into a
/// `Pipe<T>` — a stateful edge that owns the staged columnar run — and the
/// executor polls ready pipes from a FIFO work queue. Delivery of one
/// pipe's staged content makes the downstream operators stage into *their*
/// pipes, so a chain of any depth drains iteratively with constant stack.
///
/// A pipe is a three-state machine (after fleximg's IDEA_PIPELINE_V2):
///
///     Idle ──poll──▶ Request ──stage──▶ Supply ──deliver──▶ Idle
///              ▲                          │
///              └────────── stage ─────────┘   (passive producers skip
///                                              Request: Idle → Supply)
///
/// * `Idle`    — nothing staged; the edge is quiescent.
/// * `Request` — the executor has polled the producer (`DoWork`) and the
///               edge awaits its supply.
/// * `Supply`  — staged runs/control signals await delivery; the pipe is in
///               (or headed for) the executor's ready queue.
///
/// Outside `Deliver()` a pipe only changes state and notifies its executor
/// — it never calls downstream. That is the entire non-recursion argument.

namespace pipes {

class Node;
class PipeBase;
template <typename T>
class Source;

/// State of a pipe edge.
enum class PipeState {
  kIdle,     ///< Nothing staged.
  kRequest,  ///< Producer polled; awaiting its supply.
  kSupply,   ///< Staged content awaits delivery.
};

/// Readable name of a pipe state ("idle", "request", "supply").
inline const char* PipeStateName(PipeState s) {
  switch (s) {
    case PipeState::kIdle:
      return "idle";
    case PipeState::kRequest:
      return "request";
    case PipeState::kSupply:
      return "supply";
  }
  return "?";
}

/// The executor's face toward pipes: a pipe whose state turned `Supply`
/// announces itself here (enqueue only — never a downstream call).
class ExecutorLink {
 public:
  virtual ~ExecutorLink() = default;

  /// `pipe` has staged content and is not yet queued. Must only enqueue.
  virtual void PipeReady(PipeBase* pipe) = 0;
};

/// Type-erased base of `Pipe<T>`: what the executor holds and polls.
class PipeBase {
 public:
  PipeBase(Node* producer, ExecutorLink* link)
      : producer_(producer), link_(link) {
    PIPES_CHECK(producer != nullptr && link != nullptr);
  }
  virtual ~PipeBase() = default;

  PipeBase(const PipeBase&) = delete;
  PipeBase& operator=(const PipeBase&) = delete;

  /// The node whose output this edge carries.
  Node* producer() const { return producer_; }

  PipeState state() const { return state_; }

  /// True while the pipe sits in the executor's ready queue.
  bool in_queue() const { return in_queue_; }

  /// Staged work units (elements + control signals) awaiting delivery.
  std::size_t staged_units() const { return staged_units_; }

  bool HasStaged() const { return staged_units_ > 0; }

  /// Delivers everything staged to the producer's subscribers, in staging
  /// order, and returns to `Idle`. Returns the number of units delivered.
  /// Called by the executor only; downstream operators invoked from here
  /// stage into their own pipes instead of recursing further.
  virtual std::size_t Deliver() = 0;

  // --- Executor bookkeeping -------------------------------------------------

  /// The executor is about to poll the producer: `Idle` → `Request`.
  void MarkPolled() {
    if (state_ == PipeState::kIdle) state_ = PipeState::kRequest;
  }

  /// The producer was polled but supplied nothing: `Request` → `Idle`.
  void MarkPollDone() {
    if (state_ == PipeState::kRequest) state_ = PipeState::kIdle;
  }

  /// The executor dequeued this pipe (immediately before `Deliver`).
  void ClearInQueue() { in_queue_ = false; }

 protected:
  /// Content was staged: state turns `Supply` and the executor is notified
  /// exactly once until the pipe is dequeued again.
  void NotifyReady() {
    state_ = PipeState::kSupply;
    if (!in_queue_) {
      in_queue_ = true;
      link_->PipeReady(this);
    }
  }

  void ResetToIdle() { state_ = PipeState::kIdle; }

  std::size_t staged_units_ = 0;

 private:
  Node* producer_;
  ExecutorLink* link_;
  PipeState state_ = PipeState::kIdle;
  bool in_queue_ = false;
};

/// The typed pipe edge: owns the staged output of one `Source<T>` as an
/// ordered sequence of columnar runs interleaved with control signals.
/// Consecutive element transfers coalesce into the tail run (AoS batches
/// are transposed into columns at staging time, so delivery is always
/// columnar); heartbeats and done markers keep their position relative to
/// the element runs they arrived between.
template <typename T>
class Pipe final : public PipeBase {
 public:
  Pipe(Source<T>* source, ExecutorLink* link);

  // --- Staging (called by Source<T>'s Transfer* under an executor) ---------

  void StageElement(const StreamElement<T>& e) {
    TailRun().Append(e);
    staged_units_ += 1;
    NotifyReady();
  }

  void StageBatch(std::span<const StreamElement<T>> batch) {
    TailRun().AppendBatch(batch);
    staged_units_ += batch.size();
    NotifyReady();
  }

  void StageRun(const ColumnarRun<T>& run) {
    TailRun().AppendRun(run);
    staged_units_ += run.size();
    NotifyReady();
  }

  /// Consuming overload: when the tail entry is a fresh (pool-recycled)
  /// run, the columns are swapped in — zero copy — and the producer gets
  /// the pooled capacity back in `run` for its next output.
  void StageRun(ColumnarRun<T>&& run) {
    staged_units_ += run.size();
    TailRun().TakeFrom(run);
    NotifyReady();
  }

  void StageHeartbeat(Timestamp t) {
    PushEntry(Entry::kHeartbeat).heartbeat = t;
    staged_units_ += 1;
    NotifyReady();
  }

  void StageDone() {
    PushEntry(Entry::kDone);
    staged_units_ += 1;
    NotifyReady();
  }

  std::size_t Deliver() override;

 private:
  struct Entry {
    enum Kind { kRun, kHeartbeat, kDone };
    Kind kind = kRun;
    ColumnarRun<T> run;
    Timestamp heartbeat = kMinTimestamp;
  };

  /// Appends a fresh entry of `kind`, recycling pooled column capacity.
  Entry& PushEntry(typename Entry::Kind kind) {
    if (!pool_.empty()) {
      entries_.push_back(std::move(pool_.back()));
      pool_.pop_back();
    } else {
      entries_.emplace_back();
    }
    Entry& e = entries_.back();
    e.kind = kind;
    return e;
  }

  /// The run entry new elements coalesce into.
  ColumnarRun<T>& TailRun() {
    if (entries_.empty() || entries_.back().kind != Entry::kRun) {
      PushEntry(Entry::kRun);
    }
    return entries_.back().run;
  }

  Source<T>* source_;
  std::vector<Entry> entries_;
  /// Delivered entries come back here with their column capacity intact, so
  /// steady-state staging allocates nothing.
  std::vector<Entry> pool_;
  /// Deliver() swaps `entries_` in here before walking it, so (pathological)
  /// re-staging during delivery cannot invalidate the walk.
  std::vector<Entry> delivering_;
};

// Member definitions live in source.h (below the Source<T> definition),
// which every translation unit that instantiates Source<T> includes.

}  // namespace pipes

#endif  // PIPES_CORE_PIPE_EDGE_H_
