#ifndef PIPES_CORE_PIPELINE_H_
#define PIPES_CORE_PIPELINE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/filter.h"
#include "src/algebra/map.h"
#include "src/algebra/window.h"
#include "src/core/buffer.h"
#include "src/core/graph.h"
#include "src/core/parallel.h"
#include "src/core/sink.h"
#include "src/core/source.h"

/// \file
/// Fluent pipeline-construction API. Linear chains — the overwhelmingly
/// common case — read left-to-right instead of inside-out:
///
///     auto& sink = dsl::From(graph, std::make_unique<VectorSource<int>>(...))
///                | dsl::Filter([](int v) { return v > 0; })
///                | dsl::TimeWindow(10)
///                | dsl::Into(std::make_unique<CollectorSink<int>>());
///
/// Every stage is sugar over the two primitives it always was: the node is
/// `QueryGraph::Add`-ed (the graph owns it) and the upstream source
/// `AddSubscriber`s the new node's input port. Nothing is deferred — after
/// each `|` the graph is already wired, so a partially built chain is a
/// valid (if dangling) graph, and fan-out falls out naturally: keep the
/// `Stage` and pipe it twice. Non-linear shapes (joins, unions) take a
/// stage's `source()` and wire ports explicitly.

namespace pipes::dsl {

/// A cursor into a graph under construction: the node whose output stream
/// (of `T`) the next `|` stage will consume. Cheap to copy; copies share
/// the same underlying node, which is how fan-out is expressed.
template <typename T>
class Stage {
 public:
  /// The payload type flowing out of this stage.
  using Element = T;

  Stage(QueryGraph& graph, Source<T>& source)
      : graph_(&graph), source_(&source) {}

  QueryGraph& graph() const { return *graph_; }
  /// The current head of the chain, for manual wiring (joins, unions).
  Source<T>& source() const { return *source_; }

 private:
  QueryGraph* graph_;
  Source<T>* source_;
};

/// Starts a chain from a source that is already owned by `graph`.
/// `T` is deduced from the `Source<T>` base.
template <typename T>
Stage<T> From(QueryGraph& graph, Source<T>& source) {
  return Stage<T>(graph, source);
}

/// Starts a chain by transferring `source` into `graph`.
template <typename SourceT>
auto From(QueryGraph& graph, std::unique_ptr<SourceT> source) {
  return From(graph, graph.Add(std::move(source)));
}

// --- Stage specs -----------------------------------------------------------
//
// Each factory returns a small value object describing one operator; the
// matching `operator|` materializes it into the graph. Specs are inert —
// they can be stored and reused (each use creates a fresh node).

template <typename Pred>
struct FilterSpec {
  Pred pred;
  std::string name;
};

/// Keeps elements whose payload satisfies `pred`.
template <typename Pred>
FilterSpec<std::decay_t<Pred>> Filter(Pred&& pred,
                                      std::string name = "filter") {
  return {std::forward<Pred>(pred), std::move(name)};
}

template <typename Fn>
struct MapSpec {
  Fn fn;
  std::string name;
};

/// Transforms payloads; the output type is deduced from `fn`.
template <typename Fn>
MapSpec<std::decay_t<Fn>> Map(Fn&& fn, std::string name = "map") {
  return {std::forward<Fn>(fn), std::move(name)};
}

struct TimeWindowSpec {
  Timestamp size;
  std::string name;
};

/// Sliding time window of `size` time units (see algebra::TimeWindow).
inline TimeWindowSpec TimeWindow(Timestamp size,
                                 std::string name = "time-window") {
  return {size, std::move(name)};
}

struct SlideWindowSpec {
  Timestamp size;
  Timestamp slide;
  std::string name;
};

/// Hopping window: `size` wide, advancing by `slide`.
inline SlideWindowSpec SlideWindow(Timestamp size, Timestamp slide,
                                   std::string name = "slide-window") {
  return {size, slide, std::move(name)};
}

struct CountWindowSpec {
  std::size_t rows;
  std::string name;
};

/// Count-based window over the last `rows` elements.
inline CountWindowSpec CountWindow(std::size_t rows,
                                   std::string name = "count-window") {
  return {rows, std::move(name)};
}

template <typename Agg, typename ValueFn>
struct AggregateSpec {
  ValueFn value;
  std::string name;
};

/// Temporal aggregation with an explicit aggregate functor (see
/// algebra::TemporalAggregate): `Aggregate<algebra::SumAgg<double>>(value)`.
template <typename Agg, typename ValueFn>
AggregateSpec<Agg, std::decay_t<ValueFn>> Aggregate(
    ValueFn&& value, std::string name = "aggregate") {
  return {std::forward<ValueFn>(value), std::move(name)};
}

template <typename Agg, typename KeyFn, typename ValueFn>
struct GroupBySpec {
  KeyFn key;
  ValueFn value;
  std::string name;
};

/// Grouped temporal aggregation (algebra::GroupedAggregate): one sweep-line
/// per `key(payload)`, emitting (key, aggregate) pairs. Key-partitionable —
/// the canonical stage for `dsl::Parallel`.
template <typename Agg, typename KeyFn, typename ValueFn>
GroupBySpec<Agg, std::decay_t<KeyFn>, std::decay_t<ValueFn>> GroupBy(
    KeyFn&& key, ValueFn&& value, std::string name = "group-by") {
  return {std::forward<KeyFn>(key), std::forward<ValueFn>(value),
          std::move(name)};
}

struct DistinctSpec {
  std::string name;
};

/// Temporal duplicate elimination (algebra::Distinct).
inline DistinctSpec Distinct(std::string name = "distinct") {
  return {std::move(name)};
}

template <typename KeyFn>
struct PartitionedWindowSpec {
  KeyFn key;
  std::size_t rows;
  std::string name;
};

/// Per-key ROWS window (algebra::PartitionedWindow; CQL
/// `[PARTITION BY k ROWS n]`).
template <typename KeyFn>
PartitionedWindowSpec<std::decay_t<KeyFn>> PartitionedWindow(
    KeyFn&& key, std::size_t rows, std::string name = "partitioned-window") {
  return {std::forward<KeyFn>(key), rows, std::move(name)};
}

template <typename ValueFn>
struct AverageSpec {
  ValueFn value;
  std::string name;
};

/// Temporal average of `value(payload)`; the value type is deduced at
/// materialization time (when the input type is known).
template <typename ValueFn>
AverageSpec<std::decay_t<ValueFn>> Average(ValueFn&& value,
                                           std::string name = "avg") {
  return {std::forward<ValueFn>(value), std::move(name)};
}

struct DetachSpec {
  std::string name;
  std::size_t capacity;
};

/// Inserts a `BasicBuffer`, turning the chain's tail into a scheduler-driven
/// (virtual) node boundary. `capacity` 0 = unbounded.
inline DetachSpec Detach(std::string name = "buffer",
                         std::size_t capacity = 0) {
  return {std::move(name), capacity};
}

template <typename KeyFn, typename Inner>
struct ParallelSpec {
  std::size_t replicas;
  KeyFn key;
  Inner inner;
};

/// True for inner specs whose operator keeps disjoint state per key (the
/// spec-level mirror of `algebra::KeyPartitionable`); everything else makes
/// `dsl::Parallel` fail to compile.
template <typename Spec>
struct IsKeyPartitionableSpec : std::false_type {};
template <typename Agg, typename KeyFn, typename ValueFn>
struct IsKeyPartitionableSpec<GroupBySpec<Agg, KeyFn, ValueFn>>
    : std::true_type {};
template <>
struct IsKeyPartitionableSpec<DistinctSpec> : std::true_type {};
template <typename KeyFn>
struct IsKeyPartitionableSpec<PartitionedWindowSpec<KeyFn>>
    : std::true_type {};

/// Keyed data parallelism: runs `inner` as `replicas` shared-nothing
/// replicas between a `Partition` (hash-routing by `key`) and an
/// order-restoring `Merge`. Each replica chain sits behind a
/// `ConcurrentBuffer`, so a `ThreadScheduler` can drive the replicas on
/// separate workers (DESIGN.md "Keyed parallelism" for the pinning rule).
/// `key` must refine `inner`'s own grouping — pass the same key function.
/// Only key-partitionable stages are accepted (grouped aggregation,
/// distinct, partitioned windows); anything else is refused at compile
/// time. Equi-joins parallelize through the graph-level
/// `algebra::MakeParallelHashJoin`.
template <typename KeyFn, typename Inner>
ParallelSpec<std::decay_t<KeyFn>, std::decay_t<Inner>> Parallel(
    std::size_t replicas, KeyFn&& key, Inner inner) {
  return {replicas, std::forward<KeyFn>(key), std::move(inner)};
}

template <typename SinkT>
struct IntoSinkSpec {
  std::unique_ptr<SinkT> sink;
};

/// Terminates the chain: `sink` is added to the graph and subscribed to the
/// chain's output. `operator|` returns the added sink by reference.
template <typename SinkT>
IntoSinkSpec<SinkT> Into(std::unique_ptr<SinkT> sink) {
  return {std::move(sink)};
}

template <typename T>
struct IntoPortSpec {
  InputPort<T>* port;
};

/// Terminates the chain into an existing input port (e.g. one side of a
/// join that was constructed manually).
template <typename T>
IntoPortSpec<T> Into(InputPort<T>& port) {
  return {&port};
}

// --- operator| — materialization -------------------------------------------

template <typename T, typename Pred>
Stage<T> operator|(Stage<T> stage, FilterSpec<Pred> spec) {
  auto& node = stage.graph().template Add<algebra::Filter<T, Pred>>(
      std::move(spec.pred), std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<T>(stage.graph(), node);
}

template <typename T, typename Fn>
auto operator|(Stage<T> stage, MapSpec<Fn> spec) {
  using Out = std::decay_t<std::invoke_result_t<Fn&, const T&>>;
  auto& node = stage.graph().template Add<algebra::Map<T, Out, Fn>>(
      std::move(spec.fn), std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<Out>(stage.graph(), node);
}

template <typename T>
Stage<T> operator|(Stage<T> stage, TimeWindowSpec spec) {
  auto& node = stage.graph().template Add<algebra::TimeWindow<T>>(
      spec.size, std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<T>(stage.graph(), node);
}

template <typename T>
Stage<T> operator|(Stage<T> stage, SlideWindowSpec spec) {
  auto& node = stage.graph().template Add<algebra::SlideWindow<T>>(
      spec.size, spec.slide, std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<T>(stage.graph(), node);
}

template <typename T>
Stage<T> operator|(Stage<T> stage, CountWindowSpec spec) {
  auto& node = stage.graph().template Add<algebra::CountWindow<T>>(
      spec.rows, std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<T>(stage.graph(), node);
}

template <typename T, typename Agg, typename ValueFn>
auto operator|(Stage<T> stage, AggregateSpec<Agg, ValueFn> spec) {
  auto& node =
      stage.graph().template Add<algebra::TemporalAggregate<T, Agg, ValueFn>>(
          std::move(spec.value), std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<typename Agg::Output>(stage.graph(), node);
}

template <typename T, typename Agg, typename KeyFn, typename ValueFn>
auto operator|(Stage<T> stage, GroupBySpec<Agg, KeyFn, ValueFn> spec) {
  using NodeT = algebra::GroupedAggregate<T, Agg, KeyFn, ValueFn>;
  auto& node = stage.graph().template Add<NodeT>(
      std::move(spec.key), std::move(spec.value), std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<typename NodeT::Output>(stage.graph(), node);
}

template <typename T>
Stage<T> operator|(Stage<T> stage, DistinctSpec spec) {
  auto& node =
      stage.graph().template Add<algebra::Distinct<T>>(std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<T>(stage.graph(), node);
}

template <typename T, typename KeyFn>
Stage<T> operator|(Stage<T> stage, PartitionedWindowSpec<KeyFn> spec) {
  auto& node =
      stage.graph().template Add<algebra::PartitionedWindow<T, KeyFn>>(
          std::move(spec.key), spec.rows, std::move(spec.name));
  stage.source().AddSubscriber(node.input());
  return Stage<T>(stage.graph(), node);
}

template <typename T, typename KeyFn, typename Inner>
auto operator|(Stage<T> stage, ParallelSpec<KeyFn, Inner> spec) {
  static_assert(
      IsKeyPartitionableSpec<Inner>::value,
      "dsl::Parallel: the inner stage's state does not decompose by key — "
      "only GroupBy, Distinct, and PartitionedWindow are safe to replicate "
      "(see docs/operators.md)");
  // The inner stage's output type, deduced by materializing it virtually.
  using Out = typename decltype(std::declval<Stage<T>>() |
                                std::declval<Inner>())::Element;
  QueryGraph& graph = stage.graph();
  auto& split =
      graph.Add<Partition<T, KeyFn>>(spec.replicas, std::move(spec.key));
  stage.source().AddSubscriber(split.input());
  auto& merge = graph.Add<Merge<Out>>(spec.replicas);
  for (std::size_t i = 0; i < spec.replicas; ++i) {
    const std::string suffix = "-" + std::to_string(i);
    auto& in_buf = graph.Add<ConcurrentBuffer<T>>("replica-in" + suffix);
    split.AddSubscriber(i, in_buf.input());
    // Each replica materializes from a copy of the inner spec, wired to its
    // partition's buffer exactly as `|` always wires.
    Inner inner_copy = spec.inner;
    Stage<Out> replica = Stage<T>(graph, in_buf) | std::move(inner_copy);
    auto& out_buf = graph.Add<ConcurrentBuffer<Out>>("replica-out" + suffix);
    replica.source().AddSubscriber(out_buf.input());
    out_buf.AddSubscriber(merge.input(i));
  }
  return Stage<Out>(graph, merge);
}

template <typename T, typename ValueFn>
auto operator|(Stage<T> stage, AverageSpec<ValueFn> spec) {
  using Value = std::decay_t<std::invoke_result_t<ValueFn&, const T&>>;
  return stage | AggregateSpec<algebra::AvgAgg<Value>, ValueFn>{
                     std::move(spec.value), std::move(spec.name)};
}

template <typename T>
Stage<T> operator|(Stage<T> stage, DetachSpec spec) {
  auto& node = stage.graph().template Add<BasicBuffer<T>>(
      std::move(spec.name), spec.capacity);
  stage.source().AddSubscriber(node.input());
  return Stage<T>(stage.graph(), node);
}

template <typename T, typename SinkT>
SinkT& operator|(Stage<T> stage, IntoSinkSpec<SinkT> spec) {
  SinkT& sink = stage.graph().Add(std::move(spec.sink));
  stage.source().AddSubscriber(sink.input());
  return sink;
}

template <typename T>
InputPort<T>& operator|(Stage<T> stage, IntoPortSpec<T> spec) {
  stage.source().AddSubscriber(*spec.port);
  return *spec.port;
}

}  // namespace pipes::dsl

#endif  // PIPES_CORE_PIPELINE_H_
