#ifndef PIPES_CORE_PORT_H_
#define PIPES_CORE_PORT_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "src/common/macros.h"
#include "src/common/time.h"
#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/core/metrics.h"
#include "src/core/node.h"
#include "src/core/trace.h"

/// \file
/// Input ports: the sink half of the publish-subscribe architecture.
///
/// A node that consumes elements of type `T` owns one `InputPort<T>` per
/// logical input. A port can be subscribed to by *multiple* sources
/// (the paper: "a sink can subscribe to multiple sources"); the port merges
/// their progress: its watermark is the minimum heartbeat over all live
/// upstreams, so the owning operator sees a single, monotone notion of time
/// per input.
///
/// Delivery is a direct virtual call — there is no queue between a source
/// and a port. Queues exist only inside explicit `Buffer` nodes.

namespace pipes {

template <typename T>
class Source;

/// Callback interface a port owner implements, one instantiation per input
/// element type. Multi-input operators with equal input types share one
/// instantiation and dispatch on `port_id`; operators with distinct input
/// types inherit one instantiation per type.
template <typename T>
class PortOwner {
 public:
  virtual ~PortOwner() = default;

  /// A new element arrived on port `port_id`. Elements on one port are
  /// ordered by non-decreasing interval start *per upstream*; use
  /// `PortProgress` for a cross-upstream ordering guarantee.
  virtual void PortElement(int port_id, const StreamElement<T>& element) = 0;

  /// A batch of elements arrived on port `port_id` — a non-empty run from
  /// one upstream, ordered by non-decreasing start, carrying no control
  /// signals. The default delegates to `PortElement` element-by-element, so
  /// owners that never override this behave exactly as on the per-element
  /// path; cheap stateless operators override it with a tight kernel that
  /// forwards one output batch downstream (DESIGN.md "Batched delivery").
  virtual void PortBatch(int port_id, std::span<const StreamElement<T>> batch) {
    for (const StreamElement<T>& e : batch) {
      PortElement(port_id, e);
    }
  }

  /// A columnar run arrived on port `port_id` — same contract as
  /// `PortBatch` (non-empty, one upstream, non-decreasing starts, no
  /// control signals) in SoA layout. The default re-materializes the run
  /// and delegates to `PortBatch`, so operators without a columnar kernel
  /// behave exactly as on the AoS path; the hot stateless operators
  /// (filter/map/window/union) override it with column-at-a-time kernels
  /// that forward a columnar run downstream (DESIGN.md §4f).
  virtual void PortRun(int port_id, const ColumnarRun<T>& run) {
    std::vector<StreamElement<T>> scratch;
    run.MaterializeTo(scratch);
    PortBatch(port_id, scratch);
  }

  /// The port's merged watermark advanced to `watermark`: no future element
  /// on this port will have `start() < watermark`.
  virtual void PortProgress(int port_id, Timestamp watermark) = 0;

  /// All upstreams of the port signalled end-of-stream.
  virtual void PortDone(int port_id) = 0;
};

/// One logical input of an operator. Created by the owning node; edges are
/// formed by `InputPort<T>::SubscribeTo(source)` (equivalently
/// `Source<T>::AddSubscriber(port)`).
template <typename T>
class InputPort {
 public:
  /// `owner` receives callbacks tagged with `port_id`; `owner_node` is the
  /// same object viewed as a graph node (used for topology and counters).
  InputPort(PortOwner<T>* owner, Node* owner_node, int port_id)
      : owner_(owner), owner_node_(owner_node), port_id_(port_id) {
    PIPES_CHECK(owner != nullptr && owner_node != nullptr);
  }

  InputPort(const InputPort&) = delete;
  InputPort& operator=(const InputPort&) = delete;

  Node* owner_node() const { return owner_node_; }
  int port_id() const { return port_id_; }

  /// Watermark merged over all upstreams; `kMinTimestamp` until every
  /// upstream has reported progress, `kMaxTimestamp` once all are done.
  /// O(1): the merge is cached and maintained incrementally, so per-element
  /// delivery does not rescan all upstream slots.
  Timestamp watermark() const { return merged_cache_; }

  /// True once every upstream signalled done (and at least one was ever
  /// subscribed).
  bool done() const { return done_delivered_; }

  std::size_t num_upstreams() const { return live_upstreams_; }

  /// Subscribes this port to `source`: the port will see every element the
  /// source transfers from now on. This is the documented spelling — it
  /// reads in dataflow direction (the *consumer* subscribes to the
  /// *producer*'s output). Defined in source.h.
  void SubscribeTo(Source<T>& source);

  // --- Called by Source<T> --------------------------------------------------

  /// Registers an upstream; returns its slot handle.
  int AddUpstream() {
    Upstream up;
    up.live = true;
    slots_.push_back(up);
    ++live_upstreams_;
    done_delivered_ = false;
    // The new upstream has reported no progress yet: it pins the merge.
    merged_cache_ = kMinTimestamp;
    return static_cast<int>(slots_.size()) - 1;
  }

  /// Unregisters the upstream in `slot` (unsubscribe). Its progress
  /// constraint is lifted, which may advance the merged watermark.
  void RemoveUpstream(int slot) {
    PIPES_CHECK(ValidSlot(slot) && slots_[slot].live);
    slots_[slot].live = false;
    --live_upstreams_;
    RecomputeMergedWatermark();
    NotifyProgress();
    MaybeNotifyDone();
  }

  void Receive(int slot, const StreamElement<T>& element) {
    PIPES_DCHECK(ValidSlot(slot) && slots_[slot].live);
    Upstream& up = slots_[slot];
    PIPES_DCHECK(element.start() >= up.watermark ||
                 up.watermark == kMinTimestamp);
    RaiseSlotWatermark(up, element.start());
    owner_node_->CountIn();
    trace::RecordHop(owner_node_->id(), element.start(), trace::Hop::kReceive);
    if (obs::MetricsEnabled() && --latency_countdown_ == 0) {
      latency_countdown_ = obs::kLatencySamplePeriod;
      const std::int64_t t0 = obs::SteadyNowNs();
      owner_->PortElement(port_id_, element);
      owner_node_->service_histogram().Record(
          static_cast<std::uint64_t>(obs::SteadyNowNs() - t0));
    } else {
      owner_->PortElement(port_id_, element);
    }
    NotifyProgress();
  }

  /// Batched delivery: `batch` is a non-empty run from one upstream,
  /// ordered by non-decreasing start. Order is validated once, and exactly
  /// one merge + progress notification happens per batch (after the owner
  /// saw the elements, mirroring the element-then-progress order of
  /// `Receive`).
  ///
  /// The slot watermark is raised in two steps: to the *front* start before
  /// delivery (which the front element itself proves) and to the *back*
  /// start only afterwards. Raising to the back up front would let a
  /// stateful owner that consults `watermark()` while consuming the batch
  /// (e.g. a join flushing its ordered staging buffer per element) release
  /// results that later elements of the same batch can still precede.
  void ReceiveBatch(int slot, std::span<const StreamElement<T>> batch) {
    if (batch.empty()) return;
    PIPES_DCHECK(ValidSlot(slot) && slots_[slot].live);
    Upstream& up = slots_[slot];
    PIPES_DCHECK(batch.front().start() >= up.watermark ||
                 up.watermark == kMinTimestamp);
    PIPES_DCHECK(std::is_sorted(
        batch.begin(), batch.end(),
        [](const StreamElement<T>& a, const StreamElement<T>& b) {
          return a.start() < b.start();
        }));
    RaiseSlotWatermark(up, batch.front().start());
    owner_node_->CountIn(batch.size());
    owner_node_->CountBatchIn();
    trace::RecordBatchHops(owner_node_->id(), batch.data(), batch.size(),
                           trace::Hop::kReceive);
    if (obs::MetricsEnabled() && --latency_countdown_ == 0) {
      latency_countdown_ = obs::kLatencySamplePeriod;
      const std::int64_t t0 = obs::SteadyNowNs();
      owner_->PortBatch(port_id_, batch);
      owner_node_->service_histogram().Record(
          static_cast<std::uint64_t>(obs::SteadyNowNs() - t0));
    } else {
      owner_->PortBatch(port_id_, batch);
    }
    RaiseSlotWatermark(up, batch.back().start());
    NotifyProgress();
  }

  /// Columnar delivery: `ReceiveBatch` for a SoA run. Identical
  /// bookkeeping — order validated once, slot watermark raised to the front
  /// start before delivery and to the back start only after (see
  /// `ReceiveBatch` on why), one merge + progress notification per run.
  void ReceiveRun(int slot, const ColumnarRun<T>& run) {
    if (run.empty()) return;
    PIPES_DCHECK(ValidSlot(slot) && slots_[slot].live);
    Upstream& up = slots_[slot];
    PIPES_DCHECK(run.starts.front() >= up.watermark ||
                 up.watermark == kMinTimestamp);
    PIPES_DCHECK(std::is_sorted(run.starts.begin(), run.starts.end()));
    PIPES_DCHECK(run.ends.size() == run.starts.size() &&
                 run.payloads.size() == run.starts.size());
    RaiseSlotWatermark(up, run.starts.front());
    owner_node_->CountIn(run.size());
    owner_node_->CountBatchIn();
    trace::RecordRunHops(owner_node_->id(), run.starts.data(), run.size(),
                         trace::Hop::kReceive);
    if (obs::MetricsEnabled() && --latency_countdown_ == 0) {
      latency_countdown_ = obs::kLatencySamplePeriod;
      const std::int64_t t0 = obs::SteadyNowNs();
      owner_->PortRun(port_id_, run);
      owner_node_->service_histogram().Record(
          static_cast<std::uint64_t>(obs::SteadyNowNs() - t0));
    } else {
      owner_->PortRun(port_id_, run);
    }
    RaiseSlotWatermark(up, run.starts.back());
    NotifyProgress();
  }

  void ReceiveHeartbeat(int slot, Timestamp t) {
    PIPES_DCHECK(ValidSlot(slot) && slots_[slot].live);
    Upstream& up = slots_[slot];
    if (t > up.watermark) {
      RaiseSlotWatermark(up, t);
      NotifyProgress();
    }
  }

  void ReceiveDone(int slot) {
    PIPES_DCHECK(ValidSlot(slot) && slots_[slot].live);
    slots_[slot].done = true;
    RecomputeMergedWatermark();
    NotifyProgress();
    MaybeNotifyDone();
  }

 private:
  struct Upstream {
    Timestamp watermark = kMinTimestamp;
    bool done = false;
    bool live = false;
  };

  bool ValidSlot(int slot) const {
    return slot >= 0 && slot < static_cast<int>(slots_.size());
  }

  /// Raises `up.watermark` to `t` and keeps the cached merge consistent.
  /// A full rescan is needed only when the raised slot was (one of) the
  /// minimum — for single-upstream ports the rescan is trivially cheap, and
  /// for fan-in ports the non-minimum upstreams update in O(1).
  void RaiseSlotWatermark(Upstream& up, Timestamp t) {
    if (t <= up.watermark) return;
    const Timestamp old = up.watermark;
    up.watermark = t;
    if (old <= merged_cache_) RecomputeMergedWatermark();
  }

  void RecomputeMergedWatermark() {
    Timestamp min_wm = kMaxTimestamp;
    bool any = false;
    for (const Upstream& up : slots_) {
      if (!up.live || up.done) continue;
      any = true;
      min_wm = std::min(min_wm, up.watermark);
    }
    // No live, unfinished upstream (or none subscribed): time is exhausted.
    merged_cache_ = any ? min_wm : kMaxTimestamp;
  }

  void NotifyProgress() {
    const Timestamp merged = merged_cache_;
    if (merged > last_notified_) {
      last_notified_ = merged;
      owner_node_->AdvanceProgress(merged);
      owner_->PortProgress(port_id_, merged);
    }
  }

  void MaybeNotifyDone() {
    if (done_delivered_) return;
    bool all_done = true;
    bool any_live_ever = false;
    for (const Upstream& up : slots_) {
      if (up.live) {
        any_live_ever = true;
        if (!up.done) all_done = false;
      }
    }
    if (any_live_ever && all_done) {
      done_delivered_ = true;
      owner_->PortDone(port_id_);
    }
  }

  PortOwner<T>* owner_;
  Node* owner_node_;
  int port_id_;
  /// Deliveries until the next service-time sample. Plain member: delivery
  /// into one port is single-threaded (cross-thread edges go through
  /// `ConcurrentBuffer`), and snapshots never read it.
  std::uint32_t latency_countdown_ = 1;
  std::vector<Upstream> slots_;
  std::size_t live_upstreams_ = 0;
  /// min over live, unfinished slots; kMaxTimestamp when there are none.
  Timestamp merged_cache_ = kMaxTimestamp;
  Timestamp last_notified_ = kMinTimestamp;
  bool done_delivered_ = false;
};

}  // namespace pipes

#endif  // PIPES_CORE_PORT_H_
