#ifndef PIPES_CORE_PORT_H_
#define PIPES_CORE_PORT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/macros.h"
#include "src/common/time.h"
#include "src/core/element.h"
#include "src/core/node.h"

/// \file
/// Input ports: the sink half of the publish-subscribe architecture.
///
/// A node that consumes elements of type `T` owns one `InputPort<T>` per
/// logical input. A port can be subscribed to by *multiple* sources
/// (the paper: "a sink can subscribe to multiple sources"); the port merges
/// their progress: its watermark is the minimum heartbeat over all live
/// upstreams, so the owning operator sees a single, monotone notion of time
/// per input.
///
/// Delivery is a direct virtual call — there is no queue between a source
/// and a port. Queues exist only inside explicit `Buffer` nodes.

namespace pipes {

/// Callback interface a port owner implements, one instantiation per input
/// element type. Multi-input operators with equal input types share one
/// instantiation and dispatch on `port_id`; operators with distinct input
/// types inherit one instantiation per type.
template <typename T>
class PortOwner {
 public:
  virtual ~PortOwner() = default;

  /// A new element arrived on port `port_id`. Elements on one port are
  /// ordered by non-decreasing interval start *per upstream*; use
  /// `PortProgress` for a cross-upstream ordering guarantee.
  virtual void PortElement(int port_id, const StreamElement<T>& element) = 0;

  /// The port's merged watermark advanced to `watermark`: no future element
  /// on this port will have `start() < watermark`.
  virtual void PortProgress(int port_id, Timestamp watermark) = 0;

  /// All upstreams of the port signalled end-of-stream.
  virtual void PortDone(int port_id) = 0;
};

/// One logical input of an operator. Created by the owning node; sources
/// attach to it via `Source<T>::SubscribeTo`.
template <typename T>
class InputPort {
 public:
  /// `owner` receives callbacks tagged with `port_id`; `owner_node` is the
  /// same object viewed as a graph node (used for topology and counters).
  InputPort(PortOwner<T>* owner, Node* owner_node, int port_id)
      : owner_(owner), owner_node_(owner_node), port_id_(port_id) {
    PIPES_CHECK(owner != nullptr && owner_node != nullptr);
  }

  InputPort(const InputPort&) = delete;
  InputPort& operator=(const InputPort&) = delete;

  Node* owner_node() const { return owner_node_; }
  int port_id() const { return port_id_; }

  /// Watermark merged over all upstreams; `kMinTimestamp` until every
  /// upstream has reported progress, `kMaxTimestamp` once all are done.
  Timestamp watermark() const { return MergedWatermark(); }

  /// True once every upstream signalled done (and at least one was ever
  /// subscribed).
  bool done() const { return done_delivered_; }

  std::size_t num_upstreams() const { return live_upstreams_; }

  // --- Called by Source<T> --------------------------------------------------

  /// Registers an upstream; returns its slot handle.
  int AddUpstream() {
    Upstream up;
    up.live = true;
    slots_.push_back(up);
    ++live_upstreams_;
    done_delivered_ = false;
    return static_cast<int>(slots_.size()) - 1;
  }

  /// Unregisters the upstream in `slot` (unsubscribe). Its progress
  /// constraint is lifted, which may advance the merged watermark.
  void RemoveUpstream(int slot) {
    PIPES_CHECK(ValidSlot(slot) && slots_[slot].live);
    slots_[slot].live = false;
    --live_upstreams_;
    NotifyProgress();
    MaybeNotifyDone();
  }

  void Receive(int slot, const StreamElement<T>& element) {
    PIPES_DCHECK(ValidSlot(slot) && slots_[slot].live);
    Upstream& up = slots_[slot];
    PIPES_DCHECK(element.start() >= up.watermark ||
                 up.watermark == kMinTimestamp);
    up.watermark = std::max(up.watermark, element.start());
    owner_node_->CountIn();
    owner_->PortElement(port_id_, element);
    NotifyProgress();
  }

  void ReceiveHeartbeat(int slot, Timestamp t) {
    PIPES_DCHECK(ValidSlot(slot) && slots_[slot].live);
    Upstream& up = slots_[slot];
    if (t > up.watermark) {
      up.watermark = t;
      NotifyProgress();
    }
  }

  void ReceiveDone(int slot) {
    PIPES_DCHECK(ValidSlot(slot) && slots_[slot].live);
    slots_[slot].done = true;
    NotifyProgress();
    MaybeNotifyDone();
  }

 private:
  struct Upstream {
    Timestamp watermark = kMinTimestamp;
    bool done = false;
    bool live = false;
  };

  bool ValidSlot(int slot) const {
    return slot >= 0 && slot < static_cast<int>(slots_.size());
  }

  Timestamp MergedWatermark() const {
    Timestamp min_wm = kMaxTimestamp;
    bool any = false;
    for (const Upstream& up : slots_) {
      if (!up.live || up.done) continue;
      any = true;
      min_wm = std::min(min_wm, up.watermark);
    }
    if (!any) {
      // All upstreams done (or none subscribed): time is exhausted.
      return kMaxTimestamp;
    }
    return min_wm;
  }

  void NotifyProgress() {
    const Timestamp merged = MergedWatermark();
    if (merged > last_notified_) {
      last_notified_ = merged;
      owner_->PortProgress(port_id_, merged);
    }
  }

  void MaybeNotifyDone() {
    if (done_delivered_) return;
    bool all_done = true;
    bool any_live_ever = false;
    for (const Upstream& up : slots_) {
      if (up.live) {
        any_live_ever = true;
        if (!up.done) all_done = false;
      }
    }
    if (any_live_ever && all_done) {
      done_delivered_ = true;
      owner_->PortDone(port_id_);
    }
  }

  PortOwner<T>* owner_;
  Node* owner_node_;
  int port_id_;
  std::vector<Upstream> slots_;
  std::size_t live_upstreams_ = 0;
  Timestamp last_notified_ = kMinTimestamp;
  bool done_delivered_ = false;
};

}  // namespace pipes

#endif  // PIPES_CORE_PORT_H_
