#ifndef PIPES_CORE_SINK_H_
#define PIPES_CORE_SINK_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/core/element.h"
#include "src/core/node.h"
#include "src/core/port.h"

/// \file
/// Terminal sinks: nodes that consume streaming query results and present,
/// store, or transfer them (the paper's applications / PDAs / terminal
/// users). `Sink` is the abstract pre-implementation; the concrete sinks
/// here cover testing and the demo applications.

namespace pipes {

/// A terminal consumer of elements of type `T` with a single input port.
template <typename T>
class Sink : public Node, public PortOwner<T> {
 public:
  explicit Sink(std::string name)
      : Node(std::move(name)), input_(this, this, 0) {}

  InputPort<T>& input() { return input_; }

  /// True once every upstream has signalled end-of-stream.
  bool done() const { return done_; }

  /// Merged input watermark.
  Timestamp watermark() const { return input_.watermark(); }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kSink;
    d.op = "sink";
    d.port_upstreams = {input_.num_upstreams()};
    return d;
  }

 protected:
  void PortProgress(int /*port_id*/, Timestamp /*watermark*/) override {}
  void PortDone(int /*port_id*/) override { done_ = true; }

 private:
  InputPort<T> input_;
  bool done_ = false;
};

/// Stores every received element; the workhorse of the test suite.
template <typename T>
class CollectorSink : public Sink<T> {
 public:
  explicit CollectorSink(std::string name = "collector")
      : Sink<T>(std::move(name)) {}

  const std::vector<StreamElement<T>>& elements() const { return elements_; }
  std::vector<StreamElement<T>>& mutable_elements() { return elements_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = Sink<T>::Describe();
    d.op = "collector-sink";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    elements_.push_back(e);
  }

  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    elements_.insert(elements_.end(), batch.begin(), batch.end());
  }

  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    run.MaterializeTo(elements_);
  }

 private:
  std::vector<StreamElement<T>> elements_;
};

/// Counts elements without storing them; used by benchmarks to keep the
/// dataflow alive at zero memory cost.
template <typename T>
class CountingSink : public Sink<T> {
 public:
  explicit CountingSink(std::string name = "counter")
      : Sink<T>(std::move(name)) {}

  std::uint64_t count() const { return count_; }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = Sink<T>::Describe();
    d.op = "counting-sink";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    ++count_;
    // Defeat dead-code elimination of the whole upstream pipeline.
    checksum_ ^= static_cast<std::uint64_t>(e.start());
  }

  void PortBatch(int /*port_id*/,
                 std::span<const StreamElement<T>> batch) override {
    count_ += batch.size();
    for (const StreamElement<T>& e : batch) {
      checksum_ ^= static_cast<std::uint64_t>(e.start());
    }
  }

  /// Columnar kernel: one pass over the starts column alone.
  void PortRun(int /*port_id*/, const ColumnarRun<T>& run) override {
    count_ += run.size();
    for (const Timestamp s : run.starts) {
      checksum_ ^= static_cast<std::uint64_t>(s);
    }
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t checksum_ = 0;
};

/// Invokes a user function per element — the purpose-built application sink
/// in its simplest form.
template <typename T>
class CallbackSink : public Sink<T> {
 public:
  using Callback = std::function<void(const StreamElement<T>&)>;

  CallbackSink(Callback callback, std::string name = "callback")
      : Sink<T>(std::move(name)), callback_(std::move(callback)) {}

  NodeDescriptor Describe() const override {
    NodeDescriptor d = Sink<T>::Describe();
    d.op = "callback-sink";
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    callback_(e);
  }

 private:
  Callback callback_;
};

}  // namespace pipes

#endif  // PIPES_CORE_SINK_H_
