#ifndef PIPES_CORE_SOURCE_H_
#define PIPES_CORE_SOURCE_H_

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/core/node.h"
#include "src/core/pipe_edge.h"
#include "src/core/port.h"
#include "src/core/trace.h"

/// \file
/// The source half of the publish-subscribe architecture: a node that
/// transfers elements of type `T` to its set of subscribed input ports
/// (the paper: "a source transfers its elements to a set of subscribed
/// sinks"). Subscriptions can be added and removed at runtime, which is how
/// the multi-query optimizer grafts new query plans onto a running graph.

namespace pipes {

/// A query-graph node with one output of element type `T`.
///
/// `Transfer*` members deliver directly (synchronously) to every subscribed
/// port — the queue-less connection the paper highlights. Subclasses must
/// transfer elements in non-decreasing `start()` order and must finish with
/// `TransferDone()`.
///
/// Under an attached `PipeExecutor` the same `Transfer*` calls *stage* into
/// this node's `Pipe<T>` edge instead of delivering synchronously; the
/// executor later polls the pipe and delivers the staged columnar runs
/// (DESIGN.md §4f). Output bookkeeping (order check, `last_start_`,
/// counters, trace) happens at staging time either way, so metrics are
/// identical on both paths.
///
/// Subscription changes must not happen from inside a Transfer call chain,
/// nor while an executor is attached.
template <typename T>
class Source : public Node {
 public:
  using Element = StreamElement<T>;

  explicit Source(std::string name) : Node(std::move(name)) {}

  /// Subscribes `port` to this source. The subscriber will see all elements
  /// transferred from now on. Equivalent to `port.SubscribeTo(*this)`,
  /// which is the spelling that reads in dataflow direction.
  void AddSubscriber(InputPort<T>& port) {
    const int slot = port.AddUpstream();
    subscriptions_.push_back({&port, slot});
    downstream_.push_back(port.owner_node());
    port.owner_node()->upstream_.push_back(this);
    // A late subscriber must not stall progress behind time that has already
    // elapsed on this source.
    if (last_start_ > kMinTimestamp) {
      port.ReceiveHeartbeat(slot, last_start_);
    }
    if (done_) {
      port.ReceiveDone(slot);
    }
  }

  /// Cancels the subscription of `port`. No-op status if not subscribed.
  Status UnsubscribeFrom(InputPort<T>& port) {
    auto it = std::find_if(
        subscriptions_.begin(), subscriptions_.end(),
        [&](const Subscription& s) { return s.port == &port; });
    if (it == subscriptions_.end()) {
      return Status::NotFound("port is not subscribed to source " + name());
    }
    port.RemoveUpstream(it->slot);
    subscriptions_.erase(it);
    EraseOneTopologyEdge(port.owner_node());
    return Status::OK();
  }

  std::size_t num_subscribers() const { return subscriptions_.size(); }

  /// True once TransferDone was called.
  bool output_done() const { return done_; }

  /// Largest element start transferred so far (the source's implicit
  /// heartbeat level).
  Timestamp last_start() const { return last_start_; }

  /// Creates this source's `Pipe<T>` and reroutes `Transfer*` into it.
  PipeBase* AttachExecutor(ExecutorLink* link) override {
    PIPES_CHECK(stage_ == nullptr);
    pipe_ = std::make_unique<Pipe<T>>(this, link);
    stage_ = pipe_.get();
    executor_attached_ = true;
    return pipe_.get();
  }

  void DetachExecutor() override {
    if (stage_ != nullptr) {
      PIPES_CHECK(!stage_->HasStaged());
      stage_ = nullptr;
      pipe_.reset();
      executor_attached_ = false;
    }
  }

 protected:
  /// Delivers `element` to all subscribers. Enforces (in debug builds) the
  /// non-decreasing start-order invariant.
  void Transfer(const Element& element) {
    PIPES_DCHECK(!done_);
    PIPES_DCHECK(element.start() >= last_start_ ||
                 last_start_ == kMinTimestamp);
    last_start_ = std::max(last_start_, element.start());
    CountOut();
    this->AdvanceProgress(last_start_);
    trace::RecordHop(this->id(), element.start(), trace::Hop::kEmit);
    if (stage_ != nullptr) {
      stage_->StageElement(element);
      return;
    }
    for (const Subscription& s : subscriptions_) {
      s.port->Receive(s.slot, element);
    }
  }

  /// Delivers a whole run of elements to all subscribers in one call.
  /// `batch` must be ordered by non-decreasing start and must not start
  /// before anything already transferred; control signals never ride inside
  /// a batch (use TransferHeartbeat / TransferDone). Bookkeeping
  /// (`last_start_`, counters) updates once per batch, and each subscriber
  /// pays one virtual dispatch + one watermark merge instead of one per
  /// element. `TransferBatch` on a single-element span is semantically
  /// identical to `Transfer`.
  void TransferBatch(std::span<const Element> batch) {
    if (batch.empty()) return;
    PIPES_DCHECK(!done_);
    PIPES_DCHECK(batch.front().start() >= last_start_ ||
                 last_start_ == kMinTimestamp);
    PIPES_DCHECK(std::is_sorted(batch.begin(), batch.end(),
                                [](const Element& a, const Element& b) {
                                  return a.start() < b.start();
                                }));
    last_start_ = std::max(last_start_, batch.back().start());
    CountOut(batch.size());
    this->CountBatchOut();
    this->AdvanceProgress(last_start_);
    trace::RecordBatchHops(this->id(), batch.data(), batch.size(),
                           trace::Hop::kEmit);
    if (stage_ != nullptr) {
      stage_->StageBatch(batch);
      return;
    }
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveBatch(s.slot, batch);
    }
  }

  /// `TransferBatch` for a columnar run: same ordering contract and
  /// bookkeeping, but the elements stay in SoA layout end to end —
  /// subscribers receive it through `ReceiveRun`/`PortRun`, so two columnar
  /// kernels compose without ever materializing `StreamElement`s between
  /// them.
  void TransferRun(const ColumnarRun<T>& run) {
    if (run.empty()) return;
    BookkeepRunTransfer(run);
    if (stage_ != nullptr) {
      stage_->StageRun(run);
      return;
    }
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveRun(s.slot, run);
    }
  }

  /// Consuming `TransferRun`: under an executor the columns are swapped
  /// into the pipe's staged entry instead of copied, and `run` comes back
  /// cleared with recycled capacity — so an operator that keeps one scratch
  /// run and hands it off every flush stages with zero copies and zero
  /// allocations in steady state. On the direct path `run` is left intact
  /// (treat it as unspecified and `clear()` before reuse either way).
  void TransferRun(ColumnarRun<T>&& run) {
    if (run.empty()) return;
    BookkeepRunTransfer(run);
    if (stage_ != nullptr) {
      stage_->StageRun(std::move(run));
      return;
    }
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveRun(s.slot, run);
    }
  }

  /// Promises that no future element will have `start() < t`.
  void TransferHeartbeat(Timestamp t) {
    PIPES_DCHECK(!done_);
    if (t <= last_start_) return;
    last_start_ = t;
    this->AdvanceProgress(t);
    if (stage_ != nullptr) {
      stage_->StageHeartbeat(t);
      return;
    }
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveHeartbeat(s.slot, t);
    }
  }

  /// Signals end-of-stream to all subscribers. Idempotent.
  void TransferDone() {
    if (done_) return;
    done_ = true;
    // End-of-stream pins this node's progress clock at +inf, matching the
    // kMaxTimestamp watermark the subscribers will report — a drained graph
    // shows zero watermark lag everywhere.
    this->AdvanceProgress(kMaxTimestamp);
    if (stage_ != nullptr) {
      stage_->StageDone();
      return;
    }
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveDone(s.slot);
    }
  }

 private:
  template <typename U>
  friend class Pipe;

  /// The shared order-check/bookkeeping block of both `TransferRun`
  /// overloads (`run` is non-empty here).
  void BookkeepRunTransfer(const ColumnarRun<T>& run) {
    PIPES_DCHECK(!done_);
    PIPES_DCHECK(run.starts.front() >= last_start_ ||
                 last_start_ == kMinTimestamp);
    PIPES_DCHECK(std::is_sorted(run.starts.begin(), run.starts.end()));
    PIPES_DCHECK(run.ends.size() == run.starts.size() &&
                 run.payloads.size() == run.starts.size());
    last_start_ = std::max(last_start_, run.starts.back());
    CountOut(run.size());
    this->CountBatchOut();
    this->AdvanceProgress(last_start_);
    trace::RecordRunHops(this->id(), run.starts.data(), run.size(),
                         trace::Hop::kEmit);
  }

  // --- Staged delivery (called from Pipe<T>::Deliver) -----------------------
  // Bookkeeping already happened at staging time; these only run the
  // subscriber loops. The downstream operators they invoke stage into their
  // own pipes, so the call depth is constant regardless of chain length.

  void DeliverStagedRun(const ColumnarRun<T>& run) {
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveRun(s.slot, run);
    }
  }

  void DeliverStagedHeartbeat(Timestamp t) {
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveHeartbeat(s.slot, t);
    }
  }

  void DeliverStagedDone() {
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveDone(s.slot);
    }
  }
  struct Subscription {
    InputPort<T>* port;
    int slot;
  };

  void EraseOneTopologyEdge(Node* down) {
    auto dit = std::find(downstream_.begin(), downstream_.end(), down);
    if (dit != downstream_.end()) downstream_.erase(dit);
    auto& ups = down->upstream_;
    auto uit = std::find(ups.begin(), ups.end(), static_cast<Node*>(this));
    if (uit != ups.end()) ups.erase(uit);
  }

  std::vector<Subscription> subscriptions_;
  Timestamp last_start_ = kMinTimestamp;
  bool done_ = false;
  /// Non-null while a `PipeExecutor` is attached: `Transfer*` stages here.
  Pipe<T>* stage_ = nullptr;
  std::unique_ptr<Pipe<T>> pipe_;
};

// Out-of-line so port.h (which source.h includes) only needs the forward
// declaration of Source<T>.
template <typename T>
void InputPort<T>::SubscribeTo(Source<T>& source) {
  source.AddSubscriber(*this);
}

// --- Pipe<T> member definitions --------------------------------------------
// Out-of-line here (not in pipe_edge.h) because they call into Source<T>'s
// private staged-delivery methods; every TU that instantiates Source<T> —
// and hence Pipe<T>, created only by AttachExecutor above — sees them.

template <typename T>
Pipe<T>::Pipe(Source<T>* source, ExecutorLink* link)
    : PipeBase(source, link), source_(source) {}

template <typename T>
std::size_t Pipe<T>::Deliver() {
  delivering_.clear();
  delivering_.swap(entries_);
  const std::size_t units = staged_units_;
  staged_units_ = 0;
  ResetToIdle();
  for (Entry& entry : delivering_) {
    switch (entry.kind) {
      case Entry::kRun:
        if (!entry.run.empty()) source_->DeliverStagedRun(entry.run);
        entry.run.clear();
        break;
      case Entry::kHeartbeat:
        source_->DeliverStagedHeartbeat(entry.heartbeat);
        break;
      case Entry::kDone:
        source_->DeliverStagedDone();
        break;
    }
  }
  // Recycle the entries (column capacity intact) into the staging pool.
  for (Entry& entry : delivering_) {
    pool_.push_back(std::move(entry));
  }
  delivering_.clear();
  return units;
}

}  // namespace pipes

#endif  // PIPES_CORE_SOURCE_H_
