#ifndef PIPES_CORE_SOURCE_H_
#define PIPES_CORE_SOURCE_H_

#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/element.h"
#include "src/core/node.h"
#include "src/core/port.h"
#include "src/core/trace.h"

/// \file
/// The source half of the publish-subscribe architecture: a node that
/// transfers elements of type `T` to its set of subscribed input ports
/// (the paper: "a source transfers its elements to a set of subscribed
/// sinks"). Subscriptions can be added and removed at runtime, which is how
/// the multi-query optimizer grafts new query plans onto a running graph.

namespace pipes {

/// A query-graph node with one output of element type `T`.
///
/// `Transfer*` members deliver directly (synchronously) to every subscribed
/// port — the queue-less connection the paper highlights. Subclasses must
/// transfer elements in non-decreasing `start()` order and must finish with
/// `TransferDone()`.
///
/// Subscription changes must not happen from inside a Transfer call chain.
template <typename T>
class Source : public Node {
 public:
  using Element = StreamElement<T>;

  explicit Source(std::string name) : Node(std::move(name)) {}

  /// Subscribes `port` to this source. The subscriber will see all elements
  /// transferred from now on. Equivalent to `port.SubscribeTo(*this)`,
  /// which is the spelling that reads in dataflow direction.
  void AddSubscriber(InputPort<T>& port) {
    const int slot = port.AddUpstream();
    subscriptions_.push_back({&port, slot});
    downstream_.push_back(port.owner_node());
    port.owner_node()->upstream_.push_back(this);
    // A late subscriber must not stall progress behind time that has already
    // elapsed on this source.
    if (last_start_ > kMinTimestamp) {
      port.ReceiveHeartbeat(slot, last_start_);
    }
    if (done_) {
      port.ReceiveDone(slot);
    }
  }

  /// Cancels the subscription of `port`. No-op status if not subscribed.
  Status UnsubscribeFrom(InputPort<T>& port) {
    auto it = std::find_if(
        subscriptions_.begin(), subscriptions_.end(),
        [&](const Subscription& s) { return s.port == &port; });
    if (it == subscriptions_.end()) {
      return Status::NotFound("port is not subscribed to source " + name());
    }
    port.RemoveUpstream(it->slot);
    subscriptions_.erase(it);
    EraseOneTopologyEdge(port.owner_node());
    return Status::OK();
  }

  std::size_t num_subscribers() const { return subscriptions_.size(); }

  /// True once TransferDone was called.
  bool output_done() const { return done_; }

  /// Largest element start transferred so far (the source's implicit
  /// heartbeat level).
  Timestamp last_start() const { return last_start_; }

 protected:
  /// Delivers `element` to all subscribers. Enforces (in debug builds) the
  /// non-decreasing start-order invariant.
  void Transfer(const Element& element) {
    PIPES_DCHECK(!done_);
    PIPES_DCHECK(element.start() >= last_start_ ||
                 last_start_ == kMinTimestamp);
    last_start_ = std::max(last_start_, element.start());
    CountOut();
    this->AdvanceProgress(last_start_);
    trace::RecordHop(this->id(), element.start(), trace::Hop::kEmit);
    for (const Subscription& s : subscriptions_) {
      s.port->Receive(s.slot, element);
    }
  }

  /// Delivers a whole run of elements to all subscribers in one call.
  /// `batch` must be ordered by non-decreasing start and must not start
  /// before anything already transferred; control signals never ride inside
  /// a batch (use TransferHeartbeat / TransferDone). Bookkeeping
  /// (`last_start_`, counters) updates once per batch, and each subscriber
  /// pays one virtual dispatch + one watermark merge instead of one per
  /// element. `TransferBatch` on a single-element span is semantically
  /// identical to `Transfer`.
  void TransferBatch(std::span<const Element> batch) {
    if (batch.empty()) return;
    PIPES_DCHECK(!done_);
    PIPES_DCHECK(batch.front().start() >= last_start_ ||
                 last_start_ == kMinTimestamp);
    PIPES_DCHECK(std::is_sorted(batch.begin(), batch.end(),
                                [](const Element& a, const Element& b) {
                                  return a.start() < b.start();
                                }));
    last_start_ = std::max(last_start_, batch.back().start());
    CountOut(batch.size());
    this->CountBatchOut();
    this->AdvanceProgress(last_start_);
    trace::RecordBatchHops(this->id(), batch.data(), batch.size(),
                           trace::Hop::kEmit);
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveBatch(s.slot, batch);
    }
  }

  /// Promises that no future element will have `start() < t`.
  void TransferHeartbeat(Timestamp t) {
    PIPES_DCHECK(!done_);
    if (t <= last_start_) return;
    last_start_ = t;
    this->AdvanceProgress(t);
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveHeartbeat(s.slot, t);
    }
  }

  /// Signals end-of-stream to all subscribers. Idempotent.
  void TransferDone() {
    if (done_) return;
    done_ = true;
    // End-of-stream pins this node's progress clock at +inf, matching the
    // kMaxTimestamp watermark the subscribers will report — a drained graph
    // shows zero watermark lag everywhere.
    this->AdvanceProgress(kMaxTimestamp);
    for (const Subscription& s : subscriptions_) {
      s.port->ReceiveDone(s.slot);
    }
  }

 private:
  struct Subscription {
    InputPort<T>* port;
    int slot;
  };

  void EraseOneTopologyEdge(Node* down) {
    auto dit = std::find(downstream_.begin(), downstream_.end(), down);
    if (dit != downstream_.end()) downstream_.erase(dit);
    auto& ups = down->upstream_;
    auto uit = std::find(ups.begin(), ups.end(), static_cast<Node*>(this));
    if (uit != ups.end()) ups.erase(uit);
  }

  std::vector<Subscription> subscriptions_;
  Timestamp last_start_ = kMinTimestamp;
  bool done_ = false;
};

// Out-of-line so port.h (which source.h includes) only needs the forward
// declaration of Source<T>.
template <typename T>
void InputPort<T>::SubscribeTo(Source<T>& source) {
  source.AddSubscriber(*this);
}

}  // namespace pipes

#endif  // PIPES_CORE_SOURCE_H_
