#ifndef PIPES_CORE_TRACE_H_
#define PIPES_CORE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/common/macros.h"
#include "src/common/time.h"
#include "src/core/metrics.h"

/// \file
/// Element-journey tracing: a bounded, lock-free ring that samples the path
/// of individual elements through a running query graph, one event per hop
/// (a source emitting, a port receiving) with a monotonic timestamp. The
/// paper's monitoring tool displays "runtime behaviour of the system ...
/// online"; counters give aggregate behaviour, the trace ring gives the
/// micro view — where one element went and how long each hop took.
///
/// Sampling is keyed on the element's *application* start timestamp
/// (`start % period == 0`), a pure function of the element, so the same
/// element is sampled at every hop without widening `StreamElement` by a
/// trace id. Journeys are reconstructed by grouping ring events on
/// `element_start` and ordering by `steady_ns`.
///
/// The ring is a fixed-size single-writer-per-slot seqlock: writers claim a
/// slot with one relaxed fetch_add, fill it, then publish with a release
/// store of the sequence number; `Snapshot()` drops slots it catches
/// mid-write. Tracing is off by default and costs one relaxed load per
/// transfer when off.

namespace pipes::trace {

/// What happened at this hop.
enum class Hop : std::uint8_t {
  kEmit = 0,     // a Source transferred the element downstream
  kReceive = 1,  // an InputPort delivered the element to its owner
};

/// One sampled hop.
struct Event {
  std::uint64_t node_id = 0;
  Timestamp element_start = 0;
  std::int64_t steady_ns = 0;
  Hop hop = Hop::kEmit;

  friend bool operator==(const Event&, const Event&) = default;
};

/// Bounded lock-free ring of trace events.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two; older events are
  /// overwritten once the ring is full.
  explicit TraceRing(std::size_t capacity = 1u << 14) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Total events ever recorded (≥ what the ring still holds).
  std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  void Record(std::uint64_t node_id, Timestamp element_start, Hop hop) {
    const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
    Slot& slot = slots_[ticket & (slots_.size() - 1)];
    // Mark the slot in-flight (odd), fill, then publish (even = ticket+2).
    slot.seq.store(2 * ticket + 1, std::memory_order_release);
    slot.event.node_id = node_id;
    slot.event.element_start = element_start;
    slot.event.steady_ns = obs::SteadyNowNs();
    slot.event.hop = hop;
    slot.seq.store(2 * ticket + 2, std::memory_order_release);
  }

  /// Copies out every completely written event still in the ring, oldest
  /// first by slot ticket. Events being overwritten concurrently are
  /// skipped, never torn.
  std::vector<Event> Snapshot() const {
    std::vector<Event> out;
    out.reserve(slots_.size());
    for (const Slot& slot : slots_) {
      const std::uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
      if (seq_before == 0 || (seq_before & 1) != 0) continue;  // empty/in-flight
      Event copy = slot.event;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != seq_before) continue;
      out.push_back(copy);
    }
    return out;
  }

  /// Forgets all recorded events. Not safe concurrently with writers.
  void Clear() {
    head_.store(0, std::memory_order_relaxed);
    for (Slot& slot : slots_) slot.seq.store(0, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    Event event;
  };

  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
};

// --- Global tracing configuration -----------------------------------------
// One process-wide ring keeps the hot-path hook pointer-free; the
// monitoring client owns enabling, period, and draining.

inline std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

inline bool Enabled() {
#ifdef PIPES_DISABLE_OBSERVABILITY
  return false;
#else
  return EnabledFlag().load(std::memory_order_relaxed);
#endif
}

inline void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

inline std::atomic<Timestamp>& SamplePeriodValue() {
  static std::atomic<Timestamp> period{1024};
  return period;
}

/// Elements whose start timestamp is a multiple of the period are traced.
/// Period 1 traces everything (tests); the default of 1024 keeps the ring
/// representative at production rates. Always a power of two so the batch
/// scan is a mask, not a division.
inline Timestamp SamplePeriod() {
  return SamplePeriodValue().load(std::memory_order_relaxed);
}

/// Rounds `period` up to the next power of two.
inline void SetSamplePeriod(Timestamp period) {
  PIPES_CHECK(period > 0);
  Timestamp pow2 = 1;
  while (pow2 < period) pow2 <<= 1;
  SamplePeriodValue().store(pow2, std::memory_order_relaxed);
}

inline TraceRing& GlobalRing() {
  static TraceRing ring;
  return ring;
}

/// True if an element with this start timestamp is in the sample.
inline bool Sampled(Timestamp element_start) {
  const auto mask =
      static_cast<std::uint64_t>(SamplePeriod()) - 1;
  return (static_cast<std::uint64_t>(element_start) & mask) == 0;
}

/// Hot-path hook: record one hop if tracing is on and the element is
/// sampled. The off cost is the `Enabled()` relaxed load.
inline void RecordHop(std::uint64_t node_id, Timestamp element_start,
                      Hop hop) {
  if (!Enabled()) return;
  if (!Sampled(element_start)) return;
  GlobalRing().Record(node_id, element_start, hop);
}

/// Batch variant: scans the batch for sampled starts only when tracing is
/// enabled; one relaxed load when off.
template <typename Element>
inline void RecordBatchHops(std::uint64_t node_id,
                            const Element* elements, std::size_t n,
                            Hop hop) {
  if (!Enabled()) return;
  const auto mask = static_cast<std::uint64_t>(SamplePeriod()) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    if ((static_cast<std::uint64_t>(elements[i].start()) & mask) == 0) {
      GlobalRing().Record(node_id, elements[i].start(), hop);
    }
  }
}

/// Columnar variant: like `RecordBatchHops` but over a contiguous column of
/// interval starts (the SoA run layout has no elements to take `.start()`
/// of). One relaxed load when tracing is off.
inline void RecordRunHops(std::uint64_t node_id, const Timestamp* starts,
                          std::size_t n, Hop hop) {
  if (!Enabled()) return;
  const auto mask = static_cast<std::uint64_t>(SamplePeriod()) - 1;
  for (std::size_t i = 0; i < n; ++i) {
    if ((static_cast<std::uint64_t>(starts[i]) & mask) == 0) {
      GlobalRing().Record(node_id, starts[i], hop);
    }
  }
}

}  // namespace pipes::trace

#endif  // PIPES_CORE_TRACE_H_
