#include "src/cql/analyzer.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <utility>
#include <vector>

#include "src/cql/parser.h"
#include "src/relational/expression.h"

namespace pipes::cql {

namespace {

using optimizer::AggKind;
using optimizer::AggSpec;
using optimizer::JoinOp;
using optimizer::LogicalPlan;
using relational::ExprPtr;
using relational::Schema;

Result<AggKind> AggKindFromName(const std::string& name) {
  std::string upper;
  for (char c : name) {
    upper += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  if (upper == "COUNT") return AggKind::kCount;
  if (upper == "SUM") return AggKind::kSum;
  if (upper == "AVG") return AggKind::kAvg;
  if (upper == "MIN") return AggKind::kMin;
  if (upper == "MAX") return AggKind::kMax;
  if (upper == "VARIANCE") return AggKind::kVariance;
  if (upper == "STDDEV") return AggKind::kStddev;
  return Status::InvalidArgument("unknown aggregate '" + name + "'");
}

/// Resolves names to field references; rejects aggregate calls (they are
/// only legal at the top of SELECT items and are handled separately).
Result<ExprPtr> ResolveExpr(const ExprAstPtr& ast, const Schema& schema) {
  switch (ast->kind) {
    case ExprAst::Kind::kLiteral:
      return relational::MakeLiteral(ast->literal);
    case ExprAst::Kind::kName: {
      const auto index = schema.IndexOf(ast->name);
      if (!index.has_value()) {
        return Status::InvalidArgument("unknown or ambiguous field '" +
                                       ast->name + "'");
      }
      return relational::MakeField(*index, schema.field(*index).name);
    }
    case ExprAst::Kind::kBinary: {
      PIPES_ASSIGN_OR_RETURN(ExprPtr left,
                             ResolveExpr(ast->children[0], schema));
      PIPES_ASSIGN_OR_RETURN(ExprPtr right,
                             ResolveExpr(ast->children[1], schema));
      return relational::MakeBinary(ast->binary_op, std::move(left),
                                    std::move(right));
    }
    case ExprAst::Kind::kUnary: {
      PIPES_ASSIGN_OR_RETURN(ExprPtr operand,
                             ResolveExpr(ast->children[0], schema));
      return relational::MakeUnary(ast->unary_op, std::move(operand));
    }
    case ExprAst::Kind::kAggCall:
      return Status::InvalidArgument(
          "aggregate calls are only allowed at the top level of SELECT");
  }
  return Status::Internal("unhandled expression kind");
}

/// Default output name for a select item.
std::string ItemName(const SelectItem& item, std::size_t position) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr && item.expr->kind == ExprAst::Kind::kName) {
    return item.expr->name;
  }
  return "expr" + std::to_string(position);
}

}  // namespace

Result<LogicalPlan> Analyze(const QueryAst& query, const Catalog& catalog) {
  if (query.from.empty()) {
    return Status::InvalidArgument("FROM clause is empty");
  }
  if (query.select.empty()) {
    return Status::InvalidArgument("SELECT list is empty");
  }

  // 1. Stream scans (or recursively analyzed derived tables), schemas
  // qualified by alias.
  std::set<std::string> aliases;
  LogicalPlan plan;
  for (const StreamRef& ref : query.from) {
    if (!aliases.insert(ref.alias).second) {
      return Status::InvalidArgument("duplicate stream alias '" + ref.alias +
                                     "'");
    }
    LogicalPlan scan;
    if (ref.subquery != nullptr) {
      // Derived table: the subquery's plan, re-qualified under the alias by
      // an identity projection (field i stays field i; only names change).
      // Inner qualification is dropped first ("obs.v" -> "alias.v") so the
      // outer query addresses columns as alias.name.
      PIPES_ASSIGN_OR_RETURN(scan, Analyze(*ref.subquery, catalog));
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      for (std::size_t i = 0; i < scan->schema.arity(); ++i) {
        const std::string& inner = scan->schema.field(i).name;
        const std::size_t dot = inner.rfind('.');
        const std::string base =
            dot == std::string::npos ? inner : inner.substr(dot + 1);
        exprs.push_back(relational::MakeField(i, inner));
        names.push_back(ref.alias + "." + base);
      }
      scan = optimizer::ProjectOp(std::move(scan), std::move(exprs),
                                  std::move(names));
    } else {
      PIPES_ASSIGN_OR_RETURN(const Catalog::StreamInfo* info,
                             catalog.Lookup(ref.stream));
      scan = optimizer::ScanOp(ref.stream,
                               info->schema.WithPrefix(ref.alias), ref.window);
    }
    // 2. Left-deep cross-join chain in FROM order; the optimizer extracts
    // equi keys from the WHERE predicate afterwards.
    plan = plan == nullptr
               ? scan
               : JoinOp(std::move(plan), std::move(scan), {}, nullptr);
  }

  // 3. WHERE.
  if (query.where != nullptr) {
    PIPES_ASSIGN_OR_RETURN(ExprPtr predicate,
                           ResolveExpr(query.where, plan->schema));
    plan = optimizer::FilterOp(std::move(plan), std::move(predicate));
  }

  // 4. Aggregation needed?
  bool has_agg = false;
  for (const SelectItem& item : query.select) {
    if (item.expr != nullptr && item.expr->kind == ExprAst::Kind::kAggCall) {
      has_agg = true;
    }
  }

  if (!query.group_by.empty() || has_agg) {
    // 4a. Resolve group fields.
    std::vector<std::size_t> group_fields;
    for (const std::string& name : query.group_by) {
      const auto index = plan->schema.IndexOf(name);
      if (!index.has_value()) {
        return Status::InvalidArgument("unknown or ambiguous GROUP BY field '" +
                                       name + "'");
      }
      group_fields.push_back(*index);
    }

    // 4b. Split SELECT items into aggregates and grouped fields.
    struct ItemSlot {
      bool is_agg;
      std::size_t index;  // agg index or position in group_fields
    };
    std::vector<ItemSlot> slots;
    std::vector<AggSpec> aggs;
    std::vector<std::string> names;
    for (std::size_t i = 0; i < query.select.size(); ++i) {
      const SelectItem& item = query.select[i];
      if (item.star) {
        return Status::InvalidArgument("SELECT * cannot be combined with "
                                       "aggregation");
      }
      names.push_back(ItemName(item, i));
      if (item.expr->kind == ExprAst::Kind::kAggCall) {
        AggSpec spec;
        PIPES_ASSIGN_OR_RETURN(spec.kind, AggKindFromName(item.expr->name));
        if (!item.expr->children.empty()) {
          PIPES_ASSIGN_OR_RETURN(
              spec.arg, ResolveExpr(item.expr->children[0], plan->schema));
        } else if (spec.kind != AggKind::kCount) {
          return Status::InvalidArgument("only COUNT may be applied to *");
        }
        spec.output_name = names.back();
        slots.push_back({true, aggs.size()});
        aggs.push_back(std::move(spec));
      } else if (item.expr->kind == ExprAst::Kind::kName) {
        const auto index = plan->schema.IndexOf(item.expr->name);
        if (!index.has_value()) {
          return Status::InvalidArgument("unknown or ambiguous field '" +
                                         item.expr->name + "'");
        }
        const auto pos = std::find(group_fields.begin(), group_fields.end(),
                                   *index);
        if (pos == group_fields.end()) {
          return Status::InvalidArgument(
              "non-aggregate SELECT item '" + item.expr->name +
              "' must appear in GROUP BY");
        }
        slots.push_back(
            {false, static_cast<std::size_t>(pos - group_fields.begin())});
      } else {
        return Status::InvalidArgument(
            "with aggregation, SELECT items must be grouped fields or "
            "aggregate calls");
      }
    }

    plan = optimizer::GroupAggregateOp(std::move(plan), group_fields, aggs);

    // 4b'. HAVING filters the aggregate output (group fields + aggregate
    // names are in scope).
    if (query.having != nullptr) {
      PIPES_ASSIGN_OR_RETURN(ExprPtr having,
                             ResolveExpr(query.having, plan->schema));
      plan = optimizer::FilterOp(std::move(plan), std::move(having));
    }

    // 4c. Rearrange (group fields first, then aggs) into SELECT order.
    std::vector<ExprPtr> exprs;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::size_t source_index =
          slots[i].is_agg ? group_fields.size() + slots[i].index
                          : slots[i].index;
      exprs.push_back(relational::MakeField(
          source_index, plan->schema.field(source_index).name));
    }
    plan = optimizer::ProjectOp(std::move(plan), std::move(exprs),
                                std::move(names));
  } else if (!(query.select.size() == 1 && query.select[0].star)) {
    // 5. Plain projection.
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (std::size_t i = 0; i < query.select.size(); ++i) {
      const SelectItem& item = query.select[i];
      if (item.star) {
        return Status::InvalidArgument(
            "'*' must be the only SELECT item in this subset");
      }
      PIPES_ASSIGN_OR_RETURN(ExprPtr expr,
                             ResolveExpr(item.expr, plan->schema));
      exprs.push_back(std::move(expr));
      names.push_back(ItemName(item, i));
    }
    plan = optimizer::ProjectOp(std::move(plan), std::move(exprs),
                                std::move(names));
  }

  if (query.having != nullptr && query.group_by.empty() && !has_agg) {
    return Status::InvalidArgument("HAVING requires aggregation");
  }

  if (query.distinct) {
    plan = optimizer::DistinctOp(std::move(plan));
  }

  // 6. Relation-to-stream mode.
  switch (query.stream_mode) {
    case StreamMode::kRStream:
      break;  // interval streams are the relation representation already
    case StreamMode::kIStream:
      plan = optimizer::IStreamOp(std::move(plan));
      break;
    case StreamMode::kDStream:
      plan = optimizer::DStreamOp(std::move(plan));
      break;
  }
  return plan;
}

Result<CompiledQuery> Compile(const std::string& query_text,
                              const Catalog& catalog) {
  PIPES_ASSIGN_OR_RETURN(QueryAst ast, Parse(query_text));
  PIPES_ASSIGN_OR_RETURN(LogicalPlan plan, Analyze(ast, catalog));
  CompiledQuery compiled;
  compiled.text = query_text;
  compiled.ast = std::move(ast);
  compiled.schema = plan->schema;
  compiled.plan = std::move(plan);
  return compiled;
}

Result<relational::ExprPtr> ResolveExpression(
    const ExprAstPtr& ast, const relational::Schema& schema) {
  return ResolveExpr(ast, schema);
}

}  // namespace pipes::cql
