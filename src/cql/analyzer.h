#ifndef PIPES_CQL_ANALYZER_H_
#define PIPES_CQL_ANALYZER_H_

#include <string>

#include "src/common/status.h"
#include "src/cql/ast.h"
#include "src/cql/catalog.h"
#include "src/optimizer/logical_plan.h"

/// \file
/// Semantic analysis: binds a parsed query against the catalog and lowers
/// it to a logical plan — stream scans with windows, a left-deep cross-join
/// chain in FROM order, the WHERE predicate as a filter on top (the
/// optimizer later pushes it down and extracts equi-join keys), grouped
/// aggregation, projection, and DISTINCT.
///
/// Restrictions of the subset: aggregates appear only in the SELECT list;
/// with GROUP BY (or any aggregate), non-aggregate SELECT items must be
/// plain grouped field names.

namespace pipes::cql {

/// The fully front-ended form of one continuous query: source text, parsed
/// AST, and the analyzed logical plan with its output schema. This is the
/// single hand-off between the CQL front end and everything downstream
/// (optimizer, plan manager, engine, server): produce it with `Compile`
/// instead of hand-wiring Tokenize → Parse → Analyze.
struct CompiledQuery {
  std::string text;              ///< The source text as submitted.
  QueryAst ast;                  ///< Parsed, unresolved form.
  optimizer::LogicalPlan plan;   ///< Analyzed logical plan.
  relational::Schema schema;     ///< Output schema (`plan->schema`).
};

/// THE CQL entry point: tokenize + parse + analyze in one call. Every
/// consumer of query text (plan manager, engine, server, examples, tests)
/// goes through here; `Parse` and `Analyze` remain available as the
/// individual stages it delegates to.
Result<CompiledQuery> Compile(const std::string& query_text,
                              const Catalog& catalog);

/// Stage entry point: lowers `query` to a logical plan, or a semantic
/// error. Prefer `Compile` unless you already hold an AST.
Result<optimizer::LogicalPlan> Analyze(const QueryAst& query,
                                       const Catalog& catalog);

/// Binds a parsed expression against `schema` (no aggregate calls). Used
/// by the XML plan reader.
Result<relational::ExprPtr> ResolveExpression(
    const ExprAstPtr& ast, const relational::Schema& schema);

}  // namespace pipes::cql

#endif  // PIPES_CQL_ANALYZER_H_
