#ifndef PIPES_CQL_ANALYZER_H_
#define PIPES_CQL_ANALYZER_H_

#include <string>

#include "src/common/status.h"
#include "src/cql/ast.h"
#include "src/cql/catalog.h"
#include "src/optimizer/logical_plan.h"

/// \file
/// Semantic analysis: binds a parsed query against the catalog and lowers
/// it to a logical plan — stream scans with windows, a left-deep cross-join
/// chain in FROM order, the WHERE predicate as a filter on top (the
/// optimizer later pushes it down and extracts equi-join keys), grouped
/// aggregation, projection, and DISTINCT.
///
/// Restrictions of the subset: aggregates appear only in the SELECT list;
/// with GROUP BY (or any aggregate), non-aggregate SELECT items must be
/// plain grouped field names.

namespace pipes::cql {

/// Lowers `query` to a logical plan, or a semantic error.
Result<optimizer::LogicalPlan> Analyze(const QueryAst& query,
                                       const Catalog& catalog);

/// Convenience: parse + analyze.
Result<optimizer::LogicalPlan> Compile(const std::string& query_text,
                                       const Catalog& catalog);

/// Binds a parsed expression against `schema` (no aggregate calls). Used
/// by the XML plan reader.
Result<relational::ExprPtr> ResolveExpression(
    const ExprAstPtr& ast, const relational::Schema& schema);

}  // namespace pipes::cql

#endif  // PIPES_CQL_ANALYZER_H_
