#include "src/cql/ast.h"

#include "src/relational/expression.h"

namespace pipes::cql {

std::string ExprAst::ToString() const {
  switch (kind) {
    case Kind::kName:
      return name;
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " +
             relational::BinaryOpName(binary_op) + " " +
             children[1]->ToString() + ")";
    case Kind::kUnary:
      return std::string(unary_op == relational::UnaryOp::kNot ? "NOT "
                                                               : "-") +
             children[0]->ToString();
    case Kind::kAggCall:
      return name + "(" +
             (children.empty() ? "*" : children[0]->ToString()) + ")";
  }
  return "?";
}

std::string QueryAst::ToString() const {
  std::string out = "SELECT ";
  if (stream_mode == StreamMode::kIStream) out += "ISTREAM ";
  if (stream_mode == StreamMode::kDStream) out += "DSTREAM ";
  if (distinct) out += "DISTINCT ";
  for (std::size_t i = 0; i < select.size(); ++i) {
    if (i > 0) out += ", ";
    out += select[i].star ? "*" : select[i].expr->ToString();
    if (!select[i].alias.empty()) out += " AS " + select[i].alias;
  }
  out += " FROM ";
  for (std::size_t i = 0; i < from.size(); ++i) {
    if (i > 0) out += ", ";
    if (from[i].subquery != nullptr) {
      out += "(" + from[i].subquery->ToString() + ") AS " + from[i].alias;
      continue;
    }
    out += from[i].stream + " [" + from[i].window.ToString() + "]";
    if (from[i].alias != from[i].stream) out += " AS " + from[i].alias;
  }
  if (where != nullptr) out += " WHERE " + where->ToString();
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (std::size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += group_by[i];
    }
    if (having != nullptr) out += " HAVING " + having->ToString();
  }
  return out;
}

}  // namespace pipes::cql
