#ifndef PIPES_CQL_AST_H_
#define PIPES_CQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/optimizer/logical_plan.h"
#include "src/relational/expression.h"
#include "src/relational/value.h"

/// \file
/// Abstract syntax for the CQL subset. Names are unresolved here; the
/// analyzer binds them against the catalog and lowers the query to a
/// logical plan.

namespace pipes::cql {

struct ExprAst;
using ExprAstPtr = std::shared_ptr<const ExprAst>;

/// Parsed expression with unresolved names.
struct ExprAst {
  enum class Kind {
    kName,     // possibly qualified field name ("alias.field")
    kLiteral,
    kBinary,
    kUnary,
    kAggCall,  // COUNT/SUM/AVG/MIN/MAX; child may be empty for COUNT(*)
  };

  Kind kind = Kind::kLiteral;
  std::string name;                      // kName / kAggCall function name
  relational::Value literal;             // kLiteral
  relational::BinaryOp binary_op = relational::BinaryOp::kAdd;  // kBinary
  relational::UnaryOp unary_op = relational::UnaryOp::kNot;     // kUnary
  std::vector<ExprAstPtr> children;

  std::string ToString() const;
};

/// One SELECT list entry; `star` stands for `*`.
struct SelectItem {
  ExprAstPtr expr;    // null when star
  std::string alias;  // empty = derive from the expression
  bool star = false;
};

struct QueryAst;

/// FROM entry: either a named stream with optional window and alias, or a
/// parenthesized derived table `( SELECT ... ) AS alias` (subquery is
/// non-null then; windows attach inside the subquery, not on the result).
struct StreamRef {
  std::string stream;
  std::string alias;  // defaults to the stream name
  optimizer::WindowSpec window;  // defaults to NOW
  std::shared_ptr<const QueryAst> subquery;
};

/// CQL relation-to-stream mode of the query result.
enum class StreamMode { kRStream, kIStream, kDStream };

/// A parsed (not yet analyzed) continuous query.
struct QueryAst {
  std::vector<SelectItem> select;
  std::vector<StreamRef> from;
  ExprAstPtr where;                   // may be null
  std::vector<std::string> group_by;  // field names
  ExprAstPtr having;                  // may be null; requires GROUP BY
  bool distinct = false;
  StreamMode stream_mode = StreamMode::kRStream;

  std::string ToString() const;
};

}  // namespace pipes::cql

#endif  // PIPES_CQL_AST_H_
