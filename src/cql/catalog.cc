#include "src/cql/catalog.h"

namespace pipes::cql {

Status Catalog::RegisterStream(const std::string& name,
                               relational::Schema schema,
                               Source<relational::Tuple>* source,
                               double rate_hint) {
  if (streams_.find(name) != streams_.end()) {
    return Status::AlreadyExists("stream '" + name + "' already registered");
  }
  streams_[name] = StreamInfo{std::move(schema), source, rate_hint};
  return Status::OK();
}

Result<const Catalog::StreamInfo*> Catalog::Lookup(
    const std::string& name) const {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  return &it->second;
}

Status Catalog::SetRateHint(const std::string& name, double rate_hint) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    return Status::NotFound("unknown stream '" + name + "'");
  }
  it->second.rate_hint = rate_hint;
  return Status::OK();
}

std::vector<std::string> Catalog::StreamNames() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [name, info] : streams_) names.push_back(name);
  return names;
}

}  // namespace pipes::cql
