#ifndef PIPES_CQL_CATALOG_H_
#define PIPES_CQL_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/source.h"
#include "src/relational/schema.h"
#include "src/relational/tuple.h"

/// \file
/// The catalog binds stream names to their schemas and to the physical
/// sources feeding the running query graph. The CQL analyzer resolves
/// against it; the plan manager pulls physical sources from it.

namespace pipes::cql {

/// Registry of tuple streams available to continuous queries.
class Catalog {
 public:
  struct StreamInfo {
    relational::Schema schema;
    Source<relational::Tuple>* source = nullptr;
    /// Estimated elements per second, used by the cost model before any
    /// secondary metadata is available.
    double rate_hint = 1000.0;
  };

  /// Registers a stream; fails if the name is taken. `source` may be null
  /// for analysis-only use (no instantiation).
  Status RegisterStream(const std::string& name, relational::Schema schema,
                        Source<relational::Tuple>* source = nullptr,
                        double rate_hint = 1000.0);

  Result<const StreamInfo*> Lookup(const std::string& name) const;

  /// Updates the rate estimate for `name` — the feedback path from the
  /// metadata monitor into the cost model (adaptive optimization).
  Status SetRateHint(const std::string& name, double rate_hint);

  std::vector<std::string> StreamNames() const;

 private:
  std::map<std::string, StreamInfo> streams_;
};

}  // namespace pipes::cql

#endif  // PIPES_CQL_CATALOG_H_
