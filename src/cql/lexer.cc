#include "src/cql/lexer.h"

#include <cctype>

namespace pipes::cql {

namespace {

bool IdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IdentPart(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

char ToUpper(char c) {
  return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
}

}  // namespace

bool Token::Is(const char* upper) const {
  if (kind != TokenKind::kIdent) return false;
  std::size_t i = 0;
  for (; i < text.size(); ++i) {
    if (upper[i] == '\0' || ToUpper(text[i]) != upper[i]) return false;
  }
  return upper[i] == '\0';
}

bool Token::IsSymbol(const char* symbol) const {
  return kind == TokenKind::kSymbol && text == symbol;
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IdentStart(c)) {
      std::size_t j = i;
      while (j < n && IdentPart(input[j])) ++j;
      token.kind = TokenKind::kIdent;
      token.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      bool is_double = false;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) ++j;
      if (j < n && input[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(input[j + 1]))) {
        is_double = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      token.text = input.substr(i, j - i);
      if (is_double) {
        token.kind = TokenKind::kDouble;
        token.double_value = std::stod(token.text);
      } else {
        token.kind = TokenKind::kInt;
        token.int_value = std::stoll(token.text);
      }
      i = j;
    } else if (c == '\'') {
      std::size_t j = i + 1;
      while (j < n && input[j] != '\'') ++j;
      if (j >= n) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      token.kind = TokenKind::kString;
      token.text = input.substr(i + 1, j - i - 1);
      i = j + 1;
    } else {
      token.kind = TokenKind::kSymbol;
      // Two-character operators first.
      if (i + 1 < n) {
        const std::string two = input.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.text = two == "!=" ? "<>" : two;
          i += 2;
          tokens.push_back(std::move(token));
          continue;
        }
      }
      switch (c) {
        case ',':
        case '(':
        case ')':
        case '[':
        case ']':
        case '.':
        case '*':
        case '+':
        case '-':
        case '/':
        case '%':
        case '<':
        case '>':
        case '=':
          token.text = std::string(1, c);
          ++i;
          break;
        default:
          return Status::ParseError("unexpected character '" +
                                    std::string(1, c) + "' at offset " +
                                    std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace pipes::cql
