#ifndef PIPES_CQL_LEXER_H_
#define PIPES_CQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

/// \file
/// Tokenizer for the CQL subset. Keywords are recognized case-insensitively
/// at parse time; the lexer only distinguishes identifiers, literals, and
/// symbols.

namespace pipes::cql {

enum class TokenKind {
  kIdent,    // names and keywords
  kInt,      // integer literal
  kDouble,   // floating literal
  kString,   // 'quoted'
  kSymbol,   // punctuation / operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;          // raw text (symbol spelling for kSymbol)
  std::int64_t int_value = 0;
  double double_value = 0;
  std::size_t position = 0;  // byte offset, for error messages

  /// Case-insensitive keyword/identifier comparison.
  bool Is(const char* upper) const;
  bool IsSymbol(const char* symbol) const;
};

/// Splits `input` into tokens (ending with one kEnd token), or a ParseError
/// pointing at the offending byte.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace pipes::cql

#endif  // PIPES_CQL_LEXER_H_
