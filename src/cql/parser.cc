#include "src/cql/parser.h"

#include <utility>

#include "src/cql/lexer.h"

namespace pipes::cql {

namespace {

using optimizer::WindowKind;
using optimizer::WindowSpec;
using relational::BinaryOp;
using relational::UnaryOp;
using relational::Value;

bool IsAggName(const Token& token) {
  return token.Is("COUNT") || token.Is("SUM") || token.Is("AVG") ||
         token.Is("MIN") || token.Is("MAX") || token.Is("VARIANCE") ||
         token.Is("STDDEV");
}

/// Recursive-descent parser over the token vector.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryAst> ParseQuery() {
    PIPES_ASSIGN_OR_RETURN(QueryAst query, ParseQueryBody());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

  Result<QueryAst> ParseQueryBody() {
    QueryAst query;
    // Each (sub)query collects its own JOIN ... ON conjuncts.
    std::vector<ExprAstPtr> saved_conditions;
    saved_conditions.swap(join_conditions_);
    PIPES_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    // Relation-to-stream mode (CQL's ISTREAM/DSTREAM/RSTREAM), accepted as
    // a SELECT modifier.
    if (Peek().Is("ISTREAM")) {
      Advance();
      query.stream_mode = StreamMode::kIStream;
    } else if (Peek().Is("DSTREAM")) {
      Advance();
      query.stream_mode = StreamMode::kDStream;
    } else if (Peek().Is("RSTREAM")) {
      Advance();
      query.stream_mode = StreamMode::kRStream;
    }
    if (Peek().Is("DISTINCT")) {
      Advance();
      query.distinct = true;
    }
    PIPES_RETURN_IF_ERROR(ParseSelectList(&query));
    PIPES_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PIPES_RETURN_IF_ERROR(ParseFromList(&query));
    if (Peek().Is("WHERE")) {
      Advance();
      PIPES_ASSIGN_OR_RETURN(query.where, ParseExpr());
    }
    // JOIN ... ON conditions desugar into WHERE conjuncts; the optimizer
    // extracts equi keys and pushes the rest down again.
    for (const ExprAstPtr& condition : join_conditions_) {
      query.where = query.where == nullptr
                        ? condition
                        : MakeBinaryAst(BinaryOp::kAnd, query.where,
                                        condition);
    }
    if (Peek().Is("GROUP")) {
      Advance();
      PIPES_RETURN_IF_ERROR(ExpectKeyword("BY"));
      for (;;) {
        PIPES_ASSIGN_OR_RETURN(std::string name, ParseQualifiedName());
        query.group_by.push_back(std::move(name));
        if (!Peek().IsSymbol(",")) break;
        Advance();
      }
      if (Peek().Is("HAVING")) {
        Advance();
        PIPES_ASSIGN_OR_RETURN(query.having, ParseExpr());
      }
    }
    join_conditions_ = std::move(saved_conditions);
    return query;
  }

  Result<ExprAstPtr> ParseStandaloneExpression() {
    PIPES_ASSIGN_OR_RETURN(ExprAstPtr expr, ParseExpr());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input after expression");
    }
    return expr;
  }

 private:
  const Token& Peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(Peek().position) + " (near '" +
                              Peek().text + "')");
  }

  Status ExpectKeyword(const char* keyword) {
    if (!Peek().Is(keyword)) {
      return Error(std::string("expected ") + keyword);
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* symbol) {
    if (!Peek().IsSymbol(symbol)) {
      return Error(std::string("expected '") + symbol + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ParseSelectList(QueryAst* query) {
    if (Peek().IsSymbol("*")) {
      Advance();
      SelectItem item;
      item.star = true;
      query->select.push_back(std::move(item));
      return Status::OK();
    }
    for (;;) {
      SelectItem item;
      PIPES_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (Peek().Is("AS")) {
        Advance();
        if (Peek().kind != TokenKind::kIdent) {
          return Error("expected alias after AS");
        }
        item.alias = Advance().text;
      }
      query->select.push_back(std::move(item));
      if (!Peek().IsSymbol(",")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseFromList(QueryAst* query) {
    PIPES_RETURN_IF_ERROR(ParseStreamRef(query));
    for (;;) {
      if (Peek().IsSymbol(",")) {
        Advance();
        PIPES_RETURN_IF_ERROR(ParseStreamRef(query));
        continue;
      }
      if (Peek().Is("JOIN")) {
        Advance();
        PIPES_RETURN_IF_ERROR(ParseStreamRef(query));
        PIPES_RETURN_IF_ERROR(ExpectKeyword("ON"));
        PIPES_ASSIGN_OR_RETURN(ExprAstPtr condition, ParseExpr());
        join_conditions_.push_back(std::move(condition));
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseStreamRef(QueryAst* query) {
    StreamRef ref;
    if (Peek().IsSymbol("(")) {
      // Derived table: ( SELECT ... ) AS alias. The alias is mandatory —
      // there is no stream name to fall back on.
      Advance();
      PIPES_ASSIGN_OR_RETURN(QueryAst sub, ParseQueryBody());
      PIPES_RETURN_IF_ERROR(ExpectSymbol(")"));
      ref.subquery = std::make_shared<QueryAst>(std::move(sub));
      ref.window.kind = WindowKind::kNow;
      if (Peek().IsSymbol("[")) {
        return Error("windows attach to streams inside the subquery, not to "
                     "the derived table");
      }
      if (Peek().Is("AS")) Advance();
      if (Peek().kind != TokenKind::kIdent || Peek().Is("WHERE") ||
          Peek().Is("GROUP") || Peek().Is("JOIN") || Peek().Is("ON")) {
        return Error("expected alias for derived table");
      }
      ref.alias = Advance().text;
      query->from.push_back(std::move(ref));
      return Status::OK();
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected stream name");
    }
    ref.stream = Advance().text;
    ref.alias = ref.stream;
    ref.window.kind = WindowKind::kNow;
    if (Peek().IsSymbol("[")) {
      PIPES_ASSIGN_OR_RETURN(ref.window, ParseWindow());
    }
    if (Peek().Is("AS")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected alias after AS");
      }
      ref.alias = Advance().text;
    } else if (Peek().kind == TokenKind::kIdent && !Peek().Is("WHERE") &&
               !Peek().Is("GROUP") && !Peek().Is("JOIN") &&
               !Peek().Is("ON")) {
      ref.alias = Advance().text;
    }
    query->from.push_back(std::move(ref));
    return Status::OK();
  }

  Result<WindowSpec> ParseWindow() {
    PIPES_RETURN_IF_ERROR(ExpectSymbol("["));
    WindowSpec window;
    if (Peek().Is("RANGE")) {
      Advance();
      window.kind = WindowKind::kRange;
      PIPES_ASSIGN_OR_RETURN(window.range, ParseDuration());
      if (Peek().Is("SLIDE")) {
        Advance();
        window.kind = WindowKind::kRangeSlide;
        PIPES_ASSIGN_OR_RETURN(window.slide, ParseDuration());
      }
    } else if (Peek().Is("ROWS")) {
      Advance();
      if (Peek().kind != TokenKind::kInt) {
        return Error("expected row count after ROWS");
      }
      window.kind = WindowKind::kRows;
      window.rows = static_cast<std::size_t>(Advance().int_value);
    } else if (Peek().Is("NOW")) {
      Advance();
      window.kind = WindowKind::kNow;
    } else if (Peek().Is("UNBOUNDED")) {
      Advance();
      window.kind = WindowKind::kUnbounded;
    } else {
      return Error("expected RANGE, ROWS, NOW or UNBOUNDED");
    }
    PIPES_RETURN_IF_ERROR(ExpectSymbol("]"));
    return window;
  }

  Result<Timestamp> ParseDuration() {
    if (Peek().kind != TokenKind::kInt) {
      return Error("expected duration value");
    }
    const std::int64_t value = Advance().int_value;
    Timestamp multiplier = 1;
    const Token& unit = Peek();
    if (unit.Is("MILLISECONDS") || unit.Is("MILLISECOND")) {
      multiplier = 1;
      Advance();
    } else if (unit.Is("SECONDS") || unit.Is("SECOND")) {
      multiplier = 1000;
      Advance();
    } else if (unit.Is("MINUTES") || unit.Is("MINUTE")) {
      multiplier = 60ll * 1000;
      Advance();
    } else if (unit.Is("HOURS") || unit.Is("HOUR")) {
      multiplier = 3600ll * 1000;
      Advance();
    } else {
      return Error("expected time unit");
    }
    return Timestamp{value * multiplier};
  }

  Result<std::string> ParseQualifiedName() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected name");
    }
    std::string name = Advance().text;
    while (Peek().IsSymbol(".")) {
      Advance();
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected name after '.'");
      }
      name += "." + Advance().text;
    }
    return name;
  }

  // expr := and_expr (OR and_expr)*
  Result<ExprAstPtr> ParseExpr() { return ParseOr(); }

  Result<ExprAstPtr> ParseOr() {
    PIPES_ASSIGN_OR_RETURN(ExprAstPtr left, ParseAnd());
    while (Peek().Is("OR")) {
      Advance();
      PIPES_ASSIGN_OR_RETURN(ExprAstPtr right, ParseAnd());
      left = MakeBinaryAst(BinaryOp::kOr, left, right);
    }
    return left;
  }

  Result<ExprAstPtr> ParseAnd() {
    PIPES_ASSIGN_OR_RETURN(ExprAstPtr left, ParseNot());
    while (Peek().Is("AND")) {
      Advance();
      PIPES_ASSIGN_OR_RETURN(ExprAstPtr right, ParseNot());
      left = MakeBinaryAst(BinaryOp::kAnd, left, right);
    }
    return left;
  }

  Result<ExprAstPtr> ParseNot() {
    if (Peek().Is("NOT")) {
      Advance();
      PIPES_ASSIGN_OR_RETURN(ExprAstPtr operand, ParseNot());
      auto node = std::make_shared<ExprAst>();
      node->kind = ExprAst::Kind::kUnary;
      node->unary_op = UnaryOp::kNot;
      node->children.push_back(std::move(operand));
      return ExprAstPtr(node);
    }
    return ParseComparison();
  }

  Result<ExprAstPtr> ParseComparison() {
    PIPES_ASSIGN_OR_RETURN(ExprAstPtr left, ParseAdditive());
    const Token& t = Peek();
    BinaryOp op;
    if (t.IsSymbol("=")) {
      op = BinaryOp::kEq;
    } else if (t.IsSymbol("<>")) {
      op = BinaryOp::kNe;
    } else if (t.IsSymbol("<=")) {
      op = BinaryOp::kLe;
    } else if (t.IsSymbol(">=")) {
      op = BinaryOp::kGe;
    } else if (t.IsSymbol("<")) {
      op = BinaryOp::kLt;
    } else if (t.IsSymbol(">")) {
      op = BinaryOp::kGt;
    } else {
      return left;
    }
    Advance();
    PIPES_ASSIGN_OR_RETURN(ExprAstPtr right, ParseAdditive());
    return MakeBinaryAst(op, left, right);
  }

  Result<ExprAstPtr> ParseAdditive() {
    PIPES_ASSIGN_OR_RETURN(ExprAstPtr left, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (Peek().IsSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (Peek().IsSymbol("-")) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      Advance();
      PIPES_ASSIGN_OR_RETURN(ExprAstPtr right, ParseMultiplicative());
      left = MakeBinaryAst(op, left, right);
    }
  }

  Result<ExprAstPtr> ParseMultiplicative() {
    PIPES_ASSIGN_OR_RETURN(ExprAstPtr left, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Peek().IsSymbol("*")) {
        op = BinaryOp::kMul;
      } else if (Peek().IsSymbol("/")) {
        op = BinaryOp::kDiv;
      } else if (Peek().IsSymbol("%")) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      Advance();
      PIPES_ASSIGN_OR_RETURN(ExprAstPtr right, ParseUnary());
      left = MakeBinaryAst(op, left, right);
    }
  }

  Result<ExprAstPtr> ParseUnary() {
    if (Peek().IsSymbol("-")) {
      Advance();
      PIPES_ASSIGN_OR_RETURN(ExprAstPtr operand, ParseUnary());
      auto node = std::make_shared<ExprAst>();
      node->kind = ExprAst::Kind::kUnary;
      node->unary_op = UnaryOp::kNeg;
      node->children.push_back(std::move(operand));
      return ExprAstPtr(node);
    }
    return ParsePrimary();
  }

  Result<ExprAstPtr> ParsePrimary() {
    const Token& t = Peek();
    auto node = std::make_shared<ExprAst>();
    switch (t.kind) {
      case TokenKind::kInt:
        node->kind = ExprAst::Kind::kLiteral;
        node->literal = Value(Advance().int_value);
        return ExprAstPtr(node);
      case TokenKind::kDouble:
        node->kind = ExprAst::Kind::kLiteral;
        node->literal = Value(Advance().double_value);
        return ExprAstPtr(node);
      case TokenKind::kString:
        node->kind = ExprAst::Kind::kLiteral;
        node->literal = Value(Advance().text);
        return ExprAstPtr(node);
      case TokenKind::kIdent: {
        if (t.Is("TRUE") || t.Is("FALSE")) {
          node->kind = ExprAst::Kind::kLiteral;
          node->literal = Value(Advance().Is("TRUE"));
          return ExprAstPtr(node);
        }
        if (IsAggName(t) && Peek(1).IsSymbol("(")) {
          node->kind = ExprAst::Kind::kAggCall;
          node->name = Advance().text;
          Advance();  // '('
          if (Peek().IsSymbol("*")) {
            Advance();
          } else {
            PIPES_ASSIGN_OR_RETURN(ExprAstPtr arg, ParseExpr());
            node->children.push_back(std::move(arg));
          }
          PIPES_RETURN_IF_ERROR(ExpectSymbol(")"));
          return ExprAstPtr(node);
        }
        node->kind = ExprAst::Kind::kName;
        PIPES_ASSIGN_OR_RETURN(node->name, ParseQualifiedName());
        return ExprAstPtr(node);
      }
      case TokenKind::kSymbol:
        if (t.IsSymbol("(")) {
          Advance();
          PIPES_ASSIGN_OR_RETURN(ExprAstPtr inner, ParseExpr());
          PIPES_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        break;
      case TokenKind::kEnd:
        break;
    }
    return Error("expected expression");
  }

  static ExprAstPtr MakeBinaryAst(BinaryOp op, ExprAstPtr left,
                                  ExprAstPtr right) {
    auto node = std::make_shared<ExprAst>();
    node->kind = ExprAst::Kind::kBinary;
    node->binary_op = op;
    node->children.push_back(std::move(left));
    node->children.push_back(std::move(right));
    return node;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<ExprAstPtr> join_conditions_;
};

}  // namespace

Result<QueryAst> Parse(const std::string& query) {
  PIPES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<ExprAstPtr> ParseExpressionAst(const std::string& text) {
  PIPES_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace pipes::cql
