#ifndef PIPES_CQL_PARSER_H_
#define PIPES_CQL_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/cql/ast.h"

/// \file
/// Recursive-descent parser for the CQL subset:
///
///   query     := SELECT [DISTINCT] items FROM streams [WHERE expr]
///                [GROUP BY name (, name)*]
///   items     := '*' | item (',' item)*
///   item      := expr [AS ident]
///   streams   := streamref (',' streamref)*
///   streamref := ident [window] [[AS] ident]
///   window    := '[' RANGE n unit [SLIDE n unit] | ROWS n | NOW |
///                    UNBOUNDED ']'
///   unit      := MILLISECONDS | SECONDS | MINUTES | HOURS
///   expr      := or-expr with the usual precedence; primary supports
///                literals, (possibly qualified) names, aggregate calls
///                COUNT/SUM/AVG/MIN/MAX, parentheses, NOT, unary minus.

namespace pipes::cql {

/// Parses one continuous query. Returns ParseError with offset context on
/// malformed input.
Result<QueryAst> Parse(const std::string& query);

/// Parses a standalone expression (the full input must be one expression).
/// Used by the XML plan reader to revive serialized predicates.
Result<ExprAstPtr> ParseExpressionAst(const std::string& text);

}  // namespace pipes::cql

#endif  // PIPES_CQL_PARSER_H_
