#ifndef PIPES_CURSORS_ARCHIVE_H_
#define PIPES_CURSORS_ARCHIVE_H_

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/sink.h"
#include "src/cursors/cursor.h"

/// \file
/// Historical queries over streams: a sink that materializes the stream it
/// consumes into a start-indexed store, queryable afterwards (or while the
/// stream still runs) through demand-driven cursors — the role the paper
/// assigns to XXL's index-structure framework ("to enable historical
/// queries over streams"). Explicit materialization is the exception in a
/// DSMS; this is the component for exactly that exception.

namespace pipes::cursors {

/// Archives every received element, ordered by validity start. Queries:
///
///  * `ScanAll()`      — everything, in start order.
///  * `QueryRange(iv)` — all elements whose validity overlaps `iv`.
///  * `SnapshotAt(t)`  — payloads valid at instant t (a historical
///                       snapshot query).
///
/// The index is a multimap over start timestamps; range queries prune by
/// start and filter residually by end, which is effective because element
/// validities are bounded in practice (windowed streams).
template <typename T>
class StreamArchive : public Sink<T> {
 public:
  explicit StreamArchive(std::string name = "archive")
      : Sink<T>(std::move(name)) {}

  std::size_t size() const { return index_.size(); }

  /// Longest validity seen; the range-scan lookback bound.
  Timestamp max_validity() const { return max_validity_; }

  CursorPtr<StreamElement<T>> ScanAll() const {
    std::vector<StreamElement<T>> out;
    out.reserve(index_.size());
    for (const auto& [start, element] : index_) out.push_back(element);
    return std::make_unique<VectorCursor<StreamElement<T>>>(std::move(out));
  }

  /// Elements whose validity overlaps [iv.start, iv.end).
  CursorPtr<StreamElement<T>> QueryRange(TimeInterval iv) const {
    std::vector<StreamElement<T>> out;
    // An overlapping element starts before iv.end and no earlier than
    // iv.start - max_validity (else it would have ended already).
    const Timestamp lookback =
        iv.start == kMinTimestamp || max_validity_ == kMaxTimestamp
            ? kMinTimestamp
            : iv.start - max_validity_;
    for (auto it = index_.lower_bound(lookback);
         it != index_.end() && it->first < iv.end; ++it) {
      if (it->second.interval.Overlaps(iv)) out.push_back(it->second);
    }
    return std::make_unique<VectorCursor<StreamElement<T>>>(std::move(out));
  }

  /// Payloads valid at instant `t` (historical snapshot).
  CursorPtr<T> SnapshotAt(Timestamp t) const {
    std::vector<T> out;
    auto overlapping = QueryRange(TimeInterval(t, t + 1));
    while (auto e = overlapping->Next()) out.push_back(e->payload);
    return std::make_unique<VectorCursor<T>>(std::move(out));
  }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    if (e.end() != kMaxTimestamp) {
      max_validity_ = std::max(max_validity_, e.interval.Length());
    } else {
      max_validity_ = kMaxTimestamp;
    }
    index_.emplace(e.start(), e);
  }

 private:
  std::multimap<Timestamp, StreamElement<T>> index_;
  Timestamp max_validity_ = 0;
};

}  // namespace pipes::cursors

#endif  // PIPES_CURSORS_ARCHIVE_H_
