#ifndef PIPES_CURSORS_CURSOR_H_
#define PIPES_CURSORS_CURSOR_H_

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file
/// Demand-driven cursor algebra — the XXL substrate PIPES builds on.
/// A cursor yields elements on request (`Next()`), the dual of the
/// data-driven pipe. The familiar relational operations are provided as
/// cursor combinators; `src/cursors/translate.h` holds the dataflow
/// translation operators (Graefe) that convert between the two worlds.

namespace pipes::cursors {

/// Pull-based iterator; `Next()` returns nullopt when exhausted.
template <typename T>
class Cursor {
 public:
  virtual ~Cursor() = default;
  virtual std::optional<T> Next() = 0;
};

template <typename T>
using CursorPtr = std::unique_ptr<Cursor<T>>;

/// Cursor over an owned vector.
template <typename T>
class VectorCursor : public Cursor<T> {
 public:
  explicit VectorCursor(std::vector<T> values) : values_(std::move(values)) {}

  std::optional<T> Next() override {
    if (next_ >= values_.size()) return std::nullopt;
    return values_[next_++];
  }

 private:
  std::vector<T> values_;
  std::size_t next_ = 0;
};

/// Cursor over a generator function.
template <typename T>
class FunctionCursor : public Cursor<T> {
 public:
  using Generator = std::function<std::optional<T>()>;
  explicit FunctionCursor(Generator generator)
      : generator_(std::move(generator)) {}

  std::optional<T> Next() override { return generator_(); }

 private:
  Generator generator_;
};

/// Selection combinator.
template <typename T>
class FilterCursor : public Cursor<T> {
 public:
  FilterCursor(CursorPtr<T> input, std::function<bool(const T&)> pred)
      : input_(std::move(input)), pred_(std::move(pred)) {}

  std::optional<T> Next() override {
    while (auto v = input_->Next()) {
      if (pred_(*v)) return v;
    }
    return std::nullopt;
  }

 private:
  CursorPtr<T> input_;
  std::function<bool(const T&)> pred_;
};

/// Mapping combinator.
template <typename In, typename Out>
class MapCursor : public Cursor<Out> {
 public:
  MapCursor(CursorPtr<In> input, std::function<Out(const In&)> fn)
      : input_(std::move(input)), fn_(std::move(fn)) {}

  std::optional<Out> Next() override {
    if (auto v = input_->Next()) return fn_(*v);
    return std::nullopt;
  }

 private:
  CursorPtr<In> input_;
  std::function<Out(const In&)> fn_;
};

/// Concatenation (bag union) of two cursors.
template <typename T>
class ConcatCursor : public Cursor<T> {
 public:
  ConcatCursor(CursorPtr<T> first, CursorPtr<T> second)
      : first_(std::move(first)), second_(std::move(second)) {}

  std::optional<T> Next() override {
    if (first_ != nullptr) {
      if (auto v = first_->Next()) return v;
      first_.reset();
    }
    return second_->Next();
  }

 private:
  CursorPtr<T> first_;
  CursorPtr<T> second_;
};

/// Nested-loops join: streams the outer cursor against a materialized
/// inner. Demand-driven: one output per Next().
template <typename L, typename R, typename Out>
class NestedLoopsJoinCursor : public Cursor<Out> {
 public:
  NestedLoopsJoinCursor(CursorPtr<L> outer, std::vector<R> inner,
                        std::function<bool(const L&, const R&)> pred,
                        std::function<Out(const L&, const R&)> combine)
      : outer_(std::move(outer)),
        inner_(std::move(inner)),
        pred_(std::move(pred)),
        combine_(std::move(combine)) {}

  std::optional<Out> Next() override {
    for (;;) {
      if (!current_.has_value()) {
        current_ = outer_->Next();
        if (!current_.has_value()) return std::nullopt;
        inner_pos_ = 0;
      }
      while (inner_pos_ < inner_.size()) {
        const R& r = inner_[inner_pos_++];
        if (pred_(*current_, r)) return combine_(*current_, r);
      }
      current_.reset();
    }
  }

 private:
  CursorPtr<L> outer_;
  std::vector<R> inner_;
  std::function<bool(const L&, const R&)> pred_;
  std::function<Out(const L&, const R&)> combine_;
  std::optional<L> current_;
  std::size_t inner_pos_ = 0;
};

/// Hash group-by: materializes groups on first Next(), then yields
/// (key, aggregate) pairs. Uses the same online aggregation policies as the
/// data-driven operators.
template <typename In, typename Agg, typename KeyFn, typename ValueFn>
class GroupByCursor
    : public Cursor<std::pair<
          std::decay_t<std::invoke_result_t<KeyFn, const In&>>,
          typename Agg::Output>> {
 public:
  using Key = std::decay_t<std::invoke_result_t<KeyFn, const In&>>;
  using Out = std::pair<Key, typename Agg::Output>;

  GroupByCursor(CursorPtr<In> input, KeyFn key_fn, ValueFn value_fn,
                Agg agg = Agg())
      : input_(std::move(input)),
        key_fn_(std::move(key_fn)),
        value_fn_(std::move(value_fn)),
        agg_(std::move(agg)) {}

  std::optional<Out> Next() override {
    if (!materialized_) {
      Materialize();
    }
    if (next_ >= results_.size()) return std::nullopt;
    return results_[next_++];
  }

 private:
  void Materialize() {
    std::unordered_map<Key, typename Agg::State> groups;
    std::vector<Key> order;  // deterministic output: first-seen order
    while (auto v = input_->Next()) {
      const Key key = key_fn_(*v);
      auto [it, inserted] = groups.try_emplace(key, agg_.Init());
      if (inserted) order.push_back(key);
      agg_.Add(it->second, value_fn_(*v));
    }
    results_.reserve(order.size());
    for (const Key& key : order) {
      results_.emplace_back(key, agg_.Result(groups.at(key)));
    }
    materialized_ = true;
  }

  CursorPtr<In> input_;
  KeyFn key_fn_;
  ValueFn value_fn_;
  Agg agg_;
  bool materialized_ = false;
  std::vector<Out> results_;
  std::size_t next_ = 0;
};

/// Drains a cursor into a vector (terminal helper).
template <typename T>
std::vector<T> Collect(Cursor<T>& cursor) {
  std::vector<T> out;
  while (auto v = cursor.Next()) out.push_back(std::move(*v));
  return out;
}

}  // namespace pipes::cursors

#endif  // PIPES_CURSORS_CURSOR_H_
