#ifndef PIPES_CURSORS_RELATION_H_
#define PIPES_CURSORS_RELATION_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/core/pipe.h"
#include "src/cursors/cursor.h"

/// \file
/// Persistent-data access for hybrid queries: an indexed in-memory relation
/// with cursor-based scans and lookups, plus the stream-relation join pipe
/// that probes it per stream element — the pattern of the NEXMark
/// demonstration (joining the bid stream with the person relation).

namespace pipes::cursors {

/// Ordered multimap relation with cursor access.
template <typename K, typename V>
class IndexedRelation {
 public:
  void Insert(K key, V value) { index_.emplace(std::move(key), std::move(value)); }

  std::size_t size() const { return index_.size(); }

  /// Demand-driven scan of all values in key order.
  CursorPtr<V> Scan() const {
    std::vector<V> values;
    values.reserve(index_.size());
    for (const auto& [k, v] : index_) values.push_back(v);
    return std::make_unique<VectorCursor<V>>(std::move(values));
  }

  /// Demand-driven lookup of all values with `key`.
  CursorPtr<V> Lookup(const K& key) const {
    auto [lo, hi] = index_.equal_range(key);
    std::vector<V> values;
    for (auto it = lo; it != hi; ++it) values.push_back(it->second);
    return std::make_unique<VectorCursor<V>>(std::move(values));
  }

  /// Demand-driven range scan over keys in [lo, hi].
  CursorPtr<V> Range(const K& lo, const K& hi) const {
    std::vector<V> values;
    for (auto it = index_.lower_bound(lo);
         it != index_.end() && !(hi < it->first); ++it) {
      values.push_back(it->second);
    }
    return std::make_unique<VectorCursor<V>>(std::move(values));
  }

 private:
  std::multimap<K, V> index_;
};

/// Joins a stream with a persistent relation: each arriving element probes
/// the relation through its cursor interface (demand-driven inner, data-
/// driven outer) and emits one combined element per match, preserving the
/// stream element's validity.
template <typename T, typename K, typename V, typename KeyFn,
          typename Combine>
class StreamRelationJoin
    : public UnaryPipe<
          T, std::decay_t<std::invoke_result_t<Combine, const T&, const V&>>> {
 public:
  using Out = std::decay_t<std::invoke_result_t<Combine, const T&, const V&>>;

  StreamRelationJoin(const IndexedRelation<K, V>* relation, KeyFn key_fn,
                     Combine combine,
                     std::string name = "stream-relation-join")
      : UnaryPipe<T, Out>(std::move(name)),
        relation_(relation),
        key_fn_(std::move(key_fn)),
        combine_(std::move(combine)) {}

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    CursorPtr<V> matches = relation_->Lookup(key_fn_(e.payload));
    while (auto v = matches->Next()) {
      this->Transfer(StreamElement<Out>(combine_(e.payload, *v), e.interval));
    }
  }

 private:
  const IndexedRelation<K, V>* relation_;
  KeyFn key_fn_;
  Combine combine_;
};

}  // namespace pipes::cursors

#endif  // PIPES_CURSORS_RELATION_H_
