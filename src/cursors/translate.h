#ifndef PIPES_CURSORS_TRANSLATE_H_
#define PIPES_CURSORS_TRANSLATE_H_

#include <deque>
#include <functional>
#include <string>
#include <utility>

#include "src/core/generator_source.h"
#include "src/core/sink.h"
#include "src/cursors/cursor.h"

/// \file
/// Dataflow translation operators (after Graefe): the bridges between the
/// demand-driven cursor algebra and the data-driven pipe algebra, which is
/// how PIPES "gracefully combines data-driven and demand-driven query
/// processing".
///
/// * `CursorSource` lifts a cursor into an active stream source
///   (pull -> push).
/// * `StreamBufferSink` parks streamed results so a cursor can consume them
///   on demand (push -> pull).

namespace pipes::cursors {

/// Active source that pulls payloads from a cursor and assigns application
/// timestamps via `ts_fn` (which must be monotone in pull order).
template <typename T>
class CursorSource : public GeneratorSource<T> {
 public:
  using TimestampFn = std::function<Timestamp(const T&)>;

  CursorSource(CursorPtr<T> cursor, TimestampFn ts_fn,
               std::string name = "cursor-source")
      : GeneratorSource<T>(std::move(name)),
        cursor_(std::move(cursor)),
        ts_fn_(std::move(ts_fn)) {}

 protected:
  std::optional<StreamElement<T>> Generate() override {
    std::optional<T> v = cursor_->Next();
    if (!v.has_value()) return std::nullopt;
    const Timestamp t = ts_fn_(*v);
    return StreamElement<T>::Point(std::move(*v), t);
  }

 private:
  CursorPtr<T> cursor_;
  TimestampFn ts_fn_;
};

/// Terminal sink whose collected results are consumable through cursors.
/// `OpenCursor()` yields the elements received so far (a materialized
/// prefix of the result stream); elements handed to a cursor are consumed
/// exactly once across all cursors opened from this sink.
template <typename T>
class StreamBufferSink : public Sink<T> {
 public:
  explicit StreamBufferSink(std::string name = "stream-buffer")
      : Sink<T>(std::move(name)) {}

  /// Cursor that drains the buffered results on demand.
  CursorPtr<StreamElement<T>> OpenCursor() {
    return std::make_unique<DrainCursor>(this);
  }

  std::size_t buffered() const { return buffer_.size(); }

 protected:
  void PortElement(int /*port_id*/, const StreamElement<T>& e) override {
    buffer_.push_back(e);
  }

 private:
  class DrainCursor : public Cursor<StreamElement<T>> {
   public:
    explicit DrainCursor(StreamBufferSink* owner) : owner_(owner) {}
    std::optional<StreamElement<T>> Next() override {
      if (owner_->buffer_.empty()) return std::nullopt;
      StreamElement<T> e = std::move(owner_->buffer_.front());
      owner_->buffer_.pop_front();
      return e;
    }

   private:
    StreamBufferSink* owner_;
  };

  std::deque<StreamElement<T>> buffer_;
};

}  // namespace pipes::cursors

#endif  // PIPES_CURSORS_TRANSLATE_H_
