#include "src/engine/engine.h"

#include <algorithm>
#include <set>
#include <utility>

namespace pipes::engine {

// --- ResultSink -------------------------------------------------------------

/// Terminal sink the engine wires onto every registered query's output.
/// Pull mode accumulates into a queue drained by `QueryHandle::Poll`; push
/// mode forwards each element to the handle's callback. Only ever touched
/// with the engine mutex held (deliveries happen inside Pump, accessors
/// inside locked handle methods), so no locking of its own.
class Engine::ResultSink : public Sink<relational::Tuple> {
 public:
  using Element = StreamElement<relational::Tuple>;

  explicit ResultSink(std::string name) : Sink(std::move(name)) {}

  std::vector<Element> Drain() {
    std::vector<Element> out;
    out.swap(queue_);
    return out;
  }

  std::uint64_t delivered() const { return delivered_; }

  void set_callback(QueryHandle::Callback callback) {
    callback_ = std::move(callback);
    if (callback_) {
      // Anything already queued replays through the new callback, so the
      // subscriber never misses results produced before it attached.
      for (const Element& e : queue_) callback_(e);
      queue_.clear();
    }
  }

  NodeDescriptor Describe() const override {
    NodeDescriptor d = Sink::Describe();
    d.op = "engine-result-sink";
    d.has_batch_kernel = true;
    d.has_columnar_kernel = true;
    return d;
  }

 protected:
  void PortElement(int /*port_id*/, const Element& e) override { Deliver(e); }

  void PortBatch(int /*port_id*/,
                 std::span<const Element> batch) override {
    for (const Element& e : batch) Deliver(e);
  }

  void PortRun(int /*port_id*/,
               const ColumnarRun<relational::Tuple>& run) override {
    if (callback_ == nullptr) {
      delivered_ += run.size();
      run.MaterializeTo(queue_);
      return;
    }
    std::vector<Element> scratch;
    run.MaterializeTo(scratch);
    for (const Element& e : scratch) Deliver(e);
  }

 private:
  void Deliver(const Element& e) {
    ++delivered_;
    if (callback_) {
      callback_(e);
    } else {
      queue_.push_back(e);
    }
  }

  std::vector<Element> queue_;
  std::uint64_t delivered_ = 0;
  QueryHandle::Callback callback_;
};

// --- Engine -----------------------------------------------------------------

Engine::Engine(EngineOptions options)
    : options_(options),
      memory_(options.memory_budget_bytes,
              std::make_unique<memory::UniformStrategy>()),
      plan_manager_(&graph_, &catalog_, options.sharing) {
  if (options.disk_budget_bytes > 0) {
    memory_.set_disk_budget(options.disk_budget_bytes);
  }
}

Engine::~Engine() {
  // Flush staged deliveries and detach before the graph goes away.
  executor_.reset();
}

std::string Engine::OutputGaugeName(const std::string& tenant) {
  return "engine.registered_output:" + tenant;
}

void Engine::SuspendExecutorLocked() {
  // The destructor drains every ready pipe (staged output only — it never
  // polls sources), then detaches. This is the whole "mutate a live graph
  // without quiescing it" protocol.
  executor_.reset();
}

void Engine::EnsureExecutorLocked() {
  if (executor_ == nullptr) {
    executor_ = std::make_unique<scheduler::PipeExecutor>(
        graph_, strategy_, options_.batch_size);
  }
}

std::size_t Engine::StateBytesLocked() const {
  std::size_t total = 0;
  for (const Node* node : graph_.nodes()) total += node->ApproxMemoryBytes();
  return total;
}

std::size_t Engine::SpilledBytesLocked() const {
  std::size_t total = 0;
  for (const Node* node : graph_.nodes()) total += node->SpilledBytes();
  return total;
}

// --- Streams ----------------------------------------------------------------

Result<StreamWriter> Engine::AddStream(const std::string& name,
                                       relational::Schema schema,
                                       double rate_hint) {
  std::lock_guard<std::mutex> lock(mu_);
  SuspendExecutorLocked();
  auto& inlet = graph_.Add<InletSource>(name);
  const Status status =
      catalog_.RegisterStream(name, std::move(schema), &inlet, rate_hint);
  if (!status.ok()) {
    PIPES_CHECK(graph_.Remove(inlet).ok());
    return status;
  }
  inlets_.push_back(&inlet);
  return StreamWriter(this, &inlet);
}

Status Engine::BindStream(const std::string& name, relational::Schema schema,
                          Source<relational::Tuple>& source,
                          double rate_hint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!graph_.Contains(source)) {
    return Status::InvalidArgument("source '" + source.name() +
                                   "' is not owned by the engine graph; add "
                                   "it through engine.graph() first");
  }
  SuspendExecutorLocked();
  return catalog_.RegisterStream(name, std::move(schema), &source, rate_hint);
}

Status Engine::InletStatusLocked(InletSource* inlet) const {
  if (std::find(inlets_.begin(), inlets_.end(), inlet) == inlets_.end()) {
    return Status::NotFound("stream writer does not belong to this engine");
  }
  return Status::OK();
}

Status Engine::PushLocked(InletSource* inlet,
                          const StreamElement<relational::Tuple>& element) {
  PIPES_RETURN_IF_ERROR(InletStatusLocked(inlet));
  if (inlet->output_done()) {
    return Status::FailedPrecondition("stream '" + inlet->name() +
                                      "' is closed");
  }
  if (element.start() < inlet->last_start()) {
    return Status::InvalidArgument(
        "out-of-order push into stream '" + inlet->name() +
        "': " + std::to_string(element.start()) + " < " +
        std::to_string(inlet->last_start()));
  }
  inlet->Push(element);
  return Status::OK();
}

Status StreamWriter::Push(const StreamElement<relational::Tuple>& element) {
  if (engine_ == nullptr) return Status::FailedPrecondition("empty writer");
  std::lock_guard<std::mutex> lock(engine_->mu_);
  return engine_->PushLocked(inlet_, element);
}

Status StreamWriter::Push(relational::Tuple tuple, Timestamp t) {
  return Push(StreamElement<relational::Tuple>::Point(std::move(tuple), t));
}

Status StreamWriter::Heartbeat(Timestamp t) {
  if (engine_ == nullptr) return Status::FailedPrecondition("empty writer");
  std::lock_guard<std::mutex> lock(engine_->mu_);
  PIPES_RETURN_IF_ERROR(engine_->InletStatusLocked(inlet_));
  if (inlet_->output_done()) {
    return Status::FailedPrecondition("stream '" + inlet_->name() +
                                      "' is closed");
  }
  inlet_->Heartbeat(t);
  return Status::OK();
}

Status StreamWriter::Close() {
  if (engine_ == nullptr) return Status::FailedPrecondition("empty writer");
  std::lock_guard<std::mutex> lock(engine_->mu_);
  PIPES_RETURN_IF_ERROR(engine_->InletStatusLocked(inlet_));
  inlet_->Close();
  return Status::OK();
}

// --- Registration -----------------------------------------------------------

namespace {

std::string CertifiedBytes(std::uint64_t bytes) {
  return bytes == analysis::NodeStateBound::kUnknownBytes
             ? std::string("unbounded")
             : std::to_string(bytes);
}

}  // namespace

Status Engine::AdmissionCheckLocked(
    const std::string& tenant,
    const analysis::StateCertificate* certificate) const {
  std::uint64_t live_total = 0;
  for (const auto& [unused, counters] : tenants_) live_total += counters.live;
  if (options_.max_total_queries > 0 &&
      live_total >= options_.max_total_queries) {
    return Status::ResourceExhausted(
        "engine query quota (" + std::to_string(options_.max_total_queries) +
        ") exhausted");
  }
  auto it = tenants_.find(tenant);
  if (options_.max_queries_per_tenant > 0 && it != tenants_.end() &&
      it->second.live >= options_.max_queries_per_tenant) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' query quota (" +
        std::to_string(options_.max_queries_per_tenant) + ") exhausted");
  }
  if (options_.memory_budget_bytes > 0) {
    const std::size_t used =
        std::max(StateBytesLocked(), memory_.TotalUsage());
    if (used >= options_.memory_budget_bytes) {
      return Status::ResourceExhausted(
          "memory budget exceeded (" + std::to_string(used) + " of " +
          std::to_string(options_.memory_budget_bytes) + " bytes in use)");
    }
  }
  if (options_.disk_budget_bytes > 0) {
    const std::size_t spilled =
        std::max(SpilledBytesLocked(), memory_.TotalDiskUsage());
    if (spilled >= options_.disk_budget_bytes) {
      return Status::ResourceExhausted(
          "disk budget exceeded (" + std::to_string(spilled) + " of " +
          std::to_string(options_.disk_budget_bytes) +
          " bytes spilled)");
    }
  }
  if (certificate != nullptr) {
    // The static gate: the plan's certified peak state must fit into the
    // budget headroom left by everything already running. Unbounded
    // certificates never fit a finite budget.
    if (options_.memory_budget_bytes > 0) {
      const std::size_t used =
          std::max(StateBytesLocked(), memory_.TotalUsage());
      const std::uint64_t headroom = options_.memory_budget_bytes - used;
      if (!certificate->ram_bounded() ||
          certificate->ram_bytes > headroom) {
        return Status::ResourceExhausted(
            "state certificate exceeds remaining memory budget: certified "
            "ram=" +
            CertifiedBytes(certificate->ram_bytes) +
            " disk=" + CertifiedBytes(certificate->disk_bytes) + " bytes, " +
            std::to_string(headroom) + " of " +
            std::to_string(options_.memory_budget_bytes) + " bytes free");
      }
    }
    if (options_.disk_budget_bytes > 0) {
      const std::size_t spilled =
          std::max(SpilledBytesLocked(), memory_.TotalDiskUsage());
      const std::uint64_t headroom = options_.disk_budget_bytes - spilled;
      if (!certificate->disk_bounded() ||
          certificate->disk_bytes > headroom) {
        return Status::ResourceExhausted(
            "state certificate exceeds remaining disk budget: certified "
            "ram=" +
            CertifiedBytes(certificate->ram_bytes) +
            " disk=" + CertifiedBytes(certificate->disk_bytes) + " bytes, " +
            std::to_string(headroom) + " of " +
            std::to_string(options_.disk_budget_bytes) + " bytes free");
      }
    }
  }
  return Status::OK();
}

Status Engine::AdmitLocked(std::uint64_t query_id, QueryRecord& record) {
  SuspendExecutorLocked();
  PIPES_ASSIGN_OR_RETURN(optimizer::PlanManager::InstalledQuery installed,
                         plan_manager_.InstallPlan(record.plan));
  auto& sink = graph_.Add<ResultSink>("q" + std::to_string(query_id) +
                                      "-results");
  if (record.has_certificate) {
    // Stamp the static certificate on the query's own sink so it rides
    // along in QuerySnapshot (the snapshot capture lifts "dataflow."
    // gauges into NodeSnapshot::gauges). -1 encodes unbounded.
    const auto bytes_gauge = [](std::uint64_t v) {
      return v == analysis::NodeStateBound::kUnknownBytes
                 ? -1.0
                 : static_cast<double>(v);
    };
    sink.metadata().SetGauge("dataflow.cert_ram_bytes",
                             bytes_gauge(record.certificate.ram_bytes));
    sink.metadata().SetGauge("dataflow.cert_disk_bytes",
                             bytes_gauge(record.certificate.disk_bytes));
    sink.metadata().SetGauge("dataflow.cert_progress_ok",
                             record.certificate.progress_ok ? 1.0 : 0.0);
    sink.metadata().SetGauge(
        "dataflow.cert_disorder_bound",
        record.certificate.disorder_bound ==
                NodeDescriptor::Dataflow::kUnknownTime
            ? -1.0
            : static_cast<double>(record.certificate.disorder_bound));
  }
  installed.output->AddSubscriber(sink.input());
  installed.output->metadata().SetGauge(OutputGaugeName(record.tenant),
                                        static_cast<double>(query_id));
  record.pm_id = installed.query_id;
  record.output = installed.output;
  record.sink = &sink;
  record.schema = installed.schema;
  record.plan = nullptr;  // The physical graph is the plan now.
  record.state = QueryState::kRunning;
  TenantCounters& counters = tenants_[record.tenant];
  ++counters.registered;
  ++counters.live;
  return Status::OK();
}

Result<QueryHandle> Engine::RegisterPlanLocked(
    const optimizer::LogicalPlan& plan, const RegisterOptions& options) {
  analysis::StateCertificate certificate;
  bool has_certificate = false;
  if (options_.certify_admission) {
    // The abstract interpretation runs over a scratch materialization of
    // the plan (the engine graph is untouched), seeded from the catalog's
    // per-stream rate hints.
    Result<analysis::DataflowResult> analyzed =
        analysis::AnalyzeDataflowPlan(plan, &catalog_);
    if (!analyzed.ok()) return analyzed.status();
    certificate = analyzed->certificate;
    has_certificate = true;
  }
  const Status admission = AdmissionCheckLocked(
      options.tenant, has_certificate ? &certificate : nullptr);
  if (!admission.ok()) {
    if (options_.admission == AdmissionPolicy::kReject) {
      ++rejected_count_;
      ++tenants_[options.tenant].rejected;
      return admission;
    }
    const std::uint64_t id = next_query_id_++;
    QueryRecord& record = queries_[id];
    record.tenant = options.tenant;
    record.state = QueryState::kQueued;
    record.plan = plan;
    record.schema = plan->schema;
    record.certificate = certificate;
    record.has_certificate = has_certificate;
    pending_.push_back(id);
    ++tenants_[options.tenant].queued;
    return QueryHandle(this, id, options.tenant, plan->schema);
  }
  const std::uint64_t id = next_query_id_++;
  QueryRecord record;
  record.tenant = options.tenant;
  record.plan = plan;
  record.certificate = certificate;
  record.has_certificate = has_certificate;
  const Status status = AdmitLocked(id, record);
  if (!status.ok()) return status;
  queries_[id] = std::move(record);
  return QueryHandle(this, id, options.tenant, queries_[id].schema);
}

Result<QueryHandle> Engine::Register(const std::string& cql_text,
                                     const RegisterOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  PIPES_ASSIGN_OR_RETURN(cql::CompiledQuery compiled,
                         cql::Compile(cql_text, catalog_));
  return RegisterPlanLocked(compiled.plan, options);
}

Result<QueryHandle> Engine::Register(const optimizer::LogicalPlan& plan,
                                     const RegisterOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  return RegisterPlanLocked(plan, options);
}

Result<QueryHandle> Engine::Register(const PipelineBuilder& builder,
                                     const RegisterOptions& options,
                                     PipelineTeardown teardown) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pipeline registrations cannot be replayed later, so admission failures
  // always reject (the queue only holds plans).
  PIPES_RETURN_IF_ERROR([&] {
    const Status admission = AdmissionCheckLocked(options.tenant);
    if (!admission.ok()) {
      ++rejected_count_;
      ++tenants_[options.tenant].rejected;
    }
    return admission;
  }());
  SuspendExecutorLocked();

  std::set<std::uint64_t> before;
  for (const Node* node : graph_.nodes()) before.insert(node->id());
  PIPES_ASSIGN_OR_RETURN(Source<relational::Tuple>* output, builder(graph_));
  if (output == nullptr || !graph_.Contains(*output)) {
    return Status::InvalidArgument(
        "pipeline builder must return an output source owned by the engine "
        "graph");
  }

  const std::uint64_t id = next_query_id_++;
  QueryRecord& record = queries_[id];
  record.tenant = options.tenant;
  record.state = QueryState::kRunning;
  record.output = output;
  record.teardown = std::move(teardown);
  for (const Node* node : graph_.nodes()) {
    if (before.find(node->id()) == before.end()) {
      record.node_ids.push_back(node->id());
    }
  }

  auto& sink = graph_.Add<ResultSink>("q" + std::to_string(id) + "-results");
  output->AddSubscriber(sink.input());
  output->metadata().SetGauge(OutputGaugeName(options.tenant),
                              static_cast<double>(id));
  record.sink = &sink;
  record.node_ids.push_back(sink.id());

  TenantCounters& counters = tenants_[options.tenant];
  ++counters.registered;
  ++counters.live;
  return QueryHandle(this, id, options.tenant, record.schema);
}

// --- Cancellation -----------------------------------------------------------

Status Engine::CancelLocked(std::uint64_t query_id) {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(query_id) +
                            " is not registered");
  }
  QueryRecord& record = it->second;
  if (record.state == QueryState::kCancelled) {
    return Status::FailedPrecondition("query " + std::to_string(query_id) +
                                      " is already cancelled");
  }
  TenantCounters& counters = tenants_[record.tenant];
  if (record.state == QueryState::kQueued) {
    pending_.erase(std::remove(pending_.begin(), pending_.end(), query_id),
                   pending_.end());
    record.plan = nullptr;
    record.state = QueryState::kCancelled;
    --counters.queued;
    ++counters.cancelled;
    ++cancelled_count_;
    return Status::OK();
  }

  SuspendExecutorLocked();
  record.output->metadata().Remove(OutputGaugeName(record.tenant));
  record.results_delivered = record.sink->delivered();
  counters.results_delivered += record.sink->delivered();
  PIPES_RETURN_IF_ERROR(record.output->UnsubscribeFrom(record.sink->input()));
  PIPES_RETURN_IF_ERROR(graph_.Remove(*record.sink));
  record.sink = nullptr;

  Status teardown_status = Status::OK();
  if (record.pm_id != 0) {
    // Drops the plan's reference counts and physically removes the suffix
    // no other query shares; shared prefixes stay live and keep flowing.
    teardown_status = plan_manager_.UninstallQuery(record.pm_id);
  } else if (record.teardown != nullptr) {
    teardown_status = record.teardown(graph_);
  }
  record.output = nullptr;
  record.state = QueryState::kCancelled;
  --counters.live;
  ++counters.cancelled;
  ++cancelled_count_;
  AdmitPendingLocked();
  return teardown_status;
}

Status Engine::Cancel(std::uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  return CancelLocked(query_id);
}

std::size_t Engine::CancelAllForTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> ids;
  for (const auto& [id, record] : queries_) {
    if (record.tenant == tenant && record.state != QueryState::kCancelled) {
      ids.push_back(id);
    }
  }
  std::size_t cancelled = 0;
  for (const std::uint64_t id : ids) {
    if (CancelLocked(id).ok()) ++cancelled;
  }
  return cancelled;
}

void Engine::AdmitPendingLocked() {
  while (!pending_.empty()) {
    const std::uint64_t id = pending_.front();
    auto it = queries_.find(id);
    PIPES_CHECK(it != queries_.end());
    QueryRecord& record = it->second;
    if (!AdmissionCheckLocked(record.tenant, record.has_certificate
                                                 ? &record.certificate
                                                 : nullptr)
             .ok()) {
      return;
    }
    pending_.erase(pending_.begin());
    --tenants_[record.tenant].queued;
    const Status status = AdmitLocked(id, record);
    if (!status.ok()) {
      // The plan stopped being installable (e.g. its stream was rebound);
      // surface that as a cancelled query rather than wedging the queue.
      record.plan = nullptr;
      record.state = QueryState::kCancelled;
      ++tenants_[record.tenant].cancelled;
      ++cancelled_count_;
    }
  }
}

// --- Execution --------------------------------------------------------------

std::uint64_t Engine::Pump(std::uint64_t max_steps) {
  std::lock_guard<std::mutex> lock(mu_);
  AdmitPendingLocked();
  EnsureExecutorLocked();
  std::uint64_t steps = 0;
  while (steps < max_steps && executor_->Step()) ++steps;
  return steps;
}

scheduler::RunStats Engine::RunToCompletion() {
  std::lock_guard<std::mutex> lock(mu_);
  AdmitPendingLocked();
  EnsureExecutorLocked();
  return executor_->RunToCompletion();
}

// --- Observability ----------------------------------------------------------

metadata::MetricsSnapshot Engine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  metadata::CaptureOptions options;
  options.memory_manager = &memory_;
  return metadata::CaptureSnapshot(graph_, options);
}

Result<std::vector<std::uint64_t>> Engine::QueryNodeIdsLocked(
    std::uint64_t query_id) const {
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(query_id) +
                            " is not registered");
  }
  const QueryRecord& record = it->second;
  if (record.state != QueryState::kRunning) {
    return Status::FailedPrecondition("query " + std::to_string(query_id) +
                                      " is not running");
  }
  std::vector<std::uint64_t> ids;
  if (record.pm_id != 0) {
    PIPES_ASSIGN_OR_RETURN(std::vector<const Node*> nodes,
                           plan_manager_.QueryNodes(record.pm_id));
    for (const Node* node : nodes) ids.push_back(node->id());
    ids.push_back(record.output->id());
    ids.push_back(record.sink->id());
  } else {
    ids = record.node_ids;
  }
  return ids;
}

metadata::MetricsSnapshot Engine::TenantSnapshot(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  metadata::SnapshotOptions options;
  options.scope = tenant;
  for (const auto& [id, record] : queries_) {
    if (record.tenant != tenant || record.state != QueryState::kRunning) {
      continue;
    }
    const auto ids = QueryNodeIdsLocked(id);
    if (!ids.ok()) continue;
    options.node_filter.insert(options.node_filter.end(), ids->begin(),
                               ids->end());
  }
  // A tenant with no running queries sees an empty view, not the whole
  // graph (an empty filter means "keep everything" to the exporters).
  if (options.node_filter.empty()) {
    options.node_filter.push_back(0);  // id 0 is never assigned
  }
  metadata::CaptureOptions capture;
  capture.memory_manager = &memory_;
  return metadata::FilterSnapshot(metadata::CaptureSnapshot(graph_, capture),
                                  options);
}

Result<metadata::MetricsSnapshot> Engine::QuerySnapshot(
    std::uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  PIPES_ASSIGN_OR_RETURN(std::vector<std::uint64_t> ids,
                         QueryNodeIdsLocked(query_id));
  metadata::SnapshotOptions options;
  options.node_filter = std::move(ids);
  options.scope = "query-" + std::to_string(query_id);
  metadata::CaptureOptions capture;
  capture.memory_manager = &memory_;
  return metadata::FilterSnapshot(metadata::CaptureSnapshot(graph_, capture),
                                  options);
}

TenantCounters Engine::tenant_counters(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return TenantCounters{};
  TenantCounters counters = it->second;
  // Fold in the live sinks' running totals (the per-record counter is only
  // finalized at cancel).
  for (const auto& [unused, record] : queries_) {
    if (record.tenant == tenant && record.state == QueryState::kRunning) {
      counters.results_delivered += record.sink->delivered();
    }
  }
  return counters;
}

std::vector<std::string> Engine::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, unused] : tenants_) names.push_back(name);
  return names;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats stats;
  for (const auto& [unused, counters] : tenants_) {
    stats.total_registered += counters.registered;
    stats.live_queries += counters.live;
    stats.queued_queries += counters.queued;
  }
  stats.cancelled_queries = cancelled_count_;
  stats.rejected_queries = rejected_count_;
  stats.graph_nodes = graph_.size();
  stats.operators_created = plan_manager_.total_operators_created();
  stats.operators_reused = plan_manager_.total_operators_reused();
  stats.state_bytes = StateBytesLocked();
  stats.spilled_bytes = std::max(SpilledBytesLocked(), memory_.TotalDiskUsage());
  return stats;
}

// --- QueryHandle ------------------------------------------------------------

QueryState QueryHandle::state() const {
  if (engine_ == nullptr) return QueryState::kCancelled;
  std::lock_guard<std::mutex> lock(engine_->mu_);
  auto it = engine_->queries_.find(id_);
  if (it == engine_->queries_.end()) return QueryState::kCancelled;
  return it->second.state;
}

Status QueryHandle::Cancel() {
  if (engine_ == nullptr) return Status::FailedPrecondition("empty handle");
  return engine_->Cancel(id_);
}

std::vector<QueryHandle::Element> QueryHandle::Poll() {
  if (engine_ == nullptr) return {};
  std::lock_guard<std::mutex> lock(engine_->mu_);
  auto it = engine_->queries_.find(id_);
  if (it == engine_->queries_.end() ||
      it->second.state != QueryState::kRunning) {
    return {};
  }
  return it->second.sink->Drain();
}

Status QueryHandle::OnResult(Callback callback) {
  if (engine_ == nullptr) return Status::FailedPrecondition("empty handle");
  std::lock_guard<std::mutex> lock(engine_->mu_);
  auto it = engine_->queries_.find(id_);
  if (it == engine_->queries_.end() ||
      it->second.state != QueryState::kRunning) {
    return Status::FailedPrecondition("query " + std::to_string(id_) +
                                      " is not running");
  }
  it->second.sink->set_callback(std::move(callback));
  return Status::OK();
}

std::uint64_t QueryHandle::results_delivered() const {
  if (engine_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(engine_->mu_);
  auto it = engine_->queries_.find(id_);
  if (it == engine_->queries_.end()) return 0;
  const Engine::QueryRecord& record = it->second;
  return record.state == QueryState::kRunning ? record.sink->delivered()
                                              : record.results_delivered;
}

Result<metadata::MetricsSnapshot> QueryHandle::Snapshot() const {
  if (engine_ == nullptr) return Status::FailedPrecondition("empty handle");
  return engine_->QuerySnapshot(id_);
}

}  // namespace pipes::engine
