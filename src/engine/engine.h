#ifndef PIPES_ENGINE_ENGINE_H_
#define PIPES_ENGINE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/dataflow.h"
#include "src/common/status.h"
#include "src/core/graph.h"
#include "src/core/sink.h"
#include "src/core/source.h"
#include "src/cql/analyzer.h"
#include "src/cql/catalog.h"
#include "src/memory/memory_manager.h"
#include "src/metadata/snapshot.h"
#include "src/optimizer/plan_manager.h"
#include "src/relational/tuple.h"
#include "src/scheduler/executor.h"
#include "src/scheduler/scheduler.h"
#include "src/scheduler/strategy.h"

/// \file
/// `pipes::engine::Engine` — the unified facade over one shared live query
/// graph (DESIGN.md §4g). Everything a long-running multi-tenant deployment
/// needs sits behind it: the graph, the CQL catalog, the multi-query plan
/// manager (shared-subplan grafting), the memory manager, and the
/// pipe-polled executor. Tenants register continuous queries (CQL text, an
/// analyzed logical plan, or a hand-built pipeline) and get back a
/// `QueryHandle` carrying cancellation, result subscription (pull or
/// callback), and a per-query metrics snapshot.
///
/// Threading: every public entry point serializes on one internal mutex, so
/// concurrent registration, cancellation, publishing, and pumping from
/// multiple threads is safe. Result callbacks fire while that lock is held
/// — do not call back into the engine from inside one.
///
/// Graph mutation protocol: subscriptions must not change while a
/// `PipeExecutor` is attached, so the engine suspends the executor around
/// every graft and teardown. Suspension only flushes *staged* output (the
/// executor destructor drains ready pipes without polling sources), so
/// registering or cancelling a query never quiesces the rest of the graph —
/// in-flight elements of other queries keep flowing on the next pump.

namespace pipes::engine {

class Engine;

/// What to do with a registration that exceeds the memory budget or a
/// quota.
enum class AdmissionPolicy {
  kReject,  ///< Fail Register with ResourceExhausted.
  kQueue,   ///< Park it; admitted FIFO once capacity frees up.
};

struct EngineOptions {
  /// Budget handed to the engine-owned `memory::MemoryManager`; admission
  /// control rejects/queues registrations while operator state exceeds it.
  /// 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Budget for the disk spill tier (docs/memory.md): spill-capable
  /// operators page state to disk until the sum of their on-disk runs
  /// reaches this; admission control rejects/queues registrations past it.
  /// 0 = unlimited.
  std::size_t disk_budget_bytes = 0;
  AdmissionPolicy admission = AdmissionPolicy::kReject;
  /// Static admission gate: run the dataflow abstract interpretation over
  /// every plan registration (`analysis::AnalyzeDataflowPlan`) and
  /// reject/queue it when the certified peak state exceeds what remains of
  /// the RAM/disk budgets — before a single element flows. The certificate
  /// is stamped on the query's result sink as `dataflow.cert_*` gauges
  /// (visible in `QuerySnapshot`) and quoted in the ResourceExhausted
  /// message. Runtime admission (observed usage) applies either way.
  /// Pipeline registrations are never certified (no plan to analyze).
  bool certify_admission = false;
  /// Live-query quota per tenant (0 = unlimited).
  std::size_t max_queries_per_tenant = 0;
  /// Live-query quota across all tenants (0 = unlimited).
  std::size_t max_total_queries = 0;
  /// Max work units per executor poll (Aurora-style train size).
  std::size_t batch_size = 64;
  /// Multi-query subplan sharing (off = the E5 baseline instantiator).
  bool sharing = true;
};

struct RegisterOptions {
  std::string tenant = "default";
};

enum class QueryState {
  kQueued,     ///< Parked by admission control, not yet instantiated.
  kRunning,    ///< Grafted onto the live graph.
  kCancelled,  ///< Torn down (or dequeued before admission).
};

/// Per-tenant admission/usage counters, readable at any time.
struct TenantCounters {
  std::uint64_t registered = 0;  ///< Queries ever admitted to the graph.
  std::uint64_t live = 0;        ///< Currently running.
  std::uint64_t queued = 0;      ///< Currently parked by admission control.
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;
  std::uint64_t results_delivered = 0;

  friend bool operator==(const TenantCounters&,
                         const TenantCounters&) = default;
};

/// Engine-wide counters.
struct EngineStats {
  std::uint64_t total_registered = 0;
  std::uint64_t live_queries = 0;
  std::uint64_t queued_queries = 0;
  std::uint64_t cancelled_queries = 0;
  std::uint64_t rejected_queries = 0;
  std::size_t graph_nodes = 0;
  std::size_t operators_created = 0;  ///< PlanManager total.
  std::size_t operators_reused = 0;   ///< PlanManager total.
  std::size_t state_bytes = 0;        ///< Summed ApproxMemoryBytes (RAM).
  std::size_t spilled_bytes = 0;      ///< Disk tier: summed Node spill.
};

/// An externally fed tuple source: host code pushes elements in, the graph
/// consumes them. Use through `StreamWriter` (which takes the engine lock);
/// calling Push directly is only safe while nothing else drives the engine.
class InletSource : public Source<relational::Tuple> {
 public:
  explicit InletSource(std::string name) : Source(std::move(name)) {}

  void Push(const StreamElement<relational::Tuple>& element) {
    Transfer(element);
  }
  void Heartbeat(Timestamp t) { TransferHeartbeat(t); }
  void Close() { TransferDone(); }

  NodeDescriptor Describe() const override {
    NodeDescriptor d;
    d.kind = NodeDescriptor::Kind::kSource;
    d.op = "inlet";
    return d;
  }
};

/// Locked writer for one engine-owned inlet stream. Copyable; all methods
/// serialize on the engine mutex.
class StreamWriter {
 public:
  StreamWriter() = default;

  Status Push(const StreamElement<relational::Tuple>& element);
  Status Push(relational::Tuple tuple, Timestamp t);
  Status Heartbeat(Timestamp t);
  /// Signals end-of-stream (idempotent).
  Status Close();

  explicit operator bool() const { return engine_ != nullptr; }

 private:
  friend class Engine;
  StreamWriter(Engine* engine, InletSource* inlet)
      : engine_(engine), inlet_(inlet) {}

  Engine* engine_ = nullptr;
  InletSource* inlet_ = nullptr;
};

/// The per-query face of the engine: cancel, fetch/subscribe results, and
/// snapshot metrics for exactly this query's operators. Cheap to copy; all
/// methods serialize on the engine mutex and outlive cancellation (they
/// report state kCancelled / empty results afterwards).
class QueryHandle {
 public:
  using Element = StreamElement<relational::Tuple>;
  using Callback = std::function<void(const Element&)>;

  QueryHandle() = default;

  std::uint64_t id() const { return id_; }
  const std::string& tenant() const { return tenant_; }
  const relational::Schema& schema() const { return schema_; }

  QueryState state() const;

  /// Tears this query down: the engine's result sink detaches, then the
  /// plan manager removes the unshared suffix of the plan (operators other
  /// queries still use stay). The rest of the graph keeps flowing — cancel
  /// never quiesces it.
  Status Cancel();

  /// Drains every result accumulated since the last Poll (pull mode).
  /// Empty once a callback is attached.
  std::vector<Element> Poll();

  /// Switches to push mode: `callback` fires for every result from the
  /// next pump on (with the engine lock held — do not re-enter the
  /// engine). Pass nullptr to return to pull mode.
  Status OnResult(Callback callback);

  /// Total results this query has delivered (either mode).
  std::uint64_t results_delivered() const;

  /// Metrics snapshot filtered to this query's operators (shared operators
  /// included — they do work for this query too).
  Result<metadata::MetricsSnapshot> Snapshot() const;

  explicit operator bool() const { return engine_ != nullptr; }

 private:
  friend class Engine;
  QueryHandle(Engine* engine, std::uint64_t id, std::string tenant,
              relational::Schema schema)
      : engine_(engine),
        id_(id),
        tenant_(std::move(tenant)),
        schema_(std::move(schema)) {}

  Engine* engine_ = nullptr;
  std::uint64_t id_ = 0;
  std::string tenant_;
  relational::Schema schema_;
};

/// The facade. Owns the graph, catalog, plan manager, memory manager, and
/// executor; see the file comment for the threading and mutation protocol.
class Engine {
 public:
  /// Builds one pipeline query directly against the engine's graph; must
  /// return the query's output source (already added to the graph).
  using PipelineBuilder =
      std::function<Result<Source<relational::Tuple>*>(QueryGraph&)>;
  /// Optional inverse of a PipelineBuilder: unsubscribe and Remove every
  /// node the builder added (the output's engine sink is already gone when
  /// this runs).
  using PipelineTeardown = std::function<Status(QueryGraph&)>;

  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Streams --------------------------------------------------------------

  /// Creates an engine-owned inlet stream: the catalog entry for CQL plus a
  /// writer for the host to push tuples through.
  Result<StreamWriter> AddStream(const std::string& name,
                                 relational::Schema schema,
                                 double rate_hint = 1000.0);

  /// Registers an existing source (already added to `graph()`) under
  /// `name` — for generator-driven deployments (demos, benchmarks).
  Status BindStream(const std::string& name, relational::Schema schema,
                    Source<relational::Tuple>& source,
                    double rate_hint = 1000.0);

  // --- Query registration ---------------------------------------------------

  /// Compiles `cql_text` (through `cql::Compile`) and grafts the optimized
  /// plan onto the live graph, sharing subplans with everything already
  /// running. Admission control may reject (ResourceExhausted) or queue the
  /// query depending on `EngineOptions::admission`.
  Result<QueryHandle> Register(const std::string& cql_text,
                               const RegisterOptions& options = {});

  /// Same, for an already-analyzed logical plan.
  Result<QueryHandle> Register(const optimizer::LogicalPlan& plan,
                               const RegisterOptions& options = {});

  /// Same, for a hand-built pipeline: `builder` runs under the engine's
  /// mutation protocol (executor suspended). Pipeline queries bypass the
  /// plan manager, so cancellation removes only the engine's sink unless a
  /// `teardown` is supplied to undo the builder's wiring.
  Result<QueryHandle> Register(const PipelineBuilder& builder,
                               const RegisterOptions& options = {},
                               PipelineTeardown teardown = nullptr);

  /// Cancels by id (see QueryHandle::Cancel). Queued queries are simply
  /// dequeued. NotFound for unknown ids; cancelling twice is an error.
  Status Cancel(std::uint64_t query_id);

  /// Cancels every live or queued query of `tenant` (a server connection
  /// dropping). Returns how many were cancelled.
  std::size_t CancelAllForTenant(const std::string& tenant);

  // --- Execution ------------------------------------------------------------

  /// Runs up to `max_steps` executor steps (pipe deliveries + source
  /// polls); stops early when the graph has no work. Also admits queued
  /// registrations that now fit. Returns steps actually taken.
  std::uint64_t Pump(std::uint64_t max_steps = 1024);

  /// Pumps until the graph fully drains (finite workloads: demos, tests).
  scheduler::RunStats RunToCompletion();

  // --- Observability --------------------------------------------------------

  /// Whole-graph snapshot (memory gauges included).
  metadata::MetricsSnapshot Snapshot() const;

  /// Snapshot filtered to one tenant's operators, scope-labelled with the
  /// tenant name.
  metadata::MetricsSnapshot TenantSnapshot(const std::string& tenant) const;

  /// Snapshot filtered to one query's operators.
  Result<metadata::MetricsSnapshot> QuerySnapshot(
      std::uint64_t query_id) const;

  TenantCounters tenant_counters(const std::string& tenant) const;
  std::vector<std::string> Tenants() const;
  EngineStats stats() const;

  // --- Infrastructure access (setup phase) ----------------------------------
  // Mutating the graph or catalog directly is the deprecated pre-engine
  // pattern (DESIGN.md §4g migration recipe); do it only before the first
  // Pump, or route through Register/Cancel.

  QueryGraph& graph() { return graph_; }
  const QueryGraph& graph() const { return graph_; }
  cql::Catalog& catalog() { return catalog_; }
  memory::MemoryManager& memory_manager() { return memory_; }
  const optimizer::PlanManager& plan_manager() const { return plan_manager_; }

 private:
  friend class QueryHandle;
  friend class StreamWriter;

  /// The engine-owned terminal sink of one registered query.
  class ResultSink;

  struct QueryRecord {
    std::string tenant;
    QueryState state = QueryState::kQueued;
    std::uint64_t pm_id = 0;  ///< PlanManager id; 0 for pipeline queries.
    Source<relational::Tuple>* output = nullptr;
    ResultSink* sink = nullptr;  ///< Owned by the graph while running.
    relational::Schema schema;
    optimizer::LogicalPlan plan;            ///< Kept while queued.
    std::vector<std::uint64_t> node_ids;    ///< Pipeline queries only.
    PipelineTeardown teardown;              ///< Pipeline queries only.
    std::uint64_t results_delivered = 0;    ///< Final count after teardown.
    /// Static state certificate, valid iff `has_certificate` (plan
    /// registrations under `EngineOptions::certify_admission`).
    analysis::StateCertificate certificate;
    bool has_certificate = false;
  };

  // All private helpers below assume mu_ is held.
  Result<QueryHandle> RegisterPlanLocked(const optimizer::LogicalPlan& plan,
                                         const RegisterOptions& options);
  Status AdmitLocked(std::uint64_t query_id, QueryRecord& record);
  Status CancelLocked(std::uint64_t query_id);
  void AdmitPendingLocked();
  /// Quota/budget verdict for one more query of `tenant`. OK, or the
  /// ResourceExhausted the caller rejects/queues with. A non-null
  /// `certificate` is additionally checked against the budget headroom
  /// (the static gate of `EngineOptions::certify_admission`).
  Status AdmissionCheckLocked(
      const std::string& tenant,
      const analysis::StateCertificate* certificate = nullptr) const;
  std::size_t StateBytesLocked() const;
  std::size_t SpilledBytesLocked() const;
  void SuspendExecutorLocked();
  void EnsureExecutorLocked();
  Result<std::vector<std::uint64_t>> QueryNodeIdsLocked(
      std::uint64_t query_id) const;
  static std::string OutputGaugeName(const std::string& tenant);

  Status PushLocked(InletSource* inlet,
                    const StreamElement<relational::Tuple>& element);
  Status InletStatusLocked(InletSource* inlet) const;

  mutable std::mutex mu_;
  EngineOptions options_;
  QueryGraph graph_;
  cql::Catalog catalog_;
  memory::MemoryManager memory_;
  optimizer::PlanManager plan_manager_;
  scheduler::RoundRobinStrategy strategy_;
  std::unique_ptr<scheduler::PipeExecutor> executor_;

  std::vector<InletSource*> inlets_;  ///< Owned by the graph.
  std::map<std::uint64_t, QueryRecord> queries_;
  std::vector<std::uint64_t> pending_;  ///< Queued ids, FIFO.
  std::map<std::string, TenantCounters> tenants_;
  std::uint64_t next_query_id_ = 1;
  std::uint64_t cancelled_count_ = 0;
  std::uint64_t rejected_count_ = 0;
};

}  // namespace pipes::engine

#endif  // PIPES_ENGINE_ENGINE_H_
