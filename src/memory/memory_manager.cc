#include "src/memory/memory_manager.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/macros.h"

namespace pipes::memory {

namespace {

/// Distributes `budget` by weight, clamping each share to
/// [min_bytes, preferred_bytes] and re-offering capped users' leftover in
/// further passes. Guarantees every user at least its minimum.
std::vector<std::size_t> WeightedAssign(std::size_t budget,
                                        const std::vector<UserInfo>& users,
                                        const std::vector<double>& weights) {
  const std::size_t n = users.size();
  std::vector<std::size_t> assignment(n, 0);
  std::vector<bool> fixed(n, false);

  // Minima come first, regardless of budget.
  std::size_t spent = 0;
  for (std::size_t i = 0; i < n; ++i) {
    assignment[i] = users[i].min_bytes;
    spent += assignment[i];
  }
  std::size_t remaining = budget > spent ? budget - spent : 0;

  // Iteratively hand the remainder out by weight, freezing users that hit
  // their preferred cap. Terminates: each pass fixes at least one user or
  // distributes everything.
  for (std::size_t pass = 0; pass < n + 1 && remaining > 0; ++pass) {
    double total_weight = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!fixed[i]) total_weight += weights[i];
    }
    if (total_weight <= 0) break;
    bool any_fixed = false;
    std::size_t next_remaining = remaining;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      const auto share = static_cast<std::size_t>(
          static_cast<double>(remaining) * (weights[i] / total_weight));
      const std::size_t headroom =
          users[i].preferred_bytes > assignment[i]
              ? users[i].preferred_bytes - assignment[i]
              : 0;
      const std::size_t granted = std::min(share, headroom);
      assignment[i] += granted;
      next_remaining -= granted;
      if (granted == headroom) {
        fixed[i] = true;
        any_fixed = true;
      }
    }
    if (!any_fixed) {
      // Rounding may strand a few bytes; give them to the first open user.
      for (std::size_t i = 0; i < n && next_remaining > 0; ++i) {
        if (fixed[i]) continue;
        const std::size_t headroom =
            users[i].preferred_bytes > assignment[i]
                ? users[i].preferred_bytes - assignment[i]
                : 0;
        const std::size_t granted = std::min(next_remaining, headroom);
        assignment[i] += granted;
        next_remaining -= granted;
      }
      remaining = next_remaining;
      break;
    }
    remaining = next_remaining;
  }
  return assignment;
}

}  // namespace

std::vector<std::size_t> UniformStrategy::Assign(
    std::size_t budget, const std::vector<UserInfo>& users) {
  return WeightedAssign(budget, users,
                        std::vector<double>(users.size(), 1.0));
}

std::vector<std::size_t> ProportionalStrategy::Assign(
    std::size_t budget, const std::vector<UserInfo>& users) {
  std::vector<double> weights(users.size());
  double total = 0;
  for (std::size_t i = 0; i < users.size(); ++i) {
    weights[i] = static_cast<double>(users[i].usage);
    total += weights[i];
  }
  if (total == 0) {
    std::fill(weights.begin(), weights.end(), 1.0);
  }
  return WeightedAssign(budget, users, weights);
}

std::vector<std::size_t> PriorityStrategy::Assign(
    std::size_t budget, const std::vector<UserInfo>& users) {
  std::vector<double> weights(users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    weights[i] = std::max(users[i].priority, 0.0);
  }
  return WeightedAssign(budget, users, weights);
}

MemoryManager::MemoryManager(std::size_t budget_bytes,
                             std::unique_ptr<AssignmentStrategy> strategy)
    : budget_(budget_bytes), strategy_(std::move(strategy)) {
  PIPES_CHECK(strategy_ != nullptr);
}

Status MemoryManager::Register(MemoryUser& user, double priority) {
  for (const Registration& r : users_) {
    if (r.user == &user) {
      return Status::AlreadyExists("memory user already registered");
    }
  }
  users_.push_back({&user, priority});
  Redistribute();
  return Status::OK();
}

Status MemoryManager::Unregister(MemoryUser& user) {
  auto it = std::find_if(users_.begin(), users_.end(),
                         [&](const Registration& r) { return r.user == &user; });
  if (it == users_.end()) {
    return Status::NotFound("memory user not registered");
  }
  users_.erase(it);
  user.SetMemoryLimit(std::numeric_limits<std::size_t>::max());
  user.SetDiskBudget(std::numeric_limits<std::size_t>::max());
  Redistribute();
  return Status::OK();
}

void MemoryManager::Redistribute() {
  if (users_.empty()) return;
  std::vector<UserInfo> infos;
  infos.reserve(users_.size());
  for (const Registration& r : users_) {
    infos.push_back(UserInfo{r.user, r.priority, r.user->MemoryUsage(),
                             r.user->MinMemoryBytes(),
                             r.user->PreferredMemoryBytes()});
  }
  const std::vector<std::size_t> assignment =
      strategy_->Assign(budget_, infos);
  PIPES_CHECK(assignment.size() == users_.size());
  for (std::size_t i = 0; i < users_.size(); ++i) {
    users_[i].user->SetMemoryLimit(assignment[i]);
  }

  // Disk tier: split the disk budget over the spill-capable users,
  // proportional to their current spill footprint (demand-driven, like
  // ProportionalStrategy) with no minima — disk is optional capacity.
  std::vector<std::size_t> capable;
  for (std::size_t i = 0; i < users_.size(); ++i) {
    if (users_[i].user->SpillCapable()) capable.push_back(i);
  }
  if (capable.empty()) return;
  if (disk_budget_ == std::numeric_limits<std::size_t>::max()) {
    for (std::size_t i : capable) {
      users_[i].user->SetDiskBudget(std::numeric_limits<std::size_t>::max());
    }
    return;
  }
  std::vector<UserInfo> disk_infos;
  std::vector<double> weights;
  disk_infos.reserve(capable.size());
  for (std::size_t i : capable) {
    disk_infos.push_back(UserInfo{
        users_[i].user, users_[i].priority, users_[i].user->DiskUsage(), 0,
        std::numeric_limits<std::size_t>::max()});
    weights.push_back(
        static_cast<double>(users_[i].user->DiskUsage()) + 1.0);
  }
  const std::vector<std::size_t> disk_assignment =
      WeightedAssign(disk_budget_, disk_infos, weights);
  for (std::size_t j = 0; j < capable.size(); ++j) {
    users_[capable[j]].user->SetDiskBudget(disk_assignment[j]);
  }
}

void MemoryManager::set_strategy(
    std::unique_ptr<AssignmentStrategy> strategy) {
  PIPES_CHECK(strategy != nullptr);
  strategy_ = std::move(strategy);
  Redistribute();
}

std::size_t MemoryManager::TotalUsage() const {
  std::size_t total = 0;
  for (const Registration& r : users_) total += r.user->MemoryUsage();
  return total;
}

std::size_t MemoryManager::TotalDiskUsage() const {
  std::size_t total = 0;
  for (const Registration& r : users_) total += r.user->DiskUsage();
  return total;
}

std::size_t MemoryManager::num_spill_capable_users() const {
  std::size_t n = 0;
  for (const Registration& r : users_) n += r.user->SpillCapable() ? 1 : 0;
  return n;
}

}  // namespace pipes::memory
