#ifndef PIPES_MEMORY_MEMORY_MANAGER_H_
#define PIPES_MEMORY_MEMORY_MANAGER_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/memory/memory_user.h"

/// \file
/// The adaptive memory manager: operators requiring memory subscribe to it;
/// the manager globally assigns and redistributes the available budget at
/// runtime according to an exchangeable strategy. Pressure resolves down
/// the RAM → disk → shed ladder (docs/memory.md): alongside the RAM
/// budget the manager arbitrates a disk budget over the spill-capable
/// users, so shrinking assignments page state out losslessly; shedding
/// (approximate answers — experiment E6) is the opt-in last resort.

namespace pipes::memory {

/// Snapshot of one registered user handed to assignment strategies.
struct UserInfo {
  MemoryUser* user = nullptr;
  double priority = 1.0;
  std::size_t usage = 0;
  std::size_t min_bytes = 0;
  std::size_t preferred_bytes = 0;
};

/// Splits `budget` bytes over the users. Implementations must return one
/// assignment per user, each at least the user's `min_bytes` (the manager
/// accepts overshoot of the budget only through these minima).
class AssignmentStrategy {
 public:
  virtual ~AssignmentStrategy() = default;
  virtual std::string name() const = 0;
  virtual std::vector<std::size_t> Assign(
      std::size_t budget, const std::vector<UserInfo>& users) = 0;
};

/// Equal shares, clamped to [min, preferred]; leftover from capped users is
/// re-offered to the others.
class UniformStrategy : public AssignmentStrategy {
 public:
  std::string name() const override { return "uniform"; }
  std::vector<std::size_t> Assign(
      std::size_t budget, const std::vector<UserInfo>& users) override;
};

/// Shares proportional to current usage (demand-driven): operators whose
/// state grows fastest receive the most memory.
class ProportionalStrategy : public AssignmentStrategy {
 public:
  std::string name() const override { return "proportional"; }
  std::vector<std::size_t> Assign(
      std::size_t budget, const std::vector<UserInfo>& users) override;
};

/// Shares proportional to registration priority (queries the user cares
/// about most keep their state longest).
class PriorityStrategy : public AssignmentStrategy {
 public:
  std::string name() const override { return "priority"; }
  std::vector<std::size_t> Assign(
      std::size_t budget, const std::vector<UserInfo>& users) override;
};

/// The global manager. Not thread-safe; drive it from the scheduling
/// thread (call `Redistribute()` periodically or after registrations).
class MemoryManager {
 public:
  MemoryManager(std::size_t budget_bytes,
                std::unique_ptr<AssignmentStrategy> strategy);

  /// Subscribes `user`; fails if already registered. Triggers
  /// redistribution.
  Status Register(MemoryUser& user, double priority = 1.0);

  /// Unsubscribes `user` (its limit is lifted). Triggers redistribution.
  Status Unregister(MemoryUser& user);

  /// Recomputes assignments with the current strategy and pushes them to
  /// every user via SetMemoryLimit; then splits the disk budget over the
  /// spill-capable users (usage-proportional) via SetDiskBudget.
  void Redistribute();

  void set_budget(std::size_t bytes) {
    budget_ = bytes;
    Redistribute();
  }
  std::size_t budget() const { return budget_; }

  /// Total bytes of spill the manager hands out across spill-capable
  /// users. Unlimited by default; set to bound the disk tier.
  void set_disk_budget(std::size_t bytes) {
    disk_budget_ = bytes;
    Redistribute();
  }
  std::size_t disk_budget() const { return disk_budget_; }

  void set_strategy(std::unique_ptr<AssignmentStrategy> strategy);
  const AssignmentStrategy& strategy() const { return *strategy_; }

  std::size_t num_users() const { return users_.size(); }

  /// Sum of all users' current usage.
  std::size_t TotalUsage() const;

  /// Sum of all users' spilled (on-disk) bytes.
  std::size_t TotalDiskUsage() const;

  /// Registered users that can page state to disk.
  std::size_t num_spill_capable_users() const;

 private:
  struct Registration {
    MemoryUser* user;
    double priority;
  };

  std::size_t budget_;
  std::size_t disk_budget_ = std::numeric_limits<std::size_t>::max();
  std::unique_ptr<AssignmentStrategy> strategy_;
  std::vector<Registration> users_;
};

}  // namespace pipes::memory

#endif  // PIPES_MEMORY_MEMORY_MANAGER_H_
