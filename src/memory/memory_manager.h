#ifndef PIPES_MEMORY_MEMORY_MANAGER_H_
#define PIPES_MEMORY_MEMORY_MANAGER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/memory/memory_user.h"

/// \file
/// The adaptive memory manager: operators requiring memory subscribe to it;
/// the manager globally assigns and redistributes the available budget at
/// runtime according to an exchangeable strategy. When assignments shrink,
/// users shed state through their own load-shedding strategy (approximate
/// query answers under pressure — experiment E6).

namespace pipes::memory {

/// Snapshot of one registered user handed to assignment strategies.
struct UserInfo {
  MemoryUser* user = nullptr;
  double priority = 1.0;
  std::size_t usage = 0;
  std::size_t min_bytes = 0;
  std::size_t preferred_bytes = 0;
};

/// Splits `budget` bytes over the users. Implementations must return one
/// assignment per user, each at least the user's `min_bytes` (the manager
/// accepts overshoot of the budget only through these minima).
class AssignmentStrategy {
 public:
  virtual ~AssignmentStrategy() = default;
  virtual std::string name() const = 0;
  virtual std::vector<std::size_t> Assign(
      std::size_t budget, const std::vector<UserInfo>& users) = 0;
};

/// Equal shares, clamped to [min, preferred]; leftover from capped users is
/// re-offered to the others.
class UniformStrategy : public AssignmentStrategy {
 public:
  std::string name() const override { return "uniform"; }
  std::vector<std::size_t> Assign(
      std::size_t budget, const std::vector<UserInfo>& users) override;
};

/// Shares proportional to current usage (demand-driven): operators whose
/// state grows fastest receive the most memory.
class ProportionalStrategy : public AssignmentStrategy {
 public:
  std::string name() const override { return "proportional"; }
  std::vector<std::size_t> Assign(
      std::size_t budget, const std::vector<UserInfo>& users) override;
};

/// Shares proportional to registration priority (queries the user cares
/// about most keep their state longest).
class PriorityStrategy : public AssignmentStrategy {
 public:
  std::string name() const override { return "priority"; }
  std::vector<std::size_t> Assign(
      std::size_t budget, const std::vector<UserInfo>& users) override;
};

/// The global manager. Not thread-safe; drive it from the scheduling
/// thread (call `Redistribute()` periodically or after registrations).
class MemoryManager {
 public:
  MemoryManager(std::size_t budget_bytes,
                std::unique_ptr<AssignmentStrategy> strategy);

  /// Subscribes `user`; fails if already registered. Triggers
  /// redistribution.
  Status Register(MemoryUser& user, double priority = 1.0);

  /// Unsubscribes `user` (its limit is lifted). Triggers redistribution.
  Status Unregister(MemoryUser& user);

  /// Recomputes assignments with the current strategy and pushes them to
  /// every user via SetMemoryLimit.
  void Redistribute();

  void set_budget(std::size_t bytes) {
    budget_ = bytes;
    Redistribute();
  }
  std::size_t budget() const { return budget_; }

  void set_strategy(std::unique_ptr<AssignmentStrategy> strategy);
  const AssignmentStrategy& strategy() const { return *strategy_; }

  std::size_t num_users() const { return users_.size(); }

  /// Sum of all users' current usage.
  std::size_t TotalUsage() const;

 private:
  struct Registration {
    MemoryUser* user;
    double priority;
  };

  std::size_t budget_;
  std::unique_ptr<AssignmentStrategy> strategy_;
  std::vector<Registration> users_;
};

}  // namespace pipes::memory

#endif  // PIPES_MEMORY_MEMORY_MANAGER_H_
