#ifndef PIPES_MEMORY_MEMORY_USER_H_
#define PIPES_MEMORY_MEMORY_USER_H_

#include <cstddef>
#include <limits>

/// \file
/// Interface between stateful operators and the adaptive memory manager.
/// Operators requiring memory (joins, aggregates, buffers) subscribe to a
/// `MemoryManager`, which globally assigns and redistributes the available
/// budget at runtime. When an operator's assignment shrinks below its
/// current usage it must shed state (approximate answers) to fit.

namespace pipes::memory {

/// An operator that consumes managed memory.
class MemoryUser {
 public:
  virtual ~MemoryUser() = default;

  /// Current state size in bytes (approximate accounting).
  virtual std::size_t MemoryUsage() const = 0;

  /// New upper bound in bytes. Implementations must immediately shed state
  /// (via their load-shedding strategy) until `MemoryUsage() <= bytes`, and
  /// must respect the bound for future insertions.
  virtual void SetMemoryLimit(std::size_t bytes) = 0;

  /// Least assignment this user can operate with.
  virtual std::size_t MinMemoryBytes() const { return 1024; }

  /// Assignment beyond which extra memory does not help (e.g. enough to
  /// hold a full window). Unlimited by default.
  virtual std::size_t PreferredMemoryBytes() const {
    return std::numeric_limits<std::size_t>::max();
  }
};

}  // namespace pipes::memory

#endif  // PIPES_MEMORY_MEMORY_USER_H_
