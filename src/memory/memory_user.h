#ifndef PIPES_MEMORY_MEMORY_USER_H_
#define PIPES_MEMORY_MEMORY_USER_H_

#include <cstddef>
#include <limits>

/// \file
/// Interface between stateful operators and the adaptive memory manager.
/// Operators requiring memory (joins, aggregates, buffers) subscribe to a
/// `MemoryManager`, which globally assigns and redistributes the available
/// budget at runtime. When an operator's assignment shrinks below its
/// current usage it resolves the pressure down the RAM → disk → shed
/// ladder (docs/memory.md): spill-capable operators page cold state to
/// disk losslessly; shedding (approximate answers) is the explicit opt-in
/// fallback for operators that cannot spill or have exhausted their disk
/// budget.

namespace pipes::memory {

/// An operator that consumes managed memory.
class MemoryUser {
 public:
  virtual ~MemoryUser() = default;

  /// Current RAM state size in bytes (approximate accounting). Spilled
  /// (on-disk) state is reported separately through `DiskUsage()`.
  virtual std::size_t MemoryUsage() const = 0;

  /// New upper bound in bytes. Implementations must immediately bring
  /// `MemoryUsage()` under `bytes` — by paging state to disk when they can
  /// (`SpillCapable()`), by shedding when that is enabled — and must
  /// respect the bound for future insertions.
  virtual void SetMemoryLimit(std::size_t bytes) = 0;

  /// True when this user can page state to disk losslessly instead of
  /// shedding. Spill-capable users participate in the manager's disk
  /// budget arbitration.
  virtual bool SpillCapable() const { return false; }

  /// Bytes of state currently paged to disk.
  virtual std::size_t DiskUsage() const { return 0; }

  /// New upper bound on spilled bytes. When disk is exhausted the user
  /// falls back to shedding if that is enabled, else the RAM bound goes
  /// soft (lossless overrun) — see docs/memory.md.
  virtual void SetDiskBudget(std::size_t /*bytes*/) {}

  /// Least assignment this user can operate with.
  virtual std::size_t MinMemoryBytes() const { return 1024; }

  /// Assignment beyond which extra memory does not help (e.g. enough to
  /// hold a full window). Unlimited by default.
  virtual std::size_t PreferredMemoryBytes() const {
    return std::numeric_limits<std::size_t>::max();
  }
};

}  // namespace pipes::memory

#endif  // PIPES_MEMORY_MEMORY_USER_H_
