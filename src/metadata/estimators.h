#ifndef PIPES_METADATA_ESTIMATORS_H_
#define PIPES_METADATA_ESTIMATORS_H_

#include <cmath>
#include <cstdint>
#include <limits>

/// \file
/// Iteratively computed inferential estimators — the paper's "secondary
/// metadata" synopses, computed in the style of online aggregation: each
/// estimate is maintained incrementally so a value is available at any time
/// during a run.

namespace pipes::metadata {

/// Welford's online algorithm: count, mean, variance, min, max in O(1) per
/// observation without storing the sample.
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void Reset() { *this = RunningStats(); }

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Population variance; 0 with fewer than two observations.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average; used for rate and selectivity
/// estimates that must adapt to fluctuating stream characteristics.
class Ewma {
 public:
  /// `alpha` in (0, 1]: weight of the newest observation.
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void Add(double x) {
    if (!seeded_) {
      value_ = x;
      seeded_ = true;
    } else {
      value_ = alpha_ * x + (1 - alpha_) * value_;
    }
  }

  bool seeded() const { return seeded_; }
  double value() const { return value_; }
  void Reset() { seeded_ = false; value_ = 0; }

 private:
  double alpha_;
  double value_ = 0;
  bool seeded_ = false;
};

}  // namespace pipes::metadata

#endif  // PIPES_METADATA_ESTIMATORS_H_
