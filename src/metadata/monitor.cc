#include "src/metadata/monitor.h"

#include <algorithm>

namespace pipes::metadata {

const char* MetricName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kInputRate:
      return "input_rate";
    case MetricKind::kOutputRate:
      return "output_rate";
    case MetricKind::kSelectivity:
      return "selectivity";
    case MetricKind::kQueueSize:
      return "queue_size";
    case MetricKind::kSubscriberCount:
      return "subscriber_count";
    case MetricKind::kMemoryBytes:
      return "memory_bytes";
  }
  return "?";
}

void Monitor::Watch(Node& node, std::set<MetricKind> metrics) {
  if (Watched* existing = Find(node); existing != nullptr) {
    // Recomposition: drop gauges of metrics no longer requested.
    for (MetricKind kind : existing->metrics) {
      if (metrics.find(kind) == metrics.end()) {
        node.metadata().Remove(MetricName(kind));
      }
    }
    existing->metrics = std::move(metrics);
    return;
  }
  Watched w;
  w.node = &node;
  w.metrics = std::move(metrics);
  w.last_in = node.elements_in();
  w.last_out = node.elements_out();
  watched_.push_back(std::move(w));
}

Status Monitor::AddMetric(Node& node, MetricKind kind) {
  Watched* w = Find(node);
  if (w == nullptr) {
    return Status::NotFound("node '" + node.name() + "' is not watched");
  }
  w->metrics.insert(kind);
  return Status::OK();
}

Status Monitor::RemoveMetric(Node& node, MetricKind kind) {
  Watched* w = Find(node);
  if (w == nullptr) {
    return Status::NotFound("node '" + node.name() + "' is not watched");
  }
  w->metrics.erase(kind);
  node.metadata().Remove(MetricName(kind));
  return Status::OK();
}

void Monitor::Unwatch(Node& node) {
  auto it = std::find_if(watched_.begin(), watched_.end(),
                         [&](const Watched& w) { return w.node == &node; });
  if (it != watched_.end()) {
    for (MetricKind kind : it->metrics) {
      node.metadata().Remove(MetricName(kind));
    }
    watched_.erase(it);
  }
}

void Monitor::Sample() {
  ++samples_;
  for (Watched& w : watched_) {
    Node& node = *w.node;
    const std::uint64_t in = node.elements_in();
    const std::uint64_t out = node.elements_out();
    for (MetricKind kind : w.metrics) {
      double value = 0;
      switch (kind) {
        case MetricKind::kInputRate:
          value = static_cast<double>(in - w.last_in);
          break;
        case MetricKind::kOutputRate:
          value = static_cast<double>(out - w.last_out);
          break;
        case MetricKind::kSelectivity:
          value = in == 0 ? 1.0
                          : static_cast<double>(out) /
                                static_cast<double>(in);
          break;
        case MetricKind::kQueueSize:
          value = static_cast<double>(node.queue_size());
          break;
        case MetricKind::kSubscriberCount:
          value = static_cast<double>(node.downstream().size());
          break;
        case MetricKind::kMemoryBytes:
          value = static_cast<double>(node.ApproxMemoryBytes());
          break;
      }
      const char* name = MetricName(kind);
      node.metadata().SetGauge(name, value);
      node.metadata().Observe(std::string(name) + ".stats", value);
    }
    w.last_in = in;
    w.last_out = out;
  }
}

void Monitor::WriteCsvHeader(std::ostream& out) {
  out << "sample,node,metric,value,mean,variance\n";
}

void Monitor::WriteCsv(std::ostream& out) const {
  for (const Watched& w : watched_) {
    for (MetricKind kind : w.metrics) {
      const char* name = MetricName(kind);
      const auto gauge = w.node->metadata().Gauge(name);
      if (!gauge.has_value()) continue;
      const auto stats =
          w.node->metadata().Stats(std::string(name) + ".stats");
      out << samples_ << ',' << w.node->name() << ',' << name << ','
          << *gauge << ',' << (stats ? stats->mean() : 0.0) << ','
          << (stats ? stats->variance() : 0.0) << '\n';
    }
  }
}

Monitor::Watched* Monitor::Find(const Node& node) {
  for (Watched& w : watched_) {
    if (w.node == &node) return &w;
  }
  return nullptr;
}

}  // namespace pipes::metadata
