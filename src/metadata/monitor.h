#ifndef PIPES_METADATA_MONITOR_H_
#define PIPES_METADATA_MONITOR_H_

#include <cstdint>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/node.h"

/// \file
/// The secondary-metadata monitor: a configurable factory that decorates
/// arbitrary nodes in a query graph with the desired metadata information.
/// Each `Sample()` derives the current input/output rate, selectivity,
/// queue size, and subscriber count of every watched node from its hot-path
/// counters, stores them as gauges in the node's metadata registry, feeds
/// running statistics (averages, variances) of each, and can render
/// everything as CSV — the text-mode equivalent of the paper's performance
/// monitoring tool. Metric composition can be altered at runtime.

namespace pipes::metadata {

/// The derivable secondary-metadata kinds.
enum class MetricKind {
  kInputRate,        // elements in per sample period
  kOutputRate,       // elements out per sample period
  kSelectivity,      // cumulative out/in
  kQueueSize,        // current queue length
  kSubscriberCount,  // current number of downstream edges
  kMemoryBytes,      // via MemoryUsageFn if the node provides one
};

const char* MetricName(MetricKind kind);

/// Samples watched nodes on demand. Sampling cadence is the caller's
/// choice (every N scheduler iterations, or from a timer thread — the
/// registries are thread-safe).
class Monitor {
 public:
  Monitor() = default;

  /// Starts decorating `node` with `metrics`. Watching an already-watched
  /// node replaces its metric composition.
  void Watch(Node& node, std::set<MetricKind> metrics);

  /// Adds or removes one metric at runtime.
  Status AddMetric(Node& node, MetricKind kind);
  Status RemoveMetric(Node& node, MetricKind kind);

  /// Stops decorating `node`.
  void Unwatch(Node& node);

  /// Takes one sample: updates every watched node's gauges and running
  /// statistics.
  void Sample();

  std::uint64_t samples_taken() const { return samples_; }

  /// Writes "sample,node,metric,value,mean,variance" rows for all watched
  /// nodes' current gauges.
  void WriteCsv(std::ostream& out) const;

  static void WriteCsvHeader(std::ostream& out);

 private:
  struct Watched {
    Node* node;
    std::set<MetricKind> metrics;
    std::uint64_t last_in = 0;
    std::uint64_t last_out = 0;
  };

  Watched* Find(const Node& node);

  std::vector<Watched> watched_;
  std::uint64_t samples_ = 0;
};

}  // namespace pipes::metadata

#endif  // PIPES_METADATA_MONITOR_H_
