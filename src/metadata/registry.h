#ifndef PIPES_METADATA_REGISTRY_H_
#define PIPES_METADATA_REGISTRY_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/metadata/estimators.h"

/// \file
/// Per-node secondary-metadata registry. The metadata factory decorates
/// nodes by attaching named gauges and running estimators here; composition
/// can be altered at runtime, and the monitor samples the registry
/// periodically. Hot-path counters live directly on `Node` as relaxed
/// atomics; this registry holds the derived, lower-frequency statistics.

namespace pipes::metadata {

/// Thread-safe map of named gauges (instantaneous values) and named
/// `RunningStats` (averages/variances of previously sampled values).
class Registry {
 public:
  /// Sets (creating if needed) the gauge `name`.
  void SetGauge(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_[name] = value;
  }

  /// Returns the gauge value, or nullopt if never set.
  std::optional<double> Gauge(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) return std::nullopt;
    return it->second;
  }

  /// Adds an observation to the running statistics `name` (created on first
  /// use).
  void Observe(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_[name].Add(value);
  }

  /// Returns a copy of the running statistics, or nullopt if never observed.
  std::optional<RunningStats> Stats(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = stats_.find(name);
    if (it == stats_.end()) return std::nullopt;
    return it->second;
  }

  /// Removes the gauge and/or stats called `name` (runtime recomposition).
  void Remove(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    gauges_.erase(name);
    stats_.erase(name);
  }

  std::vector<std::string> GaugeNames() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(gauges_.size());
    for (const auto& [name, unused] : gauges_) names.push_back(name);
    return names;
  }

  std::vector<std::string> StatsNames() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(stats_.size());
    for (const auto& [name, unused] : stats_) names.push_back(name);
    return names;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> gauges_;
  std::map<std::string, RunningStats> stats_;
};

}  // namespace pipes::metadata

#endif  // PIPES_METADATA_REGISTRY_H_
