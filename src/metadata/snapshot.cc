#include "src/metadata/snapshot.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <sstream>

namespace pipes::metadata {

namespace {

double Selectivity(std::uint64_t in, std::uint64_t out) {
  return in == 0 ? 0.0 : static_cast<double>(out) / static_cast<double>(in);
}

}  // namespace

double NodeSnapshot::PartitionSkew() const {
  if (partition_out.empty()) return 0.0;
  std::uint64_t total = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t c : partition_out) {
    total += c;
    max = std::max(max, c);
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(partition_out.size());
  return static_cast<double>(max) / mean;
}

const NodeSnapshot* MetricsSnapshot::FindNode(std::uint64_t id) const {
  for (const NodeSnapshot& n : nodes) {
    if (n.id == id) return &n;
  }
  return nullptr;
}

const NodeSnapshot* MetricsSnapshot::FindNode(const std::string& name) const {
  for (const NodeSnapshot& n : nodes) {
    if (n.name == name) return &n;
  }
  return nullptr;
}

MetricsSnapshot CaptureSnapshot(const QueryGraph& graph,
                                const CaptureOptions& options) {
  MetricsSnapshot snap;
  const std::vector<Node*> nodes = graph.nodes();
  snap.nodes.reserve(nodes.size());

  for (const Node* node : nodes) {
    NodeSnapshot ns;
    ns.id = node->id();
    ns.name = node->name();
    ns.active = node->is_active();
    ns.elements_in = node->elements_in();
    ns.elements_out = node->elements_out();
    ns.batches_in = node->batches_in();
    ns.batches_out = node->batches_out();
    ns.selectivity = Selectivity(ns.elements_in, ns.elements_out);
    ns.shed = node->ShedCount();
    ns.queue_size = node->queue_size();
    ns.memory_bytes = node->ApproxMemoryBytes();
    ns.subscribers = node->downstream().size();
    const Timestamp progress = node->progress();
    if (progress > kMinTimestamp) {
      ns.has_progress = true;
      ns.progress = progress;
      snap.high_watermark = std::max(snap.high_watermark, progress);
    }
    ns.service = node->service_histogram().Snapshot();
    ns.partition_out = node->PartitionCounts();
    ns.spilled_bytes = node->SpilledBytes();
    ns.spilled_partitions = node->SpilledPartitions();
    for (const std::string& gauge : node->metadata().GaugeNames()) {
      if (gauge.rfind("dataflow.", 0) != 0) continue;
      const std::optional<double> value = node->metadata().Gauge(gauge);
      if (value.has_value()) ns.gauges.emplace_back(gauge, *value);
    }
    if (options.profiler != nullptr) {
      const scheduler::NodeProfile profile = options.profiler->ForNode(*node);
      ns.sched_quanta = profile.quanta;
      ns.sched_units = profile.units;
      ns.sched_service_ns = profile.service_ns;
    }
    snap.nodes.push_back(std::move(ns));

    for (const Node* down : node->downstream()) {
      snap.edges.push_back(EdgeSnapshot{node->id(), down->id()});
    }
  }

  // Lag is relative to the most advanced node; kMaxTimestamp progress (a
  // drained port) pins the high watermark, which is intended: everything
  // still in flight trails end-of-stream.
  for (NodeSnapshot& ns : snap.nodes) {
    if (ns.has_progress) {
      ns.watermark_lag = snap.high_watermark - ns.progress;
    }
  }

  if (options.memory_manager != nullptr) {
    snap.memory.present = true;
    snap.memory.budget_bytes = options.memory_manager->budget();
    snap.memory.usage_bytes = options.memory_manager->TotalUsage();
    snap.memory.users = options.memory_manager->num_users();
    // Unlimited disk encodes as 0 (no budget) in the gauges.
    const std::size_t disk_budget = options.memory_manager->disk_budget();
    snap.memory.disk_budget_bytes =
        disk_budget == std::numeric_limits<std::size_t>::max() ? 0
                                                               : disk_budget;
    snap.memory.disk_usage_bytes = options.memory_manager->TotalDiskUsage();
    snap.memory.spill_users =
        options.memory_manager->num_spill_capable_users();
  }
  return snap;
}

// --- JSON emitter ----------------------------------------------------------

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendU64(std::string& out, const char* key, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
  out += buf;
}

void AppendI64(std::string& out, const char* key, std::int64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64, key, v);
  out += buf;
}

void AppendDouble(std::string& out, const char* key, double v) {
  char buf[64];
  // %.17g round-trips every finite double exactly.
  std::snprintf(buf, sizeof(buf), "\"%s\":%.17g", key, v);
  out += buf;
}

void AppendBool(std::string& out, const char* key, bool v) {
  out += '"';
  out += key;
  out += v ? "\":true" : "\":false";
}

}  // namespace

static std::string FinishJson(std::string out,
                              const MetricsSnapshot& snapshot);

MetricsSnapshot FilterSnapshot(const MetricsSnapshot& snapshot,
                               const SnapshotOptions& options) {
  if (options.node_filter.empty()) return snapshot;
  const std::set<std::uint64_t> keep(options.node_filter.begin(),
                                     options.node_filter.end());
  MetricsSnapshot out;
  out.memory = snapshot.memory;
  out.high_watermark = kMinTimestamp;
  for (const NodeSnapshot& n : snapshot.nodes) {
    if (keep.count(n.id) == 0) continue;
    out.nodes.push_back(n);
    if (n.has_progress) {
      out.high_watermark = std::max(out.high_watermark, n.progress);
    }
  }
  for (const EdgeSnapshot& e : snapshot.edges) {
    if (keep.count(e.from) != 0 && keep.count(e.to) != 0) {
      out.edges.push_back(e);
    }
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snapshot,
                   const SnapshotOptions& options) {
  const MetricsSnapshot filtered = FilterSnapshot(snapshot, options);
  const MetricsSnapshot& snap =
      options.node_filter.empty() ? snapshot : filtered;
  std::string out;
  out.reserve(256 + snap.nodes.size() * 512);
  out += '{';
  if (!options.scope.empty()) {
    out += "\"scope\":";
    AppendEscaped(out, options.scope);
    out += ',';
  }
  AppendI64(out, "high_watermark", snap.high_watermark);
  out += ",\"nodes\":[";
  return FinishJson(std::move(out), snap);
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  return ToJson(snapshot, SnapshotOptions{});
}

/// The node/edge/memory tail shared by both ToJson entry points; `out`
/// arrives with the document open through `"nodes":[`.
static std::string FinishJson(std::string out,
                              const MetricsSnapshot& snapshot) {
  for (std::size_t i = 0; i < snapshot.nodes.size(); ++i) {
    const NodeSnapshot& n = snapshot.nodes[i];
    if (i > 0) out += ',';
    out += '{';
    AppendU64(out, "id", n.id);
    out += ",\"name\":";
    AppendEscaped(out, n.name);
    out += ',';
    AppendBool(out, "active", n.active);
    out += ',';
    AppendU64(out, "elements_in", n.elements_in);
    out += ',';
    AppendU64(out, "elements_out", n.elements_out);
    out += ',';
    AppendU64(out, "batches_in", n.batches_in);
    out += ',';
    AppendU64(out, "batches_out", n.batches_out);
    out += ',';
    AppendDouble(out, "selectivity", n.selectivity);
    out += ',';
    AppendU64(out, "shed", n.shed);
    out += ',';
    AppendU64(out, "queue_size", n.queue_size);
    out += ',';
    AppendU64(out, "memory_bytes", n.memory_bytes);
    out += ',';
    AppendU64(out, "subscribers", n.subscribers);
    out += ',';
    AppendBool(out, "has_progress", n.has_progress);
    out += ',';
    AppendI64(out, "progress", n.progress);
    out += ',';
    AppendI64(out, "watermark_lag", n.watermark_lag);
    out += ",\"service\":{";
    AppendU64(out, "count", n.service.count);
    out += ',';
    AppendU64(out, "sum_ns", n.service.sum_ns);
    out += ",\"buckets\":[";
    for (std::size_t b = 0; b < n.service.buckets.size(); ++b) {
      if (b > 0) out += ',';
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%" PRIu64, n.service.buckets[b]);
      out += buf;
    }
    out += "]},";
    AppendU64(out, "sched_quanta", n.sched_quanta);
    out += ',';
    AppendU64(out, "sched_units", n.sched_units);
    out += ',';
    AppendU64(out, "sched_service_ns", n.sched_service_ns);
    // Only splitter nodes carry partition counts; everyone else's document
    // is unchanged by the field's existence.
    if (!n.partition_out.empty()) {
      out += ",\"partition_out\":[";
      for (std::size_t p = 0; p < n.partition_out.size(); ++p) {
        if (p > 0) out += ',';
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%" PRIu64, n.partition_out[p]);
        out += buf;
      }
      out += ']';
    }
    // Spill metrics only appear once a node actually pages to disk, so
    // pre-spill documents stay byte-identical.
    if (n.spilled_bytes > 0 || n.spilled_partitions > 0) {
      out += ',';
      AppendU64(out, "spilled_bytes", n.spilled_bytes);
      out += ',';
      AppendU64(out, "spilled_partitions", n.spilled_partitions);
    }
    // Dataflow gauges only appear on decorated nodes (certificate stamps,
    // per-instance transfer-function overrides).
    if (!n.gauges.empty()) {
      out += ",\"gauges\":{";
      for (std::size_t g = 0; g < n.gauges.size(); ++g) {
        if (g > 0) out += ',';
        AppendEscaped(out, n.gauges[g].first);
        char buf[64];
        std::snprintf(buf, sizeof(buf), ":%.17g", n.gauges[g].second);
        out += buf;
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"edges\":[";
  for (std::size_t i = 0; i < snapshot.edges.size(); ++i) {
    if (i > 0) out += ',';
    out += '{';
    AppendU64(out, "from", snapshot.edges[i].from);
    out += ',';
    AppendU64(out, "to", snapshot.edges[i].to);
    out += '}';
  }
  out += ']';
  if (snapshot.memory.present) {
    out += ",\"memory\":{";
    AppendU64(out, "budget_bytes", snapshot.memory.budget_bytes);
    out += ',';
    AppendU64(out, "usage_bytes", snapshot.memory.usage_bytes);
    out += ',';
    AppendU64(out, "users", snapshot.memory.users);
    if (snapshot.memory.disk_budget_bytes > 0 ||
        snapshot.memory.disk_usage_bytes > 0 ||
        snapshot.memory.spill_users > 0) {
      out += ',';
      AppendU64(out, "disk_budget_bytes", snapshot.memory.disk_budget_bytes);
      out += ',';
      AppendU64(out, "disk_usage_bytes", snapshot.memory.disk_usage_bytes);
      out += ',';
      AppendU64(out, "spill_users", snapshot.memory.spill_users);
    }
    out += '}';
  }
  out += '}';
  return out;
}

// --- JSON parser (the subset ToJson emits) ---------------------------------

namespace {

/// Recursive-descent parser over the JSON subset the exporter produces:
/// objects, arrays, strings with the escapes AppendEscaped writes, numbers
/// (int64/uint64/double), true/false. Kept here (not a public utility) so
/// the exporter and parser evolve together.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<MetricsSnapshot> Parse() {
    MetricsSnapshot snap;
    PIPES_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipWs();
      if (Peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) PIPES_RETURN_IF_ERROR(Expect(','));
      first = false;
      std::string key;
      PIPES_RETURN_IF_ERROR(ParseString(&key));
      PIPES_RETURN_IF_ERROR(Expect(':'));
      if (key == "high_watermark") {
        PIPES_RETURN_IF_ERROR(ParseI64(&snap.high_watermark));
      } else if (key == "nodes") {
        PIPES_RETURN_IF_ERROR(
            ParseArray([&](JsonParser& p) -> Status {
              NodeSnapshot node;
              PIPES_RETURN_IF_ERROR(p.ParseNode(&node));
              snap.nodes.push_back(std::move(node));
              return Status::OK();
            }));
      } else if (key == "edges") {
        PIPES_RETURN_IF_ERROR(
            ParseArray([&](JsonParser& p) -> Status {
              EdgeSnapshot edge;
              PIPES_RETURN_IF_ERROR(p.ParseEdge(&edge));
              snap.edges.push_back(edge);
              return Status::OK();
            }));
      } else if (key == "memory") {
        snap.memory.present = true;
        PIPES_RETURN_IF_ERROR(ParseMemory(&snap.memory));
      } else if (key == "scope") {
        // Provenance label written by SnapshotOptions::scope; carries no
        // snapshot state, so round-trip parses accept and drop it.
        std::string scope;
        PIPES_RETURN_IF_ERROR(ParseString(&scope));
      } else {
        return Unexpected("unknown key '" + key + "'");
      }
    }
    SkipWs();
    if (pos_ != text_.size()) return Unexpected("trailing characters");
    return snap;
  }

 private:
  char Peek() { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Unexpected(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  Status Expect(char c) {
    SkipWs();
    if (Peek() != c) {
      return Unexpected(std::string("expected '") + c + "'");
    }
    ++pos_;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    SkipWs();
    if (Peek() != '"') return Unexpected("expected string");
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Unexpected("bad escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Unexpected("bad \\u escape");
            c = static_cast<char>(
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16));
            pos_ += 4;
            break;
          }
          default:
            return Unexpected("unsupported escape");
        }
      }
      out->push_back(c);
    }
    if (Peek() != '"') return Unexpected("unterminated string");
    ++pos_;
    return Status::OK();
  }

  /// Scans one number token; `*is_floating` reports whether it contained a
  /// fraction or exponent.
  Status ScanNumber(std::string* token, bool* is_floating) {
    SkipWs();
    token->clear();
    *is_floating = false;
    if (Peek() == '-') token->push_back(text_[pos_++]);
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        token->push_back(c);
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        *is_floating = true;
        token->push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    if (token->empty()) return Unexpected("expected number");
    return Status::OK();
  }

  Status ParseU64(std::uint64_t* out) {
    std::string token;
    bool floating = false;
    PIPES_RETURN_IF_ERROR(ScanNumber(&token, &floating));
    if (floating) return Unexpected("expected integer");
    *out = std::strtoull(token.c_str(), nullptr, 10);
    return Status::OK();
  }

  Status ParseI64(std::int64_t* out) {
    std::string token;
    bool floating = false;
    PIPES_RETURN_IF_ERROR(ScanNumber(&token, &floating));
    if (floating) return Unexpected("expected integer");
    *out = std::strtoll(token.c_str(), nullptr, 10);
    return Status::OK();
  }

  Status ParseDouble(double* out) {
    std::string token;
    bool floating = false;
    PIPES_RETURN_IF_ERROR(ScanNumber(&token, &floating));
    *out = std::strtod(token.c_str(), nullptr);
    return Status::OK();
  }

  Status ParseBool(bool* out) {
    SkipWs();
    if (text_.compare(pos_, 4, "true") == 0) {
      *out = true;
      pos_ += 4;
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      *out = false;
      pos_ += 5;
      return Status::OK();
    }
    return Unexpected("expected bool");
  }

  template <typename ElementFn>
  Status ParseArray(ElementFn&& element) {
    PIPES_RETURN_IF_ERROR(Expect('['));
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    while (true) {
      PIPES_RETURN_IF_ERROR(element(*this));
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      return Expect(']');
    }
  }

  /// Iterates "key": value pairs of one object, dispatching through `field`.
  template <typename FieldFn>
  Status ParseObject(FieldFn&& field) {
    PIPES_RETURN_IF_ERROR(Expect('{'));
    bool first = true;
    while (true) {
      SkipWs();
      if (Peek() == '}') {
        ++pos_;
        return Status::OK();
      }
      if (!first) PIPES_RETURN_IF_ERROR(Expect(','));
      first = false;
      std::string key;
      PIPES_RETURN_IF_ERROR(ParseString(&key));
      PIPES_RETURN_IF_ERROR(Expect(':'));
      PIPES_RETURN_IF_ERROR(field(key));
    }
  }

  Status ParseHistogram(obs::HistogramSnapshot* out) {
    return ParseObject([&](const std::string& key) -> Status {
      if (key == "count") return ParseU64(&out->count);
      if (key == "sum_ns") return ParseU64(&out->sum_ns);
      if (key == "buckets") {
        std::size_t i = 0;
        return ParseArray([&](JsonParser& p) -> Status {
          if (i >= out->buckets.size()) {
            return p.Unexpected("too many histogram buckets");
          }
          return p.ParseU64(&out->buckets[i++]);
        });
      }
      return Unexpected("unknown histogram key '" + key + "'");
    });
  }

  Status ParseNode(NodeSnapshot* out) {
    return ParseObject([&](const std::string& key) -> Status {
      if (key == "id") return ParseU64(&out->id);
      if (key == "name") return ParseString(&out->name);
      if (key == "active") return ParseBool(&out->active);
      if (key == "elements_in") return ParseU64(&out->elements_in);
      if (key == "elements_out") return ParseU64(&out->elements_out);
      if (key == "batches_in") return ParseU64(&out->batches_in);
      if (key == "batches_out") return ParseU64(&out->batches_out);
      if (key == "selectivity") return ParseDouble(&out->selectivity);
      if (key == "shed") return ParseU64(&out->shed);
      if (key == "queue_size") return ParseU64(&out->queue_size);
      if (key == "memory_bytes") return ParseU64(&out->memory_bytes);
      if (key == "subscribers") return ParseU64(&out->subscribers);
      if (key == "has_progress") return ParseBool(&out->has_progress);
      if (key == "progress") return ParseI64(&out->progress);
      if (key == "watermark_lag") return ParseI64(&out->watermark_lag);
      if (key == "service") return ParseHistogram(&out->service);
      if (key == "sched_quanta") return ParseU64(&out->sched_quanta);
      if (key == "sched_units") return ParseU64(&out->sched_units);
      if (key == "sched_service_ns") return ParseU64(&out->sched_service_ns);
      if (key == "partition_out") {
        return ParseArray([&](JsonParser& p) -> Status {
          std::uint64_t count = 0;
          PIPES_RETURN_IF_ERROR(p.ParseU64(&count));
          out->partition_out.push_back(count);
          return Status::OK();
        });
      }
      if (key == "spilled_bytes") return ParseU64(&out->spilled_bytes);
      if (key == "spilled_partitions") {
        return ParseU64(&out->spilled_partitions);
      }
      if (key == "gauges") {
        return ParseObject([&](const std::string& gauge) -> Status {
          double value = 0.0;
          PIPES_RETURN_IF_ERROR(ParseDouble(&value));
          out->gauges.emplace_back(gauge, value);
          return Status::OK();
        });
      }
      return Unexpected("unknown node key '" + key + "'");
    });
  }

  Status ParseEdge(EdgeSnapshot* out) {
    return ParseObject([&](const std::string& key) -> Status {
      if (key == "from") return ParseU64(&out->from);
      if (key == "to") return ParseU64(&out->to);
      return Unexpected("unknown edge key '" + key + "'");
    });
  }

  Status ParseMemory(MemoryGauges* out) {
    return ParseObject([&](const std::string& key) -> Status {
      if (key == "budget_bytes") return ParseU64(&out->budget_bytes);
      if (key == "usage_bytes") return ParseU64(&out->usage_bytes);
      if (key == "users") return ParseU64(&out->users);
      if (key == "disk_budget_bytes") {
        return ParseU64(&out->disk_budget_bytes);
      }
      if (key == "disk_usage_bytes") return ParseU64(&out->disk_usage_bytes);
      if (key == "spill_users") return ParseU64(&out->spill_users);
      return Unexpected("unknown memory key '" + key + "'");
    });
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<MetricsSnapshot> SnapshotFromJson(const std::string& json) {
  return JsonParser(json).Parse();
}

// --- DOT overlay -----------------------------------------------------------

namespace {

std::string EscapeDotLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string HumanCount(std::uint64_t n) {
  char buf[32];
  if (n >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.1fk", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, n);
  }
  return buf;
}

}  // namespace

std::string ToDot(const MetricsSnapshot& snapshot,
                  const SnapshotOptions& options) {
  const MetricsSnapshot filtered = FilterSnapshot(snapshot, options);
  const MetricsSnapshot& snap =
      options.node_filter.empty() ? snapshot : filtered;
  std::ostringstream out;
  out << "digraph pipes_metrics {\n  rankdir=BT;\n"
      << "  node [shape=box, fontsize=10];\n  edge [fontsize=9];\n";
  if (!options.scope.empty()) {
    out << "  label=\"" << EscapeDotLabel(options.scope) << "\";\n";
  }
  for (const NodeSnapshot& n : snap.nodes) {
    out << "  n" << n.id << " [label=\"" << EscapeDotLabel(n.name);
    out << "\\nin " << HumanCount(n.elements_in) << " / out "
        << HumanCount(n.elements_out);
    if (n.queue_size > 0) out << "\\nqueue " << n.queue_size;
    if (n.memory_bytes > 0) {
      out << "\\nstate " << HumanCount(n.memory_bytes) << "B";
    }
    if (n.spilled_bytes > 0) {
      out << "\\nspill " << HumanCount(n.spilled_bytes) << "B ("
          << n.spilled_partitions << " runs)";
    }
    if (n.has_progress && n.watermark_lag > 0) {
      out << "\\nlag " << n.watermark_lag;
    }
    if (!n.partition_out.empty()) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "\\nskew %.2f (%zu parts)",
                    n.PartitionSkew(), n.partition_out.size());
      out << buf;
    }
    out << '"';
    if (n.active) out << ", peripheries=2";
    out << "];\n";
  }
  for (const EdgeSnapshot& e : snap.edges) {
    const NodeSnapshot* from = snap.FindNode(e.from);
    out << "  n" << e.from << " -> n" << e.to;
    if (from != nullptr) {
      out << " [label=\"";
      const NodeSnapshot* prev_from =
          options.previous != nullptr ? options.previous->FindNode(e.from)
                                      : nullptr;
      if (prev_from != nullptr && options.elapsed_seconds > 0) {
        const double rate =
            static_cast<double>(from->elements_out -
                                prev_from->elements_out) /
            options.elapsed_seconds;
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f el/s", rate);
        out << buf;
      } else {
        out << HumanCount(from->elements_out) << " el";
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "\\nsel %.2f", from->selectivity);
      out << buf << "\"]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string ToDot(const MetricsSnapshot& snapshot) {
  return ToDot(snapshot, SnapshotOptions{});
}

std::string ToDot(const MetricsSnapshot& snapshot, const DotOptions& options) {
  SnapshotOptions unified;
  unified.previous = options.previous;
  unified.elapsed_seconds = options.elapsed_seconds;
  return ToDot(snapshot, unified);
}

}  // namespace pipes::metadata
