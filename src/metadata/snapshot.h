#ifndef PIPES_METADATA_SNAPSHOT_H_
#define PIPES_METADATA_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/core/graph.h"
#include "src/core/metrics.h"
#include "src/memory/memory_manager.h"
#include "src/scheduler/profiler.h"

/// \file
/// `MetricsSnapshot`: one consistent-enough view of everything a running
/// query graph exposes — per-node hot-path counters (elements, batches,
/// selectivity, progress/watermark lag, service-time histogram), queue and
/// state sizes (SweepAreas report through `Node::ApproxMemoryBytes`),
/// topology, optional memory-manager gauges, and optional scheduler
/// profiles. Capturing walks the graph reading relaxed atomics only, so it
/// is safe concurrently with a running scheduler and never perturbs the
/// dataflow. Exporters: JSON (with a round-trip parser), a Graphviz DOT
/// overlay with rates and selectivities on edges (the paper's monitoring
/// screenshots in text form), and the `pipes_top` dashboard built on top.

namespace pipes::metadata {

/// Metrics of one node at capture time.
struct NodeSnapshot {
  std::uint64_t id = 0;
  std::string name;
  bool active = false;

  std::uint64_t elements_in = 0;
  std::uint64_t elements_out = 0;
  std::uint64_t batches_in = 0;
  std::uint64_t batches_out = 0;
  /// Cumulative elements_out / elements_in; 0 when nothing was consumed.
  double selectivity = 0.0;

  /// Elements dropped under resource pressure (`Node::ShedCount`): bounded
  /// buffers and load-shedding joins report here; 0 elsewhere.
  std::uint64_t shed = 0;

  std::uint64_t queue_size = 0;
  /// Approximate bytes of operator state (SweepAreas, sweep-line segments,
  /// buffer queues).
  std::uint64_t memory_bytes = 0;
  std::uint64_t subscribers = 0;

  /// The node's progress clock (see Node::progress); valid iff
  /// `has_progress`.
  bool has_progress = false;
  Timestamp progress = 0;
  /// `high_watermark - progress`: how far this node trails the most
  /// advanced node in the graph. 0 when the node has no progress yet.
  Timestamp watermark_lag = 0;

  obs::HistogramSnapshot service;

  /// Scheduler profile (all zero unless a Profiler was attached and passed
  /// to CaptureSnapshot).
  std::uint64_t sched_quanta = 0;
  std::uint64_t sched_units = 0;
  std::uint64_t sched_service_ns = 0;

  /// Per-output-partition element counts (`Node::PartitionCounts`); empty
  /// for everything but splitter nodes (`Partition`). The skew metric of a
  /// keyed-parallel stage: ideally uniform, a hot key shows as one entry
  /// dominating.
  std::vector<std::uint64_t> partition_out;

  /// Bytes of state paged to the disk tier (`Node::SpilledBytes`, lossless
  /// spill per docs/memory.md); 0 for nodes that never spill. Not included
  /// in `memory_bytes`, which is RAM only.
  std::uint64_t spilled_bytes = 0;

  /// Number of on-disk runs (`Node::SpilledPartitions`) backing
  /// `spilled_bytes`.
  std::uint64_t spilled_partitions = 0;

  /// "dataflow."-prefixed metadata gauges, sorted by name: the static
  /// state-certificate stamps the engine writes on its result sinks
  /// (`dataflow.cert_*`, -1 = unbounded) and any per-instance transfer
  /// function overrides (docs/lint.md). Empty for undecorated nodes and
  /// absent from the JSON document when empty, so documents predating the
  /// certificate work are byte-identical.
  std::vector<std::pair<std::string, double>> gauges;

  /// max / mean of `partition_out`: 1.0 is perfectly balanced, `n` means
  /// one partition carries everything. 0 when not a splitter or no output.
  double PartitionSkew() const;

  friend bool operator==(const NodeSnapshot&, const NodeSnapshot&) = default;
};

/// One subscription edge (parallel edges appear once per subscription).
struct EdgeSnapshot {
  std::uint64_t from = 0;
  std::uint64_t to = 0;

  friend bool operator==(const EdgeSnapshot&, const EdgeSnapshot&) = default;
};

/// Memory-manager gauges (absent unless a manager was passed). The disk
/// fields cover the spill tier (docs/memory.md): all zero — and absent
/// from the JSON document — when no user can spill and no disk budget is
/// set, which keeps pre-spill documents byte-identical.
struct MemoryGauges {
  bool present = false;
  std::uint64_t budget_bytes = 0;
  std::uint64_t usage_bytes = 0;
  std::uint64_t users = 0;
  /// Disk budget over all spill-capable users; 0 means unlimited.
  std::uint64_t disk_budget_bytes = 0;
  /// Sum of all users' spilled bytes.
  std::uint64_t disk_usage_bytes = 0;
  /// Registered users that can page state to disk.
  std::uint64_t spill_users = 0;

  friend bool operator==(const MemoryGauges&, const MemoryGauges&) = default;
};

struct MetricsSnapshot {
  /// Max progress clock over all nodes; kMinTimestamp when nothing moved.
  Timestamp high_watermark = kMinTimestamp;
  std::vector<NodeSnapshot> nodes;
  std::vector<EdgeSnapshot> edges;
  MemoryGauges memory;

  const NodeSnapshot* FindNode(std::uint64_t id) const;
  const NodeSnapshot* FindNode(const std::string& name) const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

struct CaptureOptions {
  const memory::MemoryManager* memory_manager = nullptr;
  const scheduler::Profiler* profiler = nullptr;
};

/// Walks `graph` and reads every node's counters. Relaxed-atomic reads
/// only: concurrent schedulers keep running, counters are monotone across
/// repeated captures, and the dataflow output is unchanged by capturing.
MetricsSnapshot CaptureSnapshot(const QueryGraph& graph,
                                const CaptureOptions& options = {});

/// The one option struct every snapshot exporter takes (JSON, DOT, and the
/// subgraph filter). Replaces the former per-exporter positional flags:
/// construct it with designated initializers and pass the same instance to
/// any exporter — irrelevant fields are ignored.
struct SnapshotOptions {
  /// Keep only nodes whose id is in this set, and the edges between them
  /// (the per-tenant / per-query view the engine and server expose). Empty
  /// means keep everything.
  std::vector<std::uint64_t> node_filter;

  /// Optional provenance label (e.g. the tenant whose queries the filtered
  /// view shows). Emitted as a `"scope"` key in JSON and a graph label in
  /// DOT; empty emits nothing, preserving the legacy formats byte-for-byte.
  std::string scope;

  /// With a previous snapshot and the elapsed seconds between the two,
  /// DOT edges carry rates (elements/sec) instead of cumulative counts.
  const MetricsSnapshot* previous = nullptr;
  double elapsed_seconds = 0.0;
};

/// Applies `options.node_filter` (when non-empty): nodes outside the set
/// are dropped, edges survive only when both endpoints do, and the high
/// watermark is recomputed over the kept nodes (lags keep their global
/// values — a tenant's lag is still measured against the whole graph).
MetricsSnapshot FilterSnapshot(const MetricsSnapshot& snapshot,
                               const SnapshotOptions& options);

/// JSON document (single object; keys are stable, doubles round-trip
/// exactly). Filtering and scope come from `options`.
std::string ToJson(const MetricsSnapshot& snapshot,
                   const SnapshotOptions& options);

/// Back-compat shim for the original no-options spelling; delegates to the
/// `SnapshotOptions` overload.
std::string ToJson(const MetricsSnapshot& snapshot);

///// Parses a document produced by `ToJson`. Round-trip guarantee:
/// `SnapshotFromJson(ToJson(s)) == s` (the optional `"scope"` key is
/// accepted and ignored).
Result<MetricsSnapshot> SnapshotFromJson(const std::string& json);

/// Deprecated spelling of the DOT exporter options; `SnapshotOptions`
/// subsumes it. Kept as a thin back-compat shim.
struct DotOptions {
  const MetricsSnapshot* previous = nullptr;
  double elapsed_seconds = 0.0;
};

/// Graphviz rendering with the monitoring overlay: nodes show element
/// counts, queue/state sizes, and watermark lag; edges show the producing
/// node's output volume (or rate) and selectivity — the paper's visual
/// monitoring tool as a DOT document. Filtering, scope label, and the rate
/// overlay all come from `options`.
std::string ToDot(const MetricsSnapshot& snapshot,
                  const SnapshotOptions& options);

/// Back-compat shims for the original positional spellings; both delegate
/// to the `SnapshotOptions` overload.
std::string ToDot(const MetricsSnapshot& snapshot);
std::string ToDot(const MetricsSnapshot& snapshot, const DotOptions& options);

}  // namespace pipes::metadata

#endif  // PIPES_METADATA_SNAPSHOT_H_
