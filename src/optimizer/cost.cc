#include "src/optimizer/cost.h"

namespace pipes::optimizer {

CostEstimate CostModel::Estimate(const LogicalPlan& plan,
                                 const std::set<std::string>* shared) const {
  const bool is_shared =
      shared != nullptr && shared->count(plan->Signature()) > 0;

  // Children first (rates are needed even for shared subtrees).
  std::vector<CostEstimate> child;
  child.reserve(plan->children.size());
  for (const LogicalPlan& c : plan->children) {
    child.push_back(Estimate(c, shared));
  }

  CostEstimate estimate;
  double own_cost = 0;
  switch (plan->kind) {
    case LogicalOp::Kind::kStreamScan: {
      estimate.output_rate = kDefaultScanRate;
      if (catalog_ != nullptr) {
        auto info = catalog_->Lookup(plan->stream_name);
        if (info.ok()) estimate.output_rate = (*info)->rate_hint;
      }
      own_cost = 0;
      break;
    }
    case LogicalOp::Kind::kFilter:
      estimate.output_rate = child[0].output_rate * kFilterSelectivity;
      own_cost = child[0].output_rate;
      break;
    case LogicalOp::Kind::kProject:
      estimate.output_rate = child[0].output_rate;
      own_cost = child[0].output_rate;
      break;
    case LogicalOp::Kind::kJoin: {
      const double selectivity =
          plan->equi_keys.empty()
              ? (plan->predicate != nullptr ? kResidualSelectivity : 1.0)
              : kEquiJoinSelectivity *
                    (plan->predicate != nullptr ? kResidualSelectivity : 1.0);
      estimate.output_rate = child[0].output_rate * child[1].output_rate *
                             kJoinWindowSeconds * selectivity;
      // Inserts and probes on both sides plus result construction.
      own_cost = child[0].output_rate + child[1].output_rate +
                 estimate.output_rate;
      break;
    }
    case LogicalOp::Kind::kGroupAggregate:
      estimate.output_rate = child[0].output_rate * kAggregateRateFactor;
      own_cost = child[0].output_rate;
      break;
    case LogicalOp::Kind::kDistinct:
      estimate.output_rate = child[0].output_rate * kDistinctRateFactor;
      own_cost = child[0].output_rate;
      break;
    case LogicalOp::Kind::kUnion:
      estimate.output_rate = child[0].output_rate + child[1].output_rate;
      own_cost = estimate.output_rate;
      break;
    case LogicalOp::Kind::kIStream:
    case LogicalOp::Kind::kDStream:
      estimate.output_rate = child[0].output_rate;
      own_cost = child[0].output_rate;
      break;
  }

  if (is_shared) {
    // The running graph already computes this subtree.
    estimate.cost = 0;
  } else {
    estimate.cost = own_cost;
    for (const CostEstimate& c : child) estimate.cost += c.cost;
  }
  return estimate;
}

}  // namespace pipes::optimizer
