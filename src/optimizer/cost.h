#ifndef PIPES_OPTIMIZER_COST_H_
#define PIPES_OPTIMIZER_COST_H_

#include <set>
#include <string>

#include "src/cql/catalog.h"
#include "src/optimizer/logical_plan.h"

/// \file
/// The cost model: estimates output rates and cumulative processing cost
/// (tuples touched per unit time) of logical plans. Scan rates come from
/// catalog hints (which the metadata monitor can refresh at runtime);
/// operator selectivities are textbook defaults. Subplans whose signature
/// already runs in the graph cost nothing extra — the multi-query
/// optimizer's sharing incentive (Roy et al. style).

namespace pipes::optimizer {

struct CostEstimate {
  double output_rate = 0;  // elements per second
  double cost = 0;         // processing effort per second
};

class CostModel {
 public:
  /// `catalog` supplies per-stream rate hints; null uses the default rate.
  explicit CostModel(const cql::Catalog* catalog = nullptr)
      : catalog_(catalog) {}

  /// Estimates `plan`. Subtrees whose signature appears in `shared` are
  /// treated as already paid for (cost 0, normal output rate).
  CostEstimate Estimate(const LogicalPlan& plan,
                        const std::set<std::string>* shared = nullptr) const;

  // Default parameters, public for tests and tuning.
  static constexpr double kDefaultScanRate = 1000.0;
  static constexpr double kFilterSelectivity = 0.25;
  static constexpr double kEquiJoinSelectivity = 0.05;
  static constexpr double kResidualSelectivity = 0.25;
  static constexpr double kAggregateRateFactor = 0.5;
  static constexpr double kDistinctRateFactor = 0.5;
  /// Effective window "size" converting rate x rate into a join output
  /// rate (seconds of opposite state each element meets).
  static constexpr double kJoinWindowSeconds = 1.0;

 private:
  const cql::Catalog* catalog_;
};

}  // namespace pipes::optimizer

#endif  // PIPES_OPTIMIZER_COST_H_
