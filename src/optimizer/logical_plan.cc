#include "src/optimizer/logical_plan.h"

#include <sstream>

#include "src/common/macros.h"

namespace pipes::optimizer {

using relational::BinaryExpr;
using relational::ExprPtr;
using relational::FieldRef;
using relational::Literal;
using relational::Schema;
using relational::UnaryExpr;
using relational::ValueType;

std::string WindowSpec::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case WindowKind::kNow:
      out << "NOW";
      break;
    case WindowKind::kRange:
      out << "RANGE " << range;
      break;
    case WindowKind::kRangeSlide:
      out << "RANGE " << range << " SLIDE " << slide;
      break;
    case WindowKind::kRows:
      out << "ROWS " << rows;
      break;
    case WindowKind::kUnbounded:
      out << "UNBOUNDED";
      break;
  }
  return out.str();
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
    case AggKind::kVariance:
      return "VARIANCE";
    case AggKind::kStddev:
      return "STDDEV";
  }
  return "?";
}

std::string LogicalOp::Head() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kStreamScan:
      out << "Scan[" << stream_name << "; " << window.ToString() << "]";
      break;
    case Kind::kFilter:
      out << "Filter[" << predicate->ToString() << "]";
      break;
    case Kind::kProject: {
      out << "Project[";
      for (std::size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) out << ", ";
        out << exprs[i]->ToString() << " AS " << schema.field(i).name;
      }
      out << "]";
      break;
    }
    case Kind::kJoin: {
      out << "Join[";
      for (std::size_t i = 0; i < equi_keys.size(); ++i) {
        if (i > 0) out << ", ";
        out << equi_keys[i].first << "=" << equi_keys[i].second;
      }
      if (predicate != nullptr) out << "; " << predicate->ToString();
      out << "]";
      break;
    }
    case Kind::kGroupAggregate: {
      out << "GroupAgg[";
      for (std::size_t i = 0; i < group_fields.size(); ++i) {
        if (i > 0) out << ", ";
        out << group_fields[i];
      }
      out << "; ";
      for (std::size_t i = 0; i < aggs.size(); ++i) {
        if (i > 0) out << ", ";
        out << AggKindName(aggs[i].kind) << "("
            << (aggs[i].arg ? aggs[i].arg->ToString() : "*") << ")";
      }
      out << "]";
      break;
    }
    case Kind::kDistinct:
      out << "Distinct";
      break;
    case Kind::kUnion:
      out << "Union";
      break;
    case Kind::kIStream:
      out << "IStream";
      break;
    case Kind::kDStream:
      out << "DStream";
      break;
  }
  return out.str();
}

std::string LogicalOp::Signature() const {
  std::string out = Head();
  if (!children.empty()) {
    out += "(";
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ", ";
      out += children[i]->Signature();
    }
    out += ")";
  }
  return out;
}

std::string LogicalOp::ToString(int indent) const {
  std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  std::string out = pad + Head() + "  " + schema.ToString() + "\n";
  for (const LogicalPlan& child : children) {
    out += child->ToString(indent + 1);
  }
  return out;
}

ValueType InferType(const ExprPtr& expr, const Schema& schema) {
  if (const auto* f = dynamic_cast<const FieldRef*>(expr.get())) {
    return f->index() < schema.arity() ? schema.field(f->index()).type
                                       : ValueType::kNull;
  }
  if (const auto* l = dynamic_cast<const Literal*>(expr.get())) {
    return l->value().type();
  }
  if (const auto* u = dynamic_cast<const UnaryExpr*>(expr.get())) {
    return u->op() == relational::UnaryOp::kNot
               ? ValueType::kBool
               : InferType(u->operand(), schema);
  }
  if (const auto* b = dynamic_cast<const BinaryExpr*>(expr.get())) {
    using relational::BinaryOp;
    switch (b->op()) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kMod: {
        const ValueType lt = InferType(b->left(), schema);
        const ValueType rt = InferType(b->right(), schema);
        return (lt == ValueType::kInt && rt == ValueType::kInt)
                   ? ValueType::kInt
                   : ValueType::kDouble;
      }
      case BinaryOp::kDiv: {
        const ValueType lt = InferType(b->left(), schema);
        const ValueType rt = InferType(b->right(), schema);
        return (lt == ValueType::kInt && rt == ValueType::kInt)
                   ? ValueType::kInt
                   : ValueType::kDouble;
      }
      default:
        return ValueType::kBool;
    }
  }
  return ValueType::kNull;
}

LogicalPlan ScanOp(std::string stream_name, Schema schema,
                   WindowSpec window) {
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOp::Kind::kStreamScan;
  op->stream_name = std::move(stream_name);
  op->schema = std::move(schema);
  op->window = window;
  return op;
}

LogicalPlan FilterOp(LogicalPlan child, ExprPtr predicate) {
  PIPES_CHECK(child != nullptr && predicate != nullptr);
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOp::Kind::kFilter;
  op->schema = child->schema;
  op->children.push_back(std::move(child));
  op->predicate = std::move(predicate);
  return op;
}

LogicalPlan ProjectOp(LogicalPlan child, std::vector<ExprPtr> exprs,
                      std::vector<std::string> names) {
  PIPES_CHECK(child != nullptr && exprs.size() == names.size());
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOp::Kind::kProject;
  Schema schema;
  for (std::size_t i = 0; i < exprs.size(); ++i) {
    schema.Append({names[i], InferType(exprs[i], child->schema)});
  }
  op->schema = std::move(schema);
  op->children.push_back(std::move(child));
  op->exprs = std::move(exprs);
  return op;
}

LogicalPlan JoinOp(LogicalPlan left, LogicalPlan right,
                   std::vector<std::pair<std::size_t, std::size_t>> equi_keys,
                   ExprPtr residual) {
  PIPES_CHECK(left != nullptr && right != nullptr);
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOp::Kind::kJoin;
  op->schema = left->schema.Concat(right->schema);
  op->children.push_back(std::move(left));
  op->children.push_back(std::move(right));
  op->equi_keys = std::move(equi_keys);
  op->predicate = std::move(residual);
  return op;
}

LogicalPlan GroupAggregateOp(LogicalPlan child,
                             std::vector<std::size_t> group_fields,
                             std::vector<AggSpec> aggs) {
  PIPES_CHECK(child != nullptr);
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOp::Kind::kGroupAggregate;
  Schema schema;
  for (std::size_t field : group_fields) {
    schema.Append(child->schema.field(field));
  }
  for (const AggSpec& agg : aggs) {
    relational::ValueType type = relational::ValueType::kDouble;
    if (agg.kind == AggKind::kCount) type = relational::ValueType::kInt;
    schema.Append({agg.output_name, type});
  }
  op->schema = std::move(schema);
  op->children.push_back(std::move(child));
  op->group_fields = std::move(group_fields);
  op->aggs = std::move(aggs);
  return op;
}

LogicalPlan DistinctOp(LogicalPlan child) {
  PIPES_CHECK(child != nullptr);
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOp::Kind::kDistinct;
  op->schema = child->schema;
  op->children.push_back(std::move(child));
  return op;
}

namespace {

LogicalPlan UnaryStreamOp(LogicalOp::Kind kind, LogicalPlan child) {
  PIPES_CHECK(child != nullptr);
  auto op = std::make_shared<LogicalOp>();
  op->kind = kind;
  op->schema = child->schema;
  op->children.push_back(std::move(child));
  return op;
}

}  // namespace

LogicalPlan IStreamOp(LogicalPlan child) {
  return UnaryStreamOp(LogicalOp::Kind::kIStream, std::move(child));
}

LogicalPlan DStreamOp(LogicalPlan child) {
  return UnaryStreamOp(LogicalOp::Kind::kDStream, std::move(child));
}

LogicalPlan UnionOp(LogicalPlan left, LogicalPlan right) {
  PIPES_CHECK(left != nullptr && right != nullptr);
  PIPES_CHECK_MSG(left->schema.arity() == right->schema.arity(),
                  "UNION requires equal arity");
  auto op = std::make_shared<LogicalOp>();
  op->kind = LogicalOp::Kind::kUnion;
  op->schema = left->schema;
  op->children.push_back(std::move(left));
  op->children.push_back(std::move(right));
  return op;
}

}  // namespace pipes::optimizer
