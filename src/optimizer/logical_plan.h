#ifndef PIPES_OPTIMIZER_LOGICAL_PLAN_H_
#define PIPES_OPTIMIZER_LOGICAL_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/time.h"
#include "src/relational/expression.h"
#include "src/relational/schema.h"

/// \file
/// Logical query plans over tuple streams: the intermediate representation
/// between the CQL front end and the physical publish-subscribe graph. A
/// plan is an immutable DAG of `LogicalOp` nodes; the optimizer rewrites it
/// rule-by-rule into snapshot-equivalent alternatives, costs them, and the
/// plan manager instantiates (or re-uses) physical operators bottom-up.

namespace pipes::optimizer {

/// CQL window specifications attached to stream scans.
enum class WindowKind { kNow, kRange, kRangeSlide, kRows, kUnbounded };

struct WindowSpec {
  WindowKind kind = WindowKind::kNow;
  Timestamp range = 0;      // kRange / kRangeSlide
  Timestamp slide = 0;      // kRangeSlide
  std::size_t rows = 0;     // kRows

  std::string ToString() const;
  friend bool operator==(const WindowSpec&, const WindowSpec&) = default;
};

enum class AggKind { kCount, kSum, kAvg, kMin, kMax, kVariance, kStddev };

const char* AggKindName(AggKind kind);

/// One aggregate in a GROUP BY plan: `kind(arg)` named `output_name`.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  relational::ExprPtr arg;  // may be null for COUNT(*)
  std::string output_name;
};

class LogicalOp;
using LogicalPlan = std::shared_ptr<const LogicalOp>;

/// A node of the logical algebra. One struct with kind-specific fields —
/// flat and easy to hash/rewrite (only the fields of `kind` are
/// meaningful).
class LogicalOp {
 public:
  enum class Kind {
    kStreamScan,      // leaf: named stream + window
    kFilter,          // predicate over the child schema
    kProject,         // expressions + output names
    kJoin,            // two children; equi keys + residual predicate
    kGroupAggregate,  // group fields + aggregate specs
    kDistinct,
    kUnion,
    kIStream,  // relation-to-stream: point element at each validity start
    kDStream,  // relation-to-stream: point element at each validity end
  };

  Kind kind;
  std::vector<LogicalPlan> children;
  relational::Schema schema;  // output schema

  // kStreamScan
  std::string stream_name;
  WindowSpec window;

  // kFilter / kJoin residual
  relational::ExprPtr predicate;

  // kProject
  std::vector<relational::ExprPtr> exprs;

  // kJoin: pairs of (left child field index, right child field index)
  std::vector<std::pair<std::size_t, std::size_t>> equi_keys;

  // kGroupAggregate
  std::vector<std::size_t> group_fields;
  std::vector<AggSpec> aggs;

  /// Canonical textual form; equal signatures mean syntactically equal
  /// (hence snapshot-equivalent) subplans — the multi-query optimizer's
  /// sharing key.
  std::string Signature() const;

  /// This node's label without the children suffix (used by ToString).
  std::string Head() const;

  /// Multi-line tree rendering for debugging.
  std::string ToString(int indent = 0) const;
};

// --- Builders (compute the output schema) ------------------------------------

LogicalPlan ScanOp(std::string stream_name, relational::Schema schema,
                   WindowSpec window);
LogicalPlan FilterOp(LogicalPlan child, relational::ExprPtr predicate);
LogicalPlan ProjectOp(LogicalPlan child,
                      std::vector<relational::ExprPtr> exprs,
                      std::vector<std::string> names);
LogicalPlan JoinOp(LogicalPlan left, LogicalPlan right,
                   std::vector<std::pair<std::size_t, std::size_t>> equi_keys,
                   relational::ExprPtr residual);
LogicalPlan GroupAggregateOp(LogicalPlan child,
                             std::vector<std::size_t> group_fields,
                             std::vector<AggSpec> aggs);
LogicalPlan DistinctOp(LogicalPlan child);
LogicalPlan UnionOp(LogicalPlan left, LogicalPlan right);
LogicalPlan IStreamOp(LogicalPlan child);
LogicalPlan DStreamOp(LogicalPlan child);

/// Result type of an expression under a schema (best-effort inference; used
/// for projected output schemas).
relational::ValueType InferType(const relational::ExprPtr& expr,
                                const relational::Schema& schema);

}  // namespace pipes::optimizer

#endif  // PIPES_OPTIMIZER_LOGICAL_PLAN_H_
