#include "src/optimizer/optimizer.h"

#include <algorithm>
#include <map>
#include <optional>
#include <numeric>
#include <utility>

#include "src/common/macros.h"

namespace pipes::optimizer {

namespace {

/// A cross-join chain decomposition: the unary operators above the chain
/// (outermost first) and the chain's leaves in original order.
struct Decomposition {
  std::vector<LogicalPlan> unary_stack;  // outermost first
  std::vector<LogicalPlan> leaves;       // left-to-right
};

/// Flattens pure cross joins (no keys, no residual) into a leaf list.
void FlattenCross(const LogicalPlan& plan, std::vector<LogicalPlan>* leaves) {
  if (plan->kind == LogicalOp::Kind::kJoin && plan->equi_keys.empty() &&
      plan->predicate == nullptr) {
    FlattenCross(plan->children[0], leaves);
    FlattenCross(plan->children[1], leaves);
    return;
  }
  leaves->push_back(plan);
}

/// Walks down unary operators to the topmost join; returns nullopt when the
/// plan has no permutable cross-join chain.
std::optional<Decomposition> Decompose(const LogicalPlan& plan) {
  Decomposition result;
  LogicalPlan current = plan;
  while (current->children.size() == 1) {
    result.unary_stack.push_back(current);
    current = current->children[0];
  }
  if (current->kind != LogicalOp::Kind::kJoin) return std::nullopt;
  FlattenCross(current, &result.leaves);
  if (result.leaves.size() < 2) return std::nullopt;
  return result;
}

/// Left-deep cross-join chain over `leaves`.
LogicalPlan BuildChain(const std::vector<LogicalPlan>& leaves) {
  LogicalPlan plan = leaves[0];
  for (std::size_t i = 1; i < leaves.size(); ++i) {
    plan = JoinOp(plan, leaves[i], {}, nullptr);
  }
  return plan;
}

/// Projection that restores the original concatenation order on top of a
/// permuted chain, so the operators above keep their field references.
LogicalPlan RestoreOrder(LogicalPlan permuted_chain,
                         const std::vector<LogicalPlan>& original_leaves,
                         const std::vector<std::size_t>& permutation) {
  // new_offset[p] = start of original leaf `permutation[p]` in the permuted
  // concatenation.
  std::vector<std::size_t> new_offset_of_original(original_leaves.size(), 0);
  std::size_t offset = 0;
  for (std::size_t p = 0; p < permutation.size(); ++p) {
    new_offset_of_original[permutation[p]] = offset;
    offset += original_leaves[permutation[p]]->schema.arity();
  }
  std::vector<relational::ExprPtr> exprs;
  std::vector<std::string> names;
  for (std::size_t leaf = 0; leaf < original_leaves.size(); ++leaf) {
    const auto& schema = original_leaves[leaf]->schema;
    for (std::size_t f = 0; f < schema.arity(); ++f) {
      exprs.push_back(relational::MakeField(new_offset_of_original[leaf] + f,
                                            schema.field(f).name));
      names.push_back(schema.field(f).name);
    }
  }
  return ProjectOp(std::move(permuted_chain), std::move(exprs),
                   std::move(names));
}

/// Reattaches the unary operator stack (outermost first) above `base`.
LogicalPlan Reattach(const std::vector<LogicalPlan>& unary_stack,
                     LogicalPlan base) {
  LogicalPlan plan = std::move(base);
  for (auto it = unary_stack.rbegin(); it != unary_stack.rend(); ++it) {
    plan = CloneWithChildren(**it, {std::move(plan)});
  }
  return plan;
}

}  // namespace

Optimizer::Optimizer(const cql::Catalog* catalog)
    : rules_(DefaultRules()), cost_model_(catalog) {}

std::vector<LogicalPlan> Optimizer::EnumerateAlternatives(
    const LogicalPlan& plan) const {
  std::vector<LogicalPlan> alternatives;
  std::map<std::string, bool> seen;
  auto add = [&](const LogicalPlan& candidate) {
    LogicalPlan normalized = Rewrite(candidate, rules_);
    const std::string signature = normalized->Signature();
    if (!seen.emplace(signature, true).second) return;
    alternatives.push_back(std::move(normalized));
  };

  add(plan);

  const std::optional<Decomposition> decomposition = Decompose(plan);
  if (decomposition.has_value()) {
    const std::size_t n = decomposition->leaves.size();
    std::vector<std::size_t> permutation(n);
    std::iota(permutation.begin(), permutation.end(), 0);
    std::size_t generated = 0;
    do {
      std::vector<LogicalPlan> permuted;
      permuted.reserve(n);
      for (std::size_t index : permutation) {
        permuted.push_back(decomposition->leaves[index]);
      }
      LogicalPlan chain = BuildChain(permuted);
      chain = RestoreOrder(std::move(chain), decomposition->leaves,
                           permutation);
      add(Reattach(decomposition->unary_stack, std::move(chain)));
      ++generated;
    } while (generated < 24 &&
             std::next_permutation(permutation.begin(), permutation.end()));
  }
  return alternatives;
}

OptimizationResult Optimizer::Optimize(
    const LogicalPlan& plan,
    const std::set<std::string>* shared_signatures) const {
  const std::vector<LogicalPlan> alternatives = EnumerateAlternatives(plan);
  PIPES_CHECK(!alternatives.empty());
  OptimizationResult best;
  best.alternatives_considered = alternatives.size();
  for (const LogicalPlan& candidate : alternatives) {
    const CostEstimate estimate =
        cost_model_.Estimate(candidate, shared_signatures);
    if (best.plan == nullptr || estimate.cost < best.cost) {
      best.plan = candidate;
      best.cost = estimate.cost;
    }
  }
  return best;
}

}  // namespace pipes::optimizer
