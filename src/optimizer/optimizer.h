#ifndef PIPES_OPTIMIZER_OPTIMIZER_H_
#define PIPES_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/optimizer/cost.h"
#include "src/optimizer/logical_plan.h"
#include "src/optimizer/rules.h"

/// \file
/// The rule-based query optimizer: takes a new query plan, heuristically
/// produces a set of snapshot-equivalent alternatives (join-order
/// enumeration + rule normalization), probes each against the currently
/// running query graph (shared subplans cost nothing), and returns the
/// best plan under the cost model — exactly the workflow the paper
/// describes for multi-query optimization over streams.

namespace pipes::optimizer {

struct OptimizationResult {
  LogicalPlan plan;
  double cost = 0;
  std::size_t alternatives_considered = 0;
};

class Optimizer {
 public:
  /// Uses the default rule set; `catalog` (optional) feeds rate hints to
  /// the cost model.
  explicit Optimizer(const cql::Catalog* catalog = nullptr);

  /// Optimizes `plan`. `shared_signatures` lists the subplan signatures
  /// already instantiated in the running graph.
  OptimizationResult Optimize(
      const LogicalPlan& plan,
      const std::set<std::string>* shared_signatures = nullptr) const;

  /// All snapshot-equivalent alternatives considered (normalized, deduped);
  /// exposed for tests and the demo.
  std::vector<LogicalPlan> EnumerateAlternatives(
      const LogicalPlan& plan) const;

 private:
  std::vector<std::unique_ptr<Rule>> rules_;
  CostModel cost_model_;
};

}  // namespace pipes::optimizer

#endif  // PIPES_OPTIMIZER_OPTIMIZER_H_
