#include "src/optimizer/physical.h"

#include <cmath>
#include <utility>

#include "src/algebra/aggregate.h"
#include "src/algebra/distinct.h"
#include "src/algebra/filter.h"
#include "src/algebra/join.h"
#include "src/algebra/map.h"
#include "src/algebra/relation_to_stream.h"
#include "src/algebra/union.h"
#include "src/algebra/window.h"
#include "src/common/macros.h"

namespace pipes::optimizer {

using relational::Tuple;

void TupleAggPolicy::Add(State& state, const Tuple& tuple) const {
  PIPES_DCHECK(state.size() == specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    SingleState& s = state[i];
    ++s.count;
    const AggSpec& spec = specs_[i];
    if (spec.arg == nullptr) continue;  // COUNT(*)
    const relational::Value v = spec.arg->Eval(tuple);
    if (v.is_null()) continue;
    ++s.value_count;
    switch (spec.kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kAvg:
        if (v.type() == relational::ValueType::kInt) {
          s.int_sum += v.AsInt();
        } else {
          s.saw_double = true;
        }
        s.double_sum += v.AsDouble();
        break;
      case AggKind::kMin:
        if (!s.set || v < s.min) s.min = v;
        s.set = true;
        break;
      case AggKind::kMax:
        if (!s.set || s.max < v) s.max = v;
        s.set = true;
        break;
      case AggKind::kVariance:
      case AggKind::kStddev: {
        // Welford over the non-null arguments (value_count was just
        // incremented).
        const double x = v.AsDouble();
        const double delta = x - s.mean;
        s.mean += delta / static_cast<double>(s.value_count);
        s.m2 += delta * (x - s.mean);
        break;
      }
    }
  }
}

Tuple TupleAggPolicy::Result(const State& state) const {
  std::vector<relational::Value> values;
  values.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SingleState& s = state[i];
    switch (specs_[i].kind) {
      case AggKind::kCount:
        values.push_back(relational::Value(static_cast<std::int64_t>(s.count)));
        break;
      case AggKind::kSum:
        values.push_back(s.saw_double
                             ? relational::Value(s.double_sum)
                             : relational::Value(s.int_sum));
        break;
      case AggKind::kAvg:
        values.push_back(
            s.value_count == 0
                ? relational::Value::Null()
                : relational::Value(s.double_sum /
                                    static_cast<double>(s.value_count)));
        break;
      case AggKind::kMin:
        values.push_back(s.set ? s.min : relational::Value::Null());
        break;
      case AggKind::kMax:
        values.push_back(s.set ? s.max : relational::Value::Null());
        break;
      case AggKind::kVariance:
      case AggKind::kStddev: {
        if (s.value_count == 0) {
          values.push_back(relational::Value::Null());
          break;
        }
        const double variance =
            s.value_count < 2
                ? 0.0
                : s.m2 / static_cast<double>(s.value_count);
        values.push_back(relational::Value(
            specs_[i].kind == AggKind::kStddev ? std::sqrt(variance)
                                               : variance));
        break;
      }
    }
  }
  return Tuple(std::move(values));
}

PhysicalBuilder::PhysicalBuilder(QueryGraph* graph,
                                 const cql::Catalog* catalog)
    : graph_(graph), catalog_(catalog) {
  PIPES_CHECK(graph != nullptr && catalog != nullptr);
}

Result<Source<Tuple>*> PhysicalBuilder::Build(
    const LogicalPlan& plan, SubplanMap* registry, BuildStats* stats,
    std::vector<std::string>* used_postorder) {
  BuildStats local_stats;
  SubplanMap local_registry;
  std::set<std::string> used_set;
  return BuildNode(plan, registry != nullptr ? registry : &local_registry,
                   stats != nullptr ? stats : &local_stats, used_postorder,
                   &used_set);
}

namespace {

/// Appends every signature of `plan`'s subtree, children before parents.
void RememberSubtree(const LogicalPlan& plan,
                     std::vector<std::string>* used_postorder,
                     std::set<std::string>* used_set) {
  for (const LogicalPlan& child : plan->children) {
    RememberSubtree(child, used_postorder, used_set);
  }
  std::string signature = plan->Signature();
  if (used_set->insert(signature).second) {
    used_postorder->push_back(std::move(signature));
  }
}

}  // namespace

Result<Source<Tuple>*> PhysicalBuilder::BuildNode(
    const LogicalPlan& plan, SubplanMap* registry, BuildStats* stats,
    std::vector<std::string>* used_postorder,
    std::set<std::string>* used_set) {
  const std::string signature = plan->Signature();
  auto remember_use = [&]() {
    if (used_postorder != nullptr && used_set->insert(signature).second) {
      used_postorder->push_back(signature);
    }
  };
  if (auto it = registry->find(signature); it != registry->end()) {
    ++stats->operators_reused;
    // The query depends on the whole reused subtree, not just its root:
    // every signature below must be reference-counted too (children
    // first), or uninstalling the creator query would tear the shared
    // subplan's inputs away.
    if (used_postorder != nullptr) {
      RememberSubtree(plan, used_postorder, used_set);
    }
    return it->second.output;
  }

  SubplanEntry entry;
  switch (plan->kind) {
    case LogicalOp::Kind::kStreamScan: {
      PIPES_ASSIGN_OR_RETURN(const cql::Catalog::StreamInfo* info,
                             catalog_->Lookup(plan->stream_name));
      if (info->source == nullptr) {
        return Status::FailedPrecondition(
            "stream '" + plan->stream_name + "' has no physical source");
      }
      Source<Tuple>* source = info->source;
      auto attach = [&](auto& window) {
        source->AddSubscriber(window.input());
        ++stats->operators_created;
        entry.nodes.push_back(&window);
        entry.disconnects.push_back([source, op = &window]() {
          return source->UnsubscribeFrom(op->input());
        });
        entry.output = &window;
      };
      switch (plan->window.kind) {
        case WindowKind::kNow:
          entry.output = source;  // no operator: the source itself
          break;
        case WindowKind::kRange: {
          auto& window = graph_->Add<algebra::TimeWindow<Tuple>>(
              plan->window.range, "window(" + plan->stream_name + ")");
          attach(window);
          break;
        }
        case WindowKind::kRangeSlide: {
          auto& window = graph_->Add<algebra::SlideWindow<Tuple>>(
              plan->window.range, plan->window.slide,
              "slide-window(" + plan->stream_name + ")");
          attach(window);
          break;
        }
        case WindowKind::kRows: {
          auto& window = graph_->Add<algebra::CountWindow<Tuple>>(
              plan->window.rows, "rows-window(" + plan->stream_name + ")");
          attach(window);
          break;
        }
        case WindowKind::kUnbounded: {
          auto& window = graph_->Add<algebra::UnboundedWindow<Tuple>>(
              "unbounded-window(" + plan->stream_name + ")");
          attach(window);
          break;
        }
      }
      break;
    }

    case LogicalOp::Kind::kFilter: {
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* child,
          BuildNode(plan->children[0], registry, stats, used_postorder,
                    used_set));
      auto& filter = graph_->Add<algebra::Filter<Tuple, ExprPredicate>>(
          ExprPredicate{plan->predicate},
          "filter[" + plan->predicate->ToString() + "]");
      child->AddSubscriber(filter.input());
      ++stats->operators_created;
      entry.nodes.push_back(&filter);
      entry.disconnects.push_back([child, op = &filter]() {
        return child->UnsubscribeFrom(op->input());
      });
      entry.output = &filter;
      break;
    }

    case LogicalOp::Kind::kProject: {
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* child,
          BuildNode(plan->children[0], registry, stats, used_postorder,
                    used_set));
      auto& project = graph_->Add<algebra::Map<Tuple, Tuple, ExprProjector>>(
          ExprProjector{plan->exprs}, "project");
      child->AddSubscriber(project.input());
      ++stats->operators_created;
      entry.nodes.push_back(&project);
      entry.disconnects.push_back([child, op = &project]() {
        return child->UnsubscribeFrom(op->input());
      });
      entry.output = &project;
      break;
    }

    case LogicalOp::Kind::kJoin: {
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* left,
          BuildNode(plan->children[0], registry, stats, used_postorder,
                    used_set));
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* right,
          BuildNode(plan->children[1], registry, stats, used_postorder,
                    used_set));
      Source<Tuple>* join_out = nullptr;
      if (!plan->equi_keys.empty()) {
        FieldsKey left_key;
        FieldsKey right_key;
        for (const auto& [l, r] : plan->equi_keys) {
          left_key.fields.push_back(l);
          right_key.fields.push_back(r);
        }
        auto join = algebra::MakeHashJoin<Tuple, Tuple>(
            left_key, right_key, TupleConcatCombine{}, "hash-join");
        auto& node = graph_->Add(std::move(join));
        left->AddSubscriber(node.left());
        right->AddSubscriber(node.right());
        ++stats->operators_created;
        entry.nodes.push_back(&node);
        entry.disconnects.push_back([left, op = &node]() {
          return left->UnsubscribeFrom(op->left());
        });
        entry.disconnects.push_back([right, op = &node]() {
          return right->UnsubscribeFrom(op->right());
        });
        join_out = &node;
        if (plan->predicate != nullptr) {
          auto& residual =
              graph_->Add<algebra::Filter<Tuple, ExprPredicate>>(
                  ExprPredicate{plan->predicate}, "join-residual");
          join_out->AddSubscriber(residual.input());
          ++stats->operators_created;
          entry.nodes.push_back(&residual);
          Source<Tuple>* raw = join_out;
          entry.disconnects.push_back([raw, op = &residual]() {
            return raw->UnsubscribeFrom(op->input());
          });
          join_out = &residual;
        }
      } else {
        auto join = algebra::MakeNestedLoopsJoin<Tuple, Tuple>(
            ConcatPredicate{plan->predicate}, TupleConcatCombine{},
            plan->predicate == nullptr ? "cross-join" : "nl-join");
        auto& node = graph_->Add(std::move(join));
        left->AddSubscriber(node.left());
        right->AddSubscriber(node.right());
        ++stats->operators_created;
        entry.nodes.push_back(&node);
        entry.disconnects.push_back([left, op = &node]() {
          return left->UnsubscribeFrom(op->left());
        });
        entry.disconnects.push_back([right, op = &node]() {
          return right->UnsubscribeFrom(op->right());
        });
        join_out = &node;
      }
      entry.output = join_out;
      break;
    }

    case LogicalOp::Kind::kGroupAggregate: {
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* child,
          BuildNode(plan->children[0], registry, stats, used_postorder,
                    used_set));
      struct TupleIdentity {
        const Tuple& operator()(const Tuple& t) const { return t; }
      };
      using Grouped = algebra::GroupedAggregate<Tuple, TupleAggPolicy,
                                                FieldsKey, TupleIdentity>;
      auto& grouped = graph_->Add<Grouped>(
          FieldsKey{plan->group_fields}, TupleIdentity{}, "group-aggregate",
          TupleAggPolicy(plan->aggs));
      child->AddSubscriber(grouped.input());
      ++stats->operators_created;

      // (group key, agg results) -> flat output tuple.
      struct PairConcat {
        Tuple operator()(const std::pair<Tuple, Tuple>& p) const {
          return p.first.Concat(p.second);
        }
      };
      auto& flatten = graph_->Add<
          algebra::Map<std::pair<Tuple, Tuple>, Tuple, PairConcat>>(
          PairConcat{}, "flatten-groups");
      grouped.AddSubscriber(flatten.input());
      ++stats->operators_created;

      entry.nodes.push_back(&grouped);
      entry.nodes.push_back(&flatten);
      entry.disconnects.push_back([child, op = &grouped]() {
        return child->UnsubscribeFrom(op->input());
      });
      entry.disconnects.push_back([g = &grouped, f = &flatten]() {
        return g->UnsubscribeFrom(f->input());
      });
      entry.output = &flatten;
      break;
    }

    case LogicalOp::Kind::kDistinct: {
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* child,
          BuildNode(plan->children[0], registry, stats, used_postorder,
                    used_set));
      auto& distinct = graph_->Add<algebra::Distinct<Tuple>>("distinct");
      child->AddSubscriber(distinct.input());
      ++stats->operators_created;
      entry.nodes.push_back(&distinct);
      entry.disconnects.push_back([child, op = &distinct]() {
        return child->UnsubscribeFrom(op->input());
      });
      entry.output = &distinct;
      break;
    }

    case LogicalOp::Kind::kUnion: {
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* left,
          BuildNode(plan->children[0], registry, stats, used_postorder,
                    used_set));
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* right,
          BuildNode(plan->children[1], registry, stats, used_postorder,
                    used_set));
      auto& unite = graph_->Add<algebra::Union<Tuple>>("union");
      left->AddSubscriber(unite.left());
      right->AddSubscriber(unite.right());
      ++stats->operators_created;
      entry.nodes.push_back(&unite);
      entry.disconnects.push_back([left, op = &unite]() {
        return left->UnsubscribeFrom(op->left());
      });
      entry.disconnects.push_back([right, op = &unite]() {
        return right->UnsubscribeFrom(op->right());
      });
      entry.output = &unite;
      break;
    }

    case LogicalOp::Kind::kIStream:
    case LogicalOp::Kind::kDStream: {
      PIPES_ASSIGN_OR_RETURN(
          Source<Tuple>* child,
          BuildNode(plan->children[0], registry, stats, used_postorder,
                    used_set));
      Source<Tuple>* out = nullptr;
      if (plan->kind == LogicalOp::Kind::kIStream) {
        auto& node = graph_->Add<algebra::IStream<Tuple>>("istream");
        child->AddSubscriber(node.input());
        entry.disconnects.push_back([child, op = &node]() {
          return child->UnsubscribeFrom(op->input());
        });
        entry.nodes.push_back(&node);
        out = &node;
      } else {
        auto& node = graph_->Add<algebra::DStream<Tuple>>("dstream");
        child->AddSubscriber(node.input());
        entry.disconnects.push_back([child, op = &node]() {
          return child->UnsubscribeFrom(op->input());
        });
        entry.nodes.push_back(&node);
        out = &node;
      }
      ++stats->operators_created;
      entry.output = out;
      break;
    }
  }

  PIPES_CHECK(entry.output != nullptr);
  // Stateful tuple operators declare per-element state bytes in terms of
  // sizeof(Tuple), which misses the heap the schema's values occupy. Stamp
  // the schema-based estimate as a dataflow gauge so the abstract
  // interpreter (src/analysis/dataflow.h) bounds real retention.
  const std::size_t tuple_bytes =
      sizeof(Tuple) +
      plan->schema.fields().size() * (sizeof(relational::Value) + 16);
  for (Node* node : entry.nodes) {
    const NodeDescriptor desc = node->Describe();
    if (desc.dataflow.state_bytes_per_element == 0 && !desc.blocking) {
      continue;
    }
    // Mirror the template formulas' shape conservatively: up to two
    // retained copies per input element, each with key/boundary overhead.
    node->metadata().SetGauge(
        "dataflow.bytes_per_element",
        static_cast<double>(2 * (tuple_bytes + 64) +
                            desc.dataflow.state_bytes_per_element));
  }
  Source<Tuple>* output = entry.output;
  (*registry)[signature] = std::move(entry);
  remember_use();
  return output;
}

}  // namespace pipes::optimizer
