#ifndef PIPES_OPTIMIZER_PHYSICAL_H_
#define PIPES_OPTIMIZER_PHYSICAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/graph.h"
#include "src/core/source.h"
#include "src/cql/catalog.h"
#include "src/optimizer/logical_plan.h"
#include "src/relational/expression.h"
#include "src/relational/tuple.h"

/// \file
/// Physical plan instantiation: lowers a (normalized) logical plan into
/// operators of the generic algebra over `Tuple` payloads and subscribes
/// them into the running query graph. When a subplan-signature registry is
/// supplied, structurally identical subplans are *shared* — new queries
/// graft onto the running graph through the publish-subscribe architecture
/// instead of rebuilding common work (multi-query optimization).

namespace pipes::optimizer {

// --- Runtime parameter functors (also reusable in tests/examples) -----------

/// Truthiness of a compiled expression, as a filter predicate.
struct ExprPredicate {
  relational::ExprPtr expr;
  bool operator()(const relational::Tuple& t) const {
    return expr->Eval(t).Truthy();
  }
};

/// Evaluates a projection list.
struct ExprProjector {
  std::vector<relational::ExprPtr> exprs;
  relational::Tuple operator()(const relational::Tuple& t) const {
    std::vector<relational::Value> values;
    values.reserve(exprs.size());
    for (const auto& expr : exprs) values.push_back(expr->Eval(t));
    return relational::Tuple(std::move(values));
  }
};

/// Projects the key fields of a tuple (join/grouping keys).
struct FieldsKey {
  std::vector<std::size_t> fields;
  relational::Tuple operator()(const relational::Tuple& t) const {
    return t.Project(fields);
  }
};

/// Join combiner: concatenation.
struct TupleConcatCombine {
  relational::Tuple operator()(const relational::Tuple& l,
                               const relational::Tuple& r) const {
    return l.Concat(r);
  }
};

/// Theta-join predicate evaluated over the concatenated pair.
struct ConcatPredicate {
  relational::ExprPtr expr;  // null = cross product
  bool operator()(const relational::Tuple& l,
                  const relational::Tuple& r) const {
    if (expr == nullptr) return true;
    return expr->Eval(l.Concat(r)).Truthy();
  }
};

/// Runtime-parameterized aggregation policy over tuples: one accumulator
/// per `AggSpec`. Plugs into the same sweep-line machinery as the static
/// policies (instance-based policy support).
class TupleAggPolicy {
 public:
  using Value = relational::Tuple;
  using Output = relational::Tuple;

  struct SingleState {
    std::uint64_t count = 0;        // all rows (COUNT)
    std::uint64_t value_count = 0;  // rows with a non-null argument (AVG)
    std::int64_t int_sum = 0;
    double double_sum = 0;
    bool saw_double = false;
    double mean = 0;  // Welford state for VARIANCE/STDDEV
    double m2 = 0;
    bool set = false;
    relational::Value min;
    relational::Value max;
  };
  using State = std::vector<SingleState>;

  explicit TupleAggPolicy(std::vector<AggSpec> specs)
      : specs_(std::move(specs)) {}

  State Init() const { return State(specs_.size()); }

  void Add(State& state, const relational::Tuple& tuple) const;

  Output Result(const State& state) const;

 private:
  std::vector<AggSpec> specs_;
};

/// One instantiated subplan, keyed by its logical signature. Besides the
/// output to subscribe to, it carries what dynamic *removal* needs: the
/// nodes created for it, closures that detach them from their upstreams,
/// and a reference count of installed queries using it.
struct SubplanEntry {
  Source<relational::Tuple>* output = nullptr;
  std::vector<Node*> nodes;  // empty for bare scans (the catalog's source)
  std::vector<std::function<Status()>> disconnects;
  std::size_t refcount = 0;
};

using SubplanMap = std::map<std::string, SubplanEntry>;

/// Lowers logical plans into the graph.
class PhysicalBuilder {
 public:
  struct BuildStats {
    std::size_t operators_created = 0;
    std::size_t operators_reused = 0;
  };

  /// `graph` receives the operators; `catalog` resolves scan sources.
  PhysicalBuilder(QueryGraph* graph, const cql::Catalog* catalog);

  /// Instantiates `plan` and returns its output. Subplans whose signature
  /// is present in `registry` are reused; new ones are recorded there.
  /// `used_postorder` (optional) receives each distinct signature of the
  /// plan once, children before parents — the removal script for
  /// `PlanManager::UninstallQuery`.
  Result<Source<relational::Tuple>*> Build(
      const LogicalPlan& plan, SubplanMap* registry = nullptr,
      BuildStats* stats = nullptr,
      std::vector<std::string>* used_postorder = nullptr);

 private:
  Result<Source<relational::Tuple>*> BuildNode(
      const LogicalPlan& plan, SubplanMap* registry, BuildStats* stats,
      std::vector<std::string>* used_postorder,
      std::set<std::string>* used_set);

  QueryGraph* graph_;
  const cql::Catalog* catalog_;
};

}  // namespace pipes::optimizer

#endif  // PIPES_OPTIMIZER_PHYSICAL_H_
