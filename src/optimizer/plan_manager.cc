#include "src/optimizer/plan_manager.h"

#include <algorithm>

#include "src/cql/analyzer.h"

namespace pipes::optimizer {

PlanManager::PlanManager(QueryGraph* graph, const cql::Catalog* catalog,
                         bool sharing)
    : graph_(graph),
      catalog_(catalog),
      sharing_(sharing),
      optimizer_(catalog),
      builder_(graph, catalog) {}

Result<PlanManager::InstalledQuery> PlanManager::InstallQuery(
    const std::string& cql_text) {
  PIPES_ASSIGN_OR_RETURN(cql::CompiledQuery compiled,
                         cql::Compile(cql_text, *catalog_));
  return InstallPlan(compiled.plan);
}

Result<PlanManager::InstalledQuery> PlanManager::InstallPlan(
    const LogicalPlan& plan) {
  const std::uint64_t query_id = next_query_id_++;

  // Probe alternatives against the running graph: already-installed
  // subplans are free.
  std::set<std::string> shared;
  if (sharing_) {
    for (const auto& [signature, entry] : registry_) {
      shared.insert(signature);
    }
  }
  const OptimizationResult optimized = optimizer_.Optimize(plan, &shared);

  PhysicalBuilder::BuildStats stats;
  std::vector<std::string> used;
  Source<relational::Tuple>* output = nullptr;
  if (sharing_) {
    PIPES_ASSIGN_OR_RETURN(output,
                           builder_.Build(optimized.plan, &registry_, &stats,
                                          &used));
  } else {
    // Build privately (intra-query dedup still applies), then merge the
    // entries under query-unique keys so the query stays uninstallable.
    SubplanMap local;
    PIPES_ASSIGN_OR_RETURN(output, builder_.Build(optimized.plan, &local,
                                                  &stats, &used));
    const std::string suffix = "#" + std::to_string(query_id);
    for (std::string& signature : used) {
      auto node = local.extract(signature);
      PIPES_CHECK(!node.empty());
      signature += suffix;
      node.key() = signature;
      registry_.insert(std::move(node));
    }
  }

  // One reference per query on every subplan it touches.
  for (const std::string& signature : used) {
    auto it = registry_.find(signature);
    PIPES_CHECK(it != registry_.end());
    ++it->second.refcount;
  }
  queries_[query_id] = QueryRecord{used};

  total_created_ += stats.operators_created;
  total_reused_ += stats.operators_reused;

  InstalledQuery installed;
  installed.query_id = query_id;
  installed.plan = optimized.plan;
  installed.output = output;
  installed.schema = optimized.plan->schema;
  installed.operators_created = stats.operators_created;
  installed.operators_reused = stats.operators_reused;
  installed.estimated_cost = optimized.cost;
  installed.alternatives_considered = optimized.alternatives_considered;
  return installed;
}

Result<std::vector<const Node*>> PlanManager::QueryNodes(
    std::uint64_t query_id) const {
  auto query_it = queries_.find(query_id);
  if (query_it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(query_id) +
                            " is not installed");
  }
  std::vector<const Node*> nodes;
  std::set<const Node*> seen;
  for (const std::string& signature : query_it->second.signatures_postorder) {
    auto entry_it = registry_.find(signature);
    PIPES_CHECK(entry_it != registry_.end());
    for (const Node* node : entry_it->second.nodes) {
      if (seen.insert(node).second) nodes.push_back(node);
    }
  }
  return nodes;
}

Status PlanManager::UninstallQuery(std::uint64_t query_id) {
  auto query_it = queries_.find(query_id);
  if (query_it == queries_.end()) {
    return Status::NotFound("query " + std::to_string(query_id) +
                            " is not installed");
  }
  const QueryRecord& record = query_it->second;

  // Phase 1: determine which subplans would die, and validate that every
  // edge leaving a dying node leads to another dying node — i.e. no
  // external sink and no foreign operator still listens. Nothing is
  // modified if validation fails.
  std::set<std::string> dying;
  std::set<const Node*> dying_nodes;
  for (const std::string& signature : record.signatures_postorder) {
    auto it = registry_.find(signature);
    PIPES_CHECK(it != registry_.end());
    if (it->second.refcount == 1) {
      dying.insert(signature);
      for (const Node* node : it->second.nodes) {
        dying_nodes.insert(node);
      }
    }
  }
  for (const std::string& signature : dying) {
    for (const Node* node : registry_[signature].nodes) {
      for (const Node* down : node->downstream()) {
        if (dying_nodes.find(down) == dying_nodes.end()) {
          return Status::FailedPrecondition(
              "cannot uninstall query " + std::to_string(query_id) +
              ": node '" + down->name() + "' still consumes from '" +
              node->name() + "'; unsubscribe sinks first");
        }
      }
    }
  }

  // Phase 2: drop references; physically remove dead subplans parents
  // first (reverse postorder), so every node's downstream edges are gone
  // before it is detached and deleted.
  for (auto it = record.signatures_postorder.rbegin();
       it != record.signatures_postorder.rend(); ++it) {
    auto entry_it = registry_.find(*it);
    PIPES_CHECK(entry_it != registry_.end());
    SubplanEntry& entry = entry_it->second;
    if (--entry.refcount > 0) continue;
    for (auto& disconnect : entry.disconnects) {
      const Status status = disconnect();
      PIPES_CHECK_MSG(status.ok(), status.ToString().c_str());
    }
    for (Node* node : entry.nodes) {
      const Status status = graph_->Remove(*node);
      PIPES_CHECK_MSG(status.ok(), status.ToString().c_str());
    }
    registry_.erase(entry_it);
  }
  queries_.erase(query_it);
  return Status::OK();
}

}  // namespace pipes::optimizer
