#ifndef PIPES_OPTIMIZER_PLAN_MANAGER_H_
#define PIPES_OPTIMIZER_PLAN_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/graph.h"
#include "src/cql/catalog.h"
#include "src/optimizer/optimizer.h"
#include "src/optimizer/physical.h"

/// \file
/// The multi-query plan manager: the component that "takes a new query as
/// input, heuristically produces a set of snapshot-equivalent query plans,
/// probes each against the currently running query graph, and integrates
/// the best matching plan's accessory nodes via the publish-subscribe
/// architecture". It owns the signature registry of everything already
/// instantiated, so later queries share common subplans instead of
/// recomputing them — and queries can be *uninstalled* again: shared
/// subplans are reference counted and physically removed only when their
/// last query leaves.

namespace pipes::optimizer {

class PlanManager {
 public:
  struct InstalledQuery {
    std::uint64_t query_id = 0;                   // handle for UninstallQuery
    LogicalPlan plan;                             // the chosen alternative
    Source<relational::Tuple>* output = nullptr;  // subscribe sinks here
    relational::Schema schema;
    std::size_t operators_created = 0;
    std::size_t operators_reused = 0;
    double estimated_cost = 0;
    std::size_t alternatives_considered = 0;
  };

  /// `sharing` off turns the manager into a naive per-query instantiator
  /// (the baseline of experiment E5).
  PlanManager(QueryGraph* graph, const cql::Catalog* catalog,
              bool sharing = true);

  /// Compiles, optimizes, and instantiates a CQL query against the running
  /// graph.
  Result<InstalledQuery> InstallQuery(const std::string& cql_text);

  /// Same, for an already-analyzed logical plan.
  Result<InstalledQuery> InstallPlan(const LogicalPlan& plan);

  /// Removes the query from the running graph: its subplans' reference
  /// counts drop, and subplans no other query uses are unsubscribed from
  /// their upstreams and deleted. Fails with FailedPrecondition — without
  /// modifying anything — while external sinks are still subscribed to an
  /// operator that would be removed (detach them first).
  Status UninstallQuery(std::uint64_t query_id);

  std::size_t total_operators_created() const { return total_created_; }
  std::size_t total_operators_reused() const { return total_reused_; }
  /// Queries currently running (installed and not uninstalled).
  std::size_t installed_queries() const { return queries_.size(); }
  /// Distinct subplans currently instantiated.
  std::size_t live_subplans() const { return registry_.size(); }

  /// The physical nodes instantiated for (or shared into) `query_id`, in
  /// children-before-parents subplan order. Shared nodes appear for every
  /// query using them. Empty result for a bare catalog scan; NotFound for
  /// an unknown/uninstalled id. The engine's per-query metrics and the
  /// per-tenant snapshot filter are built from this.
  Result<std::vector<const Node*>> QueryNodes(std::uint64_t query_id) const;

 private:
  struct QueryRecord {
    std::vector<std::string> signatures_postorder;  // children before parents
  };

  QueryGraph* graph_;
  const cql::Catalog* catalog_;
  bool sharing_;
  Optimizer optimizer_;
  PhysicalBuilder builder_;
  SubplanMap registry_;
  std::map<std::uint64_t, QueryRecord> queries_;
  std::uint64_t next_query_id_ = 1;
  std::size_t total_created_ = 0;
  std::size_t total_reused_ = 0;
};

}  // namespace pipes::optimizer

#endif  // PIPES_OPTIMIZER_PLAN_MANAGER_H_
