#include "src/optimizer/plan_xml.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "src/cql/analyzer.h"
#include "src/cql/parser.h"

namespace pipes::optimizer {

namespace {

using relational::ExprPtr;
using relational::Schema;
using relational::ValueType;

// --- Writing -------------------------------------------------------------------

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

const char* KindName(LogicalOp::Kind kind) {
  switch (kind) {
    case LogicalOp::Kind::kStreamScan:
      return "scan";
    case LogicalOp::Kind::kFilter:
      return "filter";
    case LogicalOp::Kind::kProject:
      return "project";
    case LogicalOp::Kind::kJoin:
      return "join";
    case LogicalOp::Kind::kGroupAggregate:
      return "group-aggregate";
    case LogicalOp::Kind::kDistinct:
      return "distinct";
    case LogicalOp::Kind::kUnion:
      return "union";
    case LogicalOp::Kind::kIStream:
      return "istream";
    case LogicalOp::Kind::kDStream:
      return "dstream";
  }
  return "?";
}

const char* WindowName(WindowKind kind) {
  switch (kind) {
    case WindowKind::kNow:
      return "NOW";
    case WindowKind::kRange:
      return "RANGE";
    case WindowKind::kRangeSlide:
      return "RANGE_SLIDE";
    case WindowKind::kRows:
      return "ROWS";
    case WindowKind::kUnbounded:
      return "UNBOUNDED";
  }
  return "?";
}

void WriteOp(const LogicalPlan& plan, int indent, std::ostringstream& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  out << pad << "<op kind=\"" << KindName(plan->kind) << '"';
  if (plan->kind == LogicalOp::Kind::kStreamScan) {
    out << " stream=\"" << Escape(plan->stream_name) << '"'
        << " window=\"" << WindowName(plan->window.kind) << '"';
    if (plan->window.kind == WindowKind::kRange ||
        plan->window.kind == WindowKind::kRangeSlide) {
      out << " range=\"" << plan->window.range << '"';
    }
    if (plan->window.kind == WindowKind::kRangeSlide) {
      out << " slide=\"" << plan->window.slide << '"';
    }
    if (plan->window.kind == WindowKind::kRows) {
      out << " rows=\"" << plan->window.rows << '"';
    }
  }
  out << ">\n";
  const std::string inner(static_cast<std::size_t>(indent + 1) * 2, ' ');

  // Scans embed their schema so the document is self-contained.
  if (plan->kind == LogicalOp::Kind::kStreamScan) {
    for (const auto& field : plan->schema.fields()) {
      out << inner << "<out name=\"" << Escape(field.name) << "\" type=\""
          << ValueTypeName(field.type) << "\"/>\n";
    }
  }
  if (plan->predicate != nullptr) {
    out << inner << "<pred text=\"" << Escape(plan->predicate->ToString())
        << "\"/>\n";
  }
  if (plan->kind == LogicalOp::Kind::kProject) {
    for (std::size_t i = 0; i < plan->exprs.size(); ++i) {
      out << inner << "<expr text=\""
          << Escape(plan->exprs[i]->ToString()) << "\" name=\""
          << Escape(plan->schema.field(i).name) << "\"/>\n";
    }
  }
  for (const auto& [l, r] : plan->equi_keys) {
    out << inner << "<key left=\"" << l << "\" right=\"" << r << "\"/>\n";
  }
  for (std::size_t field : plan->group_fields) {
    out << inner << "<group field=\"" << field << "\"/>\n";
  }
  for (const AggSpec& agg : plan->aggs) {
    out << inner << "<agg kind=\"" << AggKindName(agg.kind) << "\" name=\""
        << Escape(agg.output_name) << '"';
    if (agg.arg != nullptr) {
      out << " arg=\"" << Escape(agg.arg->ToString()) << '"';
    }
    out << "/>\n";
  }
  for (const LogicalPlan& child : plan->children) {
    WriteOp(child, indent + 1, out);
  }
  out << pad << "</op>\n";
}

// --- Minimal XML reader ----------------------------------------------------------

struct XmlNode {
  std::string tag;
  std::map<std::string, std::string> attrs;
  std::vector<XmlNode> children;
};

std::string Unescape(const std::string& text) {
  std::string out;
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    const auto end = text.find(';', i);
    const std::string entity = text.substr(i, end - i + 1);
    if (entity == "&amp;") {
      out += '&';
    } else if (entity == "&lt;") {
      out += '<';
    } else if (entity == "&gt;") {
      out += '>';
    } else if (entity == "&quot;") {
      out += '"';
    } else if (entity == "&apos;") {
      out += '\'';
    } else {
      out += entity;  // unknown entity: keep verbatim
    }
    i = end == std::string::npos ? text.size() : end + 1;
  }
  return out;
}

/// Tag/attribute-only XML reader (no text nodes, comments, or CDATA —
/// everything `ToXml` emits).
class XmlReader {
 public:
  explicit XmlReader(const std::string& input) : input_(input) {}

  Result<XmlNode> ParseDocument() {
    SkipSpace();
    PIPES_ASSIGN_OR_RETURN(XmlNode root, ParseElement());
    SkipSpace();
    if (pos_ != input_.size()) {
      return Status::ParseError("trailing content after root element");
    }
    return root;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " +
                              std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Result<XmlNode> ParseElement() {
    if (pos_ >= input_.size() || input_[pos_] != '<') {
      return Error("expected '<'");
    }
    ++pos_;
    XmlNode node;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '-' || input_[pos_] == '_')) {
      node.tag += input_[pos_++];
    }
    if (node.tag.empty()) return Error("expected tag name");
    for (;;) {
      SkipSpace();
      if (pos_ >= input_.size()) return Error("unterminated element");
      if (input_[pos_] == '/') {
        if (pos_ + 1 >= input_.size() || input_[pos_ + 1] != '>') {
          return Error("expected '/>'");
        }
        pos_ += 2;
        return node;  // self-closing
      }
      if (input_[pos_] == '>') {
        ++pos_;
        break;
      }
      // Attribute.
      std::string name;
      while (pos_ < input_.size() && input_[pos_] != '=' &&
             !std::isspace(static_cast<unsigned char>(input_[pos_]))) {
        name += input_[pos_++];
      }
      SkipSpace();
      if (pos_ >= input_.size() || input_[pos_] != '=') {
        return Error("expected '=' in attribute");
      }
      ++pos_;
      SkipSpace();
      if (pos_ >= input_.size() || input_[pos_] != '"') {
        return Error("expected '\"'");
      }
      ++pos_;
      std::string value;
      while (pos_ < input_.size() && input_[pos_] != '"') {
        value += input_[pos_++];
      }
      if (pos_ >= input_.size()) return Error("unterminated attribute");
      ++pos_;
      node.attrs[name] = Unescape(value);
    }
    // Children until the closing tag.
    for (;;) {
      SkipSpace();
      if (pos_ + 1 < input_.size() && input_[pos_] == '<' &&
          input_[pos_ + 1] == '/') {
        pos_ += 2;
        std::string closing;
        while (pos_ < input_.size() && input_[pos_] != '>') {
          closing += input_[pos_++];
        }
        if (pos_ >= input_.size()) return Error("unterminated closing tag");
        ++pos_;
        if (closing != node.tag) {
          return Error("mismatched closing tag '" + closing + "'");
        }
        return node;
      }
      PIPES_ASSIGN_OR_RETURN(XmlNode child, ParseElement());
      node.children.push_back(std::move(child));
    }
  }

  const std::string& input_;
  std::size_t pos_ = 0;
};

// --- Rebuilding plans ------------------------------------------------------------

Result<std::string> RequireAttr(const XmlNode& node, const std::string& name) {
  auto it = node.attrs.find(name);
  if (it == node.attrs.end()) {
    return Status::ParseError("<" + node.tag + "> is missing attribute '" +
                              name + "'");
  }
  return it->second;
}

Result<ValueType> ParseValueType(const std::string& name) {
  for (int t = 0; t <= static_cast<int>(ValueType::kString); ++t) {
    if (name == ValueTypeName(static_cast<ValueType>(t))) {
      return static_cast<ValueType>(t);
    }
  }
  return Status::ParseError("unknown value type '" + name + "'");
}

Result<AggKind> ParseAggKind(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(AggKind::kStddev); ++k) {
    if (name == AggKindName(static_cast<AggKind>(k))) {
      return static_cast<AggKind>(k);
    }
  }
  return Status::ParseError("unknown aggregate kind '" + name + "'");
}

Result<ExprPtr> ReviveExpr(const std::string& text, const Schema& schema) {
  PIPES_ASSIGN_OR_RETURN(cql::ExprAstPtr ast,
                         cql::ParseExpressionAst(text));
  return cql::ResolveExpression(ast, schema);
}

Result<LogicalPlan> BuildFromNode(const XmlNode& node) {
  if (node.tag != "op") {
    return Status::ParseError("expected <op>, found <" + node.tag + ">");
  }
  PIPES_ASSIGN_OR_RETURN(std::string kind, RequireAttr(node, "kind"));

  // Children plans first.
  std::vector<LogicalPlan> children;
  for (const XmlNode& child : node.children) {
    if (child.tag == "op") {
      PIPES_ASSIGN_OR_RETURN(LogicalPlan plan, BuildFromNode(child));
      children.push_back(std::move(plan));
    }
  }
  auto child_schema = [&]() -> const Schema& {
    static const Schema kEmpty;
    return children.empty() ? kEmpty : children[0]->schema;
  };

  if (kind == "scan") {
    PIPES_ASSIGN_OR_RETURN(std::string stream, RequireAttr(node, "stream"));
    PIPES_ASSIGN_OR_RETURN(std::string window_name,
                           RequireAttr(node, "window"));
    WindowSpec window;
    if (window_name == "NOW") {
      window.kind = WindowKind::kNow;
    } else if (window_name == "RANGE") {
      window.kind = WindowKind::kRange;
      PIPES_ASSIGN_OR_RETURN(std::string range, RequireAttr(node, "range"));
      window.range = std::stoll(range);
    } else if (window_name == "RANGE_SLIDE") {
      window.kind = WindowKind::kRangeSlide;
      PIPES_ASSIGN_OR_RETURN(std::string range, RequireAttr(node, "range"));
      PIPES_ASSIGN_OR_RETURN(std::string slide, RequireAttr(node, "slide"));
      window.range = std::stoll(range);
      window.slide = std::stoll(slide);
    } else if (window_name == "ROWS") {
      window.kind = WindowKind::kRows;
      PIPES_ASSIGN_OR_RETURN(std::string rows, RequireAttr(node, "rows"));
      window.rows = static_cast<std::size_t>(std::stoull(rows));
    } else if (window_name == "UNBOUNDED") {
      window.kind = WindowKind::kUnbounded;
    } else {
      return Status::ParseError("unknown window '" + window_name + "'");
    }
    Schema schema;
    for (const XmlNode& child : node.children) {
      if (child.tag != "out") continue;
      PIPES_ASSIGN_OR_RETURN(std::string name, RequireAttr(child, "name"));
      PIPES_ASSIGN_OR_RETURN(std::string type, RequireAttr(child, "type"));
      PIPES_ASSIGN_OR_RETURN(ValueType value_type, ParseValueType(type));
      schema.Append({name, value_type});
    }
    return ScanOp(std::move(stream), std::move(schema), window);
  }

  if (kind == "filter") {
    if (children.size() != 1) {
      return Status::ParseError("filter needs one child");
    }
    for (const XmlNode& child : node.children) {
      if (child.tag != "pred") continue;
      PIPES_ASSIGN_OR_RETURN(std::string text, RequireAttr(child, "text"));
      PIPES_ASSIGN_OR_RETURN(ExprPtr pred,
                             ReviveExpr(text, child_schema()));
      return FilterOp(children[0], std::move(pred));
    }
    return Status::ParseError("filter is missing <pred>");
  }

  if (kind == "project") {
    if (children.size() != 1) {
      return Status::ParseError("project needs one child");
    }
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (const XmlNode& child : node.children) {
      if (child.tag != "expr") continue;
      PIPES_ASSIGN_OR_RETURN(std::string text, RequireAttr(child, "text"));
      PIPES_ASSIGN_OR_RETURN(std::string name, RequireAttr(child, "name"));
      PIPES_ASSIGN_OR_RETURN(ExprPtr expr, ReviveExpr(text, child_schema()));
      exprs.push_back(std::move(expr));
      names.push_back(std::move(name));
    }
    return ProjectOp(children[0], std::move(exprs), std::move(names));
  }

  if (kind == "join") {
    if (children.size() != 2) {
      return Status::ParseError("join needs two children");
    }
    std::vector<std::pair<std::size_t, std::size_t>> keys;
    ExprPtr residual = nullptr;
    const Schema concat = children[0]->schema.Concat(children[1]->schema);
    for (const XmlNode& child : node.children) {
      if (child.tag == "key") {
        PIPES_ASSIGN_OR_RETURN(std::string l, RequireAttr(child, "left"));
        PIPES_ASSIGN_OR_RETURN(std::string r, RequireAttr(child, "right"));
        keys.emplace_back(std::stoull(l), std::stoull(r));
      } else if (child.tag == "pred") {
        PIPES_ASSIGN_OR_RETURN(std::string text, RequireAttr(child, "text"));
        PIPES_ASSIGN_OR_RETURN(residual, ReviveExpr(text, concat));
      }
    }
    return JoinOp(children[0], children[1], std::move(keys),
                  std::move(residual));
  }

  if (kind == "group-aggregate") {
    if (children.size() != 1) {
      return Status::ParseError("group-aggregate needs one child");
    }
    std::vector<std::size_t> group_fields;
    std::vector<AggSpec> aggs;
    for (const XmlNode& child : node.children) {
      if (child.tag == "group") {
        PIPES_ASSIGN_OR_RETURN(std::string field,
                               RequireAttr(child, "field"));
        group_fields.push_back(std::stoull(field));
      } else if (child.tag == "agg") {
        AggSpec spec;
        PIPES_ASSIGN_OR_RETURN(std::string agg_kind,
                               RequireAttr(child, "kind"));
        PIPES_ASSIGN_OR_RETURN(spec.kind, ParseAggKind(agg_kind));
        PIPES_ASSIGN_OR_RETURN(spec.output_name,
                               RequireAttr(child, "name"));
        if (auto it = child.attrs.find("arg"); it != child.attrs.end()) {
          PIPES_ASSIGN_OR_RETURN(spec.arg,
                                 ReviveExpr(it->second, child_schema()));
        }
        aggs.push_back(std::move(spec));
      }
    }
    return GroupAggregateOp(children[0], std::move(group_fields),
                            std::move(aggs));
  }

  if (kind == "distinct") {
    if (children.size() != 1) {
      return Status::ParseError("distinct needs one child");
    }
    return DistinctOp(children[0]);
  }
  if (kind == "union") {
    if (children.size() != 2) {
      return Status::ParseError("union needs two children");
    }
    return UnionOp(children[0], children[1]);
  }
  if (kind == "istream") {
    if (children.size() != 1) {
      return Status::ParseError("istream needs one child");
    }
    return IStreamOp(children[0]);
  }
  if (kind == "dstream") {
    if (children.size() != 1) {
      return Status::ParseError("dstream needs one child");
    }
    return DStreamOp(children[0]);
  }
  return Status::ParseError("unknown op kind '" + kind + "'");
}

}  // namespace

std::string ToXml(const LogicalPlan& plan) {
  std::ostringstream out;
  out << "<plan>\n";
  WriteOp(plan, 1, out);
  out << "</plan>\n";
  return out.str();
}

Result<LogicalPlan> FromXml(const std::string& xml) {
  XmlReader reader(xml);
  PIPES_ASSIGN_OR_RETURN(XmlNode root, reader.ParseDocument());
  if (root.tag != "plan" || root.children.size() != 1) {
    return Status::ParseError("expected <plan> with exactly one <op>");
  }
  return BuildFromNode(root.children[0]);
}

}  // namespace pipes::optimizer
