#ifndef PIPES_OPTIMIZER_PLAN_XML_H_
#define PIPES_OPTIMIZER_PLAN_XML_H_

#include <string>

#include "src/common/status.h"
#include "src/optimizer/logical_plan.h"

/// \file
/// XML persistence for logical query plans — the storage format of the
/// paper's visual plan editor ("the user has the option to store these
/// query plans in XML files"). Plans round-trip: `ToXml` emits a
/// self-contained document; `FromXml` rebuilds the plan (expressions are
/// serialized as CQL expression text and re-parsed against the child
/// schema on load).
///
/// Example:
///
///   <plan>
///     <op kind="project">
///       <out name="top" type="DOUBLE"/>
///       <expr text="(a.price * 2)"/>
///       <op kind="scan" stream="bids" window="RANGE" range="60000">
///         <out name="a.price" type="DOUBLE"/>
///       </op>
///     </op>
///   </plan>

namespace pipes::optimizer {

/// Serializes `plan` as an XML document (indented, UTF-8, self-contained).
std::string ToXml(const LogicalPlan& plan);

/// Parses a document produced by `ToXml` back into a plan. Scan schemas
/// are embedded in the document, so no catalog is needed; expression text
/// is resolved against the reconstructed child schemas.
Result<LogicalPlan> FromXml(const std::string& xml);

}  // namespace pipes::optimizer

#endif  // PIPES_OPTIMIZER_PLAN_XML_H_
