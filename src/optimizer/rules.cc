#include "src/optimizer/rules.h"

#include <algorithm>
#include <utility>

#include "src/common/macros.h"

namespace pipes::optimizer {

using relational::BinaryExpr;
using relational::BinaryOp;
using relational::ExprPtr;
using relational::FieldRef;
using relational::Literal;

LogicalPlan CloneWithChildren(const LogicalOp& op,
                              std::vector<LogicalPlan> children) {
  switch (op.kind) {
    case LogicalOp::Kind::kStreamScan:
      return ScanOp(op.stream_name, op.schema, op.window);
    case LogicalOp::Kind::kFilter:
      return FilterOp(std::move(children[0]), op.predicate);
    case LogicalOp::Kind::kProject: {
      std::vector<std::string> names;
      names.reserve(op.schema.arity());
      for (const auto& field : op.schema.fields()) names.push_back(field.name);
      return ProjectOp(std::move(children[0]), op.exprs, std::move(names));
    }
    case LogicalOp::Kind::kJoin:
      return JoinOp(std::move(children[0]), std::move(children[1]),
                    op.equi_keys, op.predicate);
    case LogicalOp::Kind::kGroupAggregate:
      return GroupAggregateOp(std::move(children[0]), op.group_fields,
                              op.aggs);
    case LogicalOp::Kind::kDistinct:
      return DistinctOp(std::move(children[0]));
    case LogicalOp::Kind::kUnion:
      return UnionOp(std::move(children[0]), std::move(children[1]));
    case LogicalOp::Kind::kIStream:
      return IStreamOp(std::move(children[0]));
    case LogicalOp::Kind::kDStream:
      return DStreamOp(std::move(children[0]));
  }
  PIPES_CHECK_MSG(false, "unhandled logical op kind");
  return nullptr;
}

LogicalPlan MergeFiltersRule::Apply(const LogicalPlan& plan) const {
  if (plan->kind != LogicalOp::Kind::kFilter) return nullptr;
  const LogicalPlan& child = plan->children[0];
  if (child->kind != LogicalOp::Kind::kFilter) return nullptr;
  return FilterOp(child->children[0],
                  relational::MakeBinary(BinaryOp::kAnd, plan->predicate,
                                         child->predicate));
}

namespace {

/// Field-index mapping that keeps [0, arity) and drops the rest.
std::vector<int> KeepPrefix(std::size_t total, std::size_t arity) {
  std::vector<int> mapping(total, -1);
  for (std::size_t i = 0; i < arity && i < total; ++i) {
    mapping[i] = static_cast<int>(i);
  }
  return mapping;
}

/// Mapping that shifts [offset, total) down to [0, total - offset).
std::vector<int> KeepSuffix(std::size_t total, std::size_t offset) {
  std::vector<int> mapping(total, -1);
  for (std::size_t i = offset; i < total; ++i) {
    mapping[i] = static_cast<int>(i - offset);
  }
  return mapping;
}

}  // namespace

LogicalPlan ExtractJoinKeysRule::Apply(const LogicalPlan& plan) const {
  if (plan->kind != LogicalOp::Kind::kFilter) return nullptr;
  const LogicalPlan& join = plan->children[0];
  if (join->kind != LogicalOp::Kind::kJoin) return nullptr;

  const std::size_t left_arity = join->children[0]->schema.arity();
  const std::size_t total = join->schema.arity();

  std::vector<ExprPtr> conjuncts;
  relational::SplitConjuncts(plan->predicate, &conjuncts);

  std::vector<std::pair<std::size_t, std::size_t>> equi_keys =
      join->equi_keys;
  std::vector<ExprPtr> left_preds;
  std::vector<ExprPtr> right_preds;
  std::vector<ExprPtr> residuals;
  bool changed = false;

  const auto left_map = KeepPrefix(total, left_arity);
  const auto right_map = KeepSuffix(total, left_arity);

  for (const ExprPtr& conjunct : conjuncts) {
    // Equi-key pattern: FieldRef(=)FieldRef across the two sides.
    if (const auto* eq = dynamic_cast<const BinaryExpr*>(conjunct.get());
        eq != nullptr && eq->op() == BinaryOp::kEq) {
      const auto* a = dynamic_cast<const FieldRef*>(eq->left().get());
      const auto* b = dynamic_cast<const FieldRef*>(eq->right().get());
      if (a != nullptr && b != nullptr) {
        std::size_t l = a->index();
        std::size_t r = b->index();
        if (l >= left_arity && r < left_arity) std::swap(l, r);
        if (l < left_arity && r >= left_arity) {
          equi_keys.emplace_back(l, r - left_arity);
          changed = true;
          continue;
        }
      }
    }
    // Single-side conjuncts are pushed into the inputs.
    if (ExprPtr pushed = conjunct->RemapFields(left_map); pushed != nullptr) {
      left_preds.push_back(std::move(pushed));
      changed = true;
      continue;
    }
    if (ExprPtr pushed = conjunct->RemapFields(right_map);
        pushed != nullptr) {
      right_preds.push_back(std::move(pushed));
      changed = true;
      continue;
    }
    residuals.push_back(conjunct);
  }
  if (!changed) return nullptr;

  LogicalPlan left = join->children[0];
  if (ExprPtr pred = relational::CombineConjuncts(left_preds);
      pred != nullptr) {
    left = FilterOp(std::move(left), std::move(pred));
  }
  LogicalPlan right = join->children[1];
  if (ExprPtr pred = relational::CombineConjuncts(right_preds);
      pred != nullptr) {
    right = FilterOp(std::move(right), std::move(pred));
  }
  ExprPtr residual = relational::CombineConjuncts(residuals);
  if (join->predicate != nullptr) {
    residual = residual == nullptr
                   ? join->predicate
                   : relational::MakeBinary(BinaryOp::kAnd, residual,
                                            join->predicate);
  }
  return JoinOp(std::move(left), std::move(right), std::move(equi_keys),
                std::move(residual));
}

LogicalPlan PushFilterThroughProjectRule::Apply(
    const LogicalPlan& plan) const {
  if (plan->kind != LogicalOp::Kind::kFilter) return nullptr;
  const LogicalPlan& project = plan->children[0];
  if (project->kind != LogicalOp::Kind::kProject) return nullptr;

  // Output field i corresponds to input field j iff exprs[i] is FieldRef(j).
  std::vector<int> mapping(project->schema.arity(), -1);
  for (std::size_t i = 0; i < project->exprs.size(); ++i) {
    if (const auto* f =
            dynamic_cast<const FieldRef*>(project->exprs[i].get())) {
      mapping[i] = static_cast<int>(f->index());
    }
  }
  ExprPtr pushed = plan->predicate->RemapFields(mapping);
  if (pushed == nullptr) return nullptr;

  std::vector<std::string> names;
  for (const auto& field : project->schema.fields()) {
    names.push_back(field.name);
  }
  return ProjectOp(FilterOp(project->children[0], std::move(pushed)),
                   project->exprs, std::move(names));
}

LogicalPlan RemoveTrivialFilterRule::Apply(const LogicalPlan& plan) const {
  if (plan->kind != LogicalOp::Kind::kFilter) return nullptr;
  if (const auto* lit =
          dynamic_cast<const Literal*>(plan->predicate.get());
      lit != nullptr && lit->value().type() == relational::ValueType::kBool &&
      lit->value().AsBool()) {
    return plan->children[0];
  }
  return nullptr;
}

std::vector<std::unique_ptr<Rule>> DefaultRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<RemoveTrivialFilterRule>());
  rules.push_back(std::make_unique<MergeFiltersRule>());
  rules.push_back(std::make_unique<PushFilterThroughProjectRule>());
  rules.push_back(std::make_unique<ExtractJoinKeysRule>());
  return rules;
}

LogicalPlan Rewrite(const LogicalPlan& plan,
                    const std::vector<std::unique_ptr<Rule>>& rules) {
  // Normalize children first.
  std::vector<LogicalPlan> children;
  bool child_changed = false;
  children.reserve(plan->children.size());
  for (const LogicalPlan& child : plan->children) {
    LogicalPlan rewritten = Rewrite(child, rules);
    child_changed |= rewritten != child;
    children.push_back(std::move(rewritten));
  }
  LogicalPlan current =
      child_changed ? CloneWithChildren(*plan, std::move(children)) : plan;

  // Root-level fixpoint, bounded to guard against oscillating rule sets.
  for (int round = 0; round < 16; ++round) {
    bool any = false;
    for (const auto& rule : rules) {
      if (LogicalPlan rewritten = rule->Apply(current);
          rewritten != nullptr) {
        // The rewrite may expose new opportunities below the root (e.g.
        // pushed filters); re-normalize the whole subtree.
        std::vector<LogicalPlan> new_children;
        new_children.reserve(rewritten->children.size());
        bool changed_below = false;
        for (const LogicalPlan& child : rewritten->children) {
          LogicalPlan r = Rewrite(child, rules);
          changed_below |= r != child;
          new_children.push_back(std::move(r));
        }
        current = changed_below
                      ? CloneWithChildren(*rewritten, std::move(new_children))
                      : rewritten;
        any = true;
      }
    }
    if (!any) break;
  }
  return current;
}

}  // namespace pipes::optimizer
