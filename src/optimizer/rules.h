#ifndef PIPES_OPTIMIZER_RULES_H_
#define PIPES_OPTIMIZER_RULES_H_

#include <memory>
#include <string>
#include <vector>

#include "src/optimizer/logical_plan.h"

/// \file
/// Rule-based rewriting: each rule maps a plan root to a snapshot-
/// equivalent alternative (or declines). `Rewrite` applies a rule set
/// bottom-up to a fixpoint. The default set performs the classic
/// heuristics: filter merging, equi-join key extraction, and predicate
/// pushdown through projections and join sides.

namespace pipes::optimizer {

/// A rewrite rule. `Apply` inspects only the root of `plan` (children are
/// already normalized when called from `Rewrite`) and returns the rewritten
/// plan, or nullptr when not applicable.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string name() const = 0;
  virtual LogicalPlan Apply(const LogicalPlan& plan) const = 0;
};

/// Filter(Filter(x, p2), p1) => Filter(x, p1 AND p2).
class MergeFiltersRule : public Rule {
 public:
  std::string name() const override { return "merge-filters"; }
  LogicalPlan Apply(const LogicalPlan& plan) const override;
};

/// Filter(Join(l, r), p): moves `l.a = r.b` conjuncts into the join's equi
/// keys, pushes single-side conjuncts into the corresponding input, and
/// keeps the rest as the join residual.
class ExtractJoinKeysRule : public Rule {
 public:
  std::string name() const override { return "extract-join-keys"; }
  LogicalPlan Apply(const LogicalPlan& plan) const override;
};

/// Filter(Project(x, exprs), p) => Project(Filter(x, p'), exprs) when every
/// field `p` references maps to a plain field reference in `exprs`.
class PushFilterThroughProjectRule : public Rule {
 public:
  std::string name() const override { return "push-filter-through-project"; }
  LogicalPlan Apply(const LogicalPlan& plan) const override;
};

/// Filter(x, TRUE) => x.
class RemoveTrivialFilterRule : public Rule {
 public:
  std::string name() const override { return "remove-trivial-filter"; }
  LogicalPlan Apply(const LogicalPlan& plan) const override;
};

/// The standard rule set, in application order.
std::vector<std::unique_ptr<Rule>> DefaultRules();

/// Applies `rules` bottom-up until no rule changes the plan (bounded, so
/// non-terminating rule sets cannot loop forever).
LogicalPlan Rewrite(const LogicalPlan& plan,
                    const std::vector<std::unique_ptr<Rule>>& rules);

/// Rebuilds `op` with `children` substituted (schemas recomputed).
LogicalPlan CloneWithChildren(const LogicalOp& op,
                              std::vector<LogicalPlan> children);

}  // namespace pipes::optimizer

#endif  // PIPES_OPTIMIZER_RULES_H_
