#include "src/relational/expression.h"

#include <cmath>

#include "src/common/macros.h"

namespace pipes::relational {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string FieldRef::ToString() const {
  return name_.empty() ? "$" + std::to_string(index_) : name_;
}

ExprPtr FieldRef::RemapFields(const std::vector<int>& mapping) const {
  if (index_ >= mapping.size() || mapping[index_] < 0) return nullptr;
  return MakeField(static_cast<std::size_t>(mapping[index_]), name_);
}

ExprPtr Literal::RemapFields(const std::vector<int>&) const {
  return MakeLiteral(value_);
}

namespace {

Value EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  PIPES_CHECK_MSG(l.is_numeric() && r.is_numeric(),
                  "arithmetic on non-numeric values");
  const bool both_int =
      l.type() == ValueType::kInt && r.type() == ValueType::kInt;
  if (both_int) {
    const std::int64_t a = l.AsInt();
    const std::int64_t b = r.AsInt();
    switch (op) {
      case BinaryOp::kAdd:
        return Value(a + b);
      case BinaryOp::kSub:
        return Value(a - b);
      case BinaryOp::kMul:
        return Value(a * b);
      case BinaryOp::kDiv:
        return b == 0 ? Value::Null() : Value(a / b);
      case BinaryOp::kMod:
        return b == 0 ? Value::Null() : Value(a % b);
      default:
        break;
    }
  }
  const double a = l.AsDouble();
  const double b = r.AsDouble();
  switch (op) {
    case BinaryOp::kAdd:
      return Value(a + b);
    case BinaryOp::kSub:
      return Value(a - b);
    case BinaryOp::kMul:
      return Value(a * b);
    case BinaryOp::kDiv:
      return b == 0.0 ? Value::Null() : Value(a / b);
    case BinaryOp::kMod:
      return b == 0.0 ? Value::Null() : Value(std::fmod(a, b));
    default:
      PIPES_CHECK_MSG(false, "not an arithmetic op");
  }
  return Value::Null();
}

Value EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  // SQL-ish: comparisons involving NULL are false.
  if (l.is_null() || r.is_null()) return Value(false);
  switch (op) {
    case BinaryOp::kEq:
      return Value(l == r);
    case BinaryOp::kNe:
      return Value(l != r);
    case BinaryOp::kLt:
      return Value(l < r);
    case BinaryOp::kLe:
      return Value(!(r < l));
    case BinaryOp::kGt:
      return Value(r < l);
    case BinaryOp::kGe:
      return Value(!(l < r));
    default:
      PIPES_CHECK_MSG(false, "not a comparison op");
  }
  return Value(false);
}

}  // namespace

Value BinaryExpr::Eval(const Tuple& tuple) const {
  switch (op_) {
    case BinaryOp::kAnd: {
      if (!left_->Eval(tuple).Truthy()) return Value(false);
      return Value(right_->Eval(tuple).Truthy());
    }
    case BinaryOp::kOr: {
      if (left_->Eval(tuple).Truthy()) return Value(true);
      return Value(right_->Eval(tuple).Truthy());
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return EvalArithmetic(op_, left_->Eval(tuple), right_->Eval(tuple));
    default:
      return EvalComparison(op_, left_->Eval(tuple), right_->Eval(tuple));
  }
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpName(op_) + " " +
         right_->ToString() + ")";
}

ExprPtr BinaryExpr::RemapFields(const std::vector<int>& mapping) const {
  ExprPtr l = left_->RemapFields(mapping);
  ExprPtr r = right_->RemapFields(mapping);
  if (l == nullptr || r == nullptr) return nullptr;
  return MakeBinary(op_, std::move(l), std::move(r));
}

Value UnaryExpr::Eval(const Tuple& tuple) const {
  const Value v = operand_->Eval(tuple);
  switch (op_) {
    case UnaryOp::kNot:
      return Value(!v.Truthy());
    case UnaryOp::kNeg:
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInt) return Value(-v.AsInt());
      return Value(-v.AsDouble());
  }
  return Value::Null();
}

std::string UnaryExpr::ToString() const {
  return std::string(op_ == UnaryOp::kNot ? "NOT " : "-") +
         operand_->ToString();
}

ExprPtr UnaryExpr::RemapFields(const std::vector<int>& mapping) const {
  ExprPtr operand = operand_->RemapFields(mapping);
  if (operand == nullptr) return nullptr;
  return MakeUnary(op_, std::move(operand));
}

ExprPtr MakeField(std::size_t index, std::string name) {
  return std::make_shared<FieldRef>(index, std::move(name));
}

ExprPtr MakeLiteral(Value value) {
  return std::make_shared<Literal>(std::move(value));
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<BinaryExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  return std::make_shared<UnaryExpr>(op, std::move(operand));
}

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (const auto* binary = dynamic_cast<const BinaryExpr*>(expr.get());
      binary != nullptr && binary->op() == BinaryOp::kAnd) {
    SplitConjuncts(binary->left(), out);
    SplitConjuncts(binary->right(), out);
    return;
  }
  out->push_back(expr);
}

ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr combined = nullptr;
  for (const ExprPtr& c : conjuncts) {
    combined = combined == nullptr
                   ? c
                   : MakeBinary(BinaryOp::kAnd, combined, c);
  }
  return combined;
}

}  // namespace pipes::relational
