#ifndef PIPES_RELATIONAL_EXPRESSION_H_
#define PIPES_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "src/relational/tuple.h"
#include "src/relational/value.h"

/// \file
/// Expression trees evaluated against tuples: field references, literals,
/// arithmetic, comparisons, boolean connectives. Built by the CQL parser,
/// rewritten by the optimizer (conjunct splitting, field remapping for
/// predicate pushdown), and compiled into filter/map operator parameters.

namespace pipes::relational {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNot, kNeg };

const char* BinaryOpName(BinaryOp op);

/// Abstract expression node. Immutable; shared between plans.
class Expression {
 public:
  virtual ~Expression() = default;

  virtual Value Eval(const Tuple& tuple) const = 0;

  virtual std::string ToString() const = 0;

  /// Appends the indices of all referenced fields.
  virtual void CollectFieldRefs(std::vector<std::size_t>* out) const = 0;

  /// Rewrites field indices through `mapping` (old index -> new index, -1
  /// if the field is unavailable below the target operator). Returns
  /// nullptr when any referenced field is unavailable.
  virtual ExprPtr RemapFields(const std::vector<int>& mapping) const = 0;
};

/// Positional field reference; `name` is for display only.
class FieldRef : public Expression {
 public:
  FieldRef(std::size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}

  std::size_t index() const { return index_; }
  const std::string& name() const { return name_; }

  Value Eval(const Tuple& tuple) const override {
    return tuple.field(index_);
  }
  std::string ToString() const override;
  void CollectFieldRefs(std::vector<std::size_t>* out) const override {
    out->push_back(index_);
  }
  ExprPtr RemapFields(const std::vector<int>& mapping) const override;

 private:
  std::size_t index_;
  std::string name_;
};

class Literal : public Expression {
 public:
  explicit Literal(Value value) : value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Value Eval(const Tuple&) const override { return value_; }
  /// Strings render quoted so expression text is re-parseable (XML plan
  /// round-trips).
  std::string ToString() const override {
    if (value_.type() == ValueType::kString) {
      return "'" + value_.AsString() + "'";
    }
    return value_.ToString();
  }
  void CollectFieldRefs(std::vector<std::size_t>*) const override {}
  ExprPtr RemapFields(const std::vector<int>&) const override;

 private:
  Value value_;
};

class BinaryExpr : public Expression {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

  Value Eval(const Tuple& tuple) const override;
  std::string ToString() const override;
  void CollectFieldRefs(std::vector<std::size_t>* out) const override {
    left_->CollectFieldRefs(out);
    right_->CollectFieldRefs(out);
  }
  ExprPtr RemapFields(const std::vector<int>& mapping) const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class UnaryExpr : public Expression {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}

  UnaryOp op() const { return op_; }
  const ExprPtr& operand() const { return operand_; }

  Value Eval(const Tuple& tuple) const override;
  std::string ToString() const override;
  void CollectFieldRefs(std::vector<std::size_t>* out) const override {
    operand_->CollectFieldRefs(out);
  }
  ExprPtr RemapFields(const std::vector<int>& mapping) const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

// --- Construction helpers ----------------------------------------------------

ExprPtr MakeField(std::size_t index, std::string name);
ExprPtr MakeLiteral(Value value);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);

/// Splits nested ANDs into a conjunct list (for pushdown).
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// ANDs the conjuncts back together; nullptr for an empty list.
ExprPtr CombineConjuncts(const std::vector<ExprPtr>& conjuncts);

}  // namespace pipes::relational

#endif  // PIPES_RELATIONAL_EXPRESSION_H_
