#include "src/relational/schema.h"

namespace pipes::relational {

std::optional<std::size_t> Schema::IndexOf(const std::string& name) const {
  // Exact match first.
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  // Unqualified match against qualified field names ("alias.name").
  std::optional<std::size_t> found;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const std::string& qualified = fields_[i].name;
    const std::size_t dot = qualified.rfind('.');
    if (dot != std::string::npos && qualified.substr(dot + 1) == name) {
      if (found.has_value()) return std::nullopt;  // ambiguous
      found = i;
    }
  }
  return found;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Field> fields = fields_;
  fields.insert(fields.end(), other.fields_.begin(), other.fields_.end());
  return Schema(std::move(fields));
}

Schema Schema::WithPrefix(const std::string& prefix) const {
  std::vector<Field> fields;
  fields.reserve(fields_.size());
  for (const Field& f : fields_) {
    fields.push_back(Field{prefix + "." + f.name, f.type});
  }
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace pipes::relational
