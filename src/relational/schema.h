#ifndef PIPES_RELATIONAL_SCHEMA_H_
#define PIPES_RELATIONAL_SCHEMA_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/relational/value.h"

/// \file
/// Schemas: named, typed field lists describing tuple streams and
/// relations. Used by the CQL analyzer to resolve field references and by
/// the optimizer to type plans.

namespace pipes::relational {

struct Field {
  std::string name;
  ValueType type = ValueType::kNull;

  friend bool operator==(const Field&, const Field&) = default;
};

/// Ordered field list. Field lookup is by case-sensitive name; qualified
/// lookup ("alias.name") is handled by the analyzer, which prefixes names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  std::size_t arity() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void Append(Field field) { fields_.push_back(std::move(field)); }

  /// Index of the field called `name`, or nullopt. If several fields share
  /// the suffix after a dot (ambiguity), returns nullopt as well.
  std::optional<std::size_t> IndexOf(const std::string& name) const;

  /// Schema of `this ++ other` (join output).
  Schema Concat(const Schema& other) const;

  /// Renames every field to "prefix.name" (stream aliasing in FROM).
  Schema WithPrefix(const std::string& prefix) const;

  std::string ToString() const;  // "(name:TYPE, ...)"

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::vector<Field> fields_;
};

}  // namespace pipes::relational

#endif  // PIPES_RELATIONAL_SCHEMA_H_
