#include "src/relational/tuple.h"

#include <algorithm>

#include "src/common/macros.h"

namespace pipes::relational {

const Value& Tuple::field(std::size_t i) const {
  PIPES_CHECK_MSG(i < values_.size(), "tuple field index out of range");
  return values_[i];
}

void Tuple::set_field(std::size_t i, Value v) {
  PIPES_CHECK_MSG(i < values_.size(), "tuple field index out of range");
  values_[i] = std::move(v);
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> values = values_;
  values.insert(values.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(values));
}

Tuple Tuple::Project(const std::vector<std::size_t>& indices) const {
  std::vector<Value> values;
  values.reserve(indices.size());
  for (std::size_t i : indices) values.push_back(field(i));
  return Tuple(std::move(values));
}

std::size_t Tuple::Hash() const {
  std::size_t h = 0x811c9dc5;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

bool operator<(const Tuple& a, const Tuple& b) {
  return std::lexicographical_compare(a.values_.begin(), a.values_.end(),
                                      b.values_.begin(), b.values_.end());
}

}  // namespace pipes::relational

namespace pipes::sweeparea {

std::size_t ApproxPayloadBytes(const pipes::relational::Tuple& t) {
  std::size_t bytes = sizeof(pipes::relational::Tuple);
  for (const auto& v : t.values()) {
    bytes += sizeof(pipes::relational::Value);
    if (v.type() == pipes::relational::ValueType::kString) {
      bytes += v.AsString().size();
    }
  }
  return bytes;
}

}  // namespace pipes::sweeparea
