#ifndef PIPES_RELATIONAL_TUPLE_H_
#define PIPES_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/relational/value.h"

/// \file
/// Tuples: fixed-arity sequences of `Value`s, positionally addressed. Field
/// names live in the `Schema`, not in the tuple, so tuples stay compact.

namespace pipes::relational {

/// A row. Hashable and comparable so it can serve directly as a join or
/// grouping key payload in the generic algebra.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  std::size_t arity() const { return values_.size(); }

  const Value& field(std::size_t i) const;
  void set_field(std::size_t i, Value v);
  void Append(Value v) { values_.push_back(std::move(v)); }

  const std::vector<Value>& values() const { return values_; }

  /// New tuple with this tuple's fields followed by `other`'s
  /// (concatenation for joins).
  Tuple Concat(const Tuple& other) const;

  /// New tuple containing the fields at `indices`, in that order.
  Tuple Project(const std::vector<std::size_t>& indices) const;

  std::size_t Hash() const;
  std::string ToString() const;  // "(v1, v2, ...)"

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  friend bool operator<(const Tuple& a, const Tuple& b);

 private:
  std::vector<Value> values_;
};

}  // namespace pipes::relational

template <>
struct std::hash<pipes::relational::Tuple> {
  std::size_t operator()(const pipes::relational::Tuple& t) const {
    return t.Hash();
  }
};

namespace pipes::sweeparea {
/// Memory accounting for tuple payloads (used by SweepAreas).
std::size_t ApproxPayloadBytes(const pipes::relational::Tuple& t);
}  // namespace pipes::sweeparea

#endif  // PIPES_RELATIONAL_TUPLE_H_
