#include "src/relational/value.h"

#include <functional>

#include "src/common/macros.h"

namespace pipes::relational {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

std::int64_t Value::AsInt() const {
  PIPES_CHECK_MSG(type() == ValueType::kInt, "Value is not an INT");
  return std::get<std::int64_t>(data_);
}

double Value::AsDouble() const {
  if (type() == ValueType::kInt) {
    return static_cast<double>(std::get<std::int64_t>(data_));
  }
  PIPES_CHECK_MSG(type() == ValueType::kDouble, "Value is not numeric");
  return std::get<double>(data_);
}

bool Value::AsBool() const {
  PIPES_CHECK_MSG(type() == ValueType::kBool, "Value is not a BOOL");
  return std::get<bool>(data_);
}

const std::string& Value::AsString() const {
  PIPES_CHECK_MSG(type() == ValueType::kString, "Value is not a STRING");
  return std::get<std::string>(data_);
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return std::get<bool>(data_);
    case ValueType::kInt:
      return std::get<std::int64_t>(data_) != 0;
    case ValueType::kDouble:
      return std::get<double>(data_) != 0.0;
    case ValueType::kString:
      PIPES_CHECK_MSG(false, "string used as predicate");
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(std::get<std::int64_t>(data_));
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(data_));
      return buf;
    }
    case ValueType::kBool:
      return std::get<bool>(data_) ? "TRUE" : "FALSE";
    case ValueType::kString:
      return std::get<std::string>(data_);
  }
  return "?";
}

std::size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b9;
    case ValueType::kInt:
      return std::hash<std::int64_t>()(std::get<std::int64_t>(data_));
    case ValueType::kDouble: {
      // Hash doubles holding integral values like the equal int (promotion
      // equality must imply hash equality).
      const double d = std::get<double>(data_);
      const auto as_int = static_cast<std::int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<std::int64_t>()(as_int);
      }
      return std::hash<double>()(d);
    }
    case ValueType::kBool:
      return std::get<bool>(data_) ? 0x85ebca6b : 0xc2b2ae35;
    case ValueType::kString:
      return std::hash<std::string>()(std::get<std::string>(data_));
  }
  return 0;
}

bool operator==(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return a.AsDouble() == b.AsDouble();
  }
  return a.data_ == b.data_;
}

bool operator<(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return a.AsDouble() < b.AsDouble();
  }
  // Order heterogeneous values by a type rank, then content.
  auto rank = [](const Value& v) {
    switch (v.type()) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1;
      case ValueType::kBool:
        return 2;
      case ValueType::kString:
        return 3;
    }
    return 4;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b);
  switch (a.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return !a.AsBool() && b.AsBool();
    case ValueType::kString:
      return a.AsString() < b.AsString();
    default:
      return false;
  }
}

}  // namespace pipes::relational
