#ifndef PIPES_RELATIONAL_VALUE_H_
#define PIPES_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

/// \file
/// Dynamically typed values for the relational layer. The operator algebra
/// itself handles arbitrary payload types; `Value`/`Tuple` exist so that
/// dynamically constructed plans (CQL front end, optimizer) have a common
/// payload representation.

namespace pipes::relational {

enum class ValueType { kNull, kInt, kDouble, kBool, kString };

const char* ValueTypeName(ValueType type);

/// A null, 64-bit integer, double, bool, or string.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(std::int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(bool v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  /// Typed accessors; calling the wrong one aborts (programming error).
  std::int64_t AsInt() const;
  double AsDouble() const;  // accepts kInt too (promotes)
  bool AsBool() const;
  const std::string& AsString() const;

  /// Truthiness for predicates: false for null, the value for bool,
  /// non-zero for numerics. Strings abort.
  bool Truthy() const;

  std::string ToString() const;

  std::size_t Hash() const;

  /// Equality: same type (with int/double promotion) and same content.
  /// Null equals only null.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Ordering for sort/tree use: null < numerics < bool < string; numerics
  /// compare by promoted double.
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, std::int64_t, double, bool, std::string> data_;
};

}  // namespace pipes::relational

template <>
struct std::hash<pipes::relational::Value> {
  std::size_t operator()(const pipes::relational::Value& v) const {
    return v.Hash();
  }
};

#endif  // PIPES_RELATIONAL_VALUE_H_
