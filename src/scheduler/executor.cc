#include "src/scheduler/executor.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/core/metrics.h"

namespace pipes::scheduler {

PipeExecutor::PipeExecutor(QueryGraph& graph, Strategy& strategy,
                           std::size_t batch_size)
    : graph_(graph), strategy_(strategy), batch_size_(batch_size) {
  PIPES_CHECK(batch_size > 0);
  for (Node* node : graph_.nodes()) {
    PipeBase* pipe = node->AttachExecutor(this);
    if (pipe != nullptr) {
      pipes_.push_back(pipe);
      attached_.push_back(node);
      // A node with pre-staged state cannot exist at attach time, but a
      // defensive enqueue keeps the invariant "Supply pipes are queued".
      if (pipe->HasStaged()) PipeReady(pipe);
    }
  }
}

PipeExecutor::~PipeExecutor() {
  // Deliver any leftover supply (e.g. an aborted run) so detach sees
  // drained pipes, then restore direct delivery.
  while (!ready_.empty()) {
    PipeBase* pipe = ready_.front();
    ready_.pop_front();
    pipe->ClearInQueue();
    pipe->Deliver();
  }
  for (Node* node : attached_) {
    node->DetachExecutor();
  }
}

void PipeExecutor::PipeReady(PipeBase* pipe) { ready_.push_back(pipe); }

bool PipeExecutor::AllPipesIdle() const {
  return std::all_of(pipes_.begin(), pipes_.end(), [](const PipeBase* p) {
    return !p->HasStaged();
  });
}

bool PipeExecutor::Step() {
  if (!ready_.empty()) {
    PipeBase* pipe = ready_.front();
    ready_.pop_front();
    pipe->ClearInQueue();
    ++deliver_nesting_;
    max_deliver_nesting_ = std::max(max_deliver_nesting_, deliver_nesting_);
    std::size_t units;
    if (profiler_ != nullptr) {
      const std::int64_t t0 = obs::SteadyNowNs();
      units = pipe->Deliver();
      const std::int64_t t1 = obs::SteadyNowNs();
      profiler_->RecordQuantum(*pipe->producer(), 1, units,
                               static_cast<std::uint64_t>(t1 - t0));
    } else {
      units = pipe->Deliver();
    }
    --deliver_nesting_;
    stats_.units += units;
    ++stats_.iterations;
    return true;
  }

  // No ready pipe: poll an active node for fresh supply, mirroring
  // SingleThreadScheduler's candidate collection and queue accounting.
  std::vector<Node*> candidates;
  std::size_t total_queue = 0;
  for (Node* node : graph_.ActiveNodes()) {
    total_queue += node->queue_size();
    if (node->HasWork()) candidates.push_back(node);
  }
  stats_.peak_total_queue = std::max(stats_.peak_total_queue, total_queue);
  stats_.accumulated_queue += total_queue;
  if (candidates.empty()) return false;

  const std::size_t pick = strategy_.Select(candidates);
  PIPES_CHECK(pick < candidates.size());
  Node* chosen = candidates[pick];
  // Idle → Request on the polled node's pipe (if it owns one); staging
  // flips it to Supply and enqueues it.
  PipeBase* pipe = nullptr;
  for (std::size_t i = 0; i < attached_.size(); ++i) {
    if (attached_[i] == chosen) {
      pipe = pipes_[i];
      break;
    }
  }
  if (pipe != nullptr) pipe->MarkPolled();
  if (profiler_ != nullptr) {
    const std::int64_t t0 = obs::SteadyNowNs();
    const std::size_t units = chosen->DoWork(batch_size_);
    const std::int64_t t1 = obs::SteadyNowNs();
    profiler_->RecordQuantum(*chosen, candidates.size(), units,
                             static_cast<std::uint64_t>(t1 - t0));
    stats_.units += units;
  } else {
    stats_.units += chosen->DoWork(batch_size_);
  }
  if (pipe != nullptr) pipe->MarkPollDone();
  ++stats_.iterations;
  return true;
}

RunStats PipeExecutor::RunToCompletion(std::uint64_t max_iterations) {
  while (stats_.iterations < max_iterations) {
    if (!Step()) {
      // Either fully drained, or an external (non-scheduled) source still
      // owes input; in both cases nothing more can happen now.
      break;
    }
  }
  return stats_;
}

}  // namespace pipes::scheduler
