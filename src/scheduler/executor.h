#ifndef PIPES_SCHEDULER_EXECUTOR_H_
#define PIPES_SCHEDULER_EXECUTOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/graph.h"
#include "src/core/pipe_edge.h"
#include "src/scheduler/profiler.h"
#include "src/scheduler/scheduler.h"
#include "src/scheduler/strategy.h"

/// \file
/// The executor-polled driver (DESIGN.md §4f): the non-recursive
/// counterpart of `SingleThreadScheduler`. On construction it attaches to
/// every node of the graph — each `Source<T>`-derived node creates a
/// `Pipe<T>` edge and reroutes its `Transfer*` calls into it — and the main
/// loop then alternates between two kinds of steps:
///
///  1. *Deliver*: pop the next ready pipe from the FIFO work queue and
///     deliver its staged columnar runs to the producer's subscribers. The
///     operators invoked stage their own output and enqueue their own
///     pipes, so a chain of any depth drains iteratively — the executor's
///     stack never grows with chain length.
///  2. *Poll*: when no pipe is ready, pick one active node (sources,
///     buffers) through the layer-2 `Strategy` — exactly like
///     `SingleThreadScheduler` — and give it a `DoWork` quantum, which
///     stages fresh supply.
///
/// Delivery order is deterministic (FIFO over ready pipes, strategy over
/// active nodes), so runs are reproducible and the fuzzer's differential
/// oracles can compare this driver against the recursive reference.

namespace pipes::scheduler {

/// Deterministic one-thread, queue-driven driver.
class PipeExecutor : public ExecutorLink {
 public:
  /// Attaches to every node of `graph`. `batch_size` is the max work units
  /// per DoWork poll (Aurora-style train size), as in the schedulers.
  PipeExecutor(QueryGraph& graph, Strategy& strategy,
               std::size_t batch_size = 64);

  /// Detaches (pipes are destroyed; direct delivery is restored).
  ~PipeExecutor() override;

  PipeExecutor(const PipeExecutor&) = delete;
  PipeExecutor& operator=(const PipeExecutor&) = delete;

  /// One step: a pipe delivery if any pipe is ready, otherwise one DoWork
  /// quantum on a strategy-selected active node. Returns false when neither
  /// is possible (graph drained, or an external source still owes input).
  bool Step();

  /// Runs until the graph is drained and every pipe is idle, or
  /// `max_iterations` steps were taken.
  RunStats RunToCompletion(
      std::uint64_t max_iterations = std::uint64_t{1} << 62);

  const RunStats& stats() const { return stats_; }

  /// Attaches a profiler: DoWork quanta are recorded like the schedulers
  /// record theirs; pipe deliveries are recorded against the producer node.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

  /// True when every pipe has delivered everything staged.
  bool AllPipesIdle() const;

  /// Deepest observed nesting of `Deliver` calls. Structurally always 1 —
  /// delivery never recurses into another delivery — and asserted by the
  /// stack-safety tests; exposed so they do not need to instrument pipes.
  std::size_t max_deliver_nesting() const { return max_deliver_nesting_; }

 private:
  /// ExecutorLink: a pipe turned Supply — enqueue it (nothing else).
  void PipeReady(PipeBase* pipe) override;

  QueryGraph& graph_;
  Strategy& strategy_;
  std::size_t batch_size_;
  RunStats stats_;
  Profiler* profiler_ = nullptr;

  /// Every pipe attached at construction, for detach and idle checks.
  std::vector<PipeBase*> pipes_;
  /// Nodes that returned a pipe, for detach.
  std::vector<Node*> attached_;
  /// Ready pipes in arrival order.
  std::deque<PipeBase*> ready_;

  std::size_t deliver_nesting_ = 0;
  std::size_t max_deliver_nesting_ = 0;
};

}  // namespace pipes::scheduler

#endif  // PIPES_SCHEDULER_EXECUTOR_H_
