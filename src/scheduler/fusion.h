#ifndef PIPES_SCHEDULER_FUSION_H_
#define PIPES_SCHEDULER_FUSION_H_

#include <string>

#include "src/common/status.h"
#include "src/core/buffer.h"
#include "src/core/graph.h"

/// \file
/// Layer 1 of the scheduling framework: deciding where virtual nodes end.
/// Operators connected directly execute fused — inside one invocation, with
/// no queue (the paper's merged "virtual node"). Splicing a buffer into an
/// edge *splits* the virtual node there, creating a new scheduling unit;
/// splicing a `ConcurrentBuffer` additionally makes the edge safe to cross
/// a thread boundary (layer 3).

namespace pipes::scheduler {

/// Replaces the direct edge `source -> port` with `source -> buffer ->
/// port`, making everything downstream of `port` a separate virtual node.
/// Fails with NotFound when `source` is not subscribed to `port`.
template <typename T>
Result<Buffer<T>*> SpliceBuffer(QueryGraph& graph, Source<T>& source,
                                InputPort<T>& port,
                                std::string name = "boundary") {
  PIPES_RETURN_IF_ERROR(source.UnsubscribeFrom(port));
  auto& buffer = graph.Add<Buffer<T>>(std::move(name));
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(port);
  return &buffer;
}

/// Same, with a thread-safe buffer (for edges that will cross threads).
template <typename T>
Result<ConcurrentBuffer<T>*> SpliceConcurrentBuffer(
    QueryGraph& graph, Source<T>& source, InputPort<T>& port,
    std::string name = "thread-boundary") {
  PIPES_RETURN_IF_ERROR(source.UnsubscribeFrom(port));
  auto& buffer = graph.Add<ConcurrentBuffer<T>>(std::move(name));
  source.AddSubscriber(buffer.input());
  buffer.AddSubscriber(port);
  return &buffer;
}

}  // namespace pipes::scheduler

#endif  // PIPES_SCHEDULER_FUSION_H_
