#include "src/scheduler/profiler.h"

#include <bit>
#include <cstdio>
#include <sstream>

namespace pipes::scheduler {

namespace {

std::size_t TrainBucket(std::size_t units) {
  if (units <= 1) return 0;
  const std::size_t idx =
      static_cast<std::size_t>(std::bit_width(units)) - 1;
  return idx < NodeProfile::kTrainBuckets ? idx
                                          : NodeProfile::kTrainBuckets - 1;
}

}  // namespace

void Profiler::RecordQuantum(const Node& node, std::size_t num_candidates,
                             std::size_t units, std::uint64_t service_ns) {
  NodeProfile& profile = per_node_[node.id()];
  if (profile.quanta == 0) {
    profile.node_id = node.id();
    profile.node_name = node.name();
  }
  ++profile.quanta;
  profile.units += units;
  profile.service_ns += service_ns;
  profile.max_service_ns = std::max(profile.max_service_ns, service_ns);
  profile.candidates_sum += num_candidates;
  ++profile.train_length_buckets[TrainBucket(units)];

  ++decisions_;
  total_units_ += units;
  total_service_ns_ += service_ns;
}

void Profiler::Merge(const Profiler& other) {
  for (const auto& [id, theirs] : other.per_node_) {
    NodeProfile& mine = per_node_[id];
    if (mine.quanta == 0) {
      mine.node_id = theirs.node_id;
      mine.node_name = theirs.node_name;
    }
    mine.quanta += theirs.quanta;
    mine.units += theirs.units;
    mine.service_ns += theirs.service_ns;
    mine.max_service_ns = std::max(mine.max_service_ns, theirs.max_service_ns);
    mine.candidates_sum += theirs.candidates_sum;
    for (std::size_t i = 0; i < NodeProfile::kTrainBuckets; ++i) {
      mine.train_length_buckets[i] += theirs.train_length_buckets[i];
    }
  }
  decisions_ += other.decisions_;
  total_units_ += other.total_units_;
  total_service_ns_ += other.total_service_ns_;
}

std::vector<NodeProfile> Profiler::PerNode() const {
  std::vector<NodeProfile> out;
  out.reserve(per_node_.size());
  for (const auto& [id, profile] : per_node_) out.push_back(profile);
  return out;
}

NodeProfile Profiler::ForNode(const Node& node) const {
  auto it = per_node_.find(node.id());
  if (it == per_node_.end()) {
    NodeProfile empty;
    empty.node_id = node.id();
    empty.node_name = node.name();
    return empty;
  }
  return it->second;
}

std::string Profiler::Summary() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %10s %12s %10s %12s %12s\n",
                "node", "quanta", "units", "units/q", "service-us",
                "max-q-us");
  out << line;
  for (const auto& [id, p] : per_node_) {
    std::snprintf(line, sizeof(line),
                  "%-24s %10llu %12llu %10.1f %12.1f %12.1f\n",
                  p.node_name.c_str(),
                  static_cast<unsigned long long>(p.quanta),
                  static_cast<unsigned long long>(p.units),
                  p.MeanTrainLength(),
                  static_cast<double>(p.service_ns) / 1e3,
                  static_cast<double>(p.max_service_ns) / 1e3);
    out << line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu decisions, %llu units, %.1f ms in DoWork\n",
                static_cast<unsigned long long>(decisions_),
                static_cast<unsigned long long>(total_units_),
                static_cast<double>(total_service_ns_) / 1e6);
  out << line;
  return out.str();
}

}  // namespace pipes::scheduler
