#ifndef PIPES_SCHEDULER_PROFILER_H_
#define PIPES_SCHEDULER_PROFILER_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/core/node.h"

/// \file
/// Scheduler profiling: per-quantum records of what the layer-2 strategy
/// decided and what it cost. A `Profiler` aggregates, per active node, the
/// number of quanta granted, the work units performed (train lengths), and
/// the service time spent inside `DoWork` — the data behind the paper's
/// online monitoring of "runtime behaviour of the system". Profiling is
/// opt-in: schedulers run unprofiled (and pay nothing) unless a profiler is
/// attached; each worker thread of the `ThreadScheduler` fills a private
/// instance which is merged at the end of the run.

namespace pipes::scheduler {

/// Aggregated profile of one active node (one scheduling unit — the node
/// plus the passive operators fused behind it).
struct NodeProfile {
  std::uint64_t node_id = 0;
  std::string node_name;

  /// Quanta granted to this node (strategy decisions that picked it).
  std::uint64_t quanta = 0;
  /// Work units performed over all quanta.
  std::uint64_t units = 0;
  /// Nanoseconds spent inside DoWork over all quanta.
  std::uint64_t service_ns = 0;
  /// Longest single quantum, in nanoseconds.
  std::uint64_t max_service_ns = 0;
  /// Sum of candidate-set sizes at the decisions that picked this node
  /// (divide by `quanta` for the average contention the node won against).
  std::uint64_t candidates_sum = 0;

  /// Train-length histogram: bucket i counts quanta whose unit count was in
  /// [2^i, 2^(i+1)) (bucket 0 = 0-or-1 unit trains; the last bucket is
  /// unbounded).
  static constexpr std::size_t kTrainBuckets = 12;
  std::array<std::uint64_t, kTrainBuckets> train_length_buckets{};

  double MeanTrainLength() const {
    return quanta == 0 ? 0.0
                       : static_cast<double>(units) /
                             static_cast<double>(quanta);
  }
  double MeanServiceNs() const {
    return quanta == 0 ? 0.0
                       : static_cast<double>(service_ns) /
                             static_cast<double>(quanta);
  }
};

/// Collects per-quantum scheduling records. Not thread-safe: one instance
/// per scheduling thread (merge afterwards).
class Profiler {
 public:
  /// Records one scheduling decision: the strategy picked `node` out of
  /// `num_candidates`, and the node performed `units` units in `service_ns`
  /// nanoseconds.
  void RecordQuantum(const Node& node, std::size_t num_candidates,
                     std::size_t units, std::uint64_t service_ns);

  /// Folds `other`'s records into this profiler (for merging the per-worker
  /// profilers of a ThreadScheduler run).
  void Merge(const Profiler& other);

  /// Total scheduling decisions recorded.
  std::uint64_t decisions() const { return decisions_; }
  /// Total work units across all quanta.
  std::uint64_t total_units() const { return total_units_; }
  /// Total nanoseconds inside DoWork across all quanta.
  std::uint64_t total_service_ns() const { return total_service_ns_; }

  /// Per-node aggregates, ordered by node id.
  std::vector<NodeProfile> PerNode() const;

  /// Profile of one node (zeros if never scheduled).
  NodeProfile ForNode(const Node& node) const;

  /// Human-readable table, one row per node.
  std::string Summary() const;

 private:
  std::map<std::uint64_t, NodeProfile> per_node_;
  std::uint64_t decisions_ = 0;
  std::uint64_t total_units_ = 0;
  std::uint64_t total_service_ns_ = 0;
};

}  // namespace pipes::scheduler

#endif  // PIPES_SCHEDULER_PROFILER_H_
