#include "src/scheduler/scheduler.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/macros.h"

namespace pipes::scheduler {

SingleThreadScheduler::SingleThreadScheduler(QueryGraph& graph,
                                             Strategy& strategy,
                                             std::size_t batch_size)
    : graph_(graph), strategy_(strategy), batch_size_(batch_size) {
  PIPES_CHECK(batch_size > 0);
}

bool SingleThreadScheduler::Step() {
  std::vector<Node*> candidates;
  std::size_t total_queue = 0;
  for (Node* node : graph_.ActiveNodes()) {
    total_queue += node->queue_size();
    if (node->HasWork()) candidates.push_back(node);
  }
  stats_.peak_total_queue = std::max(stats_.peak_total_queue, total_queue);
  stats_.accumulated_queue += total_queue;
  if (candidates.empty()) return false;

  const std::size_t pick = strategy_.Select(candidates);
  PIPES_CHECK(pick < candidates.size());
  stats_.units += candidates[pick]->DoWork(batch_size_);
  ++stats_.iterations;
  return true;
}

RunStats SingleThreadScheduler::RunToCompletion(std::uint64_t max_iterations) {
  while (stats_.iterations < max_iterations) {
    if (!Step()) {
      if (graph_.Finished()) break;
      // No candidate but not finished can only happen if an external
      // (non-scheduled) source still owes input. Nothing we can do here.
      break;
    }
  }
  return stats_;
}

ThreadScheduler::ThreadScheduler(QueryGraph& graph, int num_threads,
                                 StrategyFactory strategy_factory,
                                 std::vector<int> assignment,
                                 std::size_t batch_size)
    : graph_(graph),
      num_threads_(num_threads),
      strategy_factory_(std::move(strategy_factory)),
      assignment_(std::move(assignment)),
      batch_size_(batch_size) {
  PIPES_CHECK(num_threads_ > 0);
}

RunStats ThreadScheduler::RunToCompletion() {
  const std::vector<Node*> active = graph_.ActiveNodes();
  std::vector<std::vector<Node*>> partitions(num_threads_);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const int worker = assignment_.empty()
                           ? static_cast<int>(i % num_threads_)
                           : assignment_[i];
    PIPES_CHECK(worker >= 0 && worker < num_threads_);
    partitions[worker].push_back(active[i]);
  }

  std::atomic<bool> all_finished{false};
  std::vector<RunStats> per_thread(num_threads_);
  std::vector<std::thread> workers;
  workers.reserve(num_threads_);

  for (int w = 0; w < num_threads_; ++w) {
    workers.emplace_back([&, w]() {
      std::unique_ptr<Strategy> strategy = strategy_factory_();
      RunStats& stats = per_thread[w];
      std::vector<Node*> candidates;
      while (!all_finished.load(std::memory_order_acquire)) {
        candidates.clear();
        std::size_t total_queue = 0;
        for (Node* node : partitions[w]) {
          total_queue += node->queue_size();
          if (node->HasWork()) candidates.push_back(node);
        }
        stats.peak_total_queue =
            std::max(stats.peak_total_queue, total_queue);
        stats.accumulated_queue += total_queue;
        if (candidates.empty()) {
          // This worker is idle; check global termination. The first
          // worker doubles as the termination detector.
          if (w == 0) {
            bool finished = true;
            for (Node* node : active) {
              if (!node->IsFinished()) {
                finished = false;
                break;
              }
            }
            if (finished) {
              all_finished.store(true, std::memory_order_release);
              break;
            }
          }
          std::this_thread::yield();
          continue;
        }
        const std::size_t pick = strategy->Select(candidates);
        stats.units += candidates[pick]->DoWork(batch_size_);
        ++stats.iterations;
      }
    });
  }
  for (auto& t : workers) t.join();

  RunStats merged;
  for (const RunStats& s : per_thread) {
    merged.iterations += s.iterations;
    merged.units += s.units;
    merged.peak_total_queue += s.peak_total_queue;
    merged.accumulated_queue += s.accumulated_queue;
  }
  return merged;
}

}  // namespace pipes::scheduler
