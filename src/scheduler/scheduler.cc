#include "src/scheduler/scheduler.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>

#include "src/common/macros.h"
#include "src/core/metrics.h"

namespace pipes::scheduler {

std::vector<int> MakeAssignment(
    const QueryGraph& graph,
    const std::unordered_map<const Node*, int>& worker_of) {
  const std::vector<Node*> active = graph.ActiveNodes();
  std::vector<int> assignment(active.size(), 0);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const auto it = worker_of.find(active[i]);
    if (it != worker_of.end()) assignment[i] = it->second;
  }
  return assignment;
}

SingleThreadScheduler::SingleThreadScheduler(QueryGraph& graph,
                                             Strategy& strategy,
                                             std::size_t batch_size)
    : graph_(graph), strategy_(strategy), batch_size_(batch_size) {
  PIPES_CHECK(batch_size > 0);
}

bool SingleThreadScheduler::Step() {
  std::vector<Node*> candidates;
  std::size_t total_queue = 0;
  for (Node* node : graph_.ActiveNodes()) {
    total_queue += node->queue_size();
    if (node->HasWork()) candidates.push_back(node);
  }
  stats_.peak_total_queue = std::max(stats_.peak_total_queue, total_queue);
  stats_.accumulated_queue += total_queue;
  if (candidates.empty()) return false;

  const std::size_t pick = strategy_.Select(candidates);
  PIPES_CHECK(pick < candidates.size());
  if (profiler_ != nullptr) {
    const std::int64_t t0 = obs::SteadyNowNs();
    const std::size_t units = candidates[pick]->DoWork(batch_size_);
    const std::int64_t t1 = obs::SteadyNowNs();
    profiler_->RecordQuantum(*candidates[pick], candidates.size(), units,
                             static_cast<std::uint64_t>(t1 - t0));
    stats_.units += units;
  } else {
    stats_.units += candidates[pick]->DoWork(batch_size_);
  }
  ++stats_.iterations;
  return true;
}

RunStats SingleThreadScheduler::RunToCompletion(std::uint64_t max_iterations) {
  while (stats_.iterations < max_iterations) {
    if (!Step()) {
      if (graph_.Finished()) break;
      // No candidate but not finished can only happen if an external
      // (non-scheduled) source still owes input. Nothing we can do here.
      break;
    }
  }
  return stats_;
}

ThreadScheduler::ThreadScheduler(QueryGraph& graph, int num_threads,
                                 StrategyFactory strategy_factory,
                                 std::vector<int> assignment,
                                 std::size_t batch_size)
    : graph_(graph),
      num_threads_(num_threads),
      strategy_factory_(std::move(strategy_factory)),
      assignment_(std::move(assignment)),
      batch_size_(batch_size) {
  PIPES_CHECK(num_threads_ > 0);
}

RunStats ThreadScheduler::RunToCompletion() {
  const std::vector<Node*> active = graph_.ActiveNodes();
  std::vector<std::vector<Node*>> partitions(num_threads_);
  for (std::size_t i = 0; i < active.size(); ++i) {
    const int worker = assignment_.empty()
                           ? static_cast<int>(i % num_threads_)
                           : assignment_[i];
    PIPES_CHECK(worker >= 0 && worker < num_threads_);
    partitions[worker].push_back(active[i]);
  }

  std::atomic<bool> all_finished{false};
  // One monotone latch per worker: "everything in my partition is
  // finished". Workers may only inspect nodes of their own partition —
  // a foreign source's exhausted flag is plain (unsynchronized) state —
  // so global termination is detected by aggregating these latches
  // instead of walking all active nodes from one thread. The latches
  // never revert: IsFinished is monotone by the Node contract.
  const auto partition_finished =
      std::make_unique<std::atomic<bool>[]>(num_threads_);
  for (int i = 0; i < num_threads_; ++i) {
    partition_finished[i].store(false, std::memory_order_relaxed);
  }
  std::vector<RunStats> per_thread(num_threads_);
  std::vector<Profiler> per_thread_profile(
      profiler_ != nullptr ? num_threads_ : 0);
  std::vector<std::thread> workers;
  workers.reserve(num_threads_);

  for (int w = 0; w < num_threads_; ++w) {
    workers.emplace_back([&, w]() {
      std::unique_ptr<Strategy> strategy = strategy_factory_();
      RunStats& stats = per_thread[w];
      Profiler* profiler =
          profiler_ != nullptr ? &per_thread_profile[w] : nullptr;
      std::vector<Node*> candidates;
      while (!all_finished.load(std::memory_order_acquire)) {
        candidates.clear();
        std::size_t total_queue = 0;
        for (Node* node : partitions[w]) {
          total_queue += node->queue_size();
          if (node->HasWork()) candidates.push_back(node);
        }
        stats.peak_total_queue =
            std::max(stats.peak_total_queue, total_queue);
        stats.accumulated_queue += total_queue;
        if (candidates.empty()) {
          // This worker is idle; publish whether its partition has
          // drained. The first worker doubles as the global termination
          // detector by aggregating all latches.
          if (!partition_finished[w].load(std::memory_order_relaxed)) {
            bool mine = true;
            for (Node* node : partitions[w]) {
              if (!node->IsFinished()) {
                mine = false;
                break;
              }
            }
            if (mine) {
              partition_finished[w].store(true, std::memory_order_release);
            }
          }
          if (w == 0) {
            bool finished = true;
            for (int i = 0; i < num_threads_; ++i) {
              if (!partition_finished[i].load(std::memory_order_acquire)) {
                finished = false;
                break;
              }
            }
            if (finished) {
              all_finished.store(true, std::memory_order_release);
              break;
            }
          }
          std::this_thread::yield();
          continue;
        }
        const std::size_t pick = strategy->Select(candidates);
        if (profiler != nullptr) {
          const std::int64_t t0 = obs::SteadyNowNs();
          const std::size_t units = candidates[pick]->DoWork(batch_size_);
          const std::int64_t t1 = obs::SteadyNowNs();
          profiler->RecordQuantum(*candidates[pick], candidates.size(),
                                  units, static_cast<std::uint64_t>(t1 - t0));
          stats.units += units;
        } else {
          stats.units += candidates[pick]->DoWork(batch_size_);
        }
        ++stats.iterations;
      }
    });
  }
  for (auto& t : workers) t.join();

  RunStats merged;
  for (const RunStats& s : per_thread) {
    merged.iterations += s.iterations;
    merged.units += s.units;
    merged.peak_total_queue += s.peak_total_queue;
    merged.accumulated_queue += s.accumulated_queue;
  }
  for (const Profiler& p : per_thread_profile) {
    profiler_->Merge(p);
  }
  return merged;
}

}  // namespace pipes::scheduler
