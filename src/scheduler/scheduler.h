#ifndef PIPES_SCHEDULER_SCHEDULER_H_
#define PIPES_SCHEDULER_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/graph.h"
#include "src/scheduler/profiler.h"
#include "src/scheduler/strategy.h"

/// \file
/// Drivers for query graphs — layers 2 and 3 of the scheduling framework.
///
/// * `SingleThreadScheduler` runs all active nodes of a graph in one thread
///   under a layer-2 `Strategy`; fully deterministic, used by the test
///   suite and by the strategy-comparison experiments.
/// * `ThreadScheduler` (layer 3) partitions the active nodes over several
///   worker threads, each running its own strategy instance. Edges that
///   cross a thread boundary must go through a `ConcurrentBuffer`.

namespace pipes::scheduler {

/// Aggregate statistics of one run.
struct RunStats {
  /// Scheduling decisions taken.
  std::uint64_t iterations = 0;
  /// Work units performed (elements + control signals).
  std::uint64_t units = 0;
  /// Peak of the summed queue sizes over all active nodes, sampled at each
  /// scheduling decision — the memory objective Chain minimizes.
  std::size_t peak_total_queue = 0;
  /// Sum over scheduling decisions of total queued entries (time-averaged
  /// queue occupancy x iterations).
  std::uint64_t accumulated_queue = 0;
};

/// Builds a `ThreadScheduler` assignment vector from a node→worker map:
/// the result follows `graph.ActiveNodes()` order, mapping each listed node
/// through `worker_of` and everything unlisted to worker 0. This is how
/// plan-level helpers (e.g. the keyed-parallel replication in
/// `src/algebra/parallel.h`) pin a replica chain — the `ConcurrentBuffer`s
/// that feed it — to one worker without knowing active-node order.
std::vector<int> MakeAssignment(
    const QueryGraph& graph,
    const std::unordered_map<const Node*, int>& worker_of);

/// Deterministic one-thread driver.
class SingleThreadScheduler {
 public:
  /// `batch_size` is the max number of work units per scheduling decision
  /// (Aurora-style train size).
  SingleThreadScheduler(QueryGraph& graph, Strategy& strategy,
                        std::size_t batch_size = 64);

  /// Performs one scheduling decision. Returns false when no active node
  /// has work.
  bool Step();

  /// Runs until the graph is fully drained (all active nodes finished) or
  /// `max_iterations` decisions were taken.
  RunStats RunToCompletion(
      std::uint64_t max_iterations = std::uint64_t{1} << 62);

  const RunStats& stats() const { return stats_; }

  /// Attaches a profiler: every subsequent scheduling decision is recorded
  /// (service time, train length, candidates). nullptr detaches; unprofiled
  /// runs pay nothing.
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

 private:
  QueryGraph& graph_;
  Strategy& strategy_;
  std::size_t batch_size_;
  RunStats stats_;
  Profiler* profiler_ = nullptr;
};

/// Layer 3: fixed partitioning of active nodes onto worker threads. Each
/// worker runs a private strategy over its partition until the whole graph
/// has drained.
class ThreadScheduler {
 public:
  using StrategyFactory = std::function<std::unique_ptr<Strategy>()>;

  /// `assignment[i]` is the worker index (in [0, num_threads)) of the i-th
  /// active node (graph.ActiveNodes() order). An empty assignment
  /// distributes round-robin.
  ThreadScheduler(QueryGraph& graph, int num_threads,
                  StrategyFactory strategy_factory,
                  std::vector<int> assignment = {},
                  std::size_t batch_size = 64);

  /// Runs worker threads until the graph is drained; returns merged stats.
  RunStats RunToCompletion();

  /// Attaches a profiler. Each worker records into a private instance; the
  /// merged result is folded into `profiler` when RunToCompletion returns
  /// (so the target needs no synchronization).
  void set_profiler(Profiler* profiler) { profiler_ = profiler; }

 private:
  QueryGraph& graph_;
  int num_threads_;
  StrategyFactory strategy_factory_;
  std::vector<int> assignment_;
  std::size_t batch_size_;
  Profiler* profiler_ = nullptr;
};

}  // namespace pipes::scheduler

#endif  // PIPES_SCHEDULER_SCHEDULER_H_
