#include "src/scheduler/strategy.h"

#include <algorithm>

#include "src/common/macros.h"

namespace pipes::scheduler {

namespace {

/// Observed selectivity of a passive operator: elements out per element in.
/// Unobserved operators are assumed to pass everything through.
double ObservedSelectivity(const Node& node) {
  const std::uint64_t in = node.elements_in();
  if (in == 0) return 1.0;
  return static_cast<double>(node.elements_out()) / static_cast<double>(in);
}

/// Walks the fused (queue-less) chain below `node`, i.e. downstream until
/// the next active node or a sink, and reports the steepest memory-drop
/// slope and the total output fan-out per input.
struct ChainWalk {
  double steepest_slope = 0;   // max over paths of (1 - sel_product)/length
  double output_per_input = 0;  // sum over terminal paths of sel products
};

void Walk(const Node& node, double product, int depth, ChainWalk& walk) {
  if (depth > 32) return;  // Defensive bound; graphs are shallow DAGs.
  if (node.downstream().empty()) {
    walk.output_per_input += product;
    return;
  }
  for (const Node* down : node.downstream()) {
    const bool boundary = down->is_active();
    // Terminal nodes (sinks) deliver rather than filter: tuples reaching
    // them count as output, so they carry no selectivity of their own.
    const bool terminal = down->downstream().empty();
    const double sel =
        boundary || terminal ? 1.0 : ObservedSelectivity(*down);
    const double next_product = product * sel;
    const double slope = (1.0 - next_product) / static_cast<double>(depth + 1);
    walk.steepest_slope = std::max(walk.steepest_slope, slope);
    if (boundary) {
      // Tuples parked in the next buffer count as delivered for rate
      // purposes but stop the memory-chain here.
      walk.output_per_input += next_product;
    } else {
      Walk(*down, next_product, depth + 1, walk);
    }
  }
}

ChainWalk AnalyzeChain(const Node& node) {
  ChainWalk walk;
  Walk(node, 1.0, 0, walk);
  return walk;
}

}  // namespace

std::size_t RoundRobinStrategy::Select(const std::vector<Node*>& candidates) {
  PIPES_DCHECK(!candidates.empty());
  // Pick the smallest id strictly greater than the last-run id, wrapping.
  std::size_t best = 0;
  bool found = false;
  std::uint64_t best_id = 0;
  std::size_t min_index = 0;
  std::uint64_t min_id = candidates[0]->id();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const std::uint64_t id = candidates[i]->id();
    if (id < min_id) {
      min_id = id;
      min_index = i;
    }
    if (id > last_id_ && (!found || id < best_id)) {
      found = true;
      best_id = id;
      best = i;
    }
  }
  const std::size_t pick = found ? best : min_index;
  last_id_ = candidates[pick]->id();
  return pick;
}

std::size_t FifoStrategy::Select(const std::vector<Node*>& candidates) {
  PIPES_DCHECK(!candidates.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (candidates[i]->id() < candidates[best]->id()) best = i;
  }
  return best;
}

std::size_t LongestQueueStrategy::Select(
    const std::vector<Node*>& candidates) {
  PIPES_DCHECK(!candidates.empty());
  std::size_t best = 0;
  std::size_t best_len = candidates[0]->queue_size();
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const std::size_t len = candidates[i]->queue_size();
    if (len > best_len) {
      best = i;
      best_len = len;
    }
  }
  return best;
}

double ChainStrategy::Priority(const Node& node) {
  // Chain's objective is queued memory. Running a node with an empty queue
  // (a source) *adds* tuples to downstream queues instead of releasing
  // them, so sources only run when no buffer holds anything to shed.
  const double producer_penalty = node.queue_size() == 0 ? 1.0 : 0.0;
  return AnalyzeChain(node).steepest_slope - producer_penalty;
}

std::size_t ChainStrategy::Select(const std::vector<Node*>& candidates) {
  PIPES_DCHECK(!candidates.empty());
  std::size_t best = 0;
  double best_priority = Priority(*candidates[0]);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double p = Priority(*candidates[i]);
    if (p > best_priority) {
      best = i;
      best_priority = p;
    }
  }
  return best;
}

double RateBasedStrategy::Priority(const Node& node) {
  return AnalyzeChain(node).output_per_input;
}

std::size_t RateBasedStrategy::Select(const std::vector<Node*>& candidates) {
  PIPES_DCHECK(!candidates.empty());
  std::size_t best = 0;
  double best_priority = Priority(*candidates[0]);
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const double p = Priority(*candidates[i]);
    if (p > best_priority) {
      best = i;
      best_priority = p;
    }
  }
  return best;
}

RandomStrategy::RandomStrategy(std::uint64_t seed) : state_(seed | 1) {}

std::size_t RandomStrategy::Select(const std::vector<Node*>& candidates) {
  PIPES_DCHECK(!candidates.empty());
  // xorshift64*
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  const std::uint64_t r = state_ * 0x2545f4914f6cdd1dULL;
  return static_cast<std::size_t>(r % candidates.size());
}

}  // namespace pipes::scheduler
