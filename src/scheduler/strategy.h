#ifndef PIPES_SCHEDULER_STRATEGY_H_
#define PIPES_SCHEDULER_STRATEGY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/node.h"

/// \file
/// Layer 2 of the PIPES scheduling framework: strategies that order the
/// *active* nodes of a query graph within one thread. An active node plus
/// the passive operators it reaches through direct (queue-less)
/// subscriptions is the paper's "virtual node" — one unit of scheduling.
/// The framework is deliberately strategy-agnostic so that the recent
/// scheduling techniques of the literature (Chain, Aurora's rate-based
/// batching, FIFO, round-robin, ...) can be compared within one uniform
/// harness (experiment E2).

namespace pipes::scheduler {

/// Picks which candidate to run next. `candidates` is the non-empty set of
/// active nodes that currently have work; the returned index selects one.
class Strategy {
 public:
  virtual ~Strategy() = default;

  virtual std::string name() const = 0;

  virtual std::size_t Select(const std::vector<Node*>& candidates) = 0;
};

/// Cycles through the candidates; the baseline of every comparison.
class RoundRobinStrategy : public Strategy {
 public:
  std::string name() const override { return "round-robin"; }
  std::size_t Select(const std::vector<Node*>& candidates) override;

 private:
  std::uint64_t last_id_ = 0;
};

/// Runs the candidate that appears first in graph insertion order — sources
/// before the buffers fed by them, i.e. tuples are pushed through in
/// arrival (FIFO) order.
class FifoStrategy : public Strategy {
 public:
  std::string name() const override { return "fifo"; }
  std::size_t Select(const std::vector<Node*>& candidates) override;
};

/// Always drains the longest queue first (Aurora's tuple-batching
/// heuristic: amortize scheduling overhead over big batches).
class LongestQueueStrategy : public Strategy {
 public:
  std::string name() const override { return "longest-queue"; }
  std::size_t Select(const std::vector<Node*>& candidates) override;
};

/// Chain scheduling (Babcock et al., SIGMOD 2002): run the candidate whose
/// fused downstream chain sheds queued memory at the steepest rate. The
/// selectivity of each downstream operator is estimated adaptively from its
/// observed elements_out/elements_in (secondary metadata).
class ChainStrategy : public Strategy {
 public:
  std::string name() const override { return "chain"; }
  std::size_t Select(const std::vector<Node*>& candidates) override;

  /// Steepest (1 - selectivity-product) / path-length over all passive
  /// downstream paths of `node`. Exposed for tests.
  static double Priority(const Node& node);
};

/// Rate-based scheduling (Carney et al., VLDB 2003 flavour): run the
/// candidate with the highest estimated output rate per unit of work, i.e.
/// prefer operators that deliver results to the user soonest.
class RateBasedStrategy : public Strategy {
 public:
  std::string name() const override { return "rate-based"; }
  std::size_t Select(const std::vector<Node*>& candidates) override;

  /// Estimated output-per-input-unit of the fused chain rooted at `node`.
  static double Priority(const Node& node);
};

/// Uniformly random choice; the control arm for strategy comparisons.
class RandomStrategy : public Strategy {
 public:
  explicit RandomStrategy(std::uint64_t seed = 7);
  std::string name() const override { return "random"; }
  std::size_t Select(const std::vector<Node*>& candidates) override;

 private:
  std::uint64_t state_;
};

}  // namespace pipes::scheduler

#endif  // PIPES_SCHEDULER_STRATEGY_H_
