#include "src/server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pipes::server {

namespace {

bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Result<Client> Client::Connect(const std::string& host, int port,
                               const std::string& tenant) {
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("invalid port " + std::to_string(port));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("invalid IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("connect to " + host + ":" +
                               std::to_string(port) + " failed: " + error);
  }
  Client client;
  client.fd_ = fd;
  PIPES_ASSIGN_OR_RETURN(Message reply,
                         client.RoundTrip(HelloMessage(tenant)));
  if (reply.type == MsgType::kError) return StatusFromError(reply);
  if (reply.type != MsgType::kOk) {
    return Status::Internal("unexpected HELLO reply type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  return client;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      decoder_(std::move(other.decoder_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Message> Client::RoundTrip(const Message& request) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  if (!SendAll(fd_, EncodeFrame(request))) {
    Close();
    return Status::Internal("connection lost while sending");
  }
  char buffer[4096];
  while (true) {
    PIPES_ASSIGN_OR_RETURN(std::optional<Message> message, decoder_.Next());
    if (message.has_value()) return *std::move(message);
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Close();
      return Status::Internal("connection closed by server");
    }
    decoder_.Feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

Result<Client::Registered> Client::Register(const std::string& cql) {
  PIPES_ASSIGN_OR_RETURN(Message reply, RoundTrip(RegisterMessage(cql)));
  if (reply.type == MsgType::kError) return StatusFromError(reply);
  if (reply.type != MsgType::kRegistered) {
    return Status::Internal("unexpected REGISTER reply type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  BodyReader reader(reply.body);
  Registered registered;
  PIPES_ASSIGN_OR_RETURN(registered.query_id, reader.U64());
  PIPES_ASSIGN_OR_RETURN(registered.schema, reader.String());
  PIPES_RETURN_IF_ERROR(reader.Finish());
  return registered;
}

Status Client::Cancel(std::uint64_t query_id) {
  PIPES_ASSIGN_OR_RETURN(Message reply, RoundTrip(CancelMessage(query_id)));
  if (reply.type == MsgType::kError) return StatusFromError(reply);
  if (reply.type != MsgType::kOk) {
    return Status::Internal("unexpected CANCEL reply type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  return Status::OK();
}

Result<std::vector<Client::Row>> Client::Fetch(std::uint64_t query_id,
                                               std::uint32_t max_results) {
  PIPES_ASSIGN_OR_RETURN(Message reply,
                         RoundTrip(FetchMessage(query_id, max_results)));
  if (reply.type == MsgType::kError) return StatusFromError(reply);
  if (reply.type != MsgType::kResults) {
    return Status::Internal("unexpected FETCH reply type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  BodyReader reader(reply.body);
  PIPES_ASSIGN_OR_RETURN(std::uint32_t count, reader.U32());
  std::vector<Row> rows;
  rows.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Row row;
    PIPES_ASSIGN_OR_RETURN(row.start, reader.GetTimestamp());
    PIPES_ASSIGN_OR_RETURN(row.end, reader.GetTimestamp());
    PIPES_ASSIGN_OR_RETURN(row.tuple, reader.String());
    rows.push_back(std::move(row));
  }
  PIPES_RETURN_IF_ERROR(reader.Finish());
  return rows;
}

Result<std::string> Client::SnapshotJson(bool whole_graph) {
  Message request{MsgType::kSnapshot,
                  BodyWriter().PutU32(whole_graph ? 1u : 0u).Take()};
  PIPES_ASSIGN_OR_RETURN(Message reply, RoundTrip(request));
  if (reply.type == MsgType::kError) return StatusFromError(reply);
  if (reply.type != MsgType::kSnapshotReply) {
    return Status::Internal("unexpected SNAPSHOT reply type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  BodyReader reader(reply.body);
  PIPES_ASSIGN_OR_RETURN(std::string json, reader.String());
  PIPES_RETURN_IF_ERROR(reader.Finish());
  return json;
}

Status Client::Ping() {
  PIPES_ASSIGN_OR_RETURN(Message reply, RoundTrip({MsgType::kPing, {}}));
  if (reply.type == MsgType::kError) return StatusFromError(reply);
  if (reply.type != MsgType::kPong) {
    return Status::Internal("unexpected PING reply type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  return Status::OK();
}

Status Client::Shutdown() {
  PIPES_ASSIGN_OR_RETURN(Message reply, RoundTrip({MsgType::kShutdown, {}}));
  if (reply.type == MsgType::kError) return StatusFromError(reply);
  if (reply.type != MsgType::kOk) {
    return Status::Internal("unexpected SHUTDOWN reply type " +
                            std::to_string(static_cast<int>(reply.type)));
  }
  return Status::OK();
}

}  // namespace pipes::server
