#ifndef PIPES_SERVER_CLIENT_H_
#define PIPES_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time.h"
#include "src/server/protocol.h"

/// \file
/// Blocking client for the PIPES continuous-query server — the thin
/// library `pipes_top --connect` and the smoke drivers build on. One
/// request, one reply; no background threads.

namespace pipes::server {

/// A connected session for one tenant. Move-only (owns the socket);
/// destruction closes the connection, which cancels every query this
/// tenant has registered on the server.
class Client {
 public:
  /// One registered query as the server reports it.
  struct Registered {
    std::uint64_t query_id = 0;
    std::string schema;  ///< "(name:TYPE, ...)"
  };

  /// One result row: the element's validity interval plus the tuple
  /// rendered as text.
  struct Row {
    Timestamp start = 0;
    Timestamp end = 0;
    std::string tuple;

    friend bool operator==(const Row&, const Row&) = default;
  };

  /// Connects to `host:port` (numeric IPv4 host, e.g. "127.0.0.1") and
  /// sends HELLO for `tenant`.
  static Result<Client> Connect(const std::string& host, int port,
                                const std::string& tenant);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Registers a continuous query; results accumulate server-side until
  /// fetched.
  Result<Registered> Register(const std::string& cql);

  Status Cancel(std::uint64_t query_id);

  /// Drains up to `max_results` accumulated rows of `query_id`.
  Result<std::vector<Row>> Fetch(std::uint64_t query_id,
                                 std::uint32_t max_results = 1024);

  /// Metrics snapshot as JSON: this tenant's subgraph by default, the
  /// whole engine graph with `whole_graph` (feed it to
  /// `metadata::SnapshotFromJson`).
  Result<std::string> SnapshotJson(bool whole_graph = false);

  Status Ping();

  /// Asks the server to stop (admin/smoke surface).
  Status Shutdown();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Client() = default;

  /// Sends `request` and blocks for the single reply frame.
  Result<Message> RoundTrip(const Message& request);

  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace pipes::server

#endif  // PIPES_SERVER_CLIENT_H_
