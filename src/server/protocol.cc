#include "src/server/protocol.h"

#include <cstring>

namespace pipes::server {

namespace {

void AppendU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

std::uint32_t ReadU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

}  // namespace

// --- BodyWriter -------------------------------------------------------------

BodyWriter& BodyWriter::PutU32(std::uint32_t v) {
  AppendU32(body_, v);
  return *this;
}

BodyWriter& BodyWriter::PutU64(std::uint64_t v) {
  AppendU32(body_, static_cast<std::uint32_t>(v >> 32));
  AppendU32(body_, static_cast<std::uint32_t>(v & 0xffffffffu));
  return *this;
}

BodyWriter& BodyWriter::PutString(std::string_view s) {
  AppendU32(body_, static_cast<std::uint32_t>(s.size()));
  body_.append(s);
  return *this;
}

// --- BodyReader -------------------------------------------------------------

Result<std::uint32_t> BodyReader::U32() {
  if (pos_ + 4 > body_.size()) {
    return Status::InvalidArgument("truncated message body (u32)");
  }
  const std::uint32_t v = ReadU32(body_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> BodyReader::U64() {
  PIPES_ASSIGN_OR_RETURN(std::uint32_t high, U32());
  PIPES_ASSIGN_OR_RETURN(std::uint32_t low, U32());
  return (static_cast<std::uint64_t>(high) << 32) | low;
}

Result<std::string> BodyReader::String() {
  PIPES_ASSIGN_OR_RETURN(std::uint32_t length, U32());
  if (pos_ + length > body_.size()) {
    return Status::InvalidArgument("truncated message body (string)");
  }
  std::string s(body_.substr(pos_, length));
  pos_ += length;
  return s;
}

Status BodyReader::Finish() const {
  if (pos_ != body_.size()) {
    return Status::InvalidArgument(
        "trailing bytes in message body: " +
        std::to_string(body_.size() - pos_) + " unread");
  }
  return Status::OK();
}

// --- Framing ----------------------------------------------------------------

std::string EncodeFrame(const Message& message) {
  std::string out;
  out.reserve(5 + message.body.size());
  AppendU32(out, static_cast<std::uint32_t>(1 + message.body.size()));
  out.push_back(static_cast<char>(message.type));
  out.append(message.body);
  return out;
}

Result<std::optional<Message>> FrameDecoder::Next() {
  if (buffer_.size() < 4) return std::optional<Message>();
  const std::uint32_t length = ReadU32(buffer_.data());
  if (length == 0) {
    return Status::InvalidArgument("zero-length frame (missing type byte)");
  }
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("oversized frame: " +
                                   std::to_string(length) + " bytes");
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) {
    return std::optional<Message>();
  }
  Message message;
  message.type = static_cast<MsgType>(
      static_cast<unsigned char>(buffer_[4]));
  message.body = buffer_.substr(5, length - 1);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  return std::optional<Message>(std::move(message));
}

// --- Canonical builders -----------------------------------------------------

Message HelloMessage(std::string_view tenant) {
  return {MsgType::kHello, BodyWriter().PutString(tenant).Take()};
}

Message RegisterMessage(std::string_view cql) {
  return {MsgType::kRegister, BodyWriter().PutString(cql).Take()};
}

Message CancelMessage(std::uint64_t query_id) {
  return {MsgType::kCancel, BodyWriter().PutU64(query_id).Take()};
}

Message FetchMessage(std::uint64_t query_id, std::uint32_t max_results) {
  return {MsgType::kFetch,
          BodyWriter().PutU64(query_id).PutU32(max_results).Take()};
}

Message ErrorMessage(const Status& status) {
  return {MsgType::kError, BodyWriter()
                               .PutU32(static_cast<std::uint32_t>(
                                   status.code()))
                               .PutString(status.message())
                               .Take()};
}

Status StatusFromError(const Message& message) {
  if (message.type != MsgType::kError) {
    return Status::InvalidArgument("not an error message");
  }
  BodyReader reader(message.body);
  PIPES_ASSIGN_OR_RETURN(std::uint32_t code, reader.U32());
  PIPES_ASSIGN_OR_RETURN(std::string text, reader.String());
  PIPES_RETURN_IF_ERROR(reader.Finish());
  return Status(static_cast<StatusCode>(code), std::move(text));
}

}  // namespace pipes::server
