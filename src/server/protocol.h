#ifndef PIPES_SERVER_PROTOCOL_H_
#define PIPES_SERVER_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/time.h"

/// \file
/// The wire protocol of the PIPES continuous-query server (docs/server.md):
/// length-framed binary messages over a byte stream. Every frame is
///
///     u32 big-endian payload length | u8 message type | body
///
/// and bodies are built from three primitives (u32, u64, and
/// length-prefixed strings). Encoding and decoding are pure functions over
/// byte buffers — no sockets here — so the codec is unit-testable and the
/// transport (src/server/server.cc, client.cc) stays trivial.
///
/// Conversation shape: a client connects, sends HELLO naming its tenant,
/// then freely interleaves REGISTER / CANCEL / FETCH / SNAPSHOT / PING.
/// Each request gets exactly one reply frame. Disconnecting (cleanly or
/// not) cancels every query the tenant has registered.

namespace pipes::server {

/// One frame's worth of message. Request types are client→server, reply
/// types (>= 128) server→client.
enum class MsgType : std::uint8_t {
  // Requests.
  kHello = 1,     ///< body: string tenant. Must be the first frame.
  kRegister = 2,  ///< body: string cql → kRegistered | kError
  kCancel = 3,    ///< body: u64 query_id → kOk | kError
  kFetch = 4,     ///< body: u64 query_id, u32 max_results → kResults|kError
  kSnapshot = 5,  ///< body: u32 mode (0 = tenant-filtered, 1 = whole graph)
                  ///< → kSnapshotReply (JSON)
  kPing = 6,      ///< body: empty → kPong
  kShutdown = 7,  ///< body: empty → kOk, then the server stops.

  // Replies.
  kOk = 128,             ///< body: empty
  kError = 129,          ///< body: u32 status code, string message
  kRegistered = 130,     ///< body: u64 query_id, string output schema
  kResults = 131,        ///< body: u32 count, then per row:
                         ///<   u64 start, u64 end, string tuple text
  kSnapshotReply = 132,  ///< body: string json
  kPong = 133,           ///< body: empty
};

struct Message {
  MsgType type = MsgType::kPing;
  std::string body;

  friend bool operator==(const Message&, const Message&) = default;
};

/// Frames larger than this are a protocol error (corrupt length prefix or
/// a hostile peer), not a allocation request.
inline constexpr std::size_t kMaxFrameBytes = std::size_t{16} << 20;

// --- Body primitives --------------------------------------------------------

/// Appends big-endian primitives / length-prefixed strings to a body.
class BodyWriter {
 public:
  BodyWriter& PutU32(std::uint32_t v);
  BodyWriter& PutU64(std::uint64_t v);
  /// Timestamps ride as the two's-complement u64 of their i64 value.
  BodyWriter& PutTimestamp(Timestamp t) {
    return PutU64(static_cast<std::uint64_t>(t));
  }
  BodyWriter& PutString(std::string_view s);

  std::string Take() { return std::move(body_); }
  const std::string& body() const { return body_; }

 private:
  std::string body_;
};

/// Reads a body back; every getter fails with InvalidArgument on
/// truncation. `Finish()` additionally rejects trailing bytes.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}

  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  Result<Timestamp> GetTimestamp() {
    PIPES_ASSIGN_OR_RETURN(std::uint64_t raw, U64());
    return static_cast<Timestamp>(raw);
  }
  Result<std::string> String();
  Status Finish() const;

 private:
  std::string_view body_;
  std::size_t pos_ = 0;
};

// --- Framing ----------------------------------------------------------------

/// One message → the exact bytes to write to the stream.
std::string EncodeFrame(const Message& message);

/// Incremental deframer over an arbitrary chunking of the byte stream.
/// Feed bytes as they arrive; Next() yields complete messages in order.
class FrameDecoder {
 public:
  void Feed(std::string_view bytes) { buffer_.append(bytes); }

  /// One decoded message, std::nullopt while the next frame is still
  /// incomplete, or InvalidArgument on an oversized/garbled frame (the
  /// stream is unrecoverable then — close the connection).
  Result<std::optional<Message>> Next();

  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

// --- Canonical message builders ---------------------------------------------

Message HelloMessage(std::string_view tenant);
Message RegisterMessage(std::string_view cql);
Message CancelMessage(std::uint64_t query_id);
Message FetchMessage(std::uint64_t query_id, std::uint32_t max_results);
Message ErrorMessage(const Status& status);
/// Reply-side inverse of ErrorMessage.
Status StatusFromError(const Message& message);

}  // namespace pipes::server

#endif  // PIPES_SERVER_PROTOCOL_H_
