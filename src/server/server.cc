#include "src/server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <map>
#include <utility>

#include "src/metadata/snapshot.h"

namespace pipes::server {

namespace {

/// Writes all of `bytes` to `fd`; false on a broken connection.
bool SendAll(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// Everything one connection accumulates: its tenant (after HELLO), the
/// handles of the queries it registered, and rows a FETCH polled but could
/// not return yet because of the max_results cap.
struct PipesServer::Connection {
  bool has_tenant = false;
  std::string tenant;
  std::map<std::uint64_t, engine::QueryHandle> handles;
  std::map<std::uint64_t, std::vector<engine::QueryHandle::Element>> spill;
  bool shutdown_requested = false;
};

PipesServer::PipesServer(engine::Engine& engine, ServerOptions options)
    : engine_(engine), options_(options) {}

PipesServer::~PipesServer() { Stop(); }

Status PipesServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server is already running");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("bind() failed: " + error);
  }
  if (::listen(fd, 64) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("listen() failed: " + error);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    const std::string error = std::strerror(errno);
    ::close(fd);
    return Status::Internal("getsockname() failed: " + error);
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  pump_thread_ = std::thread([this] { PumpLoop(); });
  return Status::OK();
}

void PipesServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stopped_cv_.wait(lock, [this] { return !running_.load(); });
}

void PipesServer::Stop() {
  // One teardown at a time: a racing second caller blocks here and finds
  // nothing left to join.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  const bool was_running = running_.exchange(false);
  if (was_running && listen_fd_ >= 0) {
    // Unblocks accept(); the loop then exits on running_ == false.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    stopped_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (pump_thread_.joinable()) pump_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (!t.joinable()) continue;
    if (t.get_id() == std::this_thread::get_id()) {
      // A SHUTDOWN frame stops the server from inside its own connection
      // thread; that thread cannot join itself.
      t.detach();
      continue;
    }
    t.join();
  }
}

void PipesServer::AcceptLoop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener closed (Stop) or fatal error.
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    std::lock_guard<std::mutex> lock(mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void PipesServer::PumpLoop() {
  while (running_.load()) {
    const std::uint64_t steps = engine_.Pump(options_.pump_steps);
    if (steps == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

void PipesServer::ServeConnection(int fd) {
  Connection conn;
  FrameDecoder decoder;
  char buffer[4096];
  bool alive = true;
  while (alive && running_.load()) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    decoder.Feed(std::string_view(buffer, static_cast<std::size_t>(n)));
    while (alive) {
      auto next = decoder.Next();
      if (!next.ok()) {
        SendAll(fd, EncodeFrame(ErrorMessage(next.status())));
        alive = false;
        break;
      }
      if (!next->has_value()) break;
      const Message reply = Handle(conn, **next);
      if (!SendAll(fd, EncodeFrame(reply))) {
        alive = false;
        break;
      }
      if (conn.shutdown_requested) {
        alive = false;
        break;
      }
    }
  }
  // Disconnect semantics: everything this tenant registered dies with the
  // connection.
  if (conn.has_tenant) engine_.CancelAllForTenant(conn.tenant);
  ::close(fd);
  if (conn.shutdown_requested) Stop();
}

Message PipesServer::Handle(Connection& conn, const Message& request) {
  if (!conn.has_tenant && request.type != MsgType::kHello &&
      request.type != MsgType::kPing) {
    return ErrorMessage(
        Status::FailedPrecondition("HELLO must precede other requests"));
  }
  switch (request.type) {
    case MsgType::kHello: {
      BodyReader reader(request.body);
      auto tenant = reader.String();
      if (!tenant.ok()) return ErrorMessage(tenant.status());
      if (const Status s = reader.Finish(); !s.ok()) return ErrorMessage(s);
      if (tenant->empty()) {
        return ErrorMessage(Status::InvalidArgument("empty tenant name"));
      }
      conn.has_tenant = true;
      conn.tenant = *std::move(tenant);
      return {MsgType::kOk, {}};
    }
    case MsgType::kRegister: {
      BodyReader reader(request.body);
      auto cql = reader.String();
      if (!cql.ok()) return ErrorMessage(cql.status());
      if (const Status s = reader.Finish(); !s.ok()) return ErrorMessage(s);
      engine::RegisterOptions options;
      options.tenant = conn.tenant;
      auto handle = engine_.Register(*cql, options);
      if (!handle.ok()) return ErrorMessage(handle.status());
      conn.handles[handle->id()] = *handle;
      BodyWriter writer;
      writer.PutU64(handle->id()).PutString(handle->schema().ToString());
      return {MsgType::kRegistered, writer.Take()};
    }
    case MsgType::kCancel: {
      BodyReader reader(request.body);
      auto id = reader.U64();
      if (!id.ok()) return ErrorMessage(id.status());
      if (const Status s = reader.Finish(); !s.ok()) return ErrorMessage(s);
      const Status status = engine_.Cancel(*id);
      if (!status.ok()) return ErrorMessage(status);
      conn.handles.erase(*id);
      conn.spill.erase(*id);
      return {MsgType::kOk, {}};
    }
    case MsgType::kFetch: {
      BodyReader reader(request.body);
      auto id = reader.U64();
      if (!id.ok()) return ErrorMessage(id.status());
      auto max = reader.U32();
      if (!max.ok()) return ErrorMessage(max.status());
      if (const Status s = reader.Finish(); !s.ok()) return ErrorMessage(s);
      auto it = conn.handles.find(*id);
      if (it == conn.handles.end()) {
        return ErrorMessage(Status::NotFound(
            "query " + std::to_string(*id) + " is not registered on this "
            "connection"));
      }
      std::vector<engine::QueryHandle::Element>& rows = conn.spill[*id];
      {
        auto polled = it->second.Poll();
        rows.insert(rows.end(), std::make_move_iterator(polled.begin()),
                    std::make_move_iterator(polled.end()));
      }
      const std::size_t limit = std::min<std::size_t>(
          rows.size(), std::min<std::uint32_t>(*max,
                                               options_.max_fetch_results));
      BodyWriter writer;
      writer.PutU32(static_cast<std::uint32_t>(limit));
      for (std::size_t i = 0; i < limit; ++i) {
        writer.PutTimestamp(rows[i].start())
            .PutTimestamp(rows[i].end())
            .PutString(rows[i].payload.ToString());
      }
      rows.erase(rows.begin(),
                 rows.begin() + static_cast<std::ptrdiff_t>(limit));
      return {MsgType::kResults, writer.Take()};
    }
    case MsgType::kSnapshot: {
      BodyReader reader(request.body);
      auto mode = reader.U32();
      if (!mode.ok()) return ErrorMessage(mode.status());
      if (const Status s = reader.Finish(); !s.ok()) return ErrorMessage(s);
      std::string json;
      if (*mode == 1) {
        json = metadata::ToJson(engine_.Snapshot());
      } else {
        metadata::SnapshotOptions options;
        options.scope = conn.tenant;
        json = metadata::ToJson(engine_.TenantSnapshot(conn.tenant),
                                options);
      }
      return {MsgType::kSnapshotReply, BodyWriter().PutString(json).Take()};
    }
    case MsgType::kPing:
      return {MsgType::kPong, {}};
    case MsgType::kShutdown:
      conn.shutdown_requested = true;
      return {MsgType::kOk, {}};
    default:
      return ErrorMessage(Status::InvalidArgument(
          "unknown message type " +
          std::to_string(static_cast<int>(request.type))));
  }
}

}  // namespace pipes::server
