#ifndef PIPES_SERVER_SERVER_H_
#define PIPES_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/engine/engine.h"
#include "src/server/protocol.h"

/// \file
/// `pipes::server::PipesServer` — the multi-tenant TCP front of one
/// `engine::Engine` (docs/server.md). Each connection names its tenant with
/// a HELLO frame and then registers/cancels/fetches continuous queries;
/// every tenant's queries multiplex onto the engine's one shared graph, so
/// overlapping queries from different connections share subplans. A
/// background pump thread drives the executor; admission control and
/// per-tenant quotas are the engine's. Dropping a connection cancels
/// everything its tenant registered.

namespace pipes::server {

struct ServerOptions {
  /// TCP port to listen on; 0 picks an ephemeral port (see `port()`).
  std::uint16_t port = 0;
  /// Executor steps per pump-thread iteration.
  std::uint64_t pump_steps = 4096;
  /// Hard cap on rows returned by one FETCH, whatever the client asks.
  std::uint32_t max_fetch_results = 65536;
};

/// Accepts connections on a listener thread, serves each on its own
/// thread, and pumps the engine on another. Start/Stop are not
/// re-entrant; Stop is idempotent and also runs from the destructor.
class PipesServer {
 public:
  explicit PipesServer(engine::Engine& engine, ServerOptions options = {});
  ~PipesServer();

  PipesServer(const PipesServer&) = delete;
  PipesServer& operator=(const PipesServer&) = delete;

  /// Binds, listens, and spawns the accept + pump threads. Fails with
  /// FailedPrecondition when already running, Internal when the OS refuses
  /// the socket (sandboxes without network access land here).
  Status Start();

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Blocks until the server stops (Stop() from another thread, or a
  /// client SHUTDOWN frame).
  void Wait();

  /// Stops listening, shuts every connection down, joins all threads.
  void Stop();

 private:
  void AcceptLoop();
  void PumpLoop();
  void ServeConnection(int fd);

  /// Per-connection request dispatch state.
  struct Connection;
  Message Handle(Connection& conn, const Message& request);

  engine::Engine& engine_;
  ServerOptions options_;

  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  int port_ = 0;

  std::thread accept_thread_;
  std::thread pump_thread_;

  /// Serializes concurrent Stop() calls (a SHUTDOWN frame's connection
  /// thread can race the owner's Stop); taken before mu_.
  std::mutex stop_mu_;
  std::mutex mu_;
  std::condition_variable stopped_cv_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace pipes::server

#endif  // PIPES_SERVER_SERVER_H_
