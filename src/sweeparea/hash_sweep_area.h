#ifndef PIPES_SWEEPAREA_HASH_SWEEP_AREA_H_
#define PIPES_SWEEPAREA_HASH_SWEEP_AREA_H_

#include <algorithm>
#include <deque>
#include <queue>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/macros.h"
#include "src/common/time.h"
#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/sweeparea/sweep_area.h"

/// \file
/// Hash-based SweepArea for equi-joins: stored elements are bucketed by
/// key, probes touch exactly one bucket. An optional residual predicate
/// supports mixed equi/theta conditions.

namespace pipes::sweeparea {

/// `KeyS(stored_payload)` and `KeyP(probe_payload)` must return the same
/// key type (hashable, equality-comparable).
template <typename Stored, typename Probe, typename KeyS, typename KeyP,
          typename Residual = TruePredicate>
class HashSweepArea {
 public:
  using Key = std::decay_t<std::invoke_result_t<KeyS, const Stored&>>;

  /// Descriptor tag: probes hit exactly one key bucket, so a join over two
  /// hash areas is a keyed equi-join and safe to replicate per key
  /// (`algebra::KeyPartitionable`).
  static constexpr bool kKeyedEquiProbe = true;
  static constexpr const char* kAreaName = "hash";

  HashSweepArea(KeyS key_stored, KeyP key_probe,
                Residual residual = Residual())
      : key_stored_(std::move(key_stored)),
        key_probe_(std::move(key_probe)),
        residual_(std::move(residual)) {}

  void Insert(const StreamElement<Stored>& element) {
    bytes_ += ApproxPayloadBytes(element.payload) + kPerElementOverheadBytes;
    Key key = key_stored_(element.payload);
    expiry_.push(Expiry{element.end(), key});
    buckets_[std::move(key)].push_back(element);
    ++count_;
  }

  template <typename Emit>
  void Query(const StreamElement<Probe>& probe, Emit&& emit) const {
    auto it = buckets_.find(key_probe_(probe.payload));
    if (it == buckets_.end()) return;
    for (const StreamElement<Stored>& stored : it->second) {
      if (stored.interval.Overlaps(probe.interval) &&
          residual_(stored.payload, probe.payload)) {
        emit(stored);
      }
    }
  }

  /// Columnar bulk insert: one pass over the columns, no intermediate AoS
  /// batch.
  void InsertRun(const ColumnarRun<Stored>& run) {
    for (std::size_t i = 0; i < run.size(); ++i) {
      Insert(run.ElementAt(i));
    }
  }

  /// Columnar bulk probe: key extraction and interval checks read the
  /// columns directly; `emit(probe_index, stored)` fires per match, in
  /// probe order.
  template <typename Emit>
  void QueryRun(const ColumnarRun<Probe>& run, Emit&& emit) const {
    const std::size_t n = run.size();
    for (std::size_t i = 0; i < n; ++i) {
      auto it = buckets_.find(key_probe_(run.payloads[i]));
      if (it == buckets_.end()) continue;
      const TimeInterval probe_iv(run.starts[i], run.ends[i]);
      for (const StreamElement<Stored>& stored : it->second) {
        if (stored.interval.Overlaps(probe_iv) &&
            residual_(stored.payload, run.payloads[i])) {
          emit(i, stored);
        }
      }
    }
  }

  /// Reorganization driven by an expiry heap: each heap pop removes exactly
  /// one expired element from its bucket, so the cost is proportional to
  /// the number of expirations, not to the total state.
  std::size_t PurgeBefore(Timestamp t) {
    std::size_t removed = 0;
    while (!expiry_.empty() && expiry_.top().end <= t) {
      const Key key = expiry_.top().key;
      expiry_.pop();
      auto bucket_it = buckets_.find(key);
      if (bucket_it == buckets_.end()) continue;  // evicted by shedding
      auto& bucket = bucket_it->second;
      for (auto it = bucket.begin(); it != bucket.end(); ++it) {
        if (it->end() <= t) {
          bytes_ -=
              ApproxPayloadBytes(it->payload) + kPerElementOverheadBytes;
          bucket.erase(it);
          ++removed;
          --count_;
          break;
        }
      }
      if (bucket.empty()) buckets_.erase(bucket_it);
    }
    return removed;
  }

  bool EvictOne(StreamElement<Stored>* evicted = nullptr) {
    // Evict from the largest bucket: sheds load where the most join state
    // (and the least selective output) accumulates.
    if (buckets_.empty()) return false;
    auto victim = buckets_.begin();
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      if (it->second.size() > victim->second.size()) victim = it;
    }
    auto& bucket = victim->second;
    bytes_ -= ApproxPayloadBytes(bucket.front().payload) +
              kPerElementOverheadBytes;
    if (evicted != nullptr) *evicted = std::move(bucket.front());
    bucket.pop_front();
    --count_;
    if (bucket.empty()) buckets_.erase(victim);
    return true;
  }

  std::size_t size() const { return count_; }
  std::size_t ApproxBytes() const { return bytes_; }

 private:
  struct Expiry {
    Timestamp end;
    Key key;
  };
  struct LaterExpiry {
    bool operator()(const Expiry& a, const Expiry& b) const {
      return a.end > b.end;
    }
  };

  KeyS key_stored_;
  KeyP key_probe_;
  Residual residual_;
  std::unordered_map<Key, std::deque<StreamElement<Stored>>> buckets_;
  // One entry per inserted element; entries of shed elements go stale and
  // are skipped when popped.
  std::priority_queue<Expiry, std::vector<Expiry>, LaterExpiry> expiry_;
  std::size_t count_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace pipes::sweeparea

#endif  // PIPES_SWEEPAREA_HASH_SWEEP_AREA_H_
