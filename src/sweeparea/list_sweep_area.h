#ifndef PIPES_SWEEPAREA_LIST_SWEEP_AREA_H_
#define PIPES_SWEEPAREA_LIST_SWEEP_AREA_H_

#include <algorithm>
#include <deque>
#include <utility>

#include "src/common/time.h"
#include "src/core/columnar.h"
#include "src/core/element.h"
#include "src/sweeparea/sweep_area.h"

/// \file
/// The baseline SweepArea: a plain insertion-ordered list scanned linearly
/// on every probe. Supports arbitrary join predicates (theta joins); the
/// comparison target for the hash and tree SweepAreas in experiment E3.

namespace pipes::sweeparea {

/// List-based SweepArea for a theta join with predicate
/// `pred(stored_payload, probe_payload)`.
template <typename Stored, typename Probe, typename Pred>
class ListSweepArea {
 public:
  /// Descriptor tag: a probe may match any stored element (arbitrary theta
  /// predicate), so joins over list areas must not be key-replicated.
  static constexpr bool kKeyedEquiProbe = false;
  static constexpr const char* kAreaName = "list";

  explicit ListSweepArea(Pred pred) : pred_(std::move(pred)) {}

  void Insert(const StreamElement<Stored>& element) {
    bytes_ += ApproxPayloadBytes(element.payload) + kPerElementOverheadBytes;
    elements_.push_back(element);
  }

  template <typename Emit>
  void Query(const StreamElement<Probe>& probe, Emit&& emit) const {
    for (const StreamElement<Stored>& stored : elements_) {
      if (stored.interval.Overlaps(probe.interval) &&
          pred_(stored.payload, probe.payload)) {
        emit(stored);
      }
    }
  }

  /// Columnar bulk insert.
  void InsertRun(const ColumnarRun<Stored>& run) {
    for (std::size_t i = 0; i < run.size(); ++i) {
      Insert(run.ElementAt(i));
    }
  }

  /// Columnar bulk probe: `emit(probe_index, stored)` per match, in probe
  /// order (each probe scans the whole list, as in `Query`).
  template <typename Emit>
  void QueryRun(const ColumnarRun<Probe>& run, Emit&& emit) const {
    const std::size_t n = run.size();
    for (std::size_t i = 0; i < n; ++i) {
      const TimeInterval probe_iv(run.starts[i], run.ends[i]);
      for (const StreamElement<Stored>& stored : elements_) {
        if (stored.interval.Overlaps(probe_iv) &&
            pred_(stored.payload, run.payloads[i])) {
          emit(i, stored);
        }
      }
    }
  }

  /// Removes expired elements from the front of the insertion-ordered
  /// list. With (near-)constant window sizes the list is also end-ordered,
  /// so this removes everything expired; an element whose validity ends out
  /// of order is retained until it reaches the front, which is safe —
  /// `Query` checks interval overlap, so a dead element can never join —
  /// and only costs its memory for a while.
  std::size_t PurgeBefore(Timestamp t) {
    std::size_t removed = 0;
    while (!elements_.empty() && elements_.front().end() <= t) {
      bytes_ -= ApproxPayloadBytes(elements_.front().payload) +
                kPerElementOverheadBytes;
      elements_.pop_front();
      ++removed;
    }
    return removed;
  }

  /// Removes the oldest element (load shedding). Returns false when empty.
  bool EvictOne(StreamElement<Stored>* evicted = nullptr) {
    if (elements_.empty()) return false;
    bytes_ -= ApproxPayloadBytes(elements_.front().payload) +
              kPerElementOverheadBytes;
    if (evicted != nullptr) *evicted = std::move(elements_.front());
    elements_.pop_front();
    return true;
  }

  std::size_t size() const { return elements_.size(); }
  std::size_t ApproxBytes() const { return bytes_; }

 private:
  Pred pred_;
  std::deque<StreamElement<Stored>> elements_;
  std::size_t bytes_ = 0;
};

}  // namespace pipes::sweeparea

#endif  // PIPES_SWEEPAREA_LIST_SWEEP_AREA_H_
